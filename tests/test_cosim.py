"""Tests for the co-simulation engine (repro.flow.cosim)."""

import numpy as np
import pytest

from repro.flow.cosim import (
    CoSimAbort,
    CoSimConfig,
    CoSimulation,
    InterpretedFrontend,
    cascade_noise_figure_db,
)
from repro.rf.frontend import FrontendConfig, ideal_frontend_config
from repro.rf.signal import Signal, dbm_to_watts


class TestCascadeNf:
    def test_friis_dominated_by_first_stage(self):
        cfg = FrontendConfig(lna_nf_db=3.0, lna_gain_db=16.0)
        total = cascade_noise_figure_db(cfg)
        assert 3.0 < total < 5.0

    def test_zero_everything(self):
        cfg = FrontendConfig(lna_nf_db=0.0, mixer1_nf_db=0.0, mixer2_nf_db=0.0)
        assert cascade_noise_figure_db(cfg) == pytest.approx(0.0)


class TestInterpretedFrontend:
    def test_matches_vectorized_frontend_on_tone(self):
        # The interpreted (AMS-side) evaluation must track the vectorized
        # behavioral model closely for a noiseless in-band tone.
        from repro.rf.frontend import DoubleConversionReceiver

        cfg = ideal_frontend_config(adc_bits=10)
        n = 8192
        t = np.arange(n) / 80e6
        tone = np.sqrt(dbm_to_watts(-50.0)) * np.exp(2j * np.pi * 1e6 * t)
        rng = np.random.default_rng(0)
        vec = DoubleConversionReceiver(cfg).process(
            Signal(tone, 80e6, 5.2e9), rng
        )
        interp = InterpretedFrontend(cfg, noise_enabled=False, substeps=2)
        out = interp.run(tone, rng)
        # Compare steady-state powers (different AGC dynamics at the very
        # start are expected).
        p_vec = np.mean(np.abs(vec.samples[512:]) ** 2)
        p_int = np.mean(np.abs(out[512:]) ** 2)
        assert 10 * np.log10(p_int / p_vec) == pytest.approx(0.0, abs=1.5)

    def test_output_rate_decimated(self):
        cfg = ideal_frontend_config()
        interp = InterpretedFrontend(cfg, substeps=1)
        out = interp.run(np.zeros(400, complex), np.random.default_rng(0))
        assert out.size == 100

    def test_substeps_validation(self):
        with pytest.raises(ValueError):
            InterpretedFrontend(FrontendConfig(), substeps=0)

    def test_noise_enabled_changes_output(self):
        cfg = FrontendConfig()
        silent = np.zeros(2000, complex)
        quiet = InterpretedFrontend(cfg, noise_enabled=False, substeps=1).run(
            silent, np.random.default_rng(1)
        )
        noisy = InterpretedFrontend(cfg, noise_enabled=True, substeps=1).run(
            silent, np.random.default_rng(1)
        )
        assert np.mean(np.abs(noisy) ** 2) > np.mean(np.abs(quiet) ** 2)


class TestCoSimulation:
    @pytest.fixture(scope="class")
    def cosim(self):
        return CoSimulation(
            FrontendConfig(),
            CoSimConfig(
                rate_mbps=24,
                psdu_bytes=40,
                input_level_dbm=-55.0,
                analog_substeps=2,
            ),
        )

    def test_system_run_decodes(self, cosim):
        report = cosim.run_system_only(2, seed=0)
        assert report.mode == "system"
        assert report.ber == 0.0
        assert report.packets_lost == 0

    def test_cosim_run_decodes(self, cosim):
        report = cosim.run_cosim(2, seed=0)
        assert report.mode == "cosim"
        assert report.ber == 0.0
        assert not report.rf_noise_active  # AMS limitation by default
        assert report.warnings  # the compiler warning is surfaced

    def test_cosim_slower_than_system(self, cosim):
        rows = cosim.compare(packet_counts=(1,), seed=1)
        assert rows[0]["slowdown"] > 2.0

    def test_noise_gap_ber_ordering(self):
        # Near sensitivity the noiseless co-sim must be optimistic.
        config = CoSimConfig(
            rate_mbps=24,
            psdu_bytes=40,
            input_level_dbm=-92.0,
            analog_substeps=1,
        )
        cs = CoSimulation(FrontendConfig(), config)
        system = cs.run_system_only(4, seed=3)
        cosim = cs.run_cosim(4, seed=3)
        assert cosim.ber <= system.ber
        assert system.ber > 0.0

    def test_random_functions_workaround_restores_noise(self):
        config = CoSimConfig(
            rate_mbps=24,
            psdu_bytes=30,
            input_level_dbm=-60.0,
            noise_workaround="random_functions",
            analog_substeps=1,
        )
        cs = CoSimulation(FrontendConfig(), config)
        report = cs.run_cosim(1, seed=4)
        assert report.rf_noise_active

    def test_system_side_workaround_adds_stimulus_noise(self):
        config = CoSimConfig(
            rate_mbps=24,
            psdu_bytes=30,
            input_level_dbm=-60.0,
            noise_workaround="system_side",
            analog_substeps=1,
        )
        cs = CoSimulation(FrontendConfig(), config)
        rng = np.random.default_rng(5)
        sig, _ = cs._stimulus(rng)
        config_none = CoSimConfig(
            rate_mbps=24, psdu_bytes=30, input_level_dbm=-60.0,
            analog_substeps=1,
        )
        cs2 = CoSimulation(FrontendConfig(), config_none)
        sig2, _ = cs2._stimulus(np.random.default_rng(5))
        assert sig.power_watts() > sig2.power_watts()

    def test_unknown_workaround_rejected(self):
        with pytest.raises(ValueError):
            CoSimConfig(noise_workaround="prayer")


class TestEdgeCases:
    """Degenerate stimuli must fail cleanly, not hang or index-fault."""

    def test_zero_length_stimulus(self):
        interp = InterpretedFrontend(FrontendConfig(), substeps=1)
        out = interp.run(np.zeros(0, complex), np.random.default_rng(0))
        assert out.size == 0
        assert out.dtype == complex

    def test_multidimensional_stimulus_rejected(self):
        interp = InterpretedFrontend(FrontendConfig(), substeps=1)
        with pytest.raises(ValueError, match="one-dimensional"):
            interp.run(np.zeros((4, 4), complex), np.random.default_rng(0))

    def test_mismatched_sample_rate_rejected(self):
        cfg = FrontendConfig()
        interp = InterpretedFrontend(cfg, substeps=1)
        wrong = Signal(np.zeros(16, complex), cfg.sample_rate_in / 2)
        with pytest.raises(ValueError, match="expects"):
            interp.run_signal(wrong, np.random.default_rng(0))

    def test_matched_sample_rate_accepted(self):
        cfg = FrontendConfig()
        interp = InterpretedFrontend(cfg, substeps=1)
        sig = Signal(np.zeros(cfg.decimation * 8, complex), cfg.sample_rate_in)
        out = interp.run_signal(sig, np.random.default_rng(0))
        assert out.sample_rate == pytest.approx(20e6)
        assert len(out) == 8

    def test_max_steps_validation(self):
        with pytest.raises(ValueError):
            InterpretedFrontend(FrontendConfig(), max_steps=0)

    def test_lockstep_abort_mid_packet(self):
        # A sub-step budget models the analog solver giving up mid-packet:
        # the engine must raise a diagnosable abort, not hang or return a
        # truncated waveform that decodes to garbage downstream.
        interp = InterpretedFrontend(
            FrontendConfig(), noise_enabled=False, substeps=4, max_steps=10
        )
        with pytest.raises(CoSimAbort) as excinfo:
            interp.run(np.full(16, 1e-3 + 0j), np.random.default_rng(0))
        abort = excinfo.value
        assert abort.steps_completed == 10
        assert abort.samples_completed == 10 // 4
        assert "aborted" in str(abort)

    def test_sufficient_budget_does_not_abort(self):
        interp = InterpretedFrontend(
            FrontendConfig(), noise_enabled=False, substeps=2, max_steps=32
        )
        out = interp.run(np.zeros(16, complex), np.random.default_rng(0))
        assert out.size == 16 // FrontendConfig().decimation
