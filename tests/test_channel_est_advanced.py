"""Tests for channel-estimate smoothing, MMSE and CSI weighting."""

import numpy as np
import pytest

from repro.dsp.channel_est import (
    equalize,
    equalize_mmse,
    estimate_channel_ls,
    smooth_channel_estimate,
)
from repro.dsp.params import N_FFT
from repro.dsp.preamble import long_training_field, long_training_symbol_freq
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu


class TestSmoothing:
    def test_flat_channel_preserved(self):
        h = estimate_channel_ls(long_training_field())
        smoothed = smooth_channel_estimate(h, n_taps=16)
        used = np.abs(long_training_symbol_freq()) > 0
        assert np.allclose(smoothed[used], 1.0, atol=0.02)

    def test_short_channel_preserved(self):
        taps = np.array([0.8, 0.4 + 0.2j, 0.1])
        ltf = long_training_field()
        received = np.convolve(ltf, taps)[: ltf.size]
        h = estimate_channel_ls(received)
        smoothed = smooth_channel_estimate(h, n_taps=16)
        used = np.abs(long_training_symbol_freq()) > 0
        expected = np.fft.fft(taps, N_FFT)
        assert np.allclose(smoothed[used], expected[used], atol=0.08)

    def test_reduces_estimation_noise(self):
        rng = np.random.default_rng(0)
        taps = np.array([1.0, 0.3])
        ltf = long_training_field()
        received = np.convolve(ltf, taps)[: ltf.size]
        received = received + 0.1 * (
            rng.standard_normal(ltf.size) + 1j * rng.standard_normal(ltf.size)
        )
        h = estimate_channel_ls(received)
        smoothed = smooth_channel_estimate(h, n_taps=8)
        truth = np.fft.fft(taps, N_FFT)
        used = np.abs(long_training_symbol_freq()) > 0
        raw_err = np.mean(np.abs(h[used] - truth[used]) ** 2)
        smooth_err = np.mean(np.abs(smoothed[used] - truth[used]) ** 2)
        assert smooth_err < raw_err

    def test_invalid_taps(self):
        h = np.ones(N_FFT, complex)
        with pytest.raises(ValueError):
            smooth_channel_estimate(h, n_taps=0)
        with pytest.raises(ValueError):
            smooth_channel_estimate(h, n_taps=65)


class TestMmseEqualizer:
    def test_matches_zf_at_high_snr(self):
        rng = np.random.default_rng(1)
        h = 0.5 + rng.standard_normal(N_FFT) * 0.1 + 0j
        rows = rng.standard_normal((2, N_FFT)) + 1j * rng.standard_normal((2, N_FFT))
        faded = rows * h[None, :]
        zf = equalize(faded, h)
        mmse = equalize_mmse(faded, h, noise_var=1e-9)
        assert np.allclose(zf, mmse, atol=1e-3)

    def test_regularizes_weak_bins(self):
        h = np.ones(N_FFT, complex)
        h[5] = 1e-4  # a deep fade
        rows = np.ones((1, N_FFT), complex) * h[None, :]
        noise_var = 0.01
        zf = equalize(rows, h)
        mmse = equalize_mmse(rows, h, noise_var)
        # ZF blasts the faded bin to 1 exactly (noise-free here), but with
        # noise it would explode; the MMSE weight stays bounded.
        weight_mmse = np.conj(h[5]) / (abs(h[5]) ** 2 + noise_var)
        assert abs(weight_mmse) < 1.0 / abs(h[5])


class TestCsiWeighting:
    def _ber(self, rx_cfg, taps, seed=7, snr_db=14.0, n=6):
        rng = np.random.default_rng(seed)
        errors, bits = 0, 0
        for _ in range(n):
            psdu = random_psdu(60, rng)
            wave = Transmitter(TxConfig(rate_mbps=24)).transmit(psdu)
            samples = np.concatenate(
                [np.zeros(150, complex), wave, np.zeros(80, complex)]
            )
            faded = np.convolve(samples, taps)[: samples.size]
            p = np.mean(np.abs(faded) ** 2) * 10 ** (-snr_db / 10.0)
            faded = faded + np.sqrt(p / 2) * (
                rng.standard_normal(faded.size)
                + 1j * rng.standard_normal(faded.size)
            )
            res = Receiver(rx_cfg).receive(faded)
            bits += 480
            if res.success and res.psdu.size == 60:
                errors += int(np.unpackbits(res.psdu ^ psdu).sum())
            else:
                errors += 240
        return errors / bits

    def test_csi_helps_on_selective_channel(self):
        # A two-ray channel with a deep in-band notch.
        taps = np.array([1.0, 0.0, 0.0, 0.95])
        with_csi = self._ber(RxConfig(csi_weighting=True), taps)
        without = self._ber(RxConfig(csi_weighting=False), taps)
        assert with_csi <= without

    def test_flat_channel_unaffected(self):
        taps = np.array([1.0])
        with_csi = self._ber(RxConfig(csi_weighting=True), taps, snr_db=20.0)
        without = self._ber(RxConfig(csi_weighting=False), taps, snr_db=20.0)
        assert with_csi == without == 0.0

    def test_unknown_equalizer_rejected(self):
        with pytest.raises(ValueError):
            RxConfig(equalizer="dfe")
