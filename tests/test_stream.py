"""Tests for multi-packet stream reception (repro.dsp.stream)."""

import numpy as np
import pytest

from repro.dsp.receiver import RxConfig
from repro.dsp.stream import StreamReceiver
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu


def _stream(psdus, rates, gap=300, snr_db=28.0, seed=0):
    rng = np.random.default_rng(seed)
    pieces = [np.zeros(gap, complex)]
    for psdu, rate in zip(psdus, rates):
        pieces.append(Transmitter(TxConfig(rate_mbps=rate)).transmit(psdu))
        pieces.append(np.zeros(gap, complex))
    samples = np.concatenate(pieces)
    p = 10.0 ** (-snr_db / 10.0)
    return samples + np.sqrt(p / 2) * (
        rng.standard_normal(samples.size)
        + 1j * rng.standard_normal(samples.size)
    )


class TestStreamReceiver:
    def test_three_packets_same_rate(self):
        rng = np.random.default_rng(1)
        psdus = [random_psdu(60, rng) for _ in range(3)]
        report = StreamReceiver().receive_stream(
            _stream(psdus, [24, 24, 24], seed=1)
        )
        assert len(report.packets) == 3
        for sent, got in zip(psdus, report.psdus):
            assert np.array_equal(sent, got)

    def test_mixed_rates_and_sizes(self):
        rng = np.random.default_rng(2)
        psdus = [random_psdu(n, rng) for n in (30, 200, 80)]
        rates = [6, 54, 24]
        report = StreamReceiver().receive_stream(
            _stream(psdus, rates, seed=2)
        )
        assert len(report.packets) == 3
        decoded_rates = [p.result.rate.data_rate_mbps for p in report.packets]
        assert decoded_rates == rates
        for sent, got in zip(psdus, report.psdus):
            assert np.array_equal(sent, got)

    def test_packet_starts_ordered(self):
        rng = np.random.default_rng(3)
        psdus = [random_psdu(40, rng) for _ in range(2)]
        report = StreamReceiver().receive_stream(
            _stream(psdus, [12, 12], seed=3)
        )
        starts = [p.start_index for p in report.packets]
        assert starts == sorted(starts)
        assert starts[1] - starts[0] > 400

    def test_noise_only_stream(self):
        rng = np.random.default_rng(4)
        noise = rng.standard_normal(8000) + 1j * rng.standard_normal(8000)
        report = StreamReceiver().receive_stream(noise)
        assert report.packets == []

    def test_empty_stream(self):
        report = StreamReceiver().receive_stream(np.zeros(10, complex))
        assert report.packets == []
        assert report.samples_consumed == 0

    def test_genie_timing_rejected(self):
        with pytest.raises(ValueError):
            StreamReceiver(RxConfig(genie_timing=True))

    def test_failure_counted_not_fatal(self):
        # A truncated packet followed by a good one: the good one should
        # still be recovered.
        rng = np.random.default_rng(5)
        good = random_psdu(60, rng)
        bad_wave = Transmitter(TxConfig(rate_mbps=24)).transmit(
            random_psdu(400, rng)
        )[:900]  # cut mid-DATA
        good_wave = Transmitter(TxConfig(rate_mbps=24)).transmit(good)
        samples = np.concatenate(
            [np.zeros(200, complex), bad_wave, np.zeros(300, complex),
             good_wave, np.zeros(200, complex)]
        )
        p = 10.0 ** (-28.0 / 10.0)
        samples = samples + np.sqrt(p / 2) * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
        report = StreamReceiver().receive_stream(samples)
        assert any(
            np.array_equal(psdu, good) for psdu in report.psdus
        )
