"""Tests for repro.perf — deterministic parallel execution.

The central claim under test: running any layer of the verification
flow with ``jobs > 1`` is *bit-identical* to running it serially,
because every unit of work derives its random stream from its
coordinates in the SeedSequence spawn tree rather than from execution
order.
"""

import time

import numpy as np
import pytest

from repro import obs, perf
from repro.core.sweep import ParameterSweep, SimulationManager
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.obs import RunStore


# -- picklable task functions (module level for the process pool) ------
def _square(x):
    return x * x


def _jobs_seen_inside_worker(_):
    return perf.resolve_jobs(8)


def _observe_some_metrics(x):
    registry = obs.get_registry()
    registry.counter("task_count").inc()
    registry.histogram("task_value").observe(float(x))
    with obs.span("inner:work", x=x):
        pass
    return x


def _fast_config(**overrides):
    base = dict(rate_mbps=24, psdu_bytes=40, snr_db=10.0)
    base.update(overrides)
    return TestbenchConfig(**base)


# -- seeding -----------------------------------------------------------
class TestSeeding:
    def test_spawn_is_stateless(self):
        a = perf.spawn(42, 3)
        b = perf.spawn(42, 3)
        for x, y in zip(a, b):
            assert (
                np.random.default_rng(x).random(4)
                == np.random.default_rng(y).random(4)
            ).all()

    def test_spawn_matches_numpy_first_spawn(self):
        ours = perf.spawn(7, 2)
        theirs = np.random.SeedSequence(7).spawn(2)
        for x, y in zip(ours, theirs):
            assert x.entropy == y.entropy
            assert x.spawn_key == y.spawn_key

    def test_no_collision_between_offset_base_seeds(self):
        # The retired ``seed + 1000 * i`` derivation made point 1 of a
        # seed-0 sweep reuse point 0's stream of a seed-1000 sweep.
        old_a = perf.stream(perf.spawn(0, 2)[1]).random(8)
        old_b = perf.stream(perf.spawn(1000, 1)[0]).random(8)
        assert not np.array_equal(old_a, old_b)

    def test_seed_entropy(self):
        assert perf.seed_entropy(11) == 11
        assert perf.seed_entropy(np.random.SeedSequence(11)) == 11
        assert perf.seed_entropy(perf.spawn(11, 1)[0]) is None

    def test_seed_fingerprint_is_lossless(self):
        # seed_entropy collapses spawned children to None; the
        # fingerprint must keep distinct streams distinct.
        assert perf.seed_fingerprint(11) == {
            "entropy": 11, "spawn_key": []
        }
        child = perf.spawn(42, 2)[1]
        assert perf.seed_fingerprint(child) == {
            "entropy": 42, "spawn_key": [1]
        }
        assert (
            perf.seed_fingerprint(perf.spawn(42, 1)[0])
            != perf.seed_fingerprint(perf.spawn(99, 1)[0])
        )

    def test_scheme_recorded_in_manifest(self):
        manifest = obs.build_manifest(seed=0)
        assert manifest.seeding == obs.SEEDING_SCHEME
        assert manifest.as_dict()["seeding"] == "seedseq-spawn-v2"


# -- the pool primitive ------------------------------------------------
class TestParallelMap:
    def test_results_in_task_order(self):
        result = perf.parallel_map(_square, range(10), jobs=2)
        assert list(result) == [x * x for x in range(10)]
        assert result.jobs == 2

    def test_serial_path_identical(self):
        assert list(perf.parallel_map(_square, range(10), jobs=1)) == [
            x * x for x in range(10)
        ]

    def test_on_result_called_in_order(self):
        seen = []
        perf.parallel_map(
            _square, range(8), jobs=2,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert seen == [(i, i * i) for i in range(8)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_early_stop_consumes_serial_prefix(self, jobs):
        result = perf.parallel_map(
            _square, range(20), jobs=jobs,
            stop=lambda i, r: r >= 9,
        )
        assert list(result) == [0, 1, 4, 9]
        assert result.stopped

    def test_no_stop_flag_when_exhausted(self):
        result = perf.parallel_map(_square, range(4), jobs=2)
        assert not result.stopped

    def test_nested_fanout_degrades_to_serial(self):
        inner = perf.parallel_map(_jobs_seen_inside_worker, [0, 1], jobs=2)
        assert list(inner) == [1, 1]  # workers refuse to nest pools

    def test_jobs_zero_means_cpu_count(self):
        assert perf.resolve_jobs(0) == perf.cpu_count()

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            perf.resolve_jobs(-1)

    def test_ambient_default(self):
        previous = perf.set_default_jobs(3)
        try:
            assert perf.resolve_jobs(None) == 3
        finally:
            perf.set_default_jobs(previous)

    def test_worker_metrics_merged_into_parent(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            perf.parallel_map(
                _observe_some_metrics, range(6), jobs=2, stage="merge"
            )
        finally:
            obs.set_registry(previous)
        assert registry.counter("task_count").value() == 6.0
        assert sorted(registry.histogram("task_value").values()) == [
            0.0, 1.0, 2.0, 3.0, 4.0, 5.0
        ]
        assert registry.gauge("parallel_efficiency").value(
            stage="merge", jobs=2, requested=2
        ) > 0.0

    def test_worker_spans_absorbed_under_task_spans(self):
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            perf.parallel_map(
                _observe_some_metrics, range(4), jobs=2, stage="absorb"
            )
        finally:
            obs.set_tracer(previous)
        tasks = tracer.spans("absorb:task")
        inner = tracer.spans("inner:work")
        assert len(tasks) == 4
        assert len(inner) == 4
        task_ids = {s.span_id for s in tasks}
        assert all(s.parent_id in task_ids for s in inner)

    def test_serial_path_emits_same_region_metrics(self):
        # A jobs=1 run must produce the same metric set as jobs=2 of
        # the same workload, so profiles line up across job counts.
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            perf.parallel_map(_square, range(3), jobs=1, stage="quiet")
        finally:
            obs.set_registry(previous)
        assert registry.gauge("parallel_efficiency").value(
            stage="quiet", jobs=1, requested=1
        ) == 1.0
        assert registry.counter("parallel_tasks").value(
            stage="quiet"
        ) == 3.0


# -- metrics / tracer transfer plumbing --------------------------------
class TestTelemetryTransfer:
    def test_registry_snapshot_merge_roundtrip(self):
        src = obs.MetricsRegistry()
        src.counter("c", "help").inc(2.0, mode="x")
        src.gauge("g").set(1.5)
        src.histogram("h").observe(1.0)
        src.histogram("h").observe(3.0)
        dst = obs.MetricsRegistry()
        dst.counter("c", "help").inc(1.0, mode="x")
        dst.merge(src.snapshot())
        assert dst.counter("c").value(mode="x") == 3.0
        assert dst.gauge("g").value() == 1.5
        assert sorted(dst.histogram("h").values()) == [1.0, 3.0]

    def test_tracer_absorb_remaps_and_reparents(self):
        worker = obs.Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent = obs.Tracer()
        anchor = parent.record_span("anchor", 0.0)
        parent.absorb(
            [r.as_dict() for r in worker.records],
            parent_id=anchor.span_id,
        )
        spans = {s.name: s for s in parent.spans()}
        assert spans["outer"].parent_id == anchor.span_id
        assert spans["inner"].parent_id == spans["outer"].span_id
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))


# -- parallel == serial at every layer ---------------------------------
class TestBitIdentity:
    def test_measure_ber_parallel_identical(self):
        bench = WlanTestbench(_fast_config())
        serial = bench.measure_ber(n_packets=6, seed=3)
        pooled = bench.measure_ber(n_packets=6, seed=3, jobs=2)
        chunked = bench.measure_ber(
            n_packets=6, seed=3, jobs=2, chunk_size=3
        )
        for other in (pooled, chunked):
            assert other.ber == serial.ber
            assert other.bit_errors == serial.bit_errors
            assert other.bits_total == serial.bits_total
            assert other.packets == serial.packets

    def test_measure_ber_seed_sequence_accepted(self):
        bench = WlanTestbench(_fast_config())
        m_int = bench.measure_ber(n_packets=3, seed=5)
        m_seq = bench.measure_ber(
            n_packets=3, seed=np.random.SeedSequence(5)
        )
        assert m_int.ber == m_seq.ber

    def test_sweep_parallel_identical(self):
        sweep = ParameterSweep(
            _fast_config(), "snr_db", [4.0, 8.0, 12.0],
            n_packets=4, seed=1,
        )
        serial = sweep.run()
        pooled = sweep.run(jobs=2)
        assert np.array_equal(serial.bers, pooled.bers)
        assert [p.measurement.bit_errors for p in serial.points] == [
            p.measurement.bit_errors for p in pooled.points
        ]

    def test_manager_parallel_identical(self):
        def build():
            manager = SimulationManager()
            manager.add("a", ParameterSweep(
                _fast_config(), "snr_db", [5.0, 10.0], n_packets=3, seed=0,
            ))
            manager.add("b", ParameterSweep(
                _fast_config(), "psdu_bytes", [20, 40], n_packets=3, seed=9,
            ))
            return manager

        serial = build().run_all()
        pooled = build().run_all(jobs=2)
        assert set(serial) == set(pooled)
        for name in serial:
            assert np.array_equal(serial[name].bers, pooled[name].bers)

    def test_characterize_parallel_identical(self):
        from repro.flow.rfsim import characterize
        from repro.rf.amplifier import Amplifier

        amp = Amplifier.spw_style(16.0, 3.0, -12.0)
        serial = characterize(amp, seed=2, jobs=1)
        pooled = characterize(amp, seed=2, jobs=2)
        assert np.array_equal(
            serial.compression.output_dbm, pooled.compression.output_dbm
        )
        assert serial.intermod.iip3_dbm == pooled.intermod.iip3_dbm
        assert serial.noise.noise_figure_db == pooled.noise.noise_figure_db

    def test_compression_sweep_parallel_identical(self):
        from repro.flow.rfsim import swept_power_compression
        from repro.rf.amplifier import Amplifier

        amp = Amplifier.spw_style(10.0, 0.0, -10.0)
        grid = np.arange(-30.0, -9.0, 3.0)
        serial = swept_power_compression(amp, input_dbm=grid, jobs=1)
        pooled = swept_power_compression(amp, input_dbm=grid, jobs=2)
        assert np.array_equal(serial.output_dbm, pooled.output_dbm)


# -- early stop under chunking -----------------------------------------
class TestChunkedEarlyStop:
    #: Low SNR: every packet is lost, so each contributes exactly
    #: ``n_bits / 2`` bit errors and the stop point is predictable.
    CONFIG = dict(rate_mbps=54, psdu_bytes=40, snr_db=-10.0)

    def test_serial_chunk1_matches_legacy_stop(self):
        bench = WlanTestbench(_fast_config(**self.CONFIG))
        m = bench.measure_ber(n_packets=12, seed=0, max_bit_errors=200)
        # 160 errors/packet: the threshold crosses during packet 2.
        assert m.packets == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_chunked_stop_overshoots_at_most_one_chunk(self, jobs):
        bench = WlanTestbench(_fast_config(**self.CONFIG))
        serial = bench.measure_ber(n_packets=12, seed=0, max_bit_errors=200)
        chunked = bench.measure_ber(
            n_packets=12, seed=0, max_bit_errors=200,
            jobs=jobs, chunk_size=4,
        )
        assert chunked.packets >= serial.packets
        assert chunked.packets - serial.packets < 4
        # Only completed, consumed packets enter the estimate.
        assert chunked.bits_total == chunked.packets * 320
        assert chunked.ber == chunked.bit_errors / chunked.bits_total

    def test_equal_chunk_sizes_identical_across_jobs(self):
        bench = WlanTestbench(_fast_config(**self.CONFIG))
        one = bench.measure_ber(
            n_packets=12, seed=0, max_bit_errors=200, jobs=1, chunk_size=4
        )
        two = bench.measure_ber(
            n_packets=12, seed=0, max_bit_errors=200, jobs=2, chunk_size=4
        )
        assert one.packets == two.packets
        assert one.ber == two.ber

    def test_chunk_size_validated(self):
        bench = WlanTestbench(_fast_config())
        with pytest.raises(ValueError):
            bench.measure_ber(n_packets=2, chunk_size=0)


# -- memoization -------------------------------------------------------
class TestMemoization:
    def _sweep(self):
        return ParameterSweep(
            _fast_config(), "snr_db", [6.0, 10.0], n_packets=3, seed=4,
        )

    def test_second_run_reuses_stored_points(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = self._sweep().run(store=store, memoize=True)
        assert len(store.list_runs(kind="point")) == 2

        class Recorder:
            def __init__(self):
                self.events = []

            def on_event(self, event):
                self.events.append(event)

        recorder = Recorder()
        second = self._sweep().run(
            store=store, memoize=True, progress=recorder,
        )
        assert np.array_equal(first.bers, second.bers)
        assert recorder.events
        assert all(e.data["memoized"] for e in recorder.events)
        assert len(store.list_runs(kind="point")) == 2

    def test_memoized_measurement_roundtrips_exactly(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = self._sweep().run(store=store, memoize=True)
        second = self._sweep().run(store=store, memoize=True)
        for a, b in zip(first.points, second.points):
            assert a.measurement.ber == b.measurement.ber
            assert a.measurement.bit_errors == b.measurement.bit_errors
            assert a.measurement.bits_total == b.measurement.bits_total
            assert a.measurement.packets == b.measurement.packets
            assert a.measurement.packets_lost == b.measurement.packets_lost

    def test_different_setup_misses_cache(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        self._sweep().run(store=store, memoize=True)
        other = ParameterSweep(
            _fast_config(), "snr_db", [6.0, 10.0], n_packets=4, seed=4,
        )
        other.run(store=store, memoize=True)
        assert len(store.list_runs(kind="point")) == 4

    def test_memo_key_depends_on_sweep_seed(self):
        # Regression: the key once hashed seed_entropy(child), which is
        # None for every spawned child, so sweeps with different base
        # seeds shared keys and --memoize served one seed's points to
        # another.
        from repro.core.sweep import _point_memo_key

        config = _fast_config()
        keys = {
            _point_memo_key(config, 3, perf.spawn(seed, 2)[0], 0, None)
            for seed in (42, 99)
        }
        assert len(keys) == 2

    def test_different_seed_misses_cache(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        self._sweep().run(store=store, memoize=True)
        reseeded = ParameterSweep(
            _fast_config(), "snr_db", [6.0, 10.0], n_packets=3, seed=5,
        )
        reseeded.run(store=store, memoize=True)
        assert len(store.list_runs(kind="point")) == 4

    def test_manager_parallel_populates_cache(self, tmp_path):
        # Workers cannot write to the store; their fresh points must
        # ride back on the SweepResult and be persisted by the parent,
        # so --jobs N --memoize warms the cache like a serial run.
        def build():
            manager = SimulationManager()
            manager.add("a", self._sweep())
            manager.add("b", ParameterSweep(
                _fast_config(), "snr_db", [6.0, 10.0], n_packets=3, seed=7,
            ))
            return manager

        store = RunStore(tmp_path / "runs")
        writer = store.create("sweep", name="ambient", seed=4)
        previous_writer = obs.set_current_writer(writer)
        previous_memoize = perf.set_default_memoize(True)
        try:
            first = build().run_all(jobs=2)
            assert len(store.list_runs(kind="point")) == 4

            second = build().run_all(jobs=2)
        finally:
            perf.set_default_memoize(previous_memoize)
            obs.set_current_writer(previous_writer)
        assert len(store.list_runs(kind="point")) == 4
        assert np.array_equal(first["a"].bers, second["a"].bers)
        assert np.array_equal(first["b"].bers, second["b"].bers)

    def test_memoize_off_stores_no_points(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        self._sweep().run(store=store)
        assert store.list_runs(kind="point") == []

    def test_ambient_memoize_default(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        previous = perf.set_default_memoize(True)
        try:
            self._sweep().run(store=store)
        finally:
            perf.set_default_memoize(previous)
        assert len(store.list_runs(kind="point")) == 2


# -- campaign ----------------------------------------------------------
class TestCampaignParallel:
    def test_fast_checks_identical_verdicts(self):
        from repro.core.campaign import VerificationCampaign

        campaign = VerificationCampaign(depth="quick", seed=0)
        only = ["phy_loopback", "transmit_mask"]
        serial = campaign.run(only=only)
        pooled = campaign.run(only=only, jobs=2)
        assert [r.name for r in serial.results] == [
            r.name for r in pooled.results
        ]
        assert [r.passed for r in serial.results] == [
            r.passed for r in pooled.results
        ]
        assert [r.detail for r in serial.results] == [
            r.detail for r in pooled.results
        ]
