"""Tests for the block interleaver (repro.dsp.interleaver)."""

import numpy as np
import pytest

from repro.dsp.interleaver import deinterleave, interleave
from repro.dsp.params import RATES


class TestRoundTrip:
    @pytest.mark.parametrize("mbps", sorted(RATES))
    def test_roundtrip_all_rates(self, mbps):
        r = RATES[mbps]
        rng = np.random.default_rng(mbps)
        bits = rng.integers(0, 2, 3 * r.n_cbps, dtype=np.uint8)
        out = deinterleave(interleave(bits, r.n_cbps, r.n_bpsc), r.n_cbps, r.n_bpsc)
        assert np.array_equal(out, bits)

    def test_roundtrip_soft_values(self):
        r = RATES[54]
        rng = np.random.default_rng(0)
        llr = rng.normal(size=r.n_cbps)
        out = deinterleave(interleave(llr, r.n_cbps, r.n_bpsc), r.n_cbps, r.n_bpsc)
        assert np.allclose(out, llr)


class TestPermutationProperties:
    def test_is_a_permutation(self):
        for mbps in RATES:
            r = RATES[mbps]
            idx = interleave(np.arange(r.n_cbps), r.n_cbps, r.n_bpsc)
            assert sorted(idx.tolist()) == list(range(r.n_cbps))

    def test_adjacent_coded_bits_spread(self):
        # First permutation: adjacent coded bits map onto nonadjacent
        # subcarriers (separation N_CBPS/16 positions).
        r = RATES[24]
        positions = np.empty(r.n_cbps, dtype=int)
        out = interleave(np.arange(r.n_cbps), r.n_cbps, r.n_bpsc)
        for k in range(r.n_cbps):
            positions[out[k]] = k  # positions[j] = source index at slot j
        # Where did coded bits k and k+1 land?
        land = np.empty(r.n_cbps, dtype=int)
        land[out] = np.arange(r.n_cbps)
        # Interpretation: interleaved[perm[k]] = coded[k]; land of coded
        # bit k is perm[k].
        perm = np.empty(r.n_cbps, dtype=int)
        src = interleave(np.arange(r.n_cbps), r.n_cbps, r.n_bpsc)
        # src[j] = original index stored at j  => perm[src[j]] = j
        perm[src] = np.arange(r.n_cbps)
        subcarrier = perm // r.n_bpsc
        gaps = np.abs(np.diff(subcarrier[: r.n_cbps // 2]))
        assert gaps.min() >= 2  # never the same or neighbouring subcarrier

    def test_signal_field_permutation_known_values(self):
        # For N_CBPS=48, N_BPSC=1: i = 3*(k mod 16) + k//16, j = i.
        perm = np.empty(48, dtype=int)
        src = interleave(np.arange(48), 48, 1)
        perm[src] = np.arange(48)
        k = np.arange(48)
        expected = 3 * (k % 16) + k // 16
        assert np.array_equal(perm, expected)


class TestValidation:
    def test_bad_length(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(50), 48, 1)
        with pytest.raises(ValueError):
            deinterleave(np.zeros(50), 48, 1)

    def test_bad_ncbps(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(50), 50, 1)

    def test_bad_nbpsc(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(48), 48, 3)

    def test_multi_symbol_independence(self):
        # Interleaving two symbols equals interleaving each separately.
        r = RATES[12]
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, r.n_cbps, dtype=np.uint8)
        b = rng.integers(0, 2, r.n_cbps, dtype=np.uint8)
        both = interleave(np.concatenate([a, b]), r.n_cbps, r.n_bpsc)
        sep = np.concatenate(
            [interleave(a, r.n_cbps, r.n_bpsc), interleave(b, r.n_cbps, r.n_bpsc)]
        )
        assert np.array_equal(both, sep)
