"""Tests for the 802.11a parameter tables (repro.dsp.params)."""

import numpy as np
import pytest

from repro.dsp import params
from repro.dsp.params import (
    RATES,
    RATE_BITS_TO_MBPS,
    WLAN_STANDARDS,
    padded_data_bits,
    symbols_for_psdu,
)


class TestRateTable:
    def test_all_eight_rates_present(self):
        assert sorted(RATES) == [6, 9, 12, 18, 24, 36, 48, 54]

    @pytest.mark.parametrize(
        "mbps,modulation,coding,n_bpsc,n_cbps,n_dbps",
        [
            (6, "BPSK", (1, 2), 1, 48, 24),
            (9, "BPSK", (3, 4), 1, 48, 36),
            (12, "QPSK", (1, 2), 2, 96, 48),
            (18, "QPSK", (3, 4), 2, 96, 72),
            (24, "QAM16", (1, 2), 4, 192, 96),
            (36, "QAM16", (3, 4), 4, 192, 144),
            (48, "QAM64", (2, 3), 6, 288, 192),
            (54, "QAM64", (3, 4), 6, 288, 216),
        ],
    )
    def test_standard_table_78(self, mbps, modulation, coding, n_bpsc, n_cbps, n_dbps):
        r = RATES[mbps]
        assert r.modulation == modulation
        assert r.coding_rate == coding
        assert r.n_bpsc == n_bpsc
        assert r.n_cbps == n_cbps
        assert r.n_dbps == n_dbps

    def test_rate_bits_unique_and_invertible(self):
        assert len(RATE_BITS_TO_MBPS) == 8
        for mbps, r in RATES.items():
            assert RATE_BITS_TO_MBPS[r.rate_bits] == mbps

    def test_data_rate_consistency(self):
        # N_DBPS per 4 us symbol must equal the nominal data rate.
        for mbps, r in RATES.items():
            assert r.n_dbps == mbps * 4  # 4 us per OFDM symbol

    def test_coding_rate_float(self):
        assert RATES[6].coding_rate_float == pytest.approx(0.5)
        assert RATES[48].coding_rate_float == pytest.approx(2 / 3)


class TestCarrierAllocation:
    def test_counts(self):
        assert params.DATA_CARRIER_INDICES.size == 48
        assert params.PILOT_CARRIER_INDICES.size == 4

    def test_no_overlap_and_no_dc(self):
        data = set(params.DATA_CARRIER_INDICES.tolist())
        pilots = set(params.PILOT_CARRIER_INDICES.tolist())
        assert not data & pilots
        assert 0 not in data
        assert 0 not in pilots

    def test_range(self):
        used = np.concatenate(
            [params.DATA_CARRIER_INDICES, params.PILOT_CARRIER_INDICES]
        )
        assert used.min() == -26
        assert used.max() == 26

    def test_pilot_positions(self):
        assert params.PILOT_CARRIER_INDICES.tolist() == [-21, -7, 7, 21]

    def test_subcarrier_spacing(self):
        assert params.SUBCARRIER_SPACING == pytest.approx(312.5e3)


class TestPsduSizing:
    def test_minimal_psdu(self):
        # 16 + 8 + 6 = 30 bits -> 2 symbols at 6 Mbps (24 bits/symbol).
        assert symbols_for_psdu(1, RATES[6]) == 2

    def test_exact_fit(self):
        # 16 + 8n + 6 == k * n_dbps for some n: at 24 Mbps n_dbps=96;
        # n=121 bytes -> 990 bits -> not exact; pick a constructed case.
        r = RATES[24]
        n_bytes = (3 * r.n_dbps - 16 - 6) // 8  # 33 bytes: 286 bits <= 288
        bits = 16 + 8 * n_bytes + 6
        assert symbols_for_psdu(n_bytes, r) == int(np.ceil(bits / r.n_dbps))

    def test_padded_bits_multiple_of_ndbps(self):
        for mbps in RATES:
            total = padded_data_bits(57, RATES[mbps])
            assert total % RATES[mbps].n_dbps == 0
            assert total >= 16 + 8 * 57 + 6

    def test_negative_psdu_rejected(self):
        with pytest.raises(ValueError):
            symbols_for_psdu(-1, RATES[6])


class TestWlanStandardsTable1:
    def test_four_standards(self):
        names = [s.name for s in WLAN_STANDARDS]
        assert names == ["802.11", "802.11a", "802.11b", "802.11g"]

    def test_a_is_54_at_5ghz(self):
        a = next(s for s in WLAN_STANDARDS if s.name == "802.11a")
        assert a.max_rate_mbps == 54.0
        assert a.freq_band_ghz[0] >= 5.0
        assert a.approval_year == 1999

    def test_b_is_11_at_2_4ghz(self):
        b = next(s for s in WLAN_STANDARDS if s.name == "802.11b")
        assert b.max_rate_mbps == 11.0
        assert b.freq_band_ghz[0] == pytest.approx(2.4)

    def test_rates_sorted_descending_max_first(self):
        for s in WLAN_STANDARDS:
            assert s.max_rate_mbps == max(s.data_rates_mbps)


class TestChannelMap:
    def test_channel_44_is_5_22_ghz(self):
        from repro.dsp.params import channel_center_frequency

        assert channel_center_frequency(44) == pytest.approx(5.22e9)

    def test_channel_40_is_papers_5_2_ghz(self):
        # The paper's 5.2 GHz carrier is channel 40.
        from repro.dsp.params import channel_center_frequency

        assert channel_center_frequency(40) == pytest.approx(5.2e9)

    def test_adjacent_channels_are_20mhz_apart(self):
        from repro.dsp.params import channel_center_frequency

        assert channel_center_frequency(40) - channel_center_frequency(36) \
            == pytest.approx(20e6)

    def test_invalid_channel_rejected(self):
        from repro.dsp.params import channel_center_frequency

        with pytest.raises(ValueError):
            channel_center_frequency(37)
        with pytest.raises(ValueError):
            channel_center_frequency(0)
