"""Tests for channel estimation and phase tracking (repro.dsp.channel_est)."""

import numpy as np
import pytest

from repro.dsp.channel_est import (
    equalize,
    estimate_channel_ls,
    estimate_noise_variance,
    pilot_phase_correction,
)
from repro.dsp.ofdm import OfdmDemodulator, OfdmModulator, pilot_values
from repro.dsp.params import N_FFT
from repro.dsp.preamble import long_training_field, long_training_symbol_freq


class TestChannelEstimation:
    def test_flat_channel_unity(self):
        h = estimate_channel_ls(long_training_field())
        used = np.abs(long_training_symbol_freq()) > 0
        assert np.allclose(h[used], 1.0, atol=1e-10)

    def test_scalar_gain_recovered(self):
        gain = 0.5 * np.exp(1j * 0.7)
        h = estimate_channel_ls(gain * long_training_field())
        used = np.abs(long_training_symbol_freq()) > 0
        assert np.allclose(h[used], gain, atol=1e-10)

    def test_multipath_frequency_response(self):
        taps = np.array([0.9, 0.3 + 0.2j, -0.1j])
        ltf = long_training_field()
        received = np.convolve(ltf, taps)[: ltf.size]
        h = estimate_channel_ls(received)
        expected = np.fft.fft(taps, N_FFT)
        used = np.abs(long_training_symbol_freq()) > 0
        # The guard interval absorbs the transient; estimates track the
        # true frequency response closely.
        assert np.allclose(h[used], expected[used], atol=0.05)

    def test_unused_bins_set_to_one(self):
        h = estimate_channel_ls(long_training_field() * 2.0)
        assert h[0] == 1.0  # DC bin untouched

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            estimate_channel_ls(np.zeros(100, complex))


class TestNoiseVariance:
    def test_zero_for_clean_ltf(self):
        assert estimate_noise_variance(long_training_field()) < 1e-20

    def test_tracks_injected_noise(self):
        rng = np.random.default_rng(0)
        var = 0.01
        ltf = long_training_field()
        noisy = ltf + np.sqrt(var / 2) * (
            rng.standard_normal(ltf.size) + 1j * rng.standard_normal(ltf.size)
        )
        est = estimate_noise_variance(noisy)
        # Per-subcarrier variance: time-domain var maps by the OFDM scale
        # (52/64 of power on used bins, scaled by TIME_SCALE^2/64...); just
        # require the right order of magnitude and positivity.
        assert 0.1 * var < est < 10 * var


class TestEqualization:
    def test_equalize_inverts_channel(self):
        rng = np.random.default_rng(1)
        h = rng.standard_normal(N_FFT) + 1j * rng.standard_normal(N_FFT)
        h[np.abs(h) < 0.3] = 1.0
        rows = rng.standard_normal((3, N_FFT)) + 1j * rng.standard_normal((3, N_FFT))
        eq = equalize(rows * h[None, :], h)
        assert np.allclose(eq, rows)


class TestPilotPhaseCorrection:
    def _data_symbol_rows(self, n_sym, phases, rng):
        mod = OfdmModulator()
        demod = OfdmDemodulator()
        data = np.exp(1j * rng.uniform(0, 2 * np.pi, (n_sym, 48)))
        stream = mod.modulate(data)
        rows = demod.demodulate(stream)
        rotated = rows * np.exp(1j * np.asarray(phases))[:, None]
        return data, rotated

    def test_removes_common_phase_error(self):
        rng = np.random.default_rng(2)
        phases = [0.3, -0.5, 1.1, 0.05]
        data, rows = self._data_symbol_rows(4, phases, rng)
        corrected = pilot_phase_correction(rows, first_symbol_index=0)
        recovered = OfdmDemodulator().extract_data(corrected)
        assert np.allclose(recovered, data, atol=1e-9)

    def test_zero_phase_is_noop(self):
        rng = np.random.default_rng(3)
        data, rows = self._data_symbol_rows(2, [0.0, 0.0], rng)
        corrected = pilot_phase_correction(rows, first_symbol_index=0)
        assert np.allclose(corrected, rows, atol=1e-9)

    def test_polarity_sequence_respected(self):
        # Using the wrong first_symbol_index misreads pilot polarity and
        # the correction can flip the constellation by pi for symbols
        # where the polarities differ.
        rng = np.random.default_rng(4)
        data, rows = self._data_symbol_rows(5, [0.2] * 5, rng)
        right = pilot_phase_correction(rows, first_symbol_index=0)
        wrong = pilot_phase_correction(rows, first_symbol_index=3)
        assert not np.allclose(right, wrong, atol=1e-6)
