"""Tests for mixer and oscillator models (repro.rf.mixer, repro.rf.oscillator)."""

import numpy as np
import pytest

from repro.rf.mixer import Mixer, QuadratureMixer, image_rejection_ratio_db
from repro.rf.oscillator import LocalOscillator
from repro.rf.signal import Signal, dbm_to_watts


def _tone(power_dbm, n=8192, fs=80e6, f=2e6, carrier=5.2e9):
    t = np.arange(n) / fs
    return Signal(
        np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * f * t),
        fs,
        carrier,
    )


class TestOscillator:
    def test_frequency_error_hz(self):
        lo = LocalOscillator(2.6e9, frequency_error_ppm=20.0)
        assert lo.frequency_error_hz == pytest.approx(52e3)

    def test_rotation_is_unit_magnitude(self):
        lo = LocalOscillator(2.6e9, frequency_error_ppm=10.0)
        rot = lo.envelope_rotation(1000, 80e6)
        assert np.allclose(np.abs(rot), 1.0)

    def test_no_error_no_rotation(self):
        lo = LocalOscillator(2.6e9)
        rot = lo.envelope_rotation(100, 80e6)
        assert np.allclose(rot, 1.0)

    def test_phase_noise_process_random_walk(self):
        lo = LocalOscillator(2.6e9, phase_noise_dbc_hz=-85.0)
        rng = np.random.default_rng(0)
        phi = lo.phase_noise_process(20000, 80e6, rng)
        # A random walk's variance grows with time.
        assert np.var(phi[10000:]) > np.var(phi[:1000])

    def test_phase_noise_disabled_without_rng(self):
        lo = LocalOscillator(2.6e9, phase_noise_dbc_hz=-85.0)
        rot = lo.envelope_rotation(100, 80e6, rng=None)
        assert np.allclose(rot, 1.0)

    def test_phase_noise_none(self):
        lo = LocalOscillator(2.6e9)
        assert not lo.phase_noise_process(50, 80e6, np.random.default_rng(0)).any()


class TestMixer:
    def test_carrier_bookkeeping(self):
        lo = LocalOscillator(2.6e9)
        mixer = Mixer(lo=lo)
        out = mixer.process(_tone(-30.0, carrier=5.2e9))
        assert out.carrier_frequency == pytest.approx(2.6e9)

    def test_conversion_gain(self):
        mixer = Mixer(lo=LocalOscillator(2.6e9), conversion_gain_db=7.0)
        out = mixer.process(_tone(-30.0))
        assert out.power_dbm() == pytest.approx(-23.0, abs=0.01)

    def test_dc_offset_added(self):
        mixer = Mixer(lo=LocalOscillator(2.6e9), dc_offset_dbm=-40.0)
        silence = Signal(np.zeros(1024, complex), 80e6, 5.2e9)
        out = mixer.process(silence)
        assert out.power_dbm() == pytest.approx(-40.0, abs=0.01)
        assert np.allclose(out.samples, out.samples[0])  # pure DC

    def test_lo_error_rotates_envelope(self):
        lo = LocalOscillator(2.6e9, frequency_error_ppm=10.0)  # 26 kHz
        mixer = Mixer(lo=lo)
        out = mixer.process(_tone(-30.0, f=0.0))
        # The output rotates at -26 kHz: measure via phase slope.
        phase = np.unwrap(np.angle(out.samples))
        slope = (phase[-1] - phase[0]) / (out.samples.size / 80e6)
        assert slope / (2 * np.pi) == pytest.approx(-26e3, rel=0.01)

    def test_image_leak_level(self):
        mixer = Mixer(lo=LocalOscillator(2.6e9), image_rejection_db=30.0)
        out = mixer.process(_tone(-20.0, f=5e6))
        n = out.samples.size
        t = np.arange(n) / 80e6
        wanted = abs(np.dot(out.samples, np.exp(-2j * np.pi * 5e6 * t)) / n)
        image = abs(np.dot(out.samples, np.exp(+2j * np.pi * 5e6 * t)) / n)
        assert 20 * np.log10(wanted / image) == pytest.approx(30.0, abs=0.5)

    def test_noise_requires_rng(self):
        mixer = Mixer(lo=LocalOscillator(2.6e9), noise_figure_db=8.0)
        with pytest.raises(ValueError):
            mixer.process(_tone(-30.0))

    def test_flicker_noise_injected(self):
        mixer = Mixer(
            lo=LocalOscillator(2.6e9),
            flicker_power_dbm=-50.0,
            flicker_corner_hz=1e6,
        )
        rng = np.random.default_rng(1)
        out = mixer.process(Signal(np.zeros(1 << 14, complex), 80e6, 5.2e9), rng)
        assert out.power_dbm() == pytest.approx(-50.0, abs=1.0)


class TestQuadratureMixer:
    def test_no_imbalance_matches_base(self):
        lo = LocalOscillator(2.6e9)
        base = Mixer(lo=lo, conversion_gain_db=5.0)
        quad = QuadratureMixer(lo=lo, conversion_gain_db=5.0)
        tone = _tone(-25.0)
        assert np.allclose(
            base.process(tone).samples, quad.process(tone).samples
        )

    def test_imbalance_creates_image(self):
        quad = QuadratureMixer(
            lo=LocalOscillator(2.6e9),
            amplitude_imbalance_db=1.0,
            phase_imbalance_deg=5.0,
        )
        out = quad.process(_tone(-20.0, f=3e6))
        n = out.samples.size
        t = np.arange(n) / 80e6
        wanted = abs(np.dot(out.samples, np.exp(-2j * np.pi * 3e6 * t)) / n)
        image = abs(np.dot(out.samples, np.exp(+2j * np.pi * 3e6 * t)) / n)
        irr = 20 * np.log10(wanted / image)
        # 1 dB / 5 deg imbalance gives an IRR in the 20-30 dB region.
        assert 15.0 < irr < 35.0

    def test_helper_irr(self):
        assert image_rejection_ratio_db(1.0, 0.0) == np.inf
        assert image_rejection_ratio_db(1.0, 0.1) == pytest.approx(20.0)
