"""Tests for the verification campaign (repro.core.campaign)."""

import pytest

from repro.core.campaign import (
    CampaignReport,
    CheckResult,
    VerificationCampaign,
)
from repro.rf.frontend import FrontendConfig


class TestCampaignMechanics:
    def test_depth_validated(self):
        with pytest.raises(ValueError):
            VerificationCampaign(depth="exhaustive")

    def test_empty_report_not_passed(self):
        assert not CampaignReport().passed

    def test_report_verdict_logic(self):
        good = CheckResult("a", True, "", 0.1)
        bad = CheckResult("b", False, "", 0.1)
        assert CampaignReport([good]).passed
        assert not CampaignReport([good, bad]).passed

    def test_table_renders(self):
        report = CampaignReport(
            [CheckResult("mask", True, "margin +1 dB", 0.5)]
        )
        table = report.as_table()
        assert "mask" in table
        assert "PASS" in table

    def test_subset_selection(self):
        campaign = VerificationCampaign(depth="quick")
        report = campaign.run(only=["phy_loopback", "transmit_mask"])
        names = [r.name for r in report.results]
        assert len(names) == 2
        assert report.passed


class TestFullQuickCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return VerificationCampaign(depth="quick", seed=1).run()

    def test_all_checks_executed(self, report):
        assert len(report.results) == len(VerificationCampaign.CHECKS)

    def test_nominal_design_signs_off(self, report):
        failing = [r.name for r in report.results if not r.passed]
        assert not failing, f"failing checks: {failing}"

    def test_durations_recorded(self, report):
        for r in report.results:
            assert r.duration_s >= 0.0


class TestCampaignCatchesBadDesign:
    def test_broken_lna_fails_linearity_check(self):
        campaign = VerificationCampaign(
            frontend=FrontendConfig(lna_p1db_dbm=-50.0), depth="quick"
        )
        report = campaign.run(only=["linearity_waterfall"])
        assert not report.passed

    def test_deaf_frontend_fails_sensitivity(self):
        campaign = VerificationCampaign(
            frontend=FrontendConfig(lna_nf_db=25.0), depth="quick", seed=2
        )
        report = campaign.run(only=["sensitivity"])
        assert not report.passed
