"""Tests for the multi-emitter scenario library (repro.scenario).

Covers the scenario layer itself (config round trips, oversampling,
bench integration, per-emitter probes) plus the correctness fixes that
shipped with it: forked per-emitter streams, the explicit power-scaling
convention, the importance-sampling validity gate, and the fading
channel's edge cases (tail truncation, flat fading, Rician
normalization, Jakes-Doppler trajectories).
"""

import numpy as np
import pytest

from repro import obs
from repro.channel.fading import FadingChannel
from repro.channel.interference import (
    AdjacentChannelSource,
    InterferenceScenario,
    active_power_watts,
    reference_power_watts,
    scale_to_excess,
)
from repro.channel.streams import fork_stream
from repro.core.sweep import ParameterSweep
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.rf.signal import Signal
from repro.scenario import (
    BluetoothFhEmitter,
    MicrowaveOvenEmitter,
    PRESETS,
    Scenario,
    WlanEmitter,
    preset_names,
)


def _burst(n=4096, seed=0):
    rng = np.random.default_rng(seed)
    return Signal(np.exp(2j * np.pi * rng.random(n)), 80e6)


class TestEmitterStreamForking:
    """Satellite 1: per-emitter streams are forked, never the caller's."""

    def test_scenario_apply_never_advances_caller_rng(self):
        rng = np.random.default_rng(3)
        wanted = _burst()
        state = rng.bit_generator.state
        Scenario.preset("hostile-coexistence").apply(wanted, rng)
        assert rng.bit_generator.state == state

    def test_legacy_interference_never_advances_caller_rng(self):
        rng = np.random.default_rng(3)
        wanted = _burst()
        state = rng.bit_generator.state
        InterferenceScenario.adjacent().apply(wanted, rng)
        assert rng.bit_generator.state == state

    def test_wanted_path_invariant_to_extra_emitters(self):
        """Adding negligible emitters must not move any wanted-path draw.

        Both scenarios resolve to the same oversampling, and -400 dB
        emitter amplitudes vanish below float64 resolution, so the only
        way the measurements could differ is an emitter consuming the
        packet stream — the pre-fix bug.
        """
        def measure(emitters):
            cfg = TestbenchConfig(
                rate_mbps=6,
                psdu_bytes=20,
                snr_db=0.0,
                scenario=Scenario(emitters=emitters),
            )
            return WlanTestbench(cfg).measure_ber(n_packets=3, seed=11)

        lone = measure([WlanEmitter(offset_channels=0, excess_db=-400.0)])
        crowd = measure([
            WlanEmitter(offset_channels=0, excess_db=-400.0),
            BluetoothFhEmitter(excess_db=-400.0, slot_s=40e-6,
                               burst_s=25e-6),
            MicrowaveOvenEmitter(excess_db=-400.0, period_s=200e-6),
        ])
        assert lone.ber > 0  # the comparison has to bite on something
        assert lone.bit_errors == crowd.bit_errors
        assert lone.bits_total == crowd.bits_total

    def test_fork_stream_children_are_distinct_and_stable(self):
        rng = np.random.default_rng(9)
        state = rng.bit_generator.state
        first = fork_stream(rng, 0).random(4)
        second = fork_stream(rng, 1).random(4)
        again = fork_stream(rng, 0).random(4)
        assert not np.allclose(first, second)
        assert np.array_equal(first, again)
        assert rng.bit_generator.state == state

    def test_manifest_records_emitter_scheme(self):
        manifest = obs.build_manifest(seed=0).as_dict()
        assert manifest["emitter_seeding"] == "emitter-fork-v1"


class TestPowerConventions:
    """Satellite 2: the scaling convention is explicit and consistent."""

    def test_active_vs_average_on_gated_signal(self):
        x = np.ones(1000, dtype=complex)
        x[500:] = 0.0  # 50% duty: conventions differ by exactly 3 dB
        assert active_power_watts(x) == pytest.approx(1.0)
        assert reference_power_watts(x, "active") == pytest.approx(1.0)
        assert reference_power_watts(x, "average") == pytest.approx(0.5)

    def test_unknown_convention_rejected(self):
        with pytest.raises(ValueError, match="convention"):
            reference_power_watts(np.ones(4, complex), "rms")

    def test_scale_to_excess_is_exact_per_convention(self):
        rng = np.random.default_rng(0)
        x = np.zeros(4096, dtype=complex)
        x[: 1024] = np.exp(2j * np.pi * rng.random(1024))  # 25% duty
        for convention in ("active", "average"):
            scaled = scale_to_excess(x, 1.0, 7.0, convention)
            measured = reference_power_watts(scaled, convention)
            assert 10 * np.log10(measured) == pytest.approx(7.0, abs=1e-9)

    def test_bursty_emitter_hits_configured_excess(self):
        """A duty-cycled emitter's *burst* power sits at excess_db.

        Under the pre-fix full-window convention a 50%-duty burst came
        out 3 dB hot during its on-time; the active convention pins the
        on-air power itself.
        """
        wanted = _burst(1 << 15, seed=1)
        reference = reference_power_watts(wanted.samples, "active")
        emitter = MicrowaveOvenEmitter(
            excess_db=3.0, period_s=200e-6, duty=0.5
        )
        out = emitter.generate(
            wanted.samples.size, 80e6, reference,
            np.random.default_rng(0),
        ).samples
        burst_db = 10 * np.log10(active_power_watts(out) / reference)
        window_db = 10 * np.log10(
            np.mean(np.abs(out) ** 2) / reference
        )
        assert burst_db == pytest.approx(3.0, abs=0.05)
        # The two conventions genuinely disagree on this waveform (by
        # the ~3 dB duty factor), so the choice above is load-bearing.
        assert burst_db - window_db == pytest.approx(3.0, abs=0.3)

    def test_scenario_mixes_per_convention_references(self):
        wanted = _burst(1 << 14, seed=2)
        scenario = Scenario(emitters=[
            MicrowaveOvenEmitter(excess_db=0.0, period_s=200e-6,
                                 duty=0.5, power_convention="active"),
            MicrowaveOvenEmitter(excess_db=0.0, period_s=200e-6,
                                 duty=0.5, power_convention="average"),
        ])
        rng = np.random.default_rng(5)
        mixed = scenario.apply(wanted, rng)
        assert mixed.samples.shape == wanted.samples.shape
        # Different conventions -> different scales for an identical
        # seed/waveform; the "average" copy is the hotter one (its
        # on-air power compensates the off-time).
        active_ref = reference_power_watts(wanted.samples, "active")
        a = scenario.emitters[0].generate(
            wanted.samples.size, 80e6, active_ref, fork_stream(rng, 0)
        )
        b = scenario.emitters[1].generate(
            wanted.samples.size, 80e6,
            reference_power_watts(wanted.samples, "average"),
            fork_stream(rng, 0),
        )
        assert active_power_watts(b.samples) > active_power_watts(a.samples)


class TestIsGating:
    """Satellite 3: importance sampling refuses non-AWGN error events."""

    def _bench(self, **channel):
        return WlanTestbench(TestbenchConfig(
            rate_mbps=6, psdu_bytes=20, snr_db=10.0, **channel
        ))

    def test_is_raises_with_scenario_emitters(self):
        bench = self._bench(scenario=Scenario.preset("co-channel"))
        with pytest.raises(ValueError, match="non-AWGN emitters"):
            bench.measure_ber(n_packets=1, estimator="is")

    def test_is_raises_with_scenario_fading(self):
        bench = self._bench(scenario=Scenario.preset("indoor-fading"))
        with pytest.raises(ValueError, match="fading"):
            bench.measure_ber(n_packets=1, estimator="is")

    def test_is_raises_with_bench_fading(self):
        bench = self._bench(fading=FadingChannel())
        with pytest.raises(ValueError, match="fading"):
            bench.measure_ber(n_packets=1, estimator="is")

    def test_is_raises_with_legacy_interference(self):
        bench = self._bench(interference=InterferenceScenario.adjacent())
        with pytest.raises(ValueError, match="interference"):
            bench.measure_ber(n_packets=1, estimator="is")

    def test_is_error_names_the_fallback(self):
        bench = self._bench(scenario=Scenario.preset("co-channel"))
        with pytest.raises(ValueError, match="estimator='mc'"):
            bench.measure_ber(n_packets=1, estimator="is")

    def test_trivial_scenario_keeps_is_valid(self):
        bench = self._bench(scenario=Scenario(name="empty"))
        meas = bench.measure_ber(n_packets=1, estimator="is", seed=0)
        assert meas.estimator == "is"

    def test_auto_sweep_falls_back_to_mc(self):
        """At a deep point auto picks IS — unless a scenario is active."""
        def plan(**channel):
            sweep = ParameterSweep(
                base_config=TestbenchConfig(
                    rate_mbps=6, psdu_bytes=20, **channel
                ),
                parameter="snr_db",
                values=[20.0],
                n_packets=1,
                estimator="auto",
            )
            return sweep._point_estimator(sweep._configured(20.0))

        assert plan()[0] == "is"
        assert plan(scenario=Scenario.preset("co-channel"))[0] == "mc"
        assert plan(scenario=Scenario.preset("indoor-fading"))[0] == "mc"
        assert plan(fading=FadingChannel())[0] == "mc"

    def test_auto_sweep_runs_clean_under_scenario(self):
        sweep = ParameterSweep(
            base_config=TestbenchConfig(
                rate_mbps=6, psdu_bytes=20,
                scenario=Scenario.preset("co-channel"),
            ),
            parameter="snr_db",
            values=[18.0, 20.0],
            n_packets=1,
            estimator="auto",
        )
        result = sweep.run()
        assert all(
            getattr(p.measurement, "estimator", "mc") == "mc"
            for p in result.points
        )


class TestFadingEdgeCases:
    """Satellite 4: FadingChannel corner behavior."""

    def test_convolution_tail_truncated(self):
        rng = np.random.default_rng(0)
        sig = _burst(2048)
        out = FadingChannel(rms_delay_spread_s=150e-9).process(sig, rng)
        assert out.samples.size == sig.samples.size

    def test_zero_delay_spread_is_flat(self):
        ch = FadingChannel(rms_delay_spread_s=0.0)
        rng = np.random.default_rng(1)
        taps = ch.realize(20e6, rng)
        assert taps.size == 1
        sig = _burst(512)
        out = FadingChannel(rms_delay_spread_s=0.0).process(
            sig, np.random.default_rng(1)
        )
        np.testing.assert_allclose(out.samples, taps[0] * sig.samples)

    def test_normalized_realization_has_unit_power(self):
        ch = FadingChannel(rms_delay_spread_s=100e-9)
        rng = np.random.default_rng(2)
        for _ in range(5):
            taps = ch.realize(20e6, rng)
            assert np.sum(np.abs(taps) ** 2) == pytest.approx(1.0)

    def test_rician_k_normalization(self):
        """The K-factor splits power, it must not add any.

        Unnormalized ensemble power stays 1 for any K, and at a huge K
        the first tap collapses onto the deterministic LOS amplitude.
        """
        rng = np.random.default_rng(3)
        ch = FadingChannel(
            rms_delay_spread_s=50e-9, rice_factor_db=6.0, normalize=False
        )
        total = np.mean([
            np.sum(np.abs(ch.realize(20e6, rng)) ** 2)
            for _ in range(4000)
        ])
        assert total == pytest.approx(1.0, rel=0.05)
        hard = FadingChannel(
            rms_delay_spread_s=50e-9, rice_factor_db=80.0, normalize=False
        )
        from repro.channel.fading import exponential_power_delay_profile

        p0 = exponential_power_delay_profile(50e-9, 20e6)[0]
        taps = hard.realize(20e6, np.random.default_rng(4))
        assert abs(taps[0]) == pytest.approx(np.sqrt(p0), rel=1e-3)

    def test_realize_deterministic_under_spawned_seeds(self):
        seq = np.random.SeedSequence(42)
        a, b = (np.random.default_rng(c) for c in seq.spawn(2))
        again_a, _ = (
            np.random.default_rng(c)
            for c in np.random.SeedSequence(42).spawn(2)
        )
        ch = FadingChannel(rms_delay_spread_s=100e-9)
        first = ch.realize(20e6, a)
        np.testing.assert_array_equal(first, ch.realize(20e6, again_a))
        assert not np.allclose(first, ch.realize(20e6, b))

    def test_zero_doppler_keeps_block_static_path(self):
        sig = _burst(1024)
        static = FadingChannel(rms_delay_spread_s=100e-9)
        taps = static.realize(sig.sample_rate, np.random.default_rng(7))
        expected = np.convolve(sig.samples, taps)[: sig.samples.size]
        out = static.process(sig, np.random.default_rng(7))
        np.testing.assert_allclose(out.samples, expected)

    def test_time_varying_requires_positive_doppler(self):
        ch = FadingChannel()
        with pytest.raises(ValueError, match="max_doppler_hz"):
            ch.realize_time_varying(64, 20e6, np.random.default_rng(0))
        bad = FadingChannel(max_doppler_hz=30.0, n_sinusoids=0)
        with pytest.raises(ValueError, match="n_sinusoids"):
            bad.realize_time_varying(64, 20e6, np.random.default_rng(0))

    def test_doppler_taps_have_unit_expected_power(self):
        ch = FadingChannel(rms_delay_spread_s=100e-9, max_doppler_hz=200.0)
        rng = np.random.default_rng(8)
        power = np.mean([
            np.sum(np.abs(ch.realize_time_varying(64, 20e6, rng)) ** 2,
                   axis=0).mean()
            for _ in range(800)
        ])
        assert power == pytest.approx(1.0, rel=0.05)

    def test_doppler_process_preserves_length_and_varies_in_time(self):
        sig = _burst(4096)
        ch = FadingChannel(
            rms_delay_spread_s=100e-9, max_doppler_hz=2000.0
        )
        out = ch.process(sig, np.random.default_rng(9))
        assert out.samples.size == sig.samples.size
        gain = np.abs(out.samples / sig.samples)
        # A genuinely time-varying channel: the envelope gain drifts
        # across the window far more than any block-static draw could.
        assert gain[:256].mean() != pytest.approx(
            gain[-256:].mean(), rel=1e-6
        )


class TestScenarioConfig:
    def test_round_trip(self):
        for name in preset_names():
            scenario = Scenario.preset(name)
            rebuilt = Scenario.from_config(scenario.to_config())
            assert rebuilt.to_config() == scenario.to_config()

    def test_from_json(self):
        import json

        scenario = Scenario.from_json(json.dumps(PRESETS["co-channel"]))
        assert scenario.name == "co-channel"
        assert scenario.emitters[0].offset_channels == 0

    def test_unknown_emitter_type_raises(self):
        with pytest.raises(ValueError, match="unknown emitter type"):
            Scenario.from_config(
                {"emitters": [{"type": "zigbee"}]}
            )

    def test_unknown_emitter_key_raises(self):
        with pytest.raises(ValueError, match="emitter keys"):
            Scenario.from_config(
                {"emitters": [{"type": "wlan", "chanel": 1}]}
            )

    def test_unknown_scenario_key_raises(self):
        with pytest.raises(ValueError, match="scenario keys"):
            Scenario.from_config({"emiters": []})

    def test_unknown_fading_key_raises(self):
        with pytest.raises(ValueError, match="fading keys"):
            Scenario.from_config({"fading": {"doppler": 30.0}})

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="preset"):
            Scenario.preset("cafeteria")

    def test_required_oversample_matches_legacy_rule(self):
        for k in (1, 2, 3):
            scenario = Scenario(emitters=[WlanEmitter(offset_channels=k)])
            assert scenario.required_oversample() == 2 * (k + 1)
        assert Scenario(
            emitters=[WlanEmitter(offset_channels=0)]
        ).required_oversample() == 2
        assert Scenario().required_oversample() == 1
        assert Scenario().is_trivial

    def test_wlan_emitter_is_the_legacy_source(self):
        emitter = WlanEmitter(offset_channels=1, excess_db=16.0)
        assert isinstance(emitter, AdjacentChannelSource)
        legacy = InterferenceScenario.adjacent().sources[0]
        rng_kwargs = dict(
            n_samples=2048, sample_rate=80e6, wanted_power_watts=1.0
        )
        np.testing.assert_array_equal(
            emitter.generate(rng=np.random.default_rng(0),
                             **rng_kwargs).samples,
            legacy.generate(rng=np.random.default_rng(0),
                            **rng_kwargs).samples,
        )


class TestScenarioBench:
    def test_adjacent_scenario_bit_identical_to_legacy(self):
        """Acceptance: the paper's +16 dB point via configs == legacy."""
        def measure(**channel):
            cfg = TestbenchConfig(rate_mbps=36, psdu_bytes=60,
                                  snr_db=14.0, **channel)
            return WlanTestbench(cfg).measure_ber(n_packets=4, seed=1)

        legacy = measure(interference=InterferenceScenario.adjacent())
        mixed = measure(scenario=Scenario.preset("adjacent-16db"))
        assert legacy.ber > 0  # the interferer must actually bite
        assert legacy.bit_errors == mixed.bit_errors
        assert legacy.bits_total == mixed.bits_total

    def test_oversample_follows_scenario(self):
        cfg = TestbenchConfig(
            rate_mbps=6, snr_db=10.0,
            scenario=Scenario.preset("non-adjacent-32db"),
        )
        assert WlanTestbench(cfg).oversample == 6

    def test_frontend_rejects_too_wide_scenario(self):
        from repro.rf.frontend import FrontendConfig

        cfg = TestbenchConfig(
            rate_mbps=6,
            thermal_floor=True,
            frontend=FrontendConfig(),
            input_level_dbm=-60.0,
            scenario=Scenario(
                emitters=[WlanEmitter(offset_channels=4, excess_db=16.0)]
            ),
        )
        with pytest.raises(ValueError, match="envelope"):
            WlanTestbench(cfg)

    def test_per_emitter_probe_taps(self):
        previous = obs.set_probes(
            obs.ProbeRegistry(obs.probe_preset("basic"))
        )
        try:
            cfg = TestbenchConfig(
                rate_mbps=6, psdu_bytes=20, snr_db=12.0,
                scenario=Scenario.preset("hostile-coexistence"),
            )
            WlanTestbench(cfg).measure_ber(n_packets=1, seed=0)
            stages = obs.get_probes().export()["stages"]
        finally:
            obs.set_probes(previous)
        for label in ("emitter:wlan+1", "emitter:bluetooth",
                      "emitter:microwave"):
            assert label in stages

    def test_probes_do_not_change_measurement(self):
        cfg = TestbenchConfig(
            rate_mbps=6, psdu_bytes=20, snr_db=8.0,
            scenario=Scenario.preset("hostile-coexistence"),
        )
        bare = WlanTestbench(cfg).measure_ber(n_packets=2, seed=5)
        previous = obs.set_probes(
            obs.ProbeRegistry(obs.probe_preset("basic"))
        )
        try:
            probed = WlanTestbench(cfg).measure_ber(n_packets=2, seed=5)
        finally:
            obs.set_probes(previous)
        assert bare.bit_errors == probed.bit_errors
        assert bare.bits_total == probed.bits_total

    def test_scenario_fading_reaches_the_channel(self):
        def measure(scenario):
            cfg = TestbenchConfig(rate_mbps=24, psdu_bytes=40,
                                  snr_db=10.0, scenario=scenario)
            return WlanTestbench(cfg).measure_ber(n_packets=3, seed=2)

        clean = measure(Scenario(name="empty"))
        faded = measure(Scenario.preset("indoor-fading"))
        assert (clean.bit_errors, clean.per) != (faded.bit_errors,
                                                 faded.per)

    def test_bench_fading_wins_over_scenario_fading(self):
        bench_fading = FadingChannel(rms_delay_spread_s=100e-9)
        both = TestbenchConfig(
            rate_mbps=24, psdu_bytes=40, snr_db=10.0,
            fading=bench_fading,
            scenario=Scenario(fading=FadingChannel(
                rms_delay_spread_s=50e-9
            )),
        )
        explicit = TestbenchConfig(
            rate_mbps=24, psdu_bytes=40, snr_db=10.0,
            fading=bench_fading,
        )
        a = WlanTestbench(both).measure_ber(n_packets=2, seed=3)
        b = WlanTestbench(explicit).measure_ber(n_packets=2, seed=3)
        assert a.bit_errors == b.bit_errors
        assert a.bits_total == b.bits_total

    def test_scenario_cli_runs(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--list-presets"]) == 0
        assert "hostile-coexistence" in capsys.readouterr().out
        code = main([
            "scenario", "--preset", "microwave-oven",
            "--snr", "10", "--rate", "6", "--bytes", "20",
            "--packets", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "microwave" in out
        assert main(["scenario"]) == 2


@pytest.mark.slow
class TestScenarioEndToEnd:
    def test_three_emitter_sweep_schedule_invariant(self, tmp_path):
        """Hostile coexistence through the store: serial == --jobs 2."""
        store = obs.RunStore(tmp_path)
        sweep = ParameterSweep(
            base_config=TestbenchConfig(
                rate_mbps=12, psdu_bytes=40,
                scenario=Scenario.preset("hostile-coexistence"),
            ),
            parameter="snr_db",
            values=[10.0, 14.0, 18.0],
            n_packets=2,
            seed=7,
        )
        serial = sweep.run(jobs=1, store=store, run_name="serial")
        pooled = sweep.run(jobs=2, store=store, run_name="pooled")
        assert list(serial.bers) == list(pooled.bers)
        runs = {e.name: e.run_id for e in store.list_runs()}
        a = store.load_run(runs["serial"])
        b = store.load_run(runs["pooled"])
        assert a.kpis == b.kpis
        assert a.curves["serial"] == b.curves["pooled"]
        manifest = a.manifest["config"]["base_config"]
        assert manifest["scenario"]["name"] == "hostile-coexistence"
