"""End-to-end tests of the `repro qa` harness and its CLI/store wiring."""

import pytest

from repro.cli import main
from repro.obs.store import RunStore
from repro.qa.harness import QaCheck, QaReport, run_qa


@pytest.fixture(scope="module")
def quick_report():
    return run_qa(seed=0, quick=True)


class TestQaReport:
    def test_pass_fail_aggregation(self):
        report = QaReport(
            checks=[
                QaCheck("a", "x", True),
                QaCheck("a", "y", False, "boom"),
                QaCheck("b", "z", True),
            ]
        )
        assert not report.passed
        assert report.n_failed == 1
        assert [c.name for c in report.section("a")] == ["x", "y"]

    def test_kpis_flatten_checks(self):
        report = QaReport(
            checks=[QaCheck("oracle", "ber", True, measured=1.5e-3)]
        )
        kpis = report.kpis()
        assert kpis["qa.passed"] == 1.0
        assert kpis["qa.checks_total"] == 1.0
        assert kpis["qa.oracle.ber.pass"] == 1.0
        assert kpis["qa.oracle.ber.measured"] == pytest.approx(1.5e-3)

    def test_table_renders(self):
        report = QaReport(checks=[QaCheck("a", "x", True, "fine")])
        table = report.as_table()
        assert "PASS" in table and "fine" in table


class TestRunQaQuick:
    def test_everything_passes(self, quick_report):
        failed = [
            f"{c.section}.{c.name}: {c.detail}"
            for c in quick_report.checks
            if not c.passed
        ]
        assert not failed, failed

    def test_all_four_sections_present(self, quick_report):
        sections = {c.section for c in quick_report.checks}
        assert sections == {"conformance", "oracle", "fuzz", "probe"}

    def test_check_census(self, quick_report):
        # 18 conformance + 9 oracle + 4 fuzz + 6 probe; a silently
        # dropped check would weaken the gate without failing anything.
        assert len(quick_report.section("conformance")) == 18
        assert len(quick_report.section("oracle")) == 9
        assert len(quick_report.section("fuzz")) == 4
        assert len(quick_report.section("probe")) == 6

    def test_persists_as_qa_run(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        report = run_qa(seed=0, quick=True, store=store)
        assert report.passed
        runs = store.list_runs()
        assert len(runs) == 1
        assert runs[0].kind == "qa"
        assert runs[0].run_id.startswith("qa-")
        loaded = store.load_run(runs[0].run_id)
        assert loaded.kpis["qa.passed"] == 1.0
        assert loaded.kpis["qa.checks_failed"] == 0.0
        assert "qa_checks" in loaded.tables
        assert loaded.integrity_ok

    def test_deterministic_payload(self, tmp_path):
        # The run id also hashes ambient-session metrics, so compare the
        # QA payload itself: same seed, same checks, same KPI values.
        a = RunStore(tmp_path / "a")
        b = RunStore(tmp_path / "b")
        run_qa(seed=0, quick=True, store=a)
        run_qa(seed=0, quick=True, store=b)
        ra = a.load_run(a.list_runs()[0].run_id)
        rb = b.load_run(b.list_runs()[0].run_id)
        assert ra.kpis == rb.kpis
        assert ra.tables == rb.tables


class TestQaCli:
    def test_qa_quick_exit_zero(self, capsys):
        code = main(["qa", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "conformance" in out

    def test_qa_store_persists_and_self_diffs(self, tmp_path, capsys):
        store = tmp_path / "runs"
        code = main(["qa", "--quick", "--store", str(store)])
        err = capsys.readouterr().err
        assert code == 0
        assert "run stored: qa-" in err
        code = main(["runs", "diff", "latest", "latest", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 over tolerance" in out


class TestQaResilience:
    def test_resilience_section_passes(self):
        from repro.qa.harness import run_resilience_checks

        checks = run_resilience_checks(seed=0)
        assert {c.name for c in checks} == {
            "retry_determinism", "broken_pool_fallback",
            "task_timeout", "resume_determinism",
        }
        assert all(c.passed for c in checks), [
            c.name for c in checks if not c.passed
        ]
        assert all(c.section == "resilience" for c in checks)

    def test_faults_off_by_default(self, quick_report):
        assert not quick_report.section("resilience")
