"""Tests for the SigCalc waveform toolkit (repro.flow.sigcalc)."""

import numpy as np
import pytest

from repro.flow.sigcalc import (
    estimate_tone,
    render_constellation,
    render_waveform,
    waveform_stats,
)
from repro.rf.signal import Signal, dbm_to_watts


def _tone(power_dbm, f, fs=20e6, n=4096):
    t = np.arange(n) / fs
    return Signal(
        np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * f * t), fs
    )


class TestStats:
    def test_constant_waveform(self):
        s = Signal(np.full(100, 2.0 + 0j), 20e6)
        stats = waveform_stats(s)
        assert stats.rms == pytest.approx(2.0)
        assert stats.peak == pytest.approx(2.0)
        assert stats.crest_factor_db == pytest.approx(0.0)
        assert stats.dc_fraction == pytest.approx(1.0)

    def test_tone_crest_factor(self):
        stats = waveform_stats(_tone(0.0, 1e6))
        assert stats.crest_factor_db == pytest.approx(0.0, abs=0.01)
        assert stats.mean_power_dbm == pytest.approx(0.0, abs=0.01)
        assert stats.dc_fraction < 0.05

    def test_ofdm_crest_factor(self):
        from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu

        wave = Transmitter(TxConfig(rate_mbps=24)).transmit(
            random_psdu(200, np.random.default_rng(0))
        )
        stats = waveform_stats(Signal(wave, 20e6))
        assert 5.0 < stats.crest_factor_db < 15.0  # OFDM PAPR regime

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            waveform_stats(Signal(np.zeros(0, complex), 20e6))


class TestToneEstimation:
    @pytest.mark.parametrize("f", [-7.3e6, -1e6, 0.4e6, 5.12345e6])
    def test_frequency_accuracy(self, f):
        freq, power = estimate_tone(_tone(-10.0, f))
        assert freq == pytest.approx(f, abs=2e3)  # sub-bin accuracy

    def test_power_accuracy(self):
        _, power = estimate_tone(_tone(-23.0, 3e6))
        assert power == pytest.approx(-23.0, abs=0.3)

    def test_strongest_line_wins(self):
        a = _tone(-10.0, 2e6)
        b = _tone(-30.0, -5e6)
        combined = a.with_samples(a.samples + b.samples)
        freq, _ = estimate_tone(combined)
        assert freq == pytest.approx(2e6, abs=5e3)

    def test_short_waveform_rejected(self):
        with pytest.raises(ValueError):
            estimate_tone(Signal(np.zeros(4, complex), 20e6))


class TestRendering:
    def test_waveform_render(self):
        text = render_waveform(_tone(0.0, 1e6), title="probe n1")
        assert "probe n1" in text
        assert "time [us]" in text

    def test_waveform_render_empty(self):
        assert "empty" in render_waveform(Signal(np.zeros(0, complex), 20e6))

    def test_constellation_has_axes_and_points(self):
        from repro.dsp.modulation import Mapper

        bits = np.random.default_rng(0).integers(0, 2, 400, dtype=np.uint8)
        symbols = Mapper("QAM16").map(bits)
        text = render_constellation(symbols)
        assert "*" in text
        assert "+" in text  # axis crossing

    def test_constellation_empty(self):
        assert "no symbols" in render_constellation(np.zeros(0, complex))
