"""Tests for the persistent run store (repro.obs.store)."""

import json

import pytest

from repro.core.sweep import ParameterSweep
from repro.core.testbench import TestbenchConfig
from repro.obs.store import (
    RunStore,
    contribute,
    current_writer,
    set_current_writer,
)


def _write_run(store, kind="demo", name="demo", ber=1e-3):
    writer = store.create(kind=kind, name=name, seed=7,
                          config={"n": 3}, command="pytest")
    writer.add_kpis({"ber": ber, "per": 10 * ber})
    writer.add_table("summary", "a | b\n1 | 2")
    writer.add_curve("ber", "snr_db", [0.0, 5.0, 10.0],
                     [0.1, ber, ber / 10])
    return writer.finalize(tracer=None, registry=None)


class TestRoundTrip:
    def test_store_and_load(self, tmp_path):
        store = RunStore(tmp_path)
        record = _write_run(store)
        loaded = store.load_run(record.run_id)
        assert loaded.run_id == record.run_id
        assert loaded.kpis == {"ber": 1e-3, "per": 1e-2}
        assert loaded.tables["summary"] == "a | b\n1 | 2"
        assert loaded.curves["ber"]["x"] == [0.0, 5.0, 10.0]
        assert loaded.manifest["seed"] == 7
        assert loaded.integrity_ok

    def test_run_id_is_content_addressed(self, tmp_path):
        a = _write_run(RunStore(tmp_path / "a"))
        b = _write_run(RunStore(tmp_path / "b"))
        c = _write_run(RunStore(tmp_path / "c"), ber=2e-3)
        assert a.run_id == b.run_id  # same content, same id
        assert a.run_id != c.run_id
        assert a.run_id.startswith("demo-")

    def test_tamper_breaks_integrity(self, tmp_path):
        store = RunStore(tmp_path)
        record = _write_run(store)
        kpis_path = record.path / "kpis.json"
        kpis = json.loads(kpis_path.read_text())
        kpis["ber"] = 0.5
        kpis_path.write_text(json.dumps(kpis))
        assert not store.load_run(record.run_id).integrity_ok

    def test_finalize_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        writer = store.create(kind="demo", name="x")
        writer.add_kpis({"v": 1.0})
        first = writer.finalize(tracer=None, registry=None)
        second = writer.finalize(tracer=None, registry=None)
        assert first is second
        assert len(store.list_runs()) == 1

    def test_duplicate_names_dedupe(self, tmp_path):
        writer = RunStore(tmp_path).create(kind="demo", name="x")
        assert writer.add_table("t", "one") == "t"
        assert writer.add_table("t", "two") == "t-2"
        assert writer.add_curve("c", "x", [1.0], [0.1]) == "c"
        assert writer.add_curve("c", "x", [1.0], [0.2]) == "c-2"


class TestResolve:
    def test_latest_and_prefix(self, tmp_path):
        store = RunStore(tmp_path)
        first = _write_run(store, ber=1e-3)
        second = _write_run(store, ber=2e-3)
        assert store.resolve("latest") == second.run_id
        assert store.resolve(first.run_id[:9]) == first.run_id
        assert store.latest().run_id == second.run_id

    def test_unknown_token_raises(self, tmp_path):
        store = RunStore(tmp_path)
        _write_run(store)
        with pytest.raises(KeyError):
            store.resolve("zzz-doesnotexist")

    def test_list_filters_by_kind(self, tmp_path):
        store = RunStore(tmp_path)
        _write_run(store, kind="sweep")
        _write_run(store, kind="bench", ber=5e-3)
        assert [e.kind for e in store.list_runs(kind="bench")] == ["bench"]
        assert len(store.list_runs()) == 2


class TestGc:
    def test_keeps_newest(self, tmp_path):
        store = RunStore(tmp_path)
        old = _write_run(store, ber=1e-3)
        new = _write_run(store, ber=2e-3)
        removed = store.gc(keep=1)
        assert removed == [old.run_id]
        assert [e.run_id for e in store.list_runs()] == [new.run_id]
        assert not old.path.exists()

    def test_dry_run_removes_nothing(self, tmp_path):
        store = RunStore(tmp_path)
        old = _write_run(store, ber=1e-3)
        _write_run(store, ber=2e-3)
        removed = store.gc(keep=1, dry_run=True)
        assert removed == [old.run_id]
        assert len(store.list_runs()) == 2
        assert old.path.exists()

    def test_leaves_foreign_files_alone(self, tmp_path):
        store = RunStore(tmp_path)
        _write_run(store)
        foreign = tmp_path / "notes.txt"
        foreign.write_text("keep me")
        store.gc(keep=0)
        assert foreign.exists()
        assert store.list_runs() == []


class TestContribute:
    def test_explicit_store_gets_own_run(self, tmp_path):
        store = RunStore(tmp_path)
        record = contribute(store, kind="sweep", name="s", seed=1,
                            kpis={"ber": 0.1})
        assert record is not None
        assert store.load_run(record.run_id).kpis == {"ber": 0.1}

    def test_ambient_writer_collects_prefixed_kpis(self, tmp_path):
        store = RunStore(tmp_path)
        writer = store.create(kind="cli", name="session")
        set_current_writer(writer)
        try:
            result = contribute(None, kind="sweep", name="s",
                                kpis={"ber": 0.1},
                                tables={"s": "tbl"})
        finally:
            set_current_writer(None)
        assert result is None  # ambient contribution does not finalize
        assert writer.kpis == {"s.ber": 0.1}
        assert writer.tables == {"s": "tbl"}
        assert current_writer() is None

    def test_no_store_no_ambient_is_a_noop(self):
        assert contribute(None, kind="sweep", name="s",
                          kpis={"ber": 0.1}) is None


class TestSweepIntegration:
    def test_sweep_persists_curve_and_kpis(self, tmp_path):
        store = RunStore(tmp_path)
        sweep = ParameterSweep(
            TestbenchConfig(rate_mbps=24, psdu_bytes=40, snr_db=30.0),
            "snr_db", [25.0, 30.0], n_packets=1,
        )
        result = sweep.run(store=store, run_name="mini")
        record = store.latest()
        assert record.manifest["seed"] == 0
        assert record.curves["mini"]["x"] == [25.0, 30.0]
        assert record.kpis["ber_min"] == min(p.measurement.ber
                                             for p in result.points)
        assert "mini" in record.tables
        assert record.integrity_ok
