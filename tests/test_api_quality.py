"""API quality gates: documentation and export hygiene of the package."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    """Every public class and function defined by a module has a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: undocumented public items {undocumented}"
    )


@pytest.mark.parametrize(
    "package",
    ["repro.dsp", "repro.rf", "repro.channel", "repro.spectrum",
     "repro.flow", "repro.core"],
)
def test_all_exports_resolve(package):
    """Everything in __all__ actually exists on the package."""
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


def test_no_accidental_wildcard_shadowing():
    """Top-level subpackage names stay importable under repro."""
    for sub in ("dsp", "rf", "channel", "spectrum", "flow", "core"):
        importlib.import_module(f"repro.{sub}")
