"""Tests for the complex-envelope signal container (repro.rf.signal)."""

import numpy as np
import pytest

from repro.rf.signal import (
    Signal,
    db_to_amplitude,
    db_to_linear,
    dbm_to_watts,
    watts_to_dbm,
)


class TestConversions:
    def test_dbm_to_watts(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert dbm_to_watts(-30.0) == pytest.approx(1e-6)

    def test_watts_to_dbm(self):
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)
        assert watts_to_dbm(0.0) == -np.inf

    def test_roundtrip(self):
        for dbm in (-88.0, -23.0, 16.0):
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_db_helpers(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_amplitude(20.0) == pytest.approx(10.0)


class TestSignal:
    def test_power_measurement(self):
        s = Signal(np.full(100, np.sqrt(2e-3), dtype=complex), 20e6)
        assert s.power_watts() == pytest.approx(2e-3)
        assert s.power_dbm() == pytest.approx(3.01, abs=0.01)

    def test_scaled_to_dbm(self):
        rng = np.random.default_rng(0)
        s = Signal(rng.standard_normal(1000) + 1j * rng.standard_normal(1000), 20e6)
        scaled = s.scaled_to_dbm(-40.0)
        assert scaled.power_dbm() == pytest.approx(-40.0, abs=1e-9)

    def test_scale_zero_signal_rejected(self):
        with pytest.raises(ValueError):
            Signal(np.zeros(10, complex), 20e6).scaled_to_dbm(0.0)

    def test_papr(self):
        x = np.ones(100, dtype=complex)
        x[0] = 2.0
        s = Signal(x, 20e6)
        assert s.papr_db() == pytest.approx(
            10 * np.log10(4.0 / np.mean(np.abs(x) ** 2)), abs=1e-9
        )

    def test_duration_and_time(self):
        s = Signal(np.zeros(200, complex), 20e6)
        assert s.duration == pytest.approx(1e-5)
        assert s.time[1] - s.time[0] == pytest.approx(5e-8)

    def test_frequency_shift(self):
        fs = 80e6
        t = np.arange(4096) / fs
        tone = Signal(np.exp(2j * np.pi * 5e6 * t), fs)
        shifted = tone.shifted(10e6)
        spectrum = np.abs(np.fft.fft(shifted.samples))
        peak_bin = np.argmax(spectrum)
        freq = np.fft.fftfreq(4096, 1 / fs)[peak_bin]
        assert freq == pytest.approx(15e6, abs=fs / 4096)

    def test_shift_preserves_power(self):
        rng = np.random.default_rng(1)
        s = Signal(rng.standard_normal(512) + 1j * rng.standard_normal(512), 80e6)
        assert s.shifted(7e6).power_watts() == pytest.approx(s.power_watts())

    def test_delay(self):
        s = Signal(np.ones(10, complex), 20e6)
        d = s.delayed(5)
        assert d.samples.size == 15
        assert not d.samples[:5].any()

    def test_add_pads_shorter(self):
        a = Signal(np.ones(5, complex), 20e6)
        b = Signal(np.ones(8, complex), 20e6)
        c = a + b
        assert c.samples.size == 8
        assert np.allclose(c.samples[:5], 2.0)
        assert np.allclose(c.samples[5:], 1.0)

    def test_add_rate_mismatch_rejected(self):
        a = Signal(np.ones(5, complex), 20e6)
        b = Signal(np.ones(5, complex), 40e6)
        with pytest.raises(ValueError):
            a + b

    def test_add_carrier_mismatch_rejected(self):
        a = Signal(np.ones(5, complex), 20e6, 5.2e9)
        b = Signal(np.ones(5, complex), 20e6, 2.4e9)
        with pytest.raises(ValueError):
            a + b

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            Signal(np.zeros(4, complex), 0.0)

    def test_empty_signal_power(self):
        s = Signal(np.zeros(0, complex), 20e6)
        assert s.power_watts() == 0.0
        assert s.power_dbm() == -np.inf
