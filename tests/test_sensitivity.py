"""Tests for sensitivity/ACR measurements (repro.core.sensitivity)."""

import numpy as np
import pytest

from repro.core.sensitivity import (
    STANDARD_ADJACENT_REJECTION_DB,
    STANDARD_SENSITIVITY_DBM,
    find_sensitivity,
    measure_adjacent_rejection,
    measure_per,
)
from repro.core.testbench import TestbenchConfig
from repro.rf.frontend import FrontendConfig


class TestStandardTables:
    def test_all_rates_present(self):
        assert sorted(STANDARD_SENSITIVITY_DBM) == [6, 9, 12, 18, 24, 36, 48, 54]
        assert sorted(STANDARD_ADJACENT_REJECTION_DB) == sorted(
            STANDARD_SENSITIVITY_DBM
        )

    def test_monotone_with_rate(self):
        rates = sorted(STANDARD_SENSITIVITY_DBM)
        sens = [STANDARD_SENSITIVITY_DBM[r] for r in rates]
        rej = [STANDARD_ADJACENT_REJECTION_DB[r] for r in rates]
        assert sens == sorted(sens)  # higher rates need more power
        assert rej == sorted(rej, reverse=True)  # and tolerate less ACI

    def test_key_values(self):
        assert STANDARD_SENSITIVITY_DBM[6] == -82.0
        assert STANDARD_SENSITIVITY_DBM[54] == -65.0
        assert STANDARD_ADJACENT_REJECTION_DB[6] == 16.0
        assert STANDARD_ADJACENT_REJECTION_DB[54] == -1.0


class TestMeasurePer:
    def test_strong_signal_zero_per(self):
        cfg = TestbenchConfig(
            rate_mbps=24, psdu_bytes=60, thermal_floor=True,
            frontend=FrontendConfig(), input_level_dbm=-55.0,
        )
        assert measure_per(cfg, n_packets=3, seed=0) == 0.0

    def test_weak_signal_high_per(self):
        cfg = TestbenchConfig(
            rate_mbps=54, psdu_bytes=60, thermal_floor=True,
            frontend=FrontendConfig(), input_level_dbm=-90.0,
        )
        assert measure_per(cfg, n_packets=3, seed=1) > 0.5


class TestSensitivitySearch:
    @pytest.mark.parametrize("rate,start", [(6, -86.0), (54, -70.0)])
    def test_meets_standard(self, rate, start):
        result = find_sensitivity(
            rate, n_packets=5, psdu_bytes=100, start_dbm=start, seed=2
        )
        assert result.meets_standard, result
        assert result.margin_db > 5.0  # NF 3.5 vs the assumed 10 dB
        assert result.per_at_sensitivity <= 0.1

    def test_rate_ordering(self):
        low = find_sensitivity(6, n_packets=4, psdu_bytes=80,
                               start_dbm=-86.0, seed=3)
        high = find_sensitivity(54, n_packets=4, psdu_bytes=80,
                                start_dbm=-70.0, seed=3)
        assert low.sensitivity_dbm < high.sensitivity_dbm

    def test_unknown_rate(self):
        with pytest.raises(ValueError):
            find_sensitivity(11)

    def test_broken_receiver_raises(self):
        # A front end compressed into uselessness never meets the PER
        # target at the start level.
        fe = FrontendConfig(lna_p1db_dbm=-90.0)
        with pytest.raises(RuntimeError):
            find_sensitivity(
                54, frontend=fe, n_packets=3, psdu_bytes=60,
                start_dbm=-60.0, floor_dbm=-62.0, seed=4,
            )


class TestAdjacentRejection:
    def test_meets_standard_at_24mbps(self):
        result = measure_adjacent_rejection(
            24, sensitivity_dbm=-74.0, n_packets=4, psdu_bytes=80,
            step_db=4.0, max_excess_db=24.0, seed=5,
        )
        assert result.offset_channels == 1
        assert result.standard_requirement_db == 8.0
        assert result.meets_standard

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            measure_adjacent_rejection(
                24, sensitivity_dbm=-74.0, offset_channels=2,
                frontend=FrontendConfig(),  # only 80 MHz
            )

    def test_alternate_channel_no_requirement(self):
        result = measure_adjacent_rejection(
            24,
            sensitivity_dbm=-74.0,
            frontend=FrontendConfig(sample_rate_in=120e6),
            offset_channels=2,
            n_packets=3,
            psdu_bytes=60,
            step_db=8.0,
            max_excess_db=16.0,
            seed=6,
        )
        assert result.standard_requirement_db is None
        assert result.meets_standard
