"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.convcode import ConvolutionalEncoder, depuncture, puncture
from repro.dsp.interleaver import deinterleave, interleave
from repro.dsp.modulation import BITS_PER_SYMBOL, Demapper, Mapper
from repro.dsp.ofdm import OfdmDemodulator, OfdmModulator
from repro.dsp.params import RATES
from repro.dsp.scrambler import Scrambler
from repro.dsp.viterbi import ViterbiDecoder
from repro.flow.netlist import frontend_to_netlist, netlist_to_config
from repro.rf.adc import Adc
from repro.rf.frontend import FrontendConfig
from repro.rf.nonlinearity import CubicNonlinearity
from repro.rf.signal import Signal, dbm_to_watts

bits_arrays = st.integers(1, 400).flatmap(
    lambda n: st.builds(
        lambda seed: np.random.default_rng(seed).integers(
            0, 2, n, dtype=np.uint8
        ),
        st.integers(0, 2**31),
    )
)


class TestScramblerProperties:
    @given(seed=st.integers(1, 127), bits=bits_arrays)
    @settings(max_examples=50, deadline=None)
    def test_involution(self, seed, bits):
        s1 = Scrambler(seed).process(bits)
        s2 = Scrambler(seed).process(s1)
        assert np.array_equal(s2, bits)

    @given(seed=st.integers(1, 127))
    @settings(max_examples=30, deadline=None)
    def test_sequence_period_divides_127(self, seed):
        seq = Scrambler(seed).sequence(254)
        assert np.array_equal(seq[:127], seq[127:])


class TestCodecProperties:
    @given(bits=bits_arrays, rate_key=st.sampled_from([(1, 2), (2, 3), (3, 4)]))
    @settings(max_examples=30, deadline=None)
    def test_encode_puncture_decode_roundtrip(self, bits, rate_key):
        data = np.concatenate([bits, np.zeros(6, dtype=np.uint8)])
        coded = ConvolutionalEncoder().encode(data)
        period = {(1, 2): 2, (2, 3): 4, (3, 4): 6}[rate_key]
        usable = coded.size - coded.size % period
        kept = puncture(coded[:usable], rate_key)
        llr = depuncture((1.0 - 2.0 * kept) * 8.0, rate_key)
        decoded = ViterbiDecoder(terminated=False).decode_soft(llr)
        n = decoded.size
        assert np.array_equal(decoded, data[:n])

    @given(bits=bits_arrays)
    @settings(max_examples=30, deadline=None)
    def test_encoder_is_rate_half(self, bits):
        assert ConvolutionalEncoder().encode(bits).size == 2 * bits.size


class TestInterleaverProperties:
    @given(
        mbps=st.sampled_from(sorted(RATES)),
        seed=st.integers(0, 2**31),
        n_sym=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, mbps, seed, n_sym):
        r = RATES[mbps]
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n_sym * r.n_cbps, dtype=np.uint8)
        out = deinterleave(
            interleave(bits, r.n_cbps, r.n_bpsc), r.n_cbps, r.n_bpsc
        )
        assert np.array_equal(out, bits)


class TestModulationProperties:
    @given(
        mod=st.sampled_from(sorted(BITS_PER_SYMBOL)),
        seed=st.integers(0, 2**31),
        n=st.integers(1, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_map_demap_identity(self, mod, seed, n):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n * BITS_PER_SYMBOL[mod], dtype=np.uint8)
        assert np.array_equal(
            Demapper(mod).demap_hard(Mapper(mod).map(bits)), bits
        )

    @given(
        mod=st.sampled_from(sorted(BITS_PER_SYMBOL)),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_soft_hard_agree_on_clean_symbols(self, mod, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 24 * BITS_PER_SYMBOL[mod], dtype=np.uint8)
        symbols = Mapper(mod).map(bits)
        llr = Demapper(mod).demap_soft(symbols)
        assert np.array_equal((llr < 0).astype(np.uint8), bits)


class TestOfdmProperties:
    @given(seed=st.integers(0, 2**31), n_sym=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_modulate_demodulate_unitary(self, seed, n_sym):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n_sym, 48)) + 1j * rng.standard_normal(
            (n_sym, 48)
        )
        demod = OfdmDemodulator()
        rows = demod.demodulate(OfdmModulator().modulate(data))
        assert np.allclose(demod.extract_data(rows), data, atol=1e-10)


class TestRareEstimatorProperties:
    @given(
        nu=st.floats(1.05, 4.0),
        n=st.integers(2_000, 20_000),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_weights_sum_to_n_in_expectation(self, nu, n, seed):
        # E_q[w] = 1 per draw, so sum(w) concentrates on n with the
        # known per-sample weight variance nu^2/(2 nu - 1) - 1.
        rng = np.random.default_rng(seed)
        z2 = 0.5 * (rng.standard_normal(n) ** 2 + rng.standard_normal(n) ** 2)
        w = np.exp(np.log(nu) - (nu - 1.0) * z2)
        var_w = nu**2 / (2.0 * nu - 1.0) - 1.0
        assert abs(w.sum() - n) <= 6.0 * np.sqrt(var_w * n) + 1e-9

    @given(
        seed=st.integers(0, 2**31),
        n_trials=st.integers(1, 60),
        scale=st.floats(0.0, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_ber_stays_in_unit_interval(
        self, seed, n_trials, scale
    ):
        from repro.perf.rare import WeightedBerState

        rng = np.random.default_rng(seed)
        state = WeightedBerState()
        for _ in range(n_trials):
            state.add(
                float(rng.integers(0, 9)), 8, float(rng.normal(0.0, scale))
            )
        assert 0.0 <= state.ber <= 1.0
        assert 0.0 <= state.per_weighted <= 1.0
        assert 0.0 < state.ess <= state.trials + 1e-9
        low, high = state.confidence(z=4.5)
        assert 0.0 <= low <= high <= 1.0

    @given(
        seed=st.integers(0, 2**31),
        sizes=st.lists(st.integers(1, 12), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_state_merge_is_order_independent(self, seed, sizes):
        from repro.perf.rare import WeightedBerState

        rng = np.random.default_rng(seed)
        chunks = []
        for size in sizes:
            c = WeightedBerState()
            for _ in range(size):
                c.add(
                    float(rng.integers(0, 3)), 6, float(rng.normal(0, 0.5))
                )
            chunks.append(c)
        folded = WeightedBerState()
        for c in chunks:
            folded = folded.merge(c)
        reversed_fold = WeightedBerState()
        for c in reversed(chunks):
            reversed_fold = reversed_fold.merge(c)
        assert folded.trials == reversed_fold.trials
        assert folded.error_trials == reversed_fold.error_trials
        assert folded.sum_wp == pytest.approx(
            reversed_fold.sum_wp, rel=1e-9, abs=1e-12
        )
        assert folded.ber == pytest.approx(
            reversed_fold.ber, rel=1e-9, abs=1e-12
        )
        assert folded.ess == pytest.approx(
            reversed_fold.ess, rel=1e-9, abs=1e-12
        )
        assert folded.max_w == reversed_fold.max_w


class TestRfProperties:
    @given(
        gain=st.floats(-10.0, 30.0),
        iip3=st.floats(-30.0, 20.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_cubic_never_expands(self, gain, iip3, seed):
        # Output amplitude never exceeds the linear-gain projection.
        nl = CubicNonlinearity(gain_db=gain, iip3_dbm=iip3)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        x *= np.sqrt(dbm_to_watts(iip3)) / 2
        y = nl.apply(x)
        linear = 10 ** (gain / 20.0) * np.abs(x)
        assert (np.abs(y) <= linear + 1e-12).all()

    @given(
        bits=st.integers(2, 12),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_adc_output_bounded(self, bits, seed):
        adc = Adc(n_bits=bits, full_scale_dbm=0.0)
        rng = np.random.default_rng(seed)
        x = 10 * adc.clip_amplitude * (
            rng.standard_normal(128) + 1j * rng.standard_normal(128)
        )
        out = adc.process(Signal(x, 20e6))
        assert (np.abs(out.samples.real) <= adc.clip_amplitude).all()
        assert (np.abs(out.samples.imag) <= adc.clip_amplitude).all()

    @given(
        p1db=st.floats(-40.0, 0.0),
        edge=st.floats(2e6, 9.9e6),
        ppm=st.floats(-20.0, 20.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_netlist_roundtrip_random_configs(self, p1db, edge, ppm):
        cfg = FrontendConfig(
            lna_p1db_dbm=p1db, lpf_edge_hz=edge, lo_error_ppm=ppm
        )
        back = netlist_to_config(frontend_to_netlist(cfg))
        assert back.lna_p1db_dbm == pytest.approx(p1db, rel=1e-9)
        assert back.lpf_edge_hz == pytest.approx(edge, rel=1e-9)
        assert back.lo_error_ppm == pytest.approx(ppm, rel=1e-9)
