"""Golden-vector regression anchors.

Fixed inputs with pinned expected outputs: any accidental change to the
scrambler, encoder, interleaver, mapper or OFDM framing flips these
checksums even when the loopback tests still pass (encoder and decoder
changing together would otherwise mask a standard-compliance break).
"""

import hashlib

import numpy as np
import pytest

from repro.dsp.convcode import ConvolutionalEncoder, puncture
from repro.dsp.interleaver import interleave
from repro.dsp.modulation import Mapper
from repro.dsp.params import RATES
from repro.dsp.preamble import (
    encode_signal_field,
    long_training_field,
    short_training_field,
)
from repro.dsp.scrambler import Scrambler
from repro.dsp.transmitter import Transmitter, TxConfig


def _digest_bits(bits) -> str:
    return hashlib.sha256(np.asarray(bits, dtype=np.uint8).tobytes()).hexdigest()[:16]


def _digest_complex(samples, decimals=9) -> str:
    rounded = np.round(np.asarray(samples, dtype=complex), decimals)
    return hashlib.sha256(rounded.tobytes()).hexdigest()[:16]


FIXED_PSDU = np.arange(64, dtype=np.uint8)


class TestGoldenBitstreams:
    def test_scrambler_sequence(self):
        seq = Scrambler(0b1011101).sequence(127)
        assert _digest_bits(seq) == "7a7ff2eb17c4972e"

    def test_encoder_output(self):
        bits = (np.arange(96) * 7 % 2).astype(np.uint8)
        coded = ConvolutionalEncoder().encode(bits)
        assert _digest_bits(coded) == "e033149b5f320f53"

    def test_punctured_34(self):
        bits = (np.arange(96) * 7 % 2).astype(np.uint8)
        kept = puncture(ConvolutionalEncoder().encode(bits), (3, 4))
        assert _digest_bits(kept) == "a3bb3e2a4114cdc9"

    def test_interleaved_54mbps(self):
        r = RATES[54]
        bits = (np.arange(r.n_cbps) % 2).astype(np.uint8)
        out = interleave(bits, r.n_cbps, r.n_bpsc)
        assert _digest_bits(out) == "b9d49a828deb3807"


class TestGoldenWaveforms:
    def test_short_training_field(self):
        assert _digest_complex(short_training_field()) == "d829b5467358ef36"

    def test_long_training_field(self):
        assert _digest_complex(long_training_field()) == "5573250b3ed6dcd7"

    def test_signal_field_24mbps_100bytes(self):
        wave = encode_signal_field(RATES[24], 100)
        assert _digest_complex(wave) == "ca8a60de98eb3e34"

    def test_full_ppdu_6mbps(self):
        tx = Transmitter(TxConfig(rate_mbps=6, scrambler_seed=0b1011101))
        wave = tx.transmit(FIXED_PSDU)
        assert wave.size == 320 + 80 + 23 * 80
        assert _digest_complex(wave) == "69d40ec827af7938"

    def test_full_ppdu_54mbps(self):
        tx = Transmitter(TxConfig(rate_mbps=54, scrambler_seed=0b1011101))
        wave = tx.transmit(FIXED_PSDU)
        assert _digest_complex(wave) == "8fecb82dc0c7ebb7"
