"""Golden-vector regression anchors.

Fixed inputs with pinned expected outputs: any accidental change to the
scrambler, encoder, interleaver, mapper or OFDM framing flips these
checksums even when the loopback tests still pass (encoder and decoder
changing together would otherwise mask a standard-compliance break).

The per-rate PPDU corpus is sourced from :mod:`repro.qa.vectors` so the
pytest suite and the ``repro qa`` conformance harness share one frozen
set of digests.
"""

import numpy as np
import pytest

from repro.dsp.convcode import ConvolutionalEncoder, puncture
from repro.dsp.interleaver import interleave
from repro.dsp.params import RATES
from repro.dsp.preamble import (
    encode_signal_field,
    long_training_field,
    short_training_field,
)
from repro.dsp.scrambler import Scrambler
from repro.dsp.transmitter import Transmitter, TxConfig
from repro.qa import vectors as vec

pytestmark = pytest.mark.conformance

ALL_RATES = sorted(vec.GOLDEN_RATE_DIGESTS)


class TestGoldenBitstreams:
    def test_scrambler_sequence(self):
        seq = Scrambler(0b1011101).sequence(127)
        assert vec.digest_bits(seq) == "7a7ff2eb17c4972e"

    def test_encoder_output(self):
        bits = (np.arange(96) * 7 % 2).astype(np.uint8)
        coded = ConvolutionalEncoder().encode(bits)
        assert vec.digest_bits(coded) == "e033149b5f320f53"

    def test_punctured_34(self):
        bits = (np.arange(96) * 7 % 2).astype(np.uint8)
        kept = puncture(ConvolutionalEncoder().encode(bits), (3, 4))
        assert vec.digest_bits(kept) == "a3bb3e2a4114cdc9"

    def test_interleaved_54mbps(self):
        r = RATES[54]
        bits = (np.arange(r.n_cbps) % 2).astype(np.uint8)
        out = interleave(bits, r.n_cbps, r.n_bpsc)
        assert vec.digest_bits(out) == "b9d49a828deb3807"


class TestGoldenWaveforms:
    def test_short_training_field(self):
        assert vec.digest_samples(short_training_field()) == "d829b5467358ef36"

    def test_long_training_field(self):
        assert vec.digest_samples(long_training_field()) == "5573250b3ed6dcd7"

    def test_signal_field_24mbps_100bytes(self):
        wave = encode_signal_field(RATES[24], 100)
        assert vec.digest_samples(wave) == "ca8a60de98eb3e34"


class TestGoldenPpduAllRates:
    """Full 64-byte-PSDU PPDU pinned for every 802.11a rate."""

    @pytest.mark.parametrize("rate_mbps", ALL_RATES)
    def test_data_bits_digest(self, rate_mbps):
        tx = Transmitter(TxConfig(rate_mbps=rate_mbps))
        bits = tx.data_field_bits(vec.fixed_psdu())
        golden = vec.GOLDEN_RATE_DIGESTS[rate_mbps]
        assert vec.digest_bits(bits) == golden["data_bits"]

    @pytest.mark.parametrize("rate_mbps", ALL_RATES)
    def test_ppdu_digest(self, rate_mbps):
        tx = Transmitter(TxConfig(rate_mbps=rate_mbps))
        wave = tx.transmit(vec.fixed_psdu())
        golden = vec.GOLDEN_RATE_DIGESTS[rate_mbps]
        assert wave.size == golden["n_samples"]
        assert vec.digest_samples(wave) == golden["ppdu"]

    def test_all_eight_rates_covered(self):
        assert ALL_RATES == sorted(RATES)
        assert len(ALL_RATES) == 8
