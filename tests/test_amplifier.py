"""Tests for amplifier models (repro.rf.amplifier)."""

import numpy as np
import pytest

from repro.rf.amplifier import AgcAmplifier, Amplifier
from repro.rf.noise import thermal_noise_power
from repro.rf.signal import Signal, dbm_to_watts


def _tone(power_dbm, n=4096, fs=80e6, f=1e6):
    t = np.arange(n) / fs
    return Signal(
        np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * f * t), fs
    )


class TestAmplifier:
    def test_linear_gain(self):
        amp = Amplifier(gain_db=13.0)
        out = amp.process(_tone(-40.0))
        assert out.power_dbm() == pytest.approx(-27.0, abs=0.01)

    def test_spw_style_compresses(self):
        amp = Amplifier.spw_style(gain_db=10.0, noise_figure_db=0.0, p1db_dbm=-20.0)
        small = amp.process(_tone(-60.0))
        at_p1 = amp.process(_tone(-20.0))
        small_gain = small.power_dbm() + 60.0
        p1_gain = at_p1.power_dbm() + 20.0
        assert small_gain - p1_gain == pytest.approx(1.0, abs=0.05)

    def test_spectre_style_has_am_pm(self):
        amp = Amplifier.spectre_style(
            gain_db=10.0, noise_figure_db=0.0, iip3_dbm=0.0, am_pm_deg=8.0
        )
        small = amp.process(_tone(-60.0))
        large = amp.process(_tone(-5.0))
        phase_small = np.angle(small.samples[0] / _tone(-60.0).samples[0])
        phase_large = np.angle(large.samples[0] / _tone(-5.0).samples[0])
        assert abs(phase_large - phase_small) > np.deg2rad(1.0)

    def test_noise_requires_rng(self):
        amp = Amplifier(gain_db=10.0, noise_figure_db=5.0)
        with pytest.raises(ValueError):
            amp.process(_tone(-40.0))

    def test_noise_figure_raises_floor(self):
        rng = np.random.default_rng(0)
        fs = 80e6
        amp = Amplifier(gain_db=20.0, noise_figure_db=6.0)
        silence = Signal(np.zeros(65536, complex), fs)
        out = amp.process(silence, rng)
        expected = (10 ** 0.6 - 1.0) * thermal_noise_power(fs) * 100.0
        assert out.power_watts() == pytest.approx(expected, rel=0.05)

    def test_noise_disabled_switch(self):
        amp = Amplifier(gain_db=20.0, noise_figure_db=6.0, noise_enabled=False)
        out = amp.process(Signal(np.zeros(1024, complex), 80e6))
        assert not out.samples.any()


class TestAgc:
    def test_levels_to_target(self):
        agc = AgcAmplifier(target_dbm=-10.0)
        out = agc.process(_tone(-47.0))
        assert out.power_dbm() == pytest.approx(-10.0, abs=0.01)
        assert agc.last_gain_db == pytest.approx(37.0, abs=0.01)

    def test_gain_clamped_high(self):
        agc = AgcAmplifier(target_dbm=-10.0, max_gain_db=30.0)
        out = agc.process(_tone(-80.0))
        assert agc.last_gain_db == 30.0
        assert out.power_dbm() == pytest.approx(-50.0, abs=0.01)

    def test_gain_clamped_low(self):
        agc = AgcAmplifier(target_dbm=-10.0, min_gain_db=-5.0)
        out = agc.process(_tone(10.0))
        assert agc.last_gain_db == -5.0

    def test_step_quantization(self):
        agc = AgcAmplifier(target_dbm=-10.0, step_db=2.0)
        agc.process(_tone(-47.3))
        assert agc.last_gain_db % 2.0 == pytest.approx(0.0, abs=1e-9)
        assert abs(agc.last_gain_db - 37.3) <= 1.0

    def test_silence_gets_max_gain(self):
        agc = AgcAmplifier(target_dbm=-10.0, max_gain_db=55.0)
        agc.process(Signal(np.zeros(256, complex), 20e6))
        assert agc.last_gain_db == 55.0

    def test_noise_requires_rng(self):
        agc = AgcAmplifier(noise_figure_db=4.0)
        with pytest.raises(ValueError):
            agc.process(_tone(-30.0))
