"""Tests for repro.perf resilience — the error paths of the flow.

The contracts under test: a task failure is captured structurally (not
propagated raw out of ``future.result()``), retries replay the same
seeds so a retried run is bit-identical to a clean one, a dying worker
degrades the region to in-process execution, and an interrupted
checkpointing sweep/campaign resumes into a run the regression gate
diffs clean against an uninterrupted one.
"""

import time

import numpy as np
import pytest

from repro import obs, perf
from repro.core.campaign import VerificationCampaign
from repro.core.sweep import (
    ParameterSweep,
    _load_memoized_point,
    _point_memo_key,
    _store_memoized_point,
)
from repro.core.testbench import TestbenchConfig
from repro.obs import RegressionConfig, RunStore, compare_runs
from repro.perf import (
    FaultSpec,
    InjectedFault,
    TaskError,
    TaskFailedError,
    TaskTimeoutError,
    fault_plan,
    parse_fault_spec,
)


# -- picklable task functions (module level for the process pool) ------
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"boom {x}")
    return x * x


def _sleep_then_square(payload):
    x, delay = payload
    time.sleep(delay)
    return x * x


def _draw(seed):
    return float(perf.stream(seed).random())


def _fast_config(**overrides):
    base = dict(rate_mbps=6, psdu_bytes=20, snr_db=10.0)
    base.update(overrides)
    return TestbenchConfig(**base)


def _small_sweep(seed=7):
    return ParameterSweep(
        _fast_config(), "snr_db", [0.0, 2.0, 4.0, 6.0],
        n_packets=1, seed=seed,
    )


# -- structured failure capture ----------------------------------------
class TestTaskErrorCapture:
    def test_raise_mode_surfaces_task_failed_error(self):
        with pytest.raises(TaskFailedError) as excinfo:
            perf.parallel_map(_fail_on_three, range(5), jobs=1)
        error = excinfo.value.error
        assert error.index == 3
        assert error.exc_type == "ValueError"
        assert error.message == "boom 3"
        assert "ValueError: boom 3" in error.traceback
        assert error.worker_pid > 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_capture_mode_returns_error_in_place(self, jobs):
        out = perf.parallel_map(
            _fail_on_three, range(5), jobs=jobs, on_error="capture"
        )
        assert [type(r).__name__ for r in out] == [
            "int", "int", "int", "TaskError", "int"
        ]
        assert len(out.failures) == 1
        assert out.failures[0].index == 3

    def test_exception_mid_window_drains_in_flight(self):
        # Task 3 of 8 fails with a 2-worker pool: later tasks are
        # already dispatched; the region must not leak their futures
        # and must still emit its metrics.
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with pytest.raises(TaskFailedError):
                perf.parallel_map(
                    _fail_on_three, range(8), jobs=2, stage="mid"
                )
        finally:
            obs.set_registry(previous)
        assert registry.counter("parallel_task_failures").value(
            stage="mid"
        ) == 1.0
        assert registry.gauge("parallel_efficiency").value(
            stage="mid", jobs=2, requested=2
        ) > 0.0

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ValueError):
            perf.parallel_map(_square, range(3), on_error="ignore")


# -- retries ------------------------------------------------------------
class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_then_succeed(self, jobs):
        with fault_plan(parse_fault_spec("r/fail:1@0,r/fail:3@0")):
            out = perf.parallel_map(
                _square, range(5), jobs=jobs, stage="r", retries=1
            )
        assert list(out) == [0, 1, 4, 9, 16]
        assert out.retries == 2
        assert not out.failures

    def test_retries_exhausted_raises(self):
        with fault_plan(parse_fault_spec("r/fail:2")):  # every attempt
            with pytest.raises(TaskFailedError) as excinfo:
                perf.parallel_map(
                    _square, range(4), jobs=1, stage="r", retries=2
                )
        assert excinfo.value.error.attempt == 2

    def test_retry_replays_same_payload_by_default(self):
        seeds = perf.spawn(123, 4)
        clean = perf.parallel_map(_draw, seeds, jobs=1, stage="d")
        with fault_plan(parse_fault_spec("d/fail:2@0")):
            retried = perf.parallel_map(
                _draw, seeds, jobs=1, stage="d", retries=1
            )
        assert list(retried) == list(clean)

    def test_reseed_hook_gives_fresh_attempt_stream(self):
        seeds = perf.spawn(123, 3)
        clean = perf.parallel_map(_draw, seeds, jobs=1, stage="d")
        with fault_plan(parse_fault_spec("d/fail:1@0")):
            reseeded = perf.parallel_map(
                _draw, seeds, jobs=1, stage="d", retries=1,
                reseed=perf.attempt_seed,
            )
        assert reseeded[0] == clean[0] and reseeded[2] == clean[2]
        assert reseeded[1] != clean[1]
        # ... and the attempt stream itself is reproducible.
        with fault_plan(parse_fault_spec("d/fail:1@0")):
            again = perf.parallel_map(
                _draw, seeds, jobs=1, stage="d", retries=1,
                reseed=perf.attempt_seed,
            )
        assert list(again) == list(reseeded)

    def test_ambient_retries_default(self):
        previous = perf.set_default_retries(1)
        try:
            with fault_plan(parse_fault_spec("a/fail:0@0")):
                out = perf.parallel_map(
                    _square, range(2), jobs=1, stage="a"
                )
        finally:
            perf.set_default_retries(previous)
        assert list(out) == [0, 1]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            perf.parallel_map(_square, range(2), retries=-1)
        with pytest.raises(ValueError):
            perf.set_default_retries(-2)

    def test_retry_telemetry(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with fault_plan(parse_fault_spec("t/fail:1@0")):
                perf.parallel_map(
                    _square, range(3), jobs=1, stage="t", retries=1
                )
        finally:
            obs.set_registry(previous)
        assert registry.counter("parallel_task_retries").value(
            stage="t"
        ) == 1.0
        assert registry.counter("parallel_task_errors").value(
            stage="t", exc_type="InjectedFault"
        ) == 1.0
        assert registry.counter("parallel_task_failures").value(
            stage="t"
        ) == 0.0


# -- attempt seeds ------------------------------------------------------
class TestAttemptSeeds:
    def test_attempt_zero_is_the_seed_itself(self):
        child = perf.spawn(9, 3)[1]
        assert perf.attempt_seed(child, 0) is child

    def test_attempts_are_distinct_and_reproducible(self):
        child = perf.spawn(9, 3)[1]
        draws = {
            perf.stream(perf.attempt_seed(child, k)).random()
            for k in range(4)
        }
        assert len(draws) == 4
        again = perf.stream(perf.attempt_seed(child, 2)).random()
        assert again == perf.stream(perf.attempt_seed(child, 2)).random()

    def test_attempt_stream_disjoint_from_spawn_children(self):
        # The retry branch must never collide with an in-band child.
        root = perf.as_seed_sequence(9)
        children = perf.spawn(root, 100)
        attempt = perf.attempt_seed(root, 1)
        assert all(
            attempt.spawn_key != c.spawn_key for c in children
        )

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            perf.attempt_seed(0, -1)

    def test_retry_scheme_recorded_in_manifest(self):
        manifest = obs.build_manifest(seed=1)
        assert manifest.as_dict()["retry_seeding"] == "retry-spawn-v1"
        assert perf.RETRY_SCHEME == "retry-spawn-v1"


# -- timeouts -----------------------------------------------------------
class TestTaskTimeout:
    def test_pooled_timeout_becomes_task_error(self):
        out = perf.parallel_map(
            _sleep_then_square, [(0, 0.0), (1, 5.0), (2, 0.0)],
            jobs=2, stage="to", task_timeout=0.25, on_error="capture",
        )
        errors = [r for r in out if isinstance(r, TaskError)]
        assert len(errors) == 1
        assert errors[0].index == 1
        assert errors[0].exc_type == "TaskTimeoutError"

    def test_serial_timeout_enforced(self):
        with pytest.raises(TaskFailedError) as excinfo:
            perf.parallel_map(
                _sleep_then_square, [(0, 0.0), (1, 5.0)],
                jobs=1, task_timeout=0.25,
            )
        assert excinfo.value.error.exc_type == "TaskTimeoutError"

    def test_guard_noop_without_budget(self):
        with perf.task_timeout_guard(None):
            pass
        with perf.task_timeout_guard(0):
            pass

    def test_guard_raises_and_restores(self):
        import signal

        with pytest.raises(TaskTimeoutError):
            with perf.task_timeout_guard(0.05):
                time.sleep(1.0)
        # The itimer must be disarmed after the guard exits.
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            perf.parallel_map(_square, range(2), task_timeout=-1.0)


# -- broken pool fallback ----------------------------------------------
class TestBrokenPool:
    def test_sigkill_worker_degrades_to_serial(self):
        with fault_plan(parse_fault_spec("bp/kill:2@0")):
            out = perf.parallel_map(
                _square, range(6), jobs=2, stage="bp", retries=1
            )
        assert list(out) == [0, 1, 4, 9, 16, 25]
        assert out.pool_broken

    def test_broken_pool_metric_emitted(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with fault_plan(parse_fault_spec("bp/kill:0@0")):
                perf.parallel_map(
                    _square, range(4), jobs=2, stage="bp", retries=1
                )
        finally:
            obs.set_registry(previous)
        assert registry.counter("parallel_pool_broken").value(
            stage="bp"
        ) == 1.0

    def test_sweep_survives_killed_worker(self):
        sweep = _small_sweep()
        clean = sweep.run(jobs=1)
        with fault_plan(parse_fault_spec("sweep/kill:1@0")):
            survived = sweep.run(jobs=2, retries=1)
        assert list(survived.bers) == list(clean.bers)


# -- early-stop drain accounting (satellite bugfix) --------------------
class TestEarlyStopDrain:
    def test_discarded_work_counted(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            out = perf.parallel_map(
                _square, range(12), jobs=2, stage="es",
                stop=lambda i, r: i >= 1,
            )
        finally:
            obs.set_registry(previous)
        assert out.stopped
        assert len(out) == 2
        # In-flight tasks past the stop point were drained, not leaked;
        # whatever ran to completion is visible as discarded work.
        assert out.discarded == registry.counter(
            "parallel_tasks_discarded"
        ).value(stage="es")
        assert registry.counter("parallel_tasks").value(stage="es") == 2.0

    def test_serial_early_stop_discards_nothing(self):
        out = perf.parallel_map(
            _square, range(8), jobs=1, stage="es",
            stop=lambda i, r: i >= 2,
        )
        assert out.stopped and out.discarded == 0


# -- requested vs effective jobs (satellite bugfix) --------------------
class TestJobsReporting:
    def test_single_task_keeps_requested_jobs(self):
        out = perf.parallel_map(_square, [5], jobs=4)
        assert out.jobs == 1
        assert out.jobs_requested == 4

    def test_gauge_carries_both_labels(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            perf.parallel_map(_square, [5], jobs=4, stage="one")
        finally:
            obs.set_registry(previous)
        assert registry.gauge("parallel_efficiency").value(
            stage="one", jobs=1, requested=4
        ) == 1.0

    def test_multi_task_requested_equals_effective(self):
        out = perf.parallel_map(_square, range(4), jobs=2)
        assert out.jobs == 2
        assert out.jobs_requested == 2


# -- fault injection ----------------------------------------------------
class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = parse_fault_spec(
            "sweep/fail:1@0,kill:2,ber/delay:0@1=0.25,sweep/abort:3"
        )
        assert [s.action for s in plan.specs] == [
            "fail", "kill", "delay", "abort"
        ]
        assert plan.specs[0].stage == "sweep"
        assert plan.specs[0].task == 1 and plan.specs[0].attempt == 0
        assert plan.specs[1].stage is None and plan.specs[1].attempt is None
        assert plan.specs[2].delay_s == 0.25
        assert plan.should_abort("sweep", 3) is not None
        assert plan.should_abort("ber", 3) is None

    def test_parse_wildcard_task(self):
        plan = parse_fault_spec("fail:*@1")
        assert plan.specs[0].task is None
        assert plan.specs[0].matches("any", 7, 1)
        assert not plan.specs[0].matches("any", 7, 0)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_fault_spec("sweep/explode:1")
        with pytest.raises(ValueError):
            parse_fault_spec("nonsense")

    def test_stage_scoping(self):
        plan = parse_fault_spec("sweep/fail:0")
        with fault_plan(plan):
            out = perf.parallel_map(_square, range(2), jobs=1, stage="ber")
        assert list(out) == [0, 1]  # wrong stage: fault never fires

    def test_kill_outside_worker_degrades_to_fail(self):
        # An in-process region must never SIGKILL the parent.
        with fault_plan(parse_fault_spec("k/kill:0@0")):
            out = perf.parallel_map(
                _square, range(2), jobs=1, stage="k", retries=1
            )
        assert list(out) == [0, 1]

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(action="explode")


# -- memo prefix-collision regression (satellite bugfix) ---------------
class TestMemoCollision:
    def test_prefix_collision_misses_instead_of_serving(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        config = _fast_config()
        child = perf.spawn(4, 2)[0]
        key = _point_memo_key(config, 3, child, 0, None)
        # A colliding key: same 12-hex prefix, different full key — as
        # produced by a different measurement setup in a large store.
        impostor = key[:12] + ("0" * (len(key) - 12))
        assert impostor != key
        from repro.core.metrics import BerMeasurement

        wrong = BerMeasurement(
            ber=0.5, per=1.0, bit_errors=80, bits_total=160,
            packets=1, packets_lost=1, ci95=(0.4, 0.6),
        )
        _store_memoized_point(store, impostor, config, wrong)
        # Before the fix this returned the impostor's measurement.
        assert _load_memoized_point(store, key) is None
        assert _load_memoized_point(store, impostor).ber == 0.5

    def test_sweep_reruns_collided_point(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        sweep = ParameterSweep(
            _fast_config(), "snr_db", [6.0], n_packets=1, seed=4,
        )
        clean = sweep.run(jobs=1)
        config = sweep._configured(6.0)
        key = _point_memo_key(config, 1, perf.spawn(4, 1)[0], 0, None)
        impostor = key[:12] + ("f" * (len(key) - 12))
        from repro.core.metrics import BerMeasurement

        wrong = BerMeasurement(
            ber=0.77, per=1.0, bit_errors=1, bits_total=2,
            packets=1, packets_lost=1, ci95=(0.0, 1.0),
        )
        _store_memoized_point(store, impostor, config, wrong)
        result = sweep.run(store=store, memoize=True)
        assert result.points[0].measurement.ber == clean.points[0].measurement.ber
        assert result.points[0].measurement.ber != 0.77


# -- checkpoint / resume ------------------------------------------------
class TestSweepResume:
    def test_interrupt_then_resume_bit_identical(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        sweep = _small_sweep()
        clean = sweep.run(jobs=1)
        with pytest.raises(InjectedFault):
            with fault_plan(parse_fault_spec("sweep/abort:2")):
                sweep.run(jobs=1, store=store, resume=True)
        # The completed prefix was checkpointed before the crash.
        assert len(store.list_runs(kind="point")) == 2
        resumed = sweep.run(jobs=1, store=store, resume=True)
        assert list(resumed.bers) == list(clean.bers)
        assert len(store.list_runs(kind="point")) == 4

    def test_resume_uses_cached_prefix(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        sweep = _small_sweep()
        with pytest.raises(InjectedFault):
            with fault_plan(parse_fault_spec("sweep/abort:2")):
                sweep.run(jobs=1, store=store, resume=True)

        events = []

        class Recorder:
            def on_event(self, event):
                events.append(event)

        sweep.run(jobs=1, store=store, resume=True, progress=Recorder())
        cached = [e for e in events if e.data.get("memoized")]
        assert len(cached) == 2

    def test_resumed_run_diffs_clean_against_uninterrupted(self, tmp_path):
        # The acceptance oracle: `repro runs diff` on the stored runs.
        store = RunStore(tmp_path / "runs")
        sweep = _small_sweep()
        sweep.run(jobs=1, store=store)
        baseline_id = store.list_runs(kind="sweep")[0].run_id
        with pytest.raises(InjectedFault):
            with fault_plan(parse_fault_spec("sweep/abort:2")):
                sweep.run(jobs=1, store=store, resume=True)
        sweep.run(jobs=1, store=store, resume=True)
        # Content addressing may collapse the two runs into one id —
        # itself proof of bit-identity; diff whatever was stored.
        resumed_id = store.list_runs(kind="sweep")[0].run_id
        verdict = compare_runs(
            store.load_run(baseline_id), store.load_run(resumed_id),
            RegressionConfig(compare_timing=False, compare_metrics=False),
        )
        assert verdict.passed, verdict.summary()

    def test_resume_without_store_runs_everything(self):
        sweep = _small_sweep()
        clean = sweep.run(jobs=1)
        resumed = sweep.run(jobs=1, resume=True)  # no store anywhere
        assert list(resumed.bers) == list(clean.bers)

    def test_ambient_resume_default(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        sweep = _small_sweep()
        previous = perf.set_default_resume(True)
        try:
            sweep.run(jobs=1, store=store)
        finally:
            perf.set_default_resume(previous)
        assert len(store.list_runs(kind="point")) == 4


class TestCampaignResume:
    ONLY = ["phy_loopback", "transmit_mask"]

    def test_interrupt_then_resume_same_verdicts(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        campaign = VerificationCampaign(depth="quick", seed=3)
        clean = campaign.run(only=self.ONLY, jobs=1)
        with pytest.raises(InjectedFault):
            with fault_plan(parse_fault_spec("campaign/abort:1")):
                campaign.run(
                    only=self.ONLY, jobs=1, store=store, resume=True
                )
        assert len(store.list_runs(kind="check")) == 1
        resumed = campaign.run(
            only=self.ONLY, jobs=1, store=store, resume=True
        )
        assert [r.passed for r in resumed.results] == [
            r.passed for r in clean.results
        ]
        assert [r.name for r in resumed.results] == [
            r.name for r in clean.results
        ]

    def test_checkpoint_respects_seed(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        VerificationCampaign(depth="quick", seed=3).run(
            only=["phy_loopback"], jobs=1, store=store, resume=True
        )
        assert len(store.list_runs(kind="check")) == 1
        VerificationCampaign(depth="quick", seed=4).run(
            only=["phy_loopback"], jobs=1, store=store, resume=True
        )
        # Different seed -> different checkpoint key -> fresh run.
        assert len(store.list_runs(kind="check")) == 2


# -- retried runs keep KPIs identical ----------------------------------
class TestRetriedSweepKpis:
    def test_faulted_sweep_matches_clean_kpis(self, tmp_path):
        # The acceptance scenario: 2 of the points fail once, one retry
        # allowed; the stored run's KPIs must match the clean baseline
        # exactly (zero deltas).
        store = RunStore(tmp_path / "runs")
        sweep = _small_sweep()
        sweep.run(jobs=1, store=store)
        clean_id = store.list_runs(kind="sweep")[0].run_id
        with fault_plan(parse_fault_spec("sweep/fail:1@0,sweep/fail:3@0")):
            sweep.run(jobs=2, retries=1, store=store)
        faulted_id = store.list_runs(kind="sweep")[0].run_id
        clean = store.load_run(clean_id)
        faulted = store.load_run(faulted_id)
        assert clean.kpis == faulted.kpis
        verdict = compare_runs(
            clean, faulted,
            RegressionConfig(compare_timing=False, compare_metrics=False),
        )
        assert verdict.passed, verdict.summary()

    def test_measure_ber_retry_passthrough(self):
        from repro.core.testbench import WlanTestbench

        bench = WlanTestbench(_fast_config())
        clean = bench.measure_ber(n_packets=2, seed=11)
        with fault_plan(parse_fault_spec("ber/fail:0@0")):
            retried = bench.measure_ber(n_packets=2, seed=11, retries=1)
        assert retried.ber == clean.ber
        assert retried.bit_errors == clean.bit_errors
