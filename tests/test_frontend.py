"""Tests for the double-conversion receiver (repro.rf.frontend)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.rf.frontend import (
    DoubleConversionReceiver,
    FrontendConfig,
    LO_FREQUENCY,
    ideal_frontend_config,
    spectre_library_config,
    spw_library_config,
)
from repro.rf.signal import Signal, dbm_to_watts


def _rf_tone(power_dbm, f=1e6, fs=80e6, n=16384):
    t = np.arange(n) / fs
    return Signal(
        np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * f * t),
        fs,
        5.2e9,
    )


class TestConfig:
    def test_lo_is_half_carrier(self):
        assert LO_FREQUENCY == pytest.approx(5.2e9 / 2.0)

    def test_decimation(self):
        assert FrontendConfig().decimation == 4
        assert FrontendConfig(sample_rate_in=120e6).decimation == 6

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            FrontendConfig(sample_rate_in=50e6)

    def test_library_configs(self):
        assert spw_library_config().lna_model == "cubic"
        assert spectre_library_config().lna_model == "rapp"
        assert spectre_library_config().lna_am_pm_deg > 0
        ideal = ideal_frontend_config()
        assert not ideal.noise_enabled
        assert ideal.adc_bits is None

    def test_overrides(self):
        cfg = spw_library_config(lna_p1db_dbm=-30.0)
        assert cfg.lna_p1db_dbm == -30.0

    def test_unknown_lna_model(self):
        with pytest.raises(ValueError):
            DoubleConversionReceiver(FrontendConfig(lna_model="tanh"))


class TestChain:
    def test_stage_names_in_order(self):
        fe = DoubleConversionReceiver(ideal_frontend_config())
        stages = fe.stage_outputs(_rf_tone(-50.0), np.random.default_rng(0))
        names = [name for name, _ in stages]
        assert names == [
            "input", "lna", "mixer1", "mixer2", "hpf", "lpf", "agc", "adc",
        ]

    def test_output_rate_and_carrier(self):
        fe = DoubleConversionReceiver(ideal_frontend_config())
        out = fe.process(_rf_tone(-50.0), np.random.default_rng(0))
        assert out.sample_rate == pytest.approx(20e6)
        assert out.carrier_frequency == pytest.approx(0.0)

    def test_agc_levels_output(self):
        fe = DoubleConversionReceiver(ideal_frontend_config())
        for level in (-80.0, -60.0, -40.0):
            out = fe.process(_rf_tone(level), np.random.default_rng(0))
            assert out.power_dbm() == pytest.approx(
                fe.config.agc_target_dbm, abs=1.5
            )

    def test_wrong_input_rate_rejected(self):
        fe = DoubleConversionReceiver(FrontendConfig())
        with pytest.raises(ValueError):
            fe.process(Signal(np.zeros(100, complex), 20e6, 5.2e9))

    def test_tone_survives_translation(self):
        # A 1 MHz offset RF tone appears at 1 MHz in baseband.
        fe = DoubleConversionReceiver(ideal_frontend_config())
        out = fe.process(_rf_tone(-50.0, f=1e6), np.random.default_rng(0))
        x = out.samples[out.samples.size // 2 :]
        n = x.size
        t = np.arange(n) / 20e6
        corr = abs(np.dot(x, np.exp(-2j * np.pi * 1e6 * t)) / n)
        assert corr**2 > 0.5 * out.power_watts()

    def test_dc_offset_blocked_by_hpf(self):
        cfg = ideal_frontend_config(dc_offset_dbm=-30.0)
        fe = DoubleConversionReceiver(cfg)
        silence = Signal(np.zeros(1 << 15, complex), 80e6, 5.2e9)
        stages = dict(fe.stage_outputs(silence, np.random.default_rng(0)))
        mixer2_dc = np.abs(np.mean(stages["mixer2"].samples))
        hpf_dc = np.abs(np.mean(stages["hpf"].samples[8192:]))
        assert mixer2_dc > 1e-4
        assert hpf_dc < mixer2_dc / 30.0

    def test_noise_toggle(self):
        cfg = FrontendConfig()
        fe = DoubleConversionReceiver(cfg)
        fe.set_noise_enabled(False)
        silence = Signal(np.zeros(4096, complex), 80e6, 5.2e9)
        out = fe.process(silence)
        # AGC amplifies whatever is left; with noise off and no DC, the
        # only content is the (filtered) DC offset.
        fe2 = DoubleConversionReceiver(
            replace(cfg, dc_offset_dbm=None, flicker_power_dbm=None)
        )
        fe2.set_noise_enabled(False)
        out2 = fe2.process(silence)
        assert np.mean(np.abs(out2.samples) ** 2) < 1e-12

    def test_lo_error_appears_as_cfo(self):
        cfg = ideal_frontend_config(lo_error_ppm=5.0)  # 2 x 13 kHz
        fe = DoubleConversionReceiver(cfg)
        out = fe.process(_rf_tone(-50.0, f=0.0, n=32768), np.random.default_rng(0))
        x = out.samples[2000:]
        phase = np.unwrap(np.angle(x))
        slope = (phase[-1] - phase[0]) / ((x.size - 1) / 20e6)
        # Both mixers share the LO: total offset is 2 * 13 kHz = 26 kHz.
        assert slope / (2 * np.pi) == pytest.approx(-26e3, rel=0.05)

    def test_compression_with_hot_input(self):
        cfg = ideal_frontend_config(lna_p1db_dbm=-30.0)
        fe = DoubleConversionReceiver(cfg)
        small = fe.process(_rf_tone(-60.0), np.random.default_rng(0))
        hot_in = _rf_tone(-20.0)
        hot = fe.process(hot_in, np.random.default_rng(0))
        # AGC masks absolute levels; verify through stage outputs instead.
        stages = dict(fe.stage_outputs(hot_in, np.random.default_rng(0)))
        gain = stages["lna"].power_dbm() - hot_in.power_dbm()
        assert gain < cfg.lna_gain_db - 3.0  # deep compression
