"""Tests for the netlist hand-off (repro.flow.netlist)."""

import numpy as np
import pytest

from repro.flow.netlist import (
    CompiledDesign,
    NetlistCompiler,
    NetlistError,
    frontend_to_netlist,
    netlist_to_config,
    parse_netlist,
)
from repro.rf.frontend import (
    FrontendConfig,
    ideal_frontend_config,
    spectre_library_config,
)


class TestSerialization:
    def test_roundtrip_default(self):
        cfg = FrontendConfig()
        assert netlist_to_config(frontend_to_netlist(cfg)) == cfg

    def test_roundtrip_modified(self):
        cfg = FrontendConfig(
            lna_p1db_dbm=-27.5,
            lpf_edge_hz=9.25e6,
            lo_error_ppm=12.0,
            iq_phase_deg=2.0,
            sample_rate_in=120e6,
        )
        assert netlist_to_config(frontend_to_netlist(cfg)) == cfg

    def test_roundtrip_ideal(self):
        # None-valued impairments (dc offset, flicker, adc bits) survive.
        cfg = ideal_frontend_config()
        back = netlist_to_config(frontend_to_netlist(cfg))
        assert back.dc_offset_dbm is None
        assert back.flicker_power_dbm is None
        assert back.adc_bits is None

    def test_roundtrip_spectre_library(self):
        cfg = spectre_library_config()
        back = netlist_to_config(frontend_to_netlist(cfg))
        assert back.lna_model == "rapp"
        assert back.lna_am_pm_deg == cfg.lna_am_pm_deg

    def test_netlist_is_module_shaped(self):
        text = frontend_to_netlist(FrontendConfig())
        assert text.splitlines()[1].startswith("module ")
        assert text.rstrip().endswith("endmodule")


class TestParser:
    def test_parse_instances(self):
        params, instances = parse_netlist(frontend_to_netlist(FrontendConfig()))
        primitives = [p for p, _, _, _ in instances]
        assert primitives == [
            "lna", "lo", "mixer", "quad_mixer", "highpass",
            "chebyshev_lowpass", "agc", "adc",
        ]
        assert params["sample_rate_in"] == pytest.approx(80e6)

    def test_comments_ignored(self):
        text = "// just a comment\n" + frontend_to_netlist(FrontendConfig())
        netlist_to_config(text)  # must not raise

    def test_garbage_line_rejected(self):
        text = frontend_to_netlist(FrontendConfig()).replace(
            "endmodule", "garbage!!\nendmodule"
        )
        with pytest.raises(NetlistError):
            parse_netlist(text)

    def test_unknown_primitive_rejected(self):
        text = frontend_to_netlist(FrontendConfig()).replace(
            "lna #(", "vco_banana #("
        )
        with pytest.raises(NetlistError):
            netlist_to_config(text)

    def test_unknown_parameter_rejected(self):
        text = frontend_to_netlist(FrontendConfig()).replace(
            ".gain_db(16", ".zeta(16"
        )
        with pytest.raises(NetlistError):
            netlist_to_config(text)

    def test_missing_instance_rejected(self):
        lines = [
            l for l in frontend_to_netlist(FrontendConfig()).splitlines()
            if not l.strip().startswith("agc ")
        ]
        with pytest.raises(NetlistError):
            netlist_to_config("\n".join(lines))

    def test_bad_value_rejected(self):
        text = frontend_to_netlist(FrontendConfig()).replace(
            ".gain_db(16)", ".gain_db(banana)"
        )
        with pytest.raises(NetlistError):
            netlist_to_config(text)


class TestCompiler:
    def test_ams_target_warns_about_noise(self):
        design = NetlistCompiler("ams").compile(
            frontend_to_netlist(FrontendConfig())
        )
        assert isinstance(design, CompiledDesign)
        assert design.warnings
        assert "white_noise" in design.warnings[0]
        assert "LNA1" in design.noise_functions_used

    def test_spectre_target_silent(self):
        design = NetlistCompiler("spectre").compile(
            frontend_to_netlist(FrontendConfig())
        )
        assert not design.warnings
        # The functions are still recorded for reporting.
        assert design.noise_functions_used

    def test_noiseless_design_no_warning(self):
        design = NetlistCompiler("ams").compile(
            frontend_to_netlist(ideal_frontend_config())
        )
        assert not design.warnings
        assert not design.noise_functions_used

    def test_flicker_noise_flagged(self):
        design = NetlistCompiler("ams").compile(
            frontend_to_netlist(FrontendConfig())
        )
        assert "flicker_noise" in design.noise_functions_used["MIX2"]

    def test_compiled_frontend_executable(self):
        from repro.rf.signal import Signal

        design = NetlistCompiler("ams").compile(
            frontend_to_netlist(ideal_frontend_config())
        )
        out = design.frontend.process(
            Signal(np.ones(800, complex) * 1e-5, 80e6, 5.2e9),
            np.random.default_rng(0),
        )
        assert out.sample_rate == pytest.approx(20e6)

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            NetlistCompiler("hspice")
