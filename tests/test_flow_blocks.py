"""Tests for the dataflow block library and figure-3 schematic."""

import numpy as np
import pytest

from repro.flow.blocks import (
    AdderBlock,
    AdjacentChannelBlock,
    AwgnChannelBlock,
    BerMeterBlock,
    ReceiverBlock,
    ScaleBlock,
    TransmitterBlock,
    RfFrontendBlock,
    build_figure3_schematic,
)
from repro.flow.dataflow import DataflowEngine, Schematic, SimulationContext
from repro.rf.frontend import FrontendConfig


def _ctx(seed=0):
    return SimulationContext(
        rng=np.random.default_rng(seed), sample_rate=80e6
    )


class TestBasicBlocks:
    def test_transmitter_outputs(self):
        tx = TransmitterBlock(rate_mbps=24, psdu_bytes=40, oversample=2)
        out = tx.work({}, _ctx())
        assert out["bits"].size == 320
        assert out["out"].size > 2 * (320 + 80)
        assert not out["out"][:100].any()  # leading guard

    def test_scale_gain(self):
        blk = ScaleBlock(gain_db=20.0)
        out = blk.work({"in": np.ones(4, complex)}, _ctx())
        assert np.allclose(np.abs(out["out"]), 10.0)

    def test_scale_to_target(self):
        blk = ScaleBlock(target_dbm=-30.0)
        x = 7.0 * np.ones(100, complex)
        out = blk.work({"in": x}, _ctx())
        power_dbm = 10 * np.log10(np.mean(np.abs(out["out"]) ** 2) / 1e-3)
        assert power_dbm == pytest.approx(-30.0, abs=1e-6)

    def test_adder_pads(self):
        blk = AdderBlock()
        out = blk.work(
            {"a": np.ones(3, complex), "b": np.ones(5, complex)}, _ctx()
        )
        assert out["out"].size == 5
        assert np.allclose(out["out"][:3], 2.0)

    def test_adjacent_disabled_noop(self):
        blk = AdjacentChannelBlock(enabled=False)
        x = np.ones(100, complex)
        out = blk.work({"in": x}, _ctx())
        assert np.allclose(out["out"], x)

    def test_adjacent_adds_interferer(self):
        blk = AdjacentChannelBlock(enabled=True, oversample=4)
        x = 1e-4 * np.ones(12000, complex)
        out = blk.work({"in": x}, _ctx(1))
        assert np.mean(np.abs(out["out"]) ** 2) > 3 * np.mean(np.abs(x) ** 2)

    def test_awgn_block_snr(self):
        blk = AwgnChannelBlock(snr_db=20.0, oversample=1)
        x = np.ones(50000, complex)
        out = blk.work({"in": x}, _ctx(2))
        err = out["out"] - x
        snr = 10 * np.log10(1.0 / np.mean(np.abs(err) ** 2))
        assert snr == pytest.approx(20.0, abs=0.3)


class TestFrontendAndReceiverBlocks:
    def test_frontend_param_addressing(self):
        blk = RfFrontendBlock(FrontendConfig())
        blk.set_param("lna_p1db_dbm", -25.0)
        assert blk.get_param("lna_p1db_dbm") == -25.0
        assert blk.config.lna_p1db_dbm == -25.0

    def test_frontend_unknown_param(self):
        blk = RfFrontendBlock(FrontendConfig())
        with pytest.raises(AttributeError):
            blk.set_param("bogus_param", 1.0)

    def test_receiver_decodes_clean_packet(self):
        tx = TransmitterBlock(rate_mbps=12, psdu_bytes=30, oversample=1)
        ctx = _ctx(3)
        tx_out = tx.work({}, ctx)
        rx = ReceiverBlock()
        rx_out = rx.work({"in": tx_out["out"]}, ctx)
        assert np.array_equal(rx_out["bits"], tx_out["bits"])

    def test_receiver_fails_on_noise(self):
        rx = ReceiverBlock()
        ctx = _ctx(4)
        noise = ctx.rng.standard_normal(3000) + 1j * ctx.rng.standard_normal(3000)
        out = rx.work({"in": noise}, ctx)
        assert out["bits"].size == 0


class TestBerMeter:
    def test_counts_errors(self):
        meter = BerMeterBlock()
        ref = np.array([0, 1, 0, 1], dtype=np.uint8)
        rx = np.array([0, 1, 1, 1], dtype=np.uint8)
        out = meter.work({"ref": ref, "rx": rx}, _ctx())
        assert out["ber"][0] == pytest.approx(0.25)

    def test_lost_packet_counts_half(self):
        meter = BerMeterBlock()
        ref = np.zeros(100, dtype=np.uint8)
        out = meter.work({"ref": ref, "rx": np.zeros(0, np.uint8)}, _ctx())
        assert out["ber"][0] == pytest.approx(0.5)
        assert meter.packets_lost == 1

    def test_accumulates_across_runs(self):
        meter = BerMeterBlock()
        ref = np.zeros(10, dtype=np.uint8)
        meter.work({"ref": ref, "rx": ref}, _ctx())
        bad = ref.copy()
        bad[0] = 1
        out = meter.work({"ref": ref, "rx": bad}, _ctx())
        assert meter.packets == 2
        assert out["ber"][0] == pytest.approx(0.05)

    def test_engine_reset_preserves_counts(self):
        meter = BerMeterBlock()
        ref = np.zeros(10, dtype=np.uint8)
        meter.work({"ref": ref, "rx": ref}, _ctx())
        meter.reset()  # engine calls this each run
        assert meter.packets == 1
        meter.reset_counts()
        assert meter.packets == 0


class TestFigure3Schematic:
    def test_clean_decode_through_rf(self):
        sch, meter = build_figure3_schematic(
            rate_mbps=24, psdu_bytes=40, input_level_dbm=-55.0
        )
        engine = DataflowEngine(mode="compiled", seed=11)
        engine.run(sch)
        assert meter.packets == 1
        assert meter.bit_errors == 0

    def test_multi_run_accumulation(self):
        sch, meter = build_figure3_schematic(
            rate_mbps=24, psdu_bytes=30, input_level_dbm=-55.0
        )
        for seed in range(3):
            DataflowEngine(mode="compiled", seed=seed).run(sch)
        assert meter.packets == 3

    def test_sweepable_parameters(self):
        sch, _ = build_figure3_schematic()
        sch.set_block_param("rf_frontend.lna_p1db_dbm", -33.0)
        assert sch.block_param("rf_frontend.lna_p1db_dbm") == -33.0

    def test_probing_rf_ports(self):
        sch, meter = build_figure3_schematic(psdu_bytes=20)
        sch.probe("rf_frontend.out")
        result = DataflowEngine(seed=1).run(sch)
        assert "rf_frontend.out" in result.probes
        assert result.probes["rf_frontend.out"].size > 0
