"""Tests for text rendering (repro.core.reporting)."""

import numpy as np
import pytest

from repro.core.reporting import render_ascii_plot, render_table


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["name", "value"], [["a", "1"], ["longer", "22"]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # equal widths

    def test_header_present(self):
        table = render_table(["x", "BER"], [["1", "0.5"]])
        assert "BER" in table.splitlines()[0]

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "a" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_non_string_cells(self):
        table = render_table(["n"], [[42]])
        assert "42" in table


class TestAsciiPlot:
    def test_contains_points(self):
        plot = render_ascii_plot([0, 1, 2], [0.0, 0.5, 1.0], title="t")
        assert "*" in plot
        assert plot.splitlines()[0] == "t"

    def test_axis_labels(self):
        plot = render_ascii_plot(
            [0, 10], [1, 2], x_label="P1dB", y_label="BER"
        )
        assert "P1dB" in plot
        assert "BER" in plot

    def test_log_scale(self):
        plot = render_ascii_plot(
            [1, 2, 3], [0.5, 1e-3, 0.0], logy=True
        )
        assert "*" in plot

    def test_nan_skipped(self):
        plot = render_ascii_plot([0, 1, 2], [np.nan, 1.0, 2.0])
        assert "*" in plot

    def test_no_data(self):
        assert render_ascii_plot([], []) == "(no data)"

    def test_constant_y(self):
        plot = render_ascii_plot([0, 1], [5.0, 5.0])
        assert "*" in plot
