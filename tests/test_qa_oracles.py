"""Analytic-oracle tests: theory sanity, Monte-Carlo BER, cascade budget."""

import numpy as np
import pytest

from repro.core.metrics import binomial_confidence
from repro.qa import oracles


class TestTheory:
    def test_bpsk_known_point(self):
        # Q(sqrt(2)) at Eb/N0 = 0 dB: the textbook 7.865e-2.
        assert oracles.theoretical_ber("BPSK", 0.0) == pytest.approx(
            0.0786496, rel=1e-4
        )

    def test_qpsk_equals_bpsk_per_bit(self):
        for ebn0 in (0.0, 4.0, 8.0):
            assert oracles.theoretical_ber("QPSK", ebn0) == pytest.approx(
                oracles.theoretical_ber("BPSK", ebn0), rel=1e-12
            )

    def test_monotonic_in_ebn0(self):
        for mod in ("BPSK", "QPSK", "QAM16", "QAM64"):
            bers = [oracles.theoretical_ber(mod, e) for e in range(0, 16, 2)]
            assert all(a > b for a, b in zip(bers, bers[1:]))

    def test_denser_constellations_are_worse(self):
        ebn0 = 8.0
        bpsk = oracles.theoretical_ber("BPSK", ebn0)
        qam16 = oracles.theoretical_ber("QAM16", ebn0)
        qam64 = oracles.theoretical_ber("QAM64", ebn0)
        assert bpsk < qam16 < qam64

    def test_qam16_cho_yoon_known_point(self):
        # Independent numeric evaluation of the Cho-Yoon closed form at
        # Eb/N0 = 10 dB (gamma_b = 10): 16-QAM Gray BER ~ 1.754e-3.
        assert oracles.theoretical_ber("QAM16", 10.0) == pytest.approx(
            1.754e-3, rel=5e-3
        )

    def test_unknown_modulation_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            oracles.theoretical_ber("QAM256", 10.0)

    def test_rate_modulation_table_covers_all_rates(self):
        from repro.dsp.params import RATES

        assert sorted(oracles.RATE_MODULATIONS) == sorted(RATES)


class TestBinomialConfidence:
    def test_contains_point_estimate(self):
        low, high = binomial_confidence(37, 1000)
        assert low < 0.037 < high
        assert 0.0 <= low and high <= 1.0

    def test_zero_errors(self):
        low, high = binomial_confidence(0, 1000)
        assert low == 0.0
        assert 0.0 < high < 0.05

    def test_interval_shrinks_with_trials(self):
        low1, high1 = binomial_confidence(10, 100)
        low2, high2 = binomial_confidence(1000, 10_000)
        assert (high2 - low2) < (high1 - low1)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            binomial_confidence(0, 0)


class TestUncodedBerOracle:
    def test_bpsk_quick(self):
        check = oracles.check_uncoded_ber("BPSK", 4.0, n_bits=30_000, seed=1)
        assert check.passed, check.detail

    def test_simulation_is_deterministic(self):
        a = oracles.simulate_uncoded_ber("QPSK", 4.0, n_bits=20_000, seed=7)
        b = oracles.simulate_uncoded_ber("QPSK", 4.0, n_bits=20_000, seed=7)
        assert a.errors == b.errors
        assert a.ber == b.ber

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "modulation", sorted(oracles.UNCODED_ORACLE_POINTS)
    )
    def test_all_modulations_match_theory(self, modulation):
        ebn0 = oracles.UNCODED_ORACLE_POINTS[modulation]
        check = oracles.check_uncoded_ber(
            modulation, ebn0, n_bits=200_000, seed=0
        )
        assert check.passed, check.detail
        # The Monte-Carlo point must also be close in ratio, not merely
        # inside the (wide) statistical gate.
        assert check.measured == pytest.approx(check.expected, rel=0.25)

    @pytest.mark.slow
    def test_wrong_theory_is_rejected(self):
        # The gate has power: a point simulated 2 dB off theory fails.
        sim = oracles.simulate_uncoded_ber("BPSK", 6.0, n_bits=200_000, seed=3)
        low, high = binomial_confidence(sim.errors, sim.bits)
        assert not (low <= oracles.theoretical_ber("BPSK", 4.0) <= high)


class TestCodedBerOracle:
    @pytest.mark.slow
    def test_coded_chain_beats_uncoded_bound(self):
        check = oracles.check_coded_ber_bound(seed=0)
        assert check.passed, check.detail


class TestCascadeOracle:
    @pytest.fixture(scope="class")
    def checks(self):
        return {c.name: c for c in oracles.check_cascade_characterization()}

    def test_emits_four_figures(self, checks):
        assert sorted(checks) == [
            "cascade_gain_db",
            "cascade_iip3_dbm",
            "cascade_nf_db",
            "cascade_p1db_dbm",
        ]

    @pytest.mark.parametrize(
        "name,expected,tol",
        [
            ("cascade_gain_db", 30.0, 0.5),
            ("cascade_nf_db", 3.455, 0.75),
            ("cascade_iip3_dbm", -14.405, 1.0),
            ("cascade_p1db_dbm", -24.041, 1.5),
        ],
    )
    def test_characterize_matches_friis_budget(self, checks, name, expected, tol):
        check = checks[name]
        assert check.passed, check.detail
        assert check.expected == pytest.approx(expected, abs=0.05)
        assert abs(check.measured - check.expected) <= tol


class TestCascadeFormulas:
    def test_friis_single_stage(self):
        from repro.rf import StageSpec, friis_noise_figure_db

        stages = [StageSpec("lna", gain_db=20.0, nf_db=2.5)]
        assert friis_noise_figure_db(stages) == pytest.approx(2.5)

    def test_friis_second_stage_suppressed_by_gain(self):
        from repro.rf import StageSpec, friis_noise_figure_db

        stages = [
            StageSpec("lna", gain_db=20.0, nf_db=2.0),
            StageSpec("mixer", gain_db=0.0, nf_db=10.0),
        ]
        total = friis_noise_figure_db(stages)
        assert 2.0 < total < 3.0

    def test_cascade_iip3_dominated_by_last_stage(self):
        from repro.rf import StageSpec, cascade_iip3_dbm

        stages = [
            StageSpec("lna", gain_db=20.0, iip3_dbm=10.0),
            StageSpec("mixer", gain_db=0.0, iip3_dbm=5.0),
        ]
        # Referred to the input, the mixer contributes at 5 - 20 dBm.
        assert cascade_iip3_dbm(stages) == pytest.approx(-15.0, abs=0.2)

    def test_gain_sums(self):
        from repro.rf import StageSpec, cascade_gain_db

        stages = [
            StageSpec("a", gain_db=12.0),
            StageSpec("b", gain_db=-3.0),
            StageSpec("c", gain_db=21.0),
        ]
        assert cascade_gain_db(stages) == pytest.approx(30.0)
