"""Tests for timing/frequency synchronization (repro.dsp.synchronization)."""

import numpy as np
import pytest

from repro.dsp.synchronization import (
    apply_cfo,
    coarse_cfo_estimate,
    detect_packet,
    fine_cfo_estimate,
    symbol_timing,
)
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu


def _packet(rng, pad=300, rate=24, snr_db=20.0, cfo_hz=0.0):
    wave = Transmitter(TxConfig(rate_mbps=rate)).transmit(
        random_psdu(50, rng)
    )
    samples = np.concatenate(
        [np.zeros(pad, complex), wave, np.zeros(100, complex)]
    )
    if cfo_hz:
        samples = apply_cfo(samples, cfo_hz)
    noise_power = 10.0 ** (-snr_db / 10.0)
    samples = samples + np.sqrt(noise_power / 2) * (
        rng.standard_normal(samples.size)
        + 1j * rng.standard_normal(samples.size)
    )
    return samples


class TestPacketDetection:
    def test_detects_near_start(self):
        rng = np.random.default_rng(0)
        samples = _packet(rng, pad=300)
        idx = detect_packet(samples)
        assert idx is not None
        assert 250 <= idx <= 340

    def test_no_packet_in_noise(self):
        rng = np.random.default_rng(1)
        noise = (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        assert detect_packet(noise) is None

    def test_too_short_input(self):
        assert detect_packet(np.zeros(50, complex)) is None

    def test_detection_at_low_snr(self):
        rng = np.random.default_rng(2)
        samples = _packet(rng, pad=400, snr_db=8.0)
        idx = detect_packet(samples)
        assert idx is not None
        assert 300 <= idx <= 460


class TestCfoEstimation:
    @pytest.mark.parametrize("cfo", [-200e3, -50e3, 0.0, 104e3, 400e3])
    def test_coarse_accuracy(self, cfo):
        rng = np.random.default_rng(3)
        samples = _packet(rng, pad=0, snr_db=25.0, cfo_hz=cfo)
        est = coarse_cfo_estimate(samples[:160])
        assert est == pytest.approx(cfo, abs=8e3)

    def test_fine_accuracy(self):
        rng = np.random.default_rng(4)
        cfo = 30e3
        samples = _packet(rng, pad=0, snr_db=25.0, cfo_hz=cfo)
        est = fine_cfo_estimate(samples[160:320])
        assert est == pytest.approx(cfo, abs=2e3)

    def test_two_stage_residual_small(self):
        rng = np.random.default_rng(5)
        cfo = 137e3
        samples = _packet(rng, pad=0, snr_db=25.0, cfo_hz=cfo)
        coarse = coarse_cfo_estimate(samples[:160])
        corrected = apply_cfo(samples, -coarse)
        fine = fine_cfo_estimate(corrected[160:320])
        assert coarse + fine == pytest.approx(cfo, abs=1.5e3)

    def test_apply_cfo_invertible(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        y = apply_cfo(apply_cfo(x, 55e3), -55e3)
        assert np.allclose(x, y)

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            coarse_cfo_estimate(np.zeros(10, complex))
        with pytest.raises(ValueError):
            fine_cfo_estimate(np.zeros(100, complex))


class TestSymbolTiming:
    def test_finds_ltf_guard_start(self):
        rng = np.random.default_rng(7)
        pad = 333
        samples = _packet(rng, pad=pad, snr_db=25.0)
        # LTF guard starts at pad + 160.
        gi = symbol_timing(samples, search_start=pad + 60)
        assert gi is not None
        assert abs(gi - (pad + 160)) <= 2

    def test_search_window_too_small(self):
        assert symbol_timing(np.zeros(30, complex), search_start=0) is None

    def test_timing_with_multipath(self):
        rng = np.random.default_rng(8)
        pad = 200
        samples = _packet(rng, pad=pad, snr_db=25.0)
        channel = np.array([1.0, 0.3 + 0.2j, 0.1])
        faded = np.convolve(samples, channel)[: samples.size]
        gi = symbol_timing(faded, search_start=pad + 60)
        assert gi is not None
        # Multipath may bias timing by a couple of samples; the cyclic
        # prefix absorbs that at the receiver.
        assert abs(gi - (pad + 160)) <= 8
