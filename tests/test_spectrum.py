"""Tests for spectral measurements (repro.spectrum.psd)."""

import numpy as np
import pytest

from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.rf.signal import Signal
from repro.spectrum.psd import (
    adjacent_channel_power_ratio_db,
    band_power_dbm,
    check_transmit_mask,
    occupied_bandwidth_hz,
    transmit_mask_802_11a_dbr,
    welch_psd,
)


def _tone(power_w, f, fs=80e6, n=32768):
    t = np.arange(n) / fs
    return Signal(np.sqrt(power_w) * np.exp(2j * np.pi * f * t), fs)


class TestWelchPsd:
    def test_parseval_total_power(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(65536) + 1j * rng.standard_normal(65536)
        sig = Signal(x, 20e6)
        psd = welch_psd(sig)
        integrate = np.trapezoid if hasattr(np, "trapezoid") else np.trapz
        integrated = integrate(psd.psd_w_hz, psd.freqs_hz)
        assert integrated == pytest.approx(sig.power_watts(), rel=0.05)

    def test_tone_location(self):
        psd = welch_psd(_tone(1e-3, 5e6), nperseg=4096)
        peak = psd.freqs_hz[np.argmax(psd.psd_w_hz)]
        assert peak == pytest.approx(5e6, abs=80e6 / 4096)

    def test_axis_sorted(self):
        psd = welch_psd(_tone(1e-3, 1e6))
        assert (np.diff(psd.freqs_hz) > 0).all()

    def test_absolute_freqs(self):
        sig = _tone(1e-3, 0.0)
        sig.carrier_frequency = 5.2e9
        psd = welch_psd(sig)
        assert psd.absolute_freqs_hz[0] == pytest.approx(
            5.2e9 + psd.freqs_hz[0]
        )

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            welch_psd(Signal(np.zeros(4, complex), 20e6))

    def test_band_power(self):
        psd = welch_psd(_tone(2e-3, 5e6), nperseg=4096)
        inside = psd.band_power_watts(4e6, 6e6)
        outside = psd.band_power_watts(-6e6, -4e6)
        assert inside == pytest.approx(2e-3, rel=0.1)
        assert outside < inside * 1e-6

    def test_band_power_validation(self):
        psd = welch_psd(_tone(1e-3, 1e6))
        with pytest.raises(ValueError):
            psd.band_power_watts(5e6, 1e6)


class TestMeasurements:
    def test_band_power_dbm_helper(self):
        assert band_power_dbm(_tone(1e-3, 2e6), 1e6, 3e6) == pytest.approx(
            0.0, abs=0.5
        )

    def test_occupied_bandwidth_of_ofdm(self):
        rng = np.random.default_rng(1)
        wave = Transmitter(TxConfig(rate_mbps=24)).transmit(
            random_psdu(500, rng)
        )
        bw = occupied_bandwidth_hz(Signal(wave, 20e6), 0.99)
        # 52 carriers x 312.5 kHz = 16.25 MHz nominal.
        assert 14e6 < bw < 18.5e6

    def test_occupied_bandwidth_validation(self):
        with pytest.raises(ValueError):
            occupied_bandwidth_hz(_tone(1e-3, 0.0), 1.5)

    def test_acpr_of_clean_signal(self):
        rng = np.random.default_rng(2)
        wave = Transmitter(TxConfig(rate_mbps=24, oversample=4)).transmit(
            random_psdu(400, rng)
        )
        lower, upper = adjacent_channel_power_ratio_db(Signal(wave, 80e6))
        assert lower < -25.0
        assert upper < -25.0

    def test_acpr_sees_interferer(self):
        rng = np.random.default_rng(3)
        from repro.channel.interference import AdjacentChannelSource

        wave = Transmitter(TxConfig(rate_mbps=24, oversample=4)).transmit(
            random_psdu(200, rng)
        )
        sig = Signal(wave, 80e6)
        interferer = AdjacentChannelSource(excess_db=16.0).generate(
            wave.size, 80e6, sig.power_watts(), rng
        )
        combined = sig.with_samples(sig.samples + interferer.samples)
        _, upper = adjacent_channel_power_ratio_db(combined)
        assert upper > 5.0  # the adjacent channel is ~16 dB hotter


class TestTransmitMask:
    def test_breakpoints(self):
        assert transmit_mask_802_11a_dbr(np.array([0.0]))[0] == 0.0
        assert transmit_mask_802_11a_dbr(np.array([11e6]))[0] == pytest.approx(-20.0)
        assert transmit_mask_802_11a_dbr(np.array([20e6]))[0] == pytest.approx(-28.0)
        assert transmit_mask_802_11a_dbr(np.array([40e6]))[0] == pytest.approx(-40.0)

    def test_symmetric(self):
        m = transmit_mask_802_11a_dbr(np.array([-15e6, 15e6]))
        assert m[0] == m[1]

    def test_shaped_tx_passes(self):
        rng = np.random.default_rng(4)
        wave = Transmitter(TxConfig(rate_mbps=36, oversample=4)).transmit(
            random_psdu(400, rng)
        )
        passes, margin = check_transmit_mask(Signal(wave, 80e6))
        assert passes
        assert margin >= 0.0

    def test_zero_signal_rejected(self):
        with pytest.raises(ValueError):
            check_transmit_mask(Signal(np.zeros(4096, complex), 80e6))
