"""Tests for the dataflow engine (repro.flow.dataflow)."""

import numpy as np
import pytest

from repro.flow.dataflow import (
    Block,
    DataflowEngine,
    FunctionBlock,
    Schematic,
    SchematicError,
)


class ConstSource(Block):
    inputs = ()
    outputs = ("out",)

    def __init__(self, values):
        self.values = np.asarray(values)

    def work(self, inputs, ctx):
        return {"out": self.values}


def _simple_schematic(n=64):
    sch = Schematic("test")
    sch.add("src", ConstSource(np.arange(n, dtype=float)))
    sch.add("double", FunctionBlock(lambda x: 2 * x))
    sch.add("offset", FunctionBlock(lambda x: x + 1))
    sch.connect("src.out", "double.in")
    sch.connect("double.out", "offset.in")
    return sch


class TestSchematic:
    def test_duplicate_block_rejected(self):
        sch = Schematic()
        sch.add("a", ConstSource([1]))
        with pytest.raises(SchematicError):
            sch.add("a", ConstSource([2]))

    def test_unknown_block_in_connect(self):
        sch = Schematic()
        sch.add("a", ConstSource([1]))
        with pytest.raises(SchematicError):
            sch.connect("a.out", "nope.in")

    def test_unknown_port(self):
        sch = Schematic()
        sch.add("a", ConstSource([1]))
        sch.add("b", FunctionBlock(lambda x: x))
        with pytest.raises(SchematicError):
            sch.connect("a.bogus", "b.in")

    def test_double_driver_rejected(self):
        sch = Schematic()
        sch.add("a", ConstSource([1]))
        sch.add("b", ConstSource([2]))
        sch.add("c", FunctionBlock(lambda x: x))
        sch.connect("a.out", "c.in")
        with pytest.raises(SchematicError):
            sch.connect("b.out", "c.in")

    def test_unconnected_input_caught(self):
        sch = Schematic()
        sch.add("f", FunctionBlock(lambda x: x))
        with pytest.raises(SchematicError):
            sch.validate()

    def test_port_defaulting(self):
        sch = Schematic()
        sch.add("a", ConstSource([1.0]))
        sch.add("b", FunctionBlock(lambda x: x))
        sch.connect("a", "b")  # single ports resolve implicitly
        sch.validate()

    def test_topological_order(self):
        sch = _simple_schematic()
        order = sch.topological_order()
        assert order.index("src") < order.index("double") < order.index("offset")

    def test_cycle_detection(self):
        sch = Schematic()
        sch.add("f", FunctionBlock(lambda x: x))
        sch.add("g", FunctionBlock(lambda x: x))
        sch.connect("f.out", "g.in")
        sch.connect("g.out", "f.in")
        with pytest.raises(SchematicError):
            sch.topological_order()

    def test_block_param_access(self):
        sch = Schematic()
        src = ConstSource([1.0])
        sch.add("src", src)
        sch.set_block_param("src.values", np.array([5.0]))
        assert sch.block_param("src.values")[0] == 5.0


class TestCompiledMode:
    def test_pipeline_math(self):
        result = DataflowEngine(mode="compiled").run(_simple_schematic(16))
        assert np.allclose(result.outputs["offset.out"], 2 * np.arange(16) + 1)

    def test_probe_capture(self):
        sch = _simple_schematic(8)
        sch.probe("double.out")
        result = DataflowEngine().run(sch)
        assert "double.out" in result.probes
        assert np.allclose(result.probes["double.out"], 2 * np.arange(8))

    def test_probe_deselection(self):
        sch = _simple_schematic(8)
        sch.probe("double.out")
        sch.probe("double.out", enabled=False)
        result = DataflowEngine().run(sch)
        assert "double.out" not in result.probes

    def test_invocation_count(self):
        result = DataflowEngine().run(_simple_schematic())
        assert result.n_block_invocations == 3

    def test_missing_output_detected(self):
        class Broken(Block):
            inputs = ()
            outputs = ("out",)

            def work(self, inputs, ctx):
                return {}

        sch = Schematic()
        sch.add("b", Broken())
        with pytest.raises(SchematicError):
            DataflowEngine().run(sch)


class TestInterpretedMode:
    def test_matches_compiled_for_stateless(self):
        compiled = DataflowEngine(mode="compiled").run(_simple_schematic(100))
        interp = DataflowEngine(mode="interpreted", frame_size=17).run(
            _simple_schematic(100)
        )
        assert np.allclose(
            compiled.outputs["offset.out"], interp.outputs["offset.out"]
        )

    def test_stateful_filter_across_frames(self):
        from scipy.signal import butter, sosfilt

        from repro.flow.blocks import IirFilterBlock

        sos = butter(3, 0.2, output="sos")
        rng = np.random.default_rng(0)
        x = rng.standard_normal(200)

        sch = Schematic()
        sch.add("src", ConstSource(x))
        sch.add("filt", IirFilterBlock(sos))
        sch.connect("src.out", "filt.in")
        result = DataflowEngine(mode="interpreted", frame_size=23).run(sch)
        expected = sosfilt(sos, x.astype(complex))
        assert np.allclose(result.outputs["filt.out"], expected)

    def test_unsupported_block_rejected(self):
        from repro.flow.blocks import TransmitterBlock

        sch = Schematic()
        sch.add("tx", TransmitterBlock())
        with pytest.raises(SchematicError):
            DataflowEngine(mode="interpreted").run(sch)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            DataflowEngine(mode="jit")

    def test_bad_frame_size(self):
        with pytest.raises(ValueError):
            DataflowEngine(frame_size=0)

    def test_function_block_multi_output(self):
        def split(x):
            return x[: x.size // 2], x[x.size // 2 :]

        sch = Schematic()
        sch.add("src", ConstSource(np.arange(10.0)))
        sch.add("split", FunctionBlock(split, outputs=("lo", "hi")))
        sch.connect("src.out", "split.in")
        result = DataflowEngine().run(sch)
        assert np.allclose(result.outputs["split.lo"], np.arange(5.0))
        assert np.allclose(result.outputs["split.hi"], np.arange(5.0, 10.0))


class TestInstrumentation:
    def test_compiled_block_stats(self):
        result = DataflowEngine(mode="compiled").run(_simple_schematic(64))
        stats = result.block_stats
        assert set(stats) == {"src", "double", "offset"}
        for stat in stats.values():
            assert stat.calls == 1
            assert stat.work_seconds >= 0.0
        assert stats["src"].samples_in == 0
        assert stats["src"].samples_out == 64
        assert stats["double"].samples_in == 64
        assert stats["double"].samples_out == 64

    def test_interpreted_block_stats(self):
        result = DataflowEngine(mode="interpreted", frame_size=16).run(
            _simple_schematic(64)
        )
        stats = result.block_stats
        # The source pre-rolls once; processing blocks run per frame.
        assert stats["src"].calls == 1
        assert stats["src"].samples_out == 64
        assert stats["double"].calls == 4
        assert stats["double"].samples_in == 64
        assert stats["double"].samples_out == 64

    def test_compiled_emits_block_spans(self):
        from repro import obs

        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            DataflowEngine(mode="compiled").run(_simple_schematic(32))
        finally:
            obs.set_tracer(previous)
        block_spans = tracer.spans("block:")
        assert {s.name for s in block_spans} == {
            "block:src", "block:double", "block:offset",
        }
        engine_span = tracer.spans("engine:run")[0]
        for s in block_spans:
            assert s.parent_id == engine_span.span_id
        double = next(s for s in block_spans if s.name == "block:double")
        assert double.attributes["samples"] == 32
        assert double.attributes["mode"] == "compiled"

    def test_interpreted_emits_one_summary_span_per_block(self):
        from repro import obs

        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            DataflowEngine(mode="interpreted", frame_size=8).run(
                _simple_schematic(64)
            )
        finally:
            obs.set_tracer(previous)
        double_spans = tracer.spans("block:double")
        assert len(double_spans) == 1
        assert double_spans[0].attributes["calls"] == 8
        assert double_spans[0].attributes["samples"] == 64

    def test_explicit_tracer_overrides_global(self):
        from repro import obs

        tracer = obs.Tracer()
        result = DataflowEngine(mode="compiled", tracer=tracer).run(
            _simple_schematic(8)
        )
        assert len(tracer.spans("block:")) == 3
        assert result.n_block_invocations == 3

    def test_disabled_instrumentation_identical_outputs(self):
        from repro import obs

        plain = DataflowEngine(mode="compiled").run(_simple_schematic(100))
        tracer = obs.Tracer()
        traced = DataflowEngine(mode="compiled", tracer=tracer).run(
            _simple_schematic(100)
        )
        assert np.array_equal(
            plain.outputs["offset.out"], traced.outputs["offset.out"]
        )
