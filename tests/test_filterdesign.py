"""Tests for the filter design program (repro.flow.filterdesign)."""

import numpy as np
import pytest

from repro.flow.filterdesign import (
    FilterDesignReport,
    FilterSpec,
    design_channel_filter,
)
from repro.rf.signal import Signal


class TestSpecValidation:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            FilterSpec(passband_edge_hz=10e6, stopband_edge_hz=5e6)

    def test_nyquist_enforced(self):
        with pytest.raises(ValueError):
            FilterSpec(passband_edge_hz=8e6, stopband_edge_hz=50e6,
                       sample_rate=80e6)

    def test_positive_requirements(self):
        with pytest.raises(ValueError):
            FilterSpec(8e6, 12e6, passband_ripple_db=0.0)


class TestDesign:
    def test_channel_filter_spec_met(self):
        # The figure-5 use case: pass the 8.3 MHz half-band, kill the
        # adjacent channel region by 45 dB before it can alias.
        spec = FilterSpec(
            passband_edge_hz=8.6e6,
            stopband_edge_hz=11.5e6,
            passband_ripple_db=0.5,
            stopband_atten_db=45.0,
        )
        report = design_channel_filter(spec)
        assert report.meets_spec, report
        assert report.order >= 5

    def test_tighter_spec_needs_higher_order(self):
        relaxed = design_channel_filter(
            FilterSpec(8e6, 16e6, stopband_atten_db=30.0)
        )
        tight = design_channel_filter(
            FilterSpec(8e6, 10e6, stopband_atten_db=60.0)
        )
        assert tight.order > relaxed.order

    def test_designed_filter_runs(self):
        report = design_channel_filter(FilterSpec(8e6, 12e6))
        rng = np.random.default_rng(0)
        sig = Signal(
            rng.standard_normal(4096) + 1j * rng.standard_normal(4096), 80e6
        )
        out = report.filter.process(sig)
        assert out.samples.size == 4096
        # Broadband noise loses the stopband share of its power.
        assert out.power_watts() < sig.power_watts()

    def test_measured_attenuation_reported(self):
        report = design_channel_filter(
            FilterSpec(8e6, 12e6, stopband_atten_db=40.0)
        )
        assert report.measured_stopband_atten_db >= 39.5
        assert report.measured_passband_ripple_db <= 0.6

    def test_description_carries_spec(self):
        report = design_channel_filter(FilterSpec(7e6, 11e6))
        assert "designed for" in report.filter.description
