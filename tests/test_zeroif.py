"""Tests for the direct-conversion receiver (repro.rf.zeroif)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.rf.signal import Signal, dbm_to_watts
from repro.rf.zeroif import ZeroIfConfig, ZeroIfReceiver


def _rf_tone(power_dbm, f=1e6, fs=80e6, n=8192):
    t = np.arange(n) / fs
    return Signal(
        np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * f * t),
        fs,
        5.2e9,
    )


class TestConfig:
    def test_decimation(self):
        assert ZeroIfConfig().decimation == 4

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ZeroIfConfig(sample_rate_in=50e6)

    def test_defaults_carry_zero_if_burdens(self):
        cfg = ZeroIfConfig()
        # The LO sits at the carrier: self-mixing DC is much larger than
        # in the double-conversion design (-25 vs -45 dBm).
        assert cfg.dc_offset_dbm > -35.0
        assert cfg.flicker_power_dbm > -75.0


class TestChain:
    def test_single_conversion_to_baseband(self):
        fe = ZeroIfReceiver(ZeroIfConfig(noise_enabled=False))
        stages = fe.stage_outputs(_rf_tone(-60.0), np.random.default_rng(0))
        names = [n for n, _ in stages]
        assert names == [
            "input", "lna", "mixer", "dc_block", "lpf", "agc", "adc",
        ]
        by_name = dict(stages)
        assert by_name["mixer"].carrier_frequency == pytest.approx(0.0)
        assert by_name["adc"].sample_rate == pytest.approx(20e6)

    def test_dc_block_suppresses_offset(self):
        cfg = ZeroIfConfig(noise_enabled=False, flicker_power_dbm=None)
        fe = ZeroIfReceiver(cfg)
        silence = Signal(np.zeros(1 << 15, complex), 80e6, 5.2e9)
        stages = dict(fe.stage_outputs(silence, np.random.default_rng(0)))
        raw_dc = abs(np.mean(stages["mixer"].samples))
        blocked = abs(np.mean(stages["dc_block"].samples[8192:]))
        assert raw_dc > 1e-4
        assert blocked < raw_dc / 10.0

    def test_dc_block_disable(self):
        cfg = ZeroIfConfig(
            noise_enabled=False, flicker_power_dbm=None,
            dc_block_cutoff_hz=0.0,
        )
        fe = ZeroIfReceiver(cfg)
        assert fe.dc_block is None
        silence = Signal(np.zeros(4096, complex), 80e6, 5.2e9)
        stages = dict(fe.stage_outputs(silence, np.random.default_rng(0)))
        assert abs(np.mean(stages["dc_block"].samples)) > 1e-4

    def test_wrong_rate_rejected(self):
        fe = ZeroIfReceiver(ZeroIfConfig())
        with pytest.raises(ValueError):
            fe.process(Signal(np.zeros(64, complex), 20e6, 5.2e9))


class TestSystemLevel:
    def test_decodes_clean_packet(self):
        bench = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24,
                psdu_bytes=40,
                thermal_floor=True,
                frontend=ZeroIfConfig(),
                input_level_dbm=-55.0,
            )
        )
        m = bench.measure_ber(n_packets=2, seed=0)
        assert m.ber == 0.0

    def test_dc_block_cutoff_tradeoff(self):
        """Zero-IF dilemma: no DC block fails at 54 Mbps with LO error; an
        over-wide DC block erodes the first subcarriers."""

        def ber(cutoff):
            cfg = ZeroIfConfig(
                dc_block_cutoff_hz=cutoff,
                dc_block_order=2,
                lo_error_ppm=10.0,
            )
            bench = WlanTestbench(
                TestbenchConfig(
                    rate_mbps=54,
                    psdu_bytes=40,
                    thermal_floor=True,
                    frontend=cfg,
                    input_level_dbm=-76.0,  # near 54 Mbps sensitivity
                )
            )
            return bench.measure_ber(n_packets=3, seed=1).ber

        none = ber(0.0)
        nominal = ber(600e3)
        excessive = ber(5e6)
        assert none > 0.1           # raw DC offset breaks QAM64
        assert nominal < 0.01       # a proper notch fixes it
        assert excessive > nominal  # a wide notch bites the subcarriers
