"""Tests for hierarchical composite blocks (repro.flow.dataflow)."""

import numpy as np
import pytest

from repro.flow.dataflow import (
    Block,
    CompositeBlock,
    DataflowEngine,
    FunctionBlock,
    Schematic,
    SchematicError,
)


class ConstSource(Block):
    inputs = ()
    outputs = ("out",)

    def __init__(self, values):
        self.values = np.asarray(values, dtype=float)

    def work(self, inputs, ctx):
        return {"out": self.values}


def _gain_chain(gain1, gain2):
    """An inner schematic: in -> x*gain1 -> x+gain2 -> out."""
    inner = Schematic("chain")
    inner.add("g1", FunctionBlock(lambda x: x * gain1))
    inner.add("g2", FunctionBlock(lambda x: x + gain2))
    inner.connect("g1.out", "g2.in")
    return CompositeBlock(
        inner,
        input_map={"in": "g1.in"},
        output_map={"out": "g2.out"},
    )


class TestCompositeBlock:
    def test_behaves_like_flat_pipeline(self):
        sch = Schematic("outer")
        sch.add("src", ConstSource(np.arange(8)))
        sch.add("rf", _gain_chain(3.0, 1.0))
        sch.connect("src.out", "rf.in")
        result = DataflowEngine().run(sch)
        assert np.allclose(result.outputs["rf.out"], 3 * np.arange(8) + 1)

    def test_hierarchical_parameter_access(self):
        composite = _gain_chain(2.0, 0.0)
        # Reach inside: the FunctionBlock exposes 'func' etc.; use a block
        # with a real parameter instead.
        inner = Schematic("p")
        inner.add("src_scale", ScaleLike(5.0))
        composite2 = CompositeBlock(
            inner,
            input_map={"in": "src_scale.in"},
            output_map={"out": "src_scale.out"},
        )
        assert composite2.get_param("src_scale.factor") == 5.0
        composite2.set_param("src_scale.factor", 7.0)
        assert composite2.get_param("src_scale.factor") == 7.0

    def test_internally_driven_input_rejected(self):
        inner = Schematic("bad")
        inner.add("a", FunctionBlock(lambda x: x))
        inner.add("b", FunctionBlock(lambda x: x))
        inner.connect("a.out", "b.in")
        with pytest.raises(SchematicError):
            CompositeBlock(
                inner,
                input_map={"in": "b.in"},  # already driven by a
                output_map={"out": "b.out"},
            )

    def test_unmapped_inner_input_detected_at_run(self):
        inner = Schematic("dangling")
        inner.add("a", FunctionBlock(lambda x: x))
        composite = CompositeBlock(
            inner, input_map={}, output_map={"out": "a.out"}
        )
        sch = Schematic("outer")
        sch.add("rf", composite)
        with pytest.raises(SchematicError):
            DataflowEngine().run(sch)

    def test_nested_composites(self):
        # A composite inside a composite.
        level1 = _gain_chain(2.0, 0.0)
        inner = Schematic("wrap")
        inner.add("stage", level1)
        level2 = CompositeBlock(
            inner,
            input_map={"in": "stage.in"},
            output_map={"out": "stage.out"},
        )
        sch = Schematic("outer")
        sch.add("src", ConstSource(np.ones(4)))
        sch.add("rf", level2)
        sch.connect("src.out", "rf.in")
        result = DataflowEngine().run(sch)
        assert np.allclose(result.outputs["rf.out"], 2.0)

    def test_multiple_outputs(self):
        inner = Schematic("split")
        inner.add("double", FunctionBlock(lambda x: 2 * x))
        inner.add("negate", FunctionBlock(lambda x: -x))
        # Both consume the same boundary input: allowed? Each inner input
        # can only be mapped once; use a fan-out block instead.
        inner.add("fan", FunctionBlock(lambda x: (x, x), outputs=("a", "b")))
        inner.connect("fan.a", "double.in")
        inner.connect("fan.b", "negate.in")
        composite = CompositeBlock(
            inner,
            input_map={"in": "fan.in"},
            output_map={"pos": "double.out", "neg": "negate.out"},
        )
        sch = Schematic("outer")
        sch.add("src", ConstSource(np.arange(3)))
        sch.add("rf", composite)
        sch.connect("src.out", "rf.in")
        result = DataflowEngine().run(sch)
        assert np.allclose(result.outputs["rf.pos"], 2 * np.arange(3))
        assert np.allclose(result.outputs["rf.neg"], -np.arange(3))


class ScaleLike(Block):
    inputs = ("in",)
    outputs = ("out",)

    def __init__(self, factor):
        self.factor = factor

    def work(self, inputs, ctx):
        return {"out": inputs["in"] * self.factor}


class TestHierarchicalRfModel:
    def test_figure2_as_hierarchy(self):
        """The paper's step 1: a hierarchical RF model inside the system."""
        from repro.flow.blocks import RfFrontendBlock, ScaleBlock

        inner = Schematic("rf_subsystem")
        inner.add("level_in", ScaleBlock(target_dbm=-55.0))
        inner.add("frontend", RfFrontendBlock())
        inner.add("level_out", ScaleBlock(target_dbm=0.0))
        inner.connect("level_in.out", "frontend.in")
        inner.connect("frontend.out", "level_out.in")
        composite = CompositeBlock(
            inner,
            input_map={"in": "level_in.in"},
            output_map={"out": "level_out.out"},
        )
        # Hierarchical parameter addressing reaches the front end.
        composite.set_param("frontend.lna_p1db_dbm", -20.0)
        assert composite.get_param("frontend.lna_p1db_dbm") == -20.0

        from repro.flow.blocks import ReceiverBlock, TransmitterBlock
        from repro.flow.dataflow import SimulationContext

        sch = Schematic("system")
        sch.add("tx", TransmitterBlock(rate_mbps=24, psdu_bytes=30))
        sch.add("rf", composite)
        sch.add("rx", ReceiverBlock())
        sch.connect("tx.out", "rf.in")
        sch.connect("rf.out", "rx.in")
        result = DataflowEngine(seed=3).run(sch)
        tx_bits = result.outputs["tx.bits"]
        rx_bits = result.outputs["rx.bits"]
        assert np.array_equal(tx_bits, rx_bits)
