"""Tests for report rendering and trace export (repro.obs.report)."""

import json

from repro.obs.regress import compare_runs
from repro.obs.report import (
    chrome_trace,
    chrome_trace_events,
    diff_sections,
    render_html,
    render_markdown,
    render_run_markdown,
    render_timeline,
    run_sections,
)
from repro.obs.store import RunStore


def _stored_run(tmp_path, ber=1e-3):
    store = RunStore(tmp_path)
    writer = store.create(kind="demo", name="demo", seed=3,
                          config={"rate": 24}, command="pytest")
    writer.add_kpis({"ber": ber, "per": 10 * ber})
    writer.add_table("summary", "x | y\n1 | 2")
    writer.add_curve("ber", "snr_db", [0.0, 5.0], [0.1, ber])
    return store, writer.finalize(tracer=None, registry=None)


SPANS = [
    {"type": "span", "name": "sweep", "start_monotonic_s": 10.0,
     "duration_s": 2.0, "attributes": {}},
    {"type": "span", "name": "block:receiver", "start_monotonic_s": 10.5,
     "duration_s": 0.5, "attributes": {"samples": 4000}},
    {"type": "event", "name": "progress", "monotonic_s": 11.0,
     "attributes": {"ber": 0.1}},
]


class TestMarkdown:
    def test_render_is_deterministic(self, tmp_path):
        _, run = _stored_run(tmp_path)
        first = render_run_markdown(run)
        second = render_run_markdown(run)
        assert first == second

    def test_contains_manifest_kpis_and_tables(self, tmp_path):
        _, run = _stored_run(tmp_path)
        text = render_run_markdown(run)
        assert text.startswith(f"# Run {run.run_id}")
        assert "| field | value |" in text
        assert "ber" in text and "0.001" in text
        assert "x | y" in text  # the attached plain-text table
        assert "integrity" in text

    def test_pipe_cells_escaped(self):
        from repro.obs.report import Section

        md = render_markdown("t", [Section(
            title="s", tables=[(["a|b"], [["1|2"]])],
        )])
        assert "a\\|b" in md and "1\\|2" in md

    def test_diff_sections_render(self, tmp_path):
        _, base = _stored_run(tmp_path / "a")
        _, cand = _stored_run(tmp_path / "b", ber=2e-3)
        verdict = compare_runs(base, cand)
        md = render_markdown(
            "diff", diff_sections(verdict, base, cand))
        assert "FAIL" in md
        assert base.run_id in md and cand.run_id in md


class TestHtml:
    def test_standalone_document(self, tmp_path):
        _, run = _stored_run(tmp_path)
        html = render_html(f"Run {run.run_id}", run_sections(run))
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html and "</html>" in html
        assert run.run_id in html

    def test_escapes_markup(self):
        from repro.obs.report import Section

        html = render_html("t", [Section(
            title="s", paragraphs=["<script>alert(1)</script>"],
        )])
        assert "<script>" not in html
        assert "&lt;script&gt;" in html


class TestChromeTrace:
    def test_span_and_event_shapes(self):
        events = chrome_trace_events(SPANS)
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2 and len(instant) == 1
        sweep = next(e for e in complete if e["name"] == "sweep")
        assert sweep["ts"] == 0  # rebased to the earliest start
        assert sweep["dur"] == 2_000_000  # microseconds
        rx = next(e for e in complete if e["name"] == "block:receiver")
        assert rx["ts"] == 500_000
        assert instant[0]["s"] == "t"

    def test_document_is_json_round_trippable(self):
        doc = chrome_trace(SPANS, metadata={"run_id": "x"})
        parsed = json.loads(json.dumps(doc))
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["otherData"]["run_id"] == "x"
        assert len(parsed["traceEvents"]) == 3

    def test_span_record_objects_accepted(self):
        from repro.obs.tracer import SpanRecord

        record = SpanRecord(
            name="block:fft", span_id=1, parent_id=None,
            start_unix_s=1.0, start_monotonic_s=1.0, duration_s=0.25,
        )
        events = chrome_trace_events([record])
        assert events[0]["name"] == "block:fft"
        assert events[0]["dur"] == 250_000

    def test_malformed_records_skipped(self):
        events = chrome_trace_events([{"type": "manifest"}, {"junk": 1}])
        assert events == []


class TestTimeline:
    def test_ascii_gantt(self):
        lines = render_timeline(SPANS, width=32).splitlines()
        assert any("sweep" in line for line in lines)
        assert any("block:receiver" in line for line in lines)
        assert any("#" in line for line in lines)

    def test_empty_trace(self):
        assert render_timeline([]) == "(no spans recorded)"
