"""Tests for the signal-level probe layer (repro.obs.probes).

Covers the bounded-memory summaries (power, PAPR, EVM, mask, PSD,
reservoir constellations), the snapshot/merge determinism contract that
makes serial, parallel and faulted-retried runs byte-identical, the
probes-off bit-identity guarantee, run-store persistence, report
rendering, and the regression-gate hygiene around probe telemetry.
"""

import json

import numpy as np
import pytest

from repro import obs, perf
from repro.obs.probes import (
    PROBE_PRESETS,
    ProbeConfig,
    ProbeRegistry,
    ccdf_rows,
    evm_rows,
    probe_preset,
    render_spectrum_ascii,
    waterfall_rows,
)


def _registry(preset="basic"):
    return ProbeRegistry(probe_preset(preset))


@pytest.fixture
def ambient_probes():
    """Install a fresh enabled registry; restore the previous one."""
    registry = _registry("full")
    previous = obs.set_probes(registry)
    yield registry
    obs.set_probes(previous)


class TestPresets:
    def test_off_by_default(self):
        assert not ProbeConfig().enabled
        assert not ProbeRegistry().enabled
        assert not PROBE_PRESETS["off"].enabled

    def test_presets(self):
        assert probe_preset("basic").enabled
        full = probe_preset("full")
        assert full.psd and full.constellation

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            probe_preset("bogus")


class TestTapSummaries:
    def test_power_of_known_signal(self):
        reg = _registry()
        # 0 dBm = 1 mW = amplitude sqrt(0.001) in the 1-ohm convention.
        samples = np.full(4096, np.sqrt(1e-3), dtype=complex)
        reg.tap("tx", samples, 20e6)
        assert reg.kpis()["probe.power_dbm[tx]"] == pytest.approx(0.0, abs=1e-9)
        assert reg.kpis()["probe.papr_db[tx]"] == pytest.approx(0.0, abs=1e-9)

    def test_papr_of_two_level_signal(self):
        reg = _registry()
        samples = np.ones(1000, dtype=complex)
        samples[::10] = 2.0  # peak 4x the floor power
        reg.tap("tx", samples, 20e6)
        p_avg = np.mean(np.abs(samples) ** 2)
        expected = 10 * np.log10(4.0 / p_avg)
        assert reg.kpis()["probe.papr_db[tx]"] == pytest.approx(
            expected, abs=1e-6
        )

    def test_disabled_registry_is_inert(self):
        reg = ProbeRegistry()
        reg.tap("tx", np.ones(64, dtype=complex), 20e6)
        reg.tap_evm("eq", np.ones(16, dtype=complex),
                    np.ones(16, dtype=complex), "BPSK")
        assert not reg.has_data()
        assert reg.export() == {}
        assert reg.kpis() == {}

    def test_evm_least_squares_gain_removal(self):
        reg = _registry()
        rng = np.random.default_rng(0)
        ref = (rng.choice([-1, 1], 2048) + 1j * rng.choice([-1, 1], 2048))
        ref = ref / np.sqrt(2)
        # A pure complex gain must not register as error vector.
        reg.tap_evm("eq", 0.5 * np.exp(0.3j) * ref, ref, "QPSK")
        assert reg.kpis()["probe.evm_rms[QPSK]"] == pytest.approx(0.0, abs=1e-12)

    def test_evm_matches_known_noise(self):
        reg = _registry()
        rng = np.random.default_rng(1)
        n = 8192
        ref = (rng.choice([-1, 1], n) + 1j * rng.choice([-1, 1], n)) / np.sqrt(2)
        n0 = 1e-2
        noise = np.sqrt(n0 / 2) * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )
        reg.tap_evm("eq", ref + noise, ref, "QPSK")
        assert reg.kpis()["probe.evm_rms[QPSK]"] == pytest.approx(
            np.sqrt(n0), rel=0.05
        )

    def test_mask_clean_vs_compressed(self):
        from repro.dsp.transmitter import Transmitter, TxConfig
        from repro.rf.nonlinearity import RappNonlinearity
        from repro.rf.signal import dbm_to_watts

        tx = Transmitter(TxConfig(rate_mbps=12, oversample=4))
        wave = tx.transmit(np.arange(60, dtype=np.uint8))
        fs = tx.config.sample_rate
        reg = _registry()
        reg.tap_mask("tx", wave, fs)
        assert reg.kpis()["probe.mask_margin_db[tx]"] >= 0.0
        assert reg.kpis()["probe.mask_pass[tx]"] == 1.0

        scale = np.sqrt(dbm_to_watts(0.0) / np.mean(np.abs(wave) ** 2))
        pa = RappNonlinearity(gain_db=0.0, osat_dbm=0.0, smoothness=2.0)
        reg2 = _registry()
        reg2.tap_mask("tx", pa.apply(wave * scale), fs)
        assert reg2.kpis()["probe.mask_margin_db[tx]"] < 0.0
        assert reg2.kpis()["probe.mask_pass[tx]"] == 0.0

    def test_budget_waterfall_matches_friis(self):
        from repro.rf.frontend import FrontendConfig

        cfg = FrontendConfig()
        reg = _registry()
        reg.note_budget(cfg)
        budget = reg.export()["budget"]
        assert budget["input"]["gain_db"] == 0.0
        assert budget["input"]["nf_db"] == 0.0
        # Cumulative gain after the LNA is the LNA gain itself, and the
        # cascade NF at that point is the LNA noise figure (Friis).
        assert budget["lna"]["gain_db"] == pytest.approx(cfg.lna_gain_db)
        assert budget["lna"]["nf_db"] == pytest.approx(cfg.lna_nf_db)
        # NF can only grow down the cascade.
        assert budget["mixer2"]["nf_db"] >= budget["mixer1"]["nf_db"] >= (
            budget["lna"]["nf_db"]
        )


class TestSnapshotMerge:
    def test_split_taps_merge_to_single_pass(self):
        rng = np.random.default_rng(7)
        samples = (rng.standard_normal(4096)
                   + 1j * rng.standard_normal(4096)) * 1e-3
        whole = _registry("full")
        whole.tap("tx", samples, 20e6)

        a, b = _registry("full"), _registry("full")
        a.tap("tx", samples[:1500], 20e6)
        b.tap("tx", samples[1500:], 20e6)
        a.merge(b.snapshot())
        ka, kw = a.kpis(), whole.kpis()
        assert ka["probe.power_dbm[tx]"] == pytest.approx(
            kw["probe.power_dbm[tx]"], abs=1e-9
        )
        # PAPR is a per-burst statistic (each tap normalizes to its own
        # average), so only the merged peak/energy accounting must agree.
        sa = a.export()["stages"]["tx"]
        sw = whole.export()["stages"]["tx"]
        assert sa["peak_w"] == sw["peak_w"]
        assert sa["n_samples"] == sw["n_samples"]
        assert sa["energy_w"] == pytest.approx(sw["energy_w"], rel=1e-12)

    def test_merge_order_independent_for_reservoir(self):
        cfg = probe_preset("full")
        rng = np.random.default_rng(3)

        def feed(reg, tags):
            for tag in tags:
                ref = (rng.choice([-1, 1], 48)
                       + 1j * rng.choice([-1, 1], 48)) / np.sqrt(2)
                reg.tap_evm("eq", ref, ref, "QPSK", tag=tag)

        # Same packet set, partitioned two different ways.
        rng = np.random.default_rng(3)
        one = ProbeRegistry(cfg)
        feed(one, ["p0", "p1", "p2", "p3"])

        rng = np.random.default_rng(3)
        left, right = ProbeRegistry(cfg), ProbeRegistry(cfg)
        feed(left, ["p0", "p1"])
        feed(right, ["p2", "p3"])
        right.merge(left.snapshot())
        assert json.dumps(one.export(), sort_keys=True) == json.dumps(
            right.export(), sort_keys=True
        )

    def test_merge_empty_snapshot_is_noop(self):
        reg = _registry()
        reg.tap("tx", np.ones(64, dtype=complex), 20e6)
        before = json.dumps(reg.export(), sort_keys=True)
        reg.merge(ProbeRegistry(probe_preset("basic")).snapshot())
        assert json.dumps(reg.export(), sort_keys=True) == before


def _bench(n_packets=6, **overrides):
    from repro.core.testbench import TestbenchConfig, WlanTestbench

    cfg = TestbenchConfig(
        rate_mbps=12, psdu_bytes=24, snr_db=10.0, **overrides
    )
    return WlanTestbench(cfg), n_packets


class TestDeterminism:
    def test_probes_off_bit_identical_to_probes_on(self):
        bench, n = _bench()
        off = bench.measure_ber(n_packets=n, seed=5, chunk_size=2)

        registry = _registry("full")
        previous = obs.set_probes(registry)
        try:
            on = bench.measure_ber(n_packets=n, seed=5, chunk_size=2)
        finally:
            obs.set_probes(previous)
        assert on.ber == off.ber
        assert on.per == off.per
        assert registry.has_data()

    def test_serial_vs_parallel_exports_byte_identical(self):
        bench, n = _bench()

        def run(jobs):
            registry = _registry("full")
            previous = obs.set_probes(registry)
            try:
                bench.measure_ber(n_packets=n, seed=5, jobs=jobs, chunk_size=2)
            finally:
                obs.set_probes(previous)
            return json.dumps(registry.export(), sort_keys=True)

        assert run(1) == run(2)

    def test_faulted_retried_run_export_matches_clean(self):
        bench, n = _bench()

        def run(spec):
            registry = _registry("full")
            previous = obs.set_probes(registry)
            previous_retries = perf.set_default_retries(2)
            try:
                if spec:
                    with perf.fault_plan(perf.parse_fault_spec(spec)):
                        bench.measure_ber(n_packets=n, seed=5, chunk_size=2)
                else:
                    bench.measure_ber(n_packets=n, seed=5, chunk_size=2)
            finally:
                perf.set_default_retries(previous_retries)
                obs.set_probes(previous)
            return json.dumps(registry.export(), sort_keys=True)

        assert run(None) == run("ber/fail:1@0")


class TestStoreRoundTrip:
    def test_probes_persist_and_reload(self, tmp_path):
        from repro.obs.store import RunStore

        reg = _registry("full")
        reg.tap("tx", np.full(256, 1e-2, dtype=complex), 20e6)
        store = RunStore(tmp_path)
        writer = store.create(kind="demo", name="probe-demo", seed=0)
        writer.add_probes(reg.export())
        writer.add_kpis(reg.kpis())
        record = writer.finalize(tracer=None, registry=None)
        assert (record.path / "probes.json").exists()

        loaded = store.load_run(record.run_id)
        assert loaded.integrity_ok
        assert loaded.probes == record.probes
        assert "tx" in loaded.probes["stages"]

    def test_probe_free_run_digest_unchanged(self, tmp_path):
        """No probes.json and legacy digests for probe-less runs."""
        from repro.obs.store import RunStore, _content_digest

        store = RunStore(tmp_path)
        writer = store.create(kind="demo", name="plain", seed=0)
        writer.add_kpis({"ber": 1e-3})
        record = writer.finalize(tracer=None, registry=None)
        assert not (record.path / "probes.json").exists()
        legacy = _content_digest(
            record.manifest, record.metrics, record.kpis,
            record.curves, record.tables,
        )
        assert record.digest == legacy


class TestRenderers:
    def _export(self):
        reg = _registry("full")
        rng = np.random.default_rng(0)
        sig = (rng.standard_normal(4096)
               + 1j * rng.standard_normal(4096)) * 1e-3
        reg.tap("tx", sig, 20e6)
        ref = (rng.choice([-1, 1], 512)
               + 1j * rng.choice([-1, 1], 512)) / np.sqrt(2)
        reg.tap_evm("eq", ref + 0.01 * sig[:512], ref, "QPSK")
        return reg.export()

    def test_waterfall_rows(self):
        headers, rows = waterfall_rows(self._export())
        assert headers[0] == "stage"
        assert rows and rows[0][0] == "tx"

    def test_evm_rows(self):
        headers, rows = evm_rows(self._export())
        assert rows and rows[0][0] == "QPSK"

    def test_ccdf_rows(self):
        headers, rows = ccdf_rows(self._export(), "tx")
        assert rows and rows[-1][0] == "peak"

    def test_spectrum_ascii(self):
        art = render_spectrum_ascii(self._export(), "tx")
        assert "#" in art and "MHz" in art

    def test_report_section_renders(self):
        from repro.obs.report import render_markdown, run_sections
        from repro.obs.store import RunStore

        import tempfile
        with tempfile.TemporaryDirectory() as d:
            store = RunStore(d)
            writer = store.create(kind="demo", name="sectioned", seed=0)
            writer.add_probes(self._export())
            record = writer.finalize(tracer=None, registry=None)
        sections = [s for s in run_sections(record) if s is not None]
        titles = [s.title for s in sections]
        assert "Signal probes" in titles
        text = render_markdown(f"Run {record.run_id}", sections)
        assert "Signal probes" in text

    def test_report_section_absent_without_probes(self):
        from repro.obs.report import _probes_section
        from repro.obs.store import RunStore

        import tempfile
        with tempfile.TemporaryDirectory() as d:
            store = RunStore(d)
            writer = store.create(kind="demo", name="plain", seed=0)
            record = writer.finalize(tracer=None, registry=None)
        assert _probes_section(record) is None


class TestRegressionHygiene:
    def _record(self, store, jobs, probe_power):
        registry = obs.MetricsRegistry()
        registry.gauge("jobs_requested", "requested parallelism").set(jobs)
        registry.gauge("probe_power_dbm", "stage power").set(
            probe_power, stage="tx"
        )
        writer = store.create(kind="demo", name="hyg", seed=0)
        writer.add_kpis({"ber": 1e-3})
        return writer.finalize(tracer=None, registry=registry)

    def test_probe_and_jobs_metrics_ignored_by_default(self, tmp_path):
        from repro.obs.regress import compare_runs
        from repro.obs.store import RunStore

        store = RunStore(tmp_path)
        serial = self._record(store, jobs=1, probe_power=-55.0)
        parallel = self._record(store, jobs=4, probe_power=-54.0)
        verdict = compare_runs(serial, parallel)
        assert verdict.passed

    def test_probe_kpi_gated_and_tolerated(self, tmp_path):
        from repro.obs.regress import RegressionConfig, compare_runs
        from repro.obs.store import RunStore

        store = RunStore(tmp_path)

        def rec(margin):
            writer = store.create(kind="demo", name="kpi", seed=0)
            writer.add_kpis({"probe.mask_margin_db[tx]": margin})
            return writer.finalize(tracer=None, registry=None)

        base, cand = rec(0.0), rec(-0.4)
        assert not compare_runs(base, cand).passed
        config = RegressionConfig(probe_kpi_abs_tol=0.5)
        assert compare_runs(base, cand, config).passed


class TestFlowTaps:
    def test_probed_wires_feed_registry(self, ambient_probes):
        from repro.flow.dataflow import (
            Block,
            DataflowEngine,
            FunctionBlock,
            Schematic,
        )

        class ConstSource(Block):
            inputs = ()
            outputs = ("out",)

            def __init__(self, values):
                self.values = np.asarray(values)

            def work(self, inputs, ctx):
                return {"out": self.values}

        sch = Schematic("toy")
        sch.add("src", ConstSource(np.ones(64, dtype=complex)))
        sch.add("double", FunctionBlock(lambda x: 2 * x))
        sch.connect("src.out", "double.in")
        sch.probe("double.out")
        DataflowEngine(mode="compiled", seed=0).run(sch)
        assert "flow:toy.double.out" in ambient_probes.export()["stages"]

    def test_figure3_default_probes(self, ambient_probes):
        from repro.flow.blocks import build_figure3_schematic
        from repro.flow.dataflow import DataflowEngine

        sch, _ = build_figure3_schematic(psdu_bytes=20)
        DataflowEngine(mode="compiled", seed=1).run(sch)
        stages = ambient_probes.export()["stages"]
        assert "flow:figure3_wlan_rf_receiver.antenna.out" in stages
        assert "flow:figure3_wlan_rf_receiver.rf_frontend.out" in stages


class TestCliPlumbing:
    def test_normalize_probe_flag(self):
        from repro.cli import _normalize_probe_flag

        assert _normalize_probe_flag(["--probes", "fig5"]) == [
            "--probes", "basic", "fig5",
        ]
        assert _normalize_probe_flag(["--probes", "full", "fig5"]) == [
            "--probes", "full", "fig5",
        ]
        assert _normalize_probe_flag(["fig5"]) == ["fig5"]
        assert _normalize_probe_flag(["--probes"]) == ["--probes", "basic"]

    def test_probe_subcommand_stores_artifacts(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.store import RunStore

        code = main([
            "--store", str(tmp_path), "probe",
            "--packets", "1", "--bytes", "24",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget waterfall" in out
        store = RunStore(tmp_path)
        record = store.load_run(store.latest().run_id)
        assert record.probes["stages"]
        assert any(k.startswith("probe.") for k in record.kpis)


class TestQaProbeChecks:
    def test_probe_checks_pass_quick(self):
        from repro.qa.harness import run_probe_checks

        checks = run_probe_checks(seed=0, quick=True)
        assert len(checks) == 6
        assert all(c.passed for c in checks)
        assert {c.section for c in checks} == {"probe"}
