"""Tests for the J&K black-box model extraction (repro.flow.blackbox)."""

import numpy as np
import pytest

from repro.flow.blackbox import (
    BlackBoxFrontend,
    extract_blackbox,
)
from repro.flow.cosim import cascade_noise_figure_db
from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
from repro.rf.signal import Signal, dbm_to_watts


@pytest.fixture(scope="module")
def surrogate():
    return extract_blackbox(FrontendConfig(), rng=np.random.default_rng(0))


class TestExtraction:
    def test_noise_figure_close_to_friis(self, surrogate):
        measured = surrogate.characterization.noise_figure_db
        friis = cascade_noise_figure_db(FrontendConfig())
        # Flicker noise and DC add a little on top of the Friis cascade.
        assert friis - 0.5 < measured < friis + 2.0

    def test_enb_matches_channel_filter(self, surrogate):
        enb = surrogate.characterization.equivalent_noise_bandwidth_hz
        # 2 x 8.6 MHz Chebyshev edges (envelope) with some ripple/rolloff.
        assert 14e6 < enb < 19e6

    def test_compression_captured_in_lut(self, surrogate):
        gains = surrogate.characterization.complex_gain
        drop_db = 20 * np.log10(abs(gains[-1] / gains[0]))
        assert drop_db < -0.5  # the -20 dBm drive is past the LNA's P1dB

    def test_response_is_bandpass_with_dc_notch(self, surrogate):
        c = surrogate.characterization
        order = np.argsort(np.abs(c.freqs_hz))
        at_dc = np.abs(c.response[order[0]])      # exactly 0 Hz
        near_dc = np.abs(c.response[order[1]])    # first off-DC point
        edge = np.abs(c.response[np.argmax(c.freqs_hz)])
        # The inter-stage high-pass notches DC; the passband is flat; the
        # channel filter rolls off at the band edge.
        assert at_dc < 0.1
        assert near_dc > 0.7
        assert edge < near_dc

    def test_dc_offset_small_after_hpf(self, surrogate):
        dc_power = abs(surrogate.characterization.dc_offset) ** 2
        # The structural HPF suppresses the -45 dBm self-mixing product.
        assert dc_power < dbm_to_watts(-60.0)


class TestSurrogateBehavior:
    def _tone(self, power_dbm, f=1e6, n=8192):
        t = np.arange(n) / 80e6
        return Signal(
            np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * f * t),
            80e6,
            5.2e9,
        )

    def test_interface_and_rates(self, surrogate):
        out = surrogate.process(self._tone(-60.0), np.random.default_rng(1))
        assert out.sample_rate == pytest.approx(20e6)

    def test_wrong_rate_rejected(self, surrogate):
        with pytest.raises(ValueError):
            surrogate.process(Signal(np.zeros(100, complex), 20e6, 5.2e9))

    def test_output_leveled_like_agc(self, surrogate):
        for level in (-80.0, -60.0, -40.0):
            out = surrogate.process(
                self._tone(level), np.random.default_rng(2)
            )
            assert out.power_dbm() == pytest.approx(-12.0, abs=1.5)

    def test_matches_structural_model_ber(self):
        """The surrogate's BER waterfall tracks the full model within ~1 dB."""
        from repro.channel.awgn import AwgnChannel
        from repro.dsp.receiver import Receiver, RxConfig
        from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu

        cfg = FrontendConfig()
        surrogate = extract_blackbox(cfg, rng=np.random.default_rng(3))
        full = DoubleConversionReceiver(cfg)

        def ber(block, level, n_pkts=4, seed=11):
            rng = np.random.default_rng(seed)
            errors, bits = 0.0, 0
            for _ in range(n_pkts):
                psdu = random_psdu(60, rng)
                wave = Transmitter(
                    TxConfig(rate_mbps=24, oversample=4)
                ).transmit(psdu)
                sig = Signal(
                    np.concatenate(
                        [np.zeros(600, complex), wave, np.zeros(600, complex)]
                    ),
                    80e6,
                    5.2e9,
                ).scaled_to_dbm(level)
                sig = AwgnChannel(include_thermal_floor=True).process(sig, rng)
                out = block.process(sig, rng)
                res = Receiver(RxConfig()).receive(
                    out.samples / np.sqrt(out.power_watts())
                )
                bits += 480
                if res.success and res.psdu.size == 60:
                    errors += int(np.unpackbits(res.psdu ^ psdu).sum())
                else:
                    errors += 240
            return errors / bits

        # Comfortable operating point: both must be clean.
        assert ber(full, -70.0) == 0.0
        assert ber(surrogate, -70.0) == 0.0
        # Deep in the waterfall: both must fail significantly.
        assert ber(full, -95.0) > 0.2
        assert ber(surrogate, -95.0) > 0.2

    def test_nonlinearity_lut_compresses_large_signals(self, surrogate):
        amp_small = np.array([surrogate._lut_amp_in[0]], dtype=complex)
        amp_large = np.array([surrogate._lut_amp_in[-1]], dtype=complex)
        g_small = abs(surrogate._apply_nonlinearity(amp_small)[0]) / abs(amp_small[0])
        g_large = abs(surrogate._apply_nonlinearity(amp_large)[0]) / abs(amp_large[0])
        assert g_large < g_small
