"""End-to-end receiver tests (repro.dsp.receiver)."""

import numpy as np
import pytest

from repro.dsp.params import RATES
from repro.dsp.receiver import Receiver, RxConfig, ideal_receiver_config
from repro.dsp.synchronization import apply_cfo
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu


def _loopback(rate, psdu, pad=200, snr_db=None, cfo_hz=0.0, rx_config=None, seed=0):
    rng = np.random.default_rng(seed)
    wave = Transmitter(TxConfig(rate_mbps=rate)).transmit(psdu)
    samples = np.concatenate(
        [np.zeros(pad, complex), wave, np.zeros(120, complex)]
    )
    if cfo_hz:
        samples = apply_cfo(samples, cfo_hz)
    if snr_db is not None:
        p = 10.0 ** (-snr_db / 10.0)
        samples = samples + np.sqrt(p / 2) * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
    return Receiver(rx_config or RxConfig()).receive(samples)


class TestNoiselessLoopback:
    @pytest.mark.parametrize("mbps", sorted(RATES))
    def test_all_rates(self, mbps):
        rng = np.random.default_rng(mbps)
        psdu = random_psdu(120, rng)
        result = _loopback(mbps, psdu)
        assert result.success
        assert result.rate.data_rate_mbps == mbps
        assert result.length_bytes == psdu.size
        assert np.array_equal(result.psdu, psdu)

    @pytest.mark.parametrize("n_bytes", [1, 13, 255, 1000])
    def test_payload_sizes(self, n_bytes):
        rng = np.random.default_rng(n_bytes)
        psdu = random_psdu(n_bytes, rng)
        result = _loopback(24, psdu)
        assert result.success
        assert np.array_equal(result.psdu, psdu)

    def test_genie_path(self):
        rng = np.random.default_rng(1)
        psdu = random_psdu(80, rng)
        wave = Transmitter(TxConfig(rate_mbps=54)).transmit(psdu)
        cfg = RxConfig(genie_timing=True, genie_cfo=True)
        result = Receiver(cfg).receive(wave)
        assert result.success
        assert np.array_equal(result.psdu, psdu)

    def test_ideal_receiver_config(self):
        cfg = ideal_receiver_config(24, 77)
        rng = np.random.default_rng(2)
        psdu = random_psdu(77, rng)
        wave = Transmitter(TxConfig(rate_mbps=24)).transmit(psdu)
        result = Receiver(cfg).receive(wave)
        assert result.success
        assert np.array_equal(result.psdu, psdu)
        assert result.data_symbols is not None


class TestImpairedReception:
    def test_awgn_20db(self):
        rng = np.random.default_rng(3)
        psdu = random_psdu(100, rng)
        result = _loopback(24, psdu, snr_db=20.0, seed=3)
        assert result.success
        assert np.array_equal(result.psdu, psdu)

    def test_cfo_at_spec_limit(self):
        # +/-20 ppm at 5.2 GHz on both sides: up to ~208 kHz total.
        rng = np.random.default_rng(4)
        psdu = random_psdu(100, rng)
        result = _loopback(24, psdu, snr_db=25.0, cfo_hz=208e3, seed=4)
        assert result.success
        assert np.array_equal(result.psdu, psdu)
        assert result.cfo_hz == pytest.approx(208e3, abs=3e3)

    def test_low_snr_fails_gracefully(self):
        rng = np.random.default_rng(5)
        psdu = random_psdu(100, rng)
        result = _loopback(54, psdu, snr_db=-3.0, seed=5)
        # Either not detected or decoded with errors; never an exception.
        if result.success:
            assert not np.array_equal(result.psdu, psdu)

    def test_multipath_with_equalizer(self):
        rng = np.random.default_rng(6)
        psdu = random_psdu(60, rng)
        wave = Transmitter(TxConfig(rate_mbps=12)).transmit(psdu)
        taps = np.array([1.0, 0.0, 0.35 * np.exp(1j), 0.0, 0.1])
        faded = np.convolve(wave, taps)
        samples = np.concatenate([np.zeros(150, complex), faded])
        p = 10.0 ** (-25.0 / 10.0)
        samples = samples + np.sqrt(p / 2) * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
        result = Receiver(RxConfig()).receive(samples)
        assert result.success
        assert np.array_equal(result.psdu, psdu)


class TestFailureModes:
    def test_pure_noise(self):
        rng = np.random.default_rng(7)
        noise = rng.standard_normal(4000) + 1j * rng.standard_normal(4000)
        result = Receiver(RxConfig()).receive(noise)
        assert not result.success
        assert result.failure

    def test_truncated_packet(self):
        rng = np.random.default_rng(8)
        psdu = random_psdu(500, rng)
        wave = Transmitter(TxConfig(rate_mbps=6)).transmit(psdu)
        cut = np.concatenate([np.zeros(150, complex), wave[: wave.size // 2]])
        result = Receiver(RxConfig()).receive(cut)
        assert not result.success

    def test_genie_requires_length(self):
        cfg = RxConfig(genie_rate_mbps=24)
        wave = Transmitter(TxConfig(rate_mbps=24)).transmit(
            np.zeros(10, dtype=np.uint8)
        )
        result = Receiver(cfg).receive(wave)
        assert not result.success
        assert "genie" in result.failure

    def test_soft_vs_hard_decision(self):
        rng = np.random.default_rng(9)
        psdu = random_psdu(100, rng)
        soft = _loopback(
            36, psdu, snr_db=17.0, seed=9, rx_config=RxConfig(soft_decision=True)
        )
        hard = _loopback(
            36, psdu, snr_db=17.0, seed=9, rx_config=RxConfig(soft_decision=False)
        )
        def errors(res):
            if not res.success or res.psdu.size != psdu.size:
                return psdu.size * 8
            return int(np.unpackbits(res.psdu ^ psdu).sum())
        assert errors(soft) <= errors(hard)

    def test_data_symbols_exposed(self):
        rng = np.random.default_rng(10)
        psdu = random_psdu(64, rng)
        result = _loopback(24, psdu)
        assert result.data_symbols is not None
        assert result.data_symbols.shape[1] == 48
