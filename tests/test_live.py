"""Tests for the live telemetry layer (repro.obs.live).

The contracts under test: Wilson-CI convergence classification, the
flight recorder's determinism rules (volatile fields stripped, serial
and parallel runs produce equivalent records, failed attempts never
double-count), worker heartbeat/stall detection and the ETA model, the
OpenMetrics exposition round-tripping through a strict parser, the
flight.jsonl store round-trip with its report section, and the
cross-run KPI trend walker.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs, perf
from repro.core.sweep import ParameterSweep
from repro.core.testbench import TestbenchConfig
from repro.obs.live import (
    ConvergenceConfig,
    LiveMonitor,
    MetricsServer,
    _kind_selected,
    classify_point,
    kpi_trend,
    openmetrics_text,
    parse_openmetrics,
    render_dashboard,
    sparkline,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressEvent, printer
from repro.perf import fault_plan, parse_fault_spec


# -- helpers ------------------------------------------------------------
def _square(x):
    return x * x


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _event(stage="sweep", current=1, total=4, message="m", **data):
    return ProgressEvent(stage=stage, current=current, total=total,
                         message=message, data=data)


def _ber_event(current, errors, bits, parameter="snr_db", value=4.0,
               total=4):
    return _event(
        current=current, total=total,
        message=f"{parameter}={value}: BER={errors / max(bits, 1):.3g}",
        parameter=parameter, value=value,
        bit_errors=errors, bits_total=bits,
    )


def _small_sweep(seed=7):
    return ParameterSweep(
        TestbenchConfig(rate_mbps=6, psdu_bytes=20, snr_db=10.0),
        "snr_db", [0.0, 2.0, 4.0, 6.0], n_packets=1, seed=seed,
    )


@pytest.fixture
def ambient_monitor():
    """A fresh monitor installed as the ambient one."""
    monitor = LiveMonitor(clock=FakeClock())
    previous = obs.set_live_monitor(monitor)
    yield monitor
    obs.set_live_monitor(previous)


# -- convergence classification -----------------------------------------
class TestClassifyPoint:
    def test_no_bits_is_pending(self):
        out = classify_point(0, 0)
        assert out["state"] == "pending"
        assert out["ci_width"] == 1.0

    def test_few_errors_is_starved(self):
        assert classify_point(3, 10_000)["state"] == "starved"

    def test_wide_interval_is_running(self):
        assert classify_point(15, 1_000)["state"] == "running"

    def test_tight_interval_is_converged(self):
        assert classify_point(500, 1_000_000)["state"] == "converged"

    def test_zero_errors_with_many_bits_converges_absolutely(self):
        # BER == 0 can never satisfy the relative-width rule; the
        # absolute-width floor lets clean points settle too.
        out = classify_point(0, 10_000_000,
                             ConvergenceConfig(min_errors=0.0))
        assert out["state"] == "converged"

    def test_returns_plain_floats(self):
        out = classify_point(50, 10_000)
        assert type(out["ci_lo"]) is float
        assert type(out["ci_hi"]) is float
        json.dumps(out)  # must serialise without a numpy encoder

    def test_interval_brackets_the_estimate(self):
        out = classify_point(50, 10_000)
        assert out["ci_lo"] < 50 / 10_000 < out["ci_hi"]


# -- flight recorder ----------------------------------------------------
class TestFlightRecorder:
    def test_point_keyed_by_parameter_value(self):
        monitor = LiveMonitor(clock=FakeClock())
        monitor.on_event(_ber_event(1, errors=20, bits=1_000))
        (record,) = monitor.flight_records()
        assert record["convergence"]["point"] == "snr_db=4"
        assert record["convergence"]["state"] == "running"

    def test_volatile_data_keys_stripped(self):
        monitor = LiveMonitor(clock=FakeClock())
        monitor.on_event(_event(duration_s=1.25, wall_s=9.0, verdict="ok"))
        (record,) = monitor.flight_records()
        assert record["data"] == {"verdict": "ok"}

    def test_bound_drops_oldest_and_counts(self):
        monitor = LiveMonitor(max_flight=2, clock=FakeClock())
        for i in range(5):
            monitor.on_event(_event(current=i + 1, total=5))
        summary = monitor.flight_summary()
        assert summary["events"] == 5
        assert summary["recorded"] == 2
        assert summary["dropped"] == 3
        assert [r["seq"] for r in monitor.flight_records()] == [3, 4]

    def test_replay_reproduces_summary(self):
        monitor = LiveMonitor(clock=FakeClock())
        for i in range(3):
            monitor.on_event(_ber_event(i + 1, errors=20 * (i + 1),
                                        bits=1_000 * (i + 1),
                                        value=2.0 * i, total=3))
        replayed = LiveMonitor.replay(monitor.flight_records())
        assert replayed.flight_summary() == monitor.flight_summary()
        assert replayed.flight_records() == monitor.flight_records()

    def test_bits_per_s_from_task_roundtrip(self):
        monitor = LiveMonitor(clock=FakeClock())
        monitor.note_task("sweep", 0, 2.0, worker_pid=111)
        monitor.on_event(_ber_event(1, errors=100, bits=10_000))
        (point,) = monitor.snapshot()["points"]
        assert point["bits_per_s"] == pytest.approx(5_000.0)

    def test_spool_mirrors_records(self, tmp_path):
        spool = tmp_path / "live" / "fig5.jsonl"
        monitor = LiveMonitor(clock=FakeClock())
        monitor.open_spool(spool)
        monitor.on_event(_event(current=1))
        monitor.on_event(_event(current=2))
        lines = spool.read_text().splitlines()
        assert [json.loads(line)["current"] for line in lines] == [1, 2]
        monitor.close_spool(remove=True)
        assert not spool.exists()


# -- heartbeats, stalls, ETA --------------------------------------------
class TestWorkerHealth:
    def test_stall_flagged_after_factor_times_median(self):
        clock = FakeClock()
        monitor = LiveMonitor(clock=clock, stall_factor=4.0)
        monitor.on_event(_event(current=1, total=8))
        monitor.note_task("sweep", 0, 1.0, worker_pid=42)
        clock.t = 3.0
        (worker,) = monitor.snapshot()["workers"]
        assert not worker["stalled"]
        clock.t = 10.0  # 10 s silence vs 4 x 1 s median
        (worker,) = monitor.snapshot()["workers"]
        assert worker["stalled"]

    def test_no_stall_once_stage_complete(self):
        clock = FakeClock()
        monitor = LiveMonitor(clock=clock, stall_factor=4.0)
        monitor.note_task("sweep", 0, 1.0, worker_pid=42)
        monitor.on_event(_event(current=8, total=8))
        clock.t = 100.0
        (worker,) = monitor.snapshot()["workers"]
        assert not worker["stalled"]

    def test_eta_from_trailing_median_and_jobs(self):
        monitor = LiveMonitor(clock=FakeClock())
        monitor.note_region("sweep", 8, jobs=2)
        for i in range(2):
            monitor.note_task("sweep", i, 2.0, worker_pid=1)
        monitor.on_event(_event(current=2, total=8))
        # 6 remaining x 2 s median / 2 workers
        assert monitor.eta_seconds() == pytest.approx(6.0)

    def test_eta_none_when_complete(self):
        monitor = LiveMonitor(clock=FakeClock())
        monitor.note_task("sweep", 0, 2.0, worker_pid=1)
        monitor.on_event(_event(current=8, total=8))
        assert monitor.eta_seconds() is None

    def test_failed_attempt_excluded_from_counts_and_eta(self):
        monitor = LiveMonitor(clock=FakeClock())
        monitor.note_region("sweep", 4, jobs=1)
        monitor.note_task("sweep", 0, 50.0, worker_pid=7, ok=False,
                          attempt=0)
        monitor.note_task("sweep", 0, 2.0, worker_pid=7)
        monitor.on_event(_event(current=1, total=4))
        summary = monitor.flight_summary()
        assert summary["stages"]["sweep"]["done"] == 1
        assert summary["stages"]["sweep"]["failed"] == 1
        # The 50 s failed attempt must not pollute the ETA median.
        assert monitor.eta_seconds() == pytest.approx(3 * 2.0)
        (worker,) = monitor.snapshot()["workers"]
        assert worker["tasks"] == 2
        assert worker["failures"] == 1


# -- progress printer regression (zero total) ---------------------------
class TestPrinterZeroTotal:
    def collect(self, *events):
        lines = []
        listener = printer(lines.append)
        for event in events:
            listener.on_event(event)
        return lines

    def test_percent_prefix_with_total(self):
        (line,) = self.collect(_event(current=1, total=4, message="p1"))
        assert line == "[1/4  25%] p1"

    def test_zero_total_prints_bare_message(self):
        # Regression: a zero total must not reach the percent division
        # (ZeroDivisionError used to drop the event entirely).
        (line,) = self.collect(
            _event(current=0, total=0, message="empty sweep")
        )
        assert line == "empty sweep"

    def test_none_total_prints_bare_message(self):
        (line,) = self.collect(
            _event(current=3, total=None, message="open-ended")
        )
        assert line == "open-ended"


# -- ambient monitor gating ---------------------------------------------
class TestAmbientGating:
    def test_observe_event_noop_without_monitor(self):
        assert obs.get_live_monitor() is None
        obs.live_note_task("s", 0, 1.0, 1)  # must not raise

    def test_set_returns_previous(self, ambient_monitor):
        other = LiveMonitor(clock=FakeClock())
        assert obs.set_live_monitor(other) is ambient_monitor
        assert obs.set_live_monitor(ambient_monitor) is other

    def test_suspended_suppresses_and_nests(self, ambient_monitor):
        with obs.live_suspended():
            with obs.live_suspended():
                obs.live_note_task("s", 0, 1.0, 1)
            obs.live_note_task("s", 1, 1.0, 1)
        assert not ambient_monitor.has_data()
        obs.live_note_task("s", 2, 1.0, 1)
        assert ambient_monitor.has_data()


# -- determinism: serial vs parallel, retries ---------------------------
class TestFlightDeterminism:
    def _run_sweep(self, jobs):
        monitor = LiveMonitor(clock=FakeClock())
        previous = obs.set_live_monitor(monitor)
        try:
            result = _small_sweep().run(jobs=jobs)
        finally:
            obs.set_live_monitor(previous)
        return result, monitor

    def test_serial_and_parallel_flights_equal(self):
        serial_result, serial = self._run_sweep(jobs=1)
        pooled_result, pooled = self._run_sweep(jobs=2)
        assert list(serial_result.bers) == list(pooled_result.bers)
        assert serial.flight_records() == pooled.flight_records()
        assert serial.flight_summary() == pooled.flight_summary()
        # Monitoring observed real work on both sides.
        assert serial.flight_summary()["events"] > 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retried_attempt_does_not_double_count(self, jobs):
        # A fault on one attempt, retried clean: flight records and
        # convergence must match the fault-free run exactly; only the
        # failure tally differs (mirroring the probe-merge discard rule).
        _, clean = self._run_sweep(jobs=jobs)
        monitor = LiveMonitor(clock=FakeClock())
        previous = obs.set_live_monitor(monitor)
        previous_retries = perf.set_default_retries(1)
        try:
            with fault_plan(parse_fault_spec("sweep/fail:1@0")):
                result = _small_sweep().run(jobs=jobs)
        finally:
            perf.set_default_retries(previous_retries)
            obs.set_live_monitor(previous)
        assert list(result.bers) == list(self._run_sweep(jobs=jobs)[0].bers)
        assert monitor.flight_records() == clean.flight_records()
        faulted = monitor.flight_summary()
        reference = clean.flight_summary()
        assert faulted["points"] == reference["points"]
        assert faulted["stages"]["sweep"]["done"] == \
            reference["stages"]["sweep"]["done"]
        assert faulted["stages"]["sweep"]["failed"] == 1
        assert reference["stages"]["sweep"]["failed"] == 0

    def test_parallel_map_feeds_heartbeats(self, ambient_monitor):
        perf.parallel_map(_square, range(6), jobs=2, stage="hb")
        summary = ambient_monitor.flight_summary()
        assert summary["stages"]["hb"]["done"] == 6
        assert summary["stages"]["hb"]["failed"] == 0
        assert len(ambient_monitor.snapshot()["workers"]) >= 1


# -- dashboard rendering ------------------------------------------------
class TestDashboard:
    def test_renders_points_workers_and_stall(self):
        clock = FakeClock()
        monitor = LiveMonitor(clock=clock, stall_factor=2.0)
        monitor.note_region("sweep", 4, jobs=2)
        monitor.note_task("sweep", 0, 1.0, worker_pid=101)
        monitor.on_event(_ber_event(1, errors=20, bits=1_000))
        clock.t = 60.0
        text = render_dashboard(monitor.snapshot())
        assert "snr_db=4" in text
        assert "running" in text
        assert "pid 101" in text
        assert "STALLED" in text
        assert "eta" in text

    def test_empty_snapshot_renders(self):
        text = render_dashboard(LiveMonitor(clock=FakeClock()).snapshot())
        assert text.startswith("live: 0 events")


# -- flight.jsonl store round-trip --------------------------------------
class TestFlightStore:
    def _store_run(self, tmp_path, with_flight):
        store = obs.RunStore(tmp_path / "runs")
        writer = store.create(kind="sweep", name="t", seed=1,
                              config={}, command="test")
        writer.add_kpis({"ber": 0.25})
        if with_flight:
            monitor = LiveMonitor(clock=FakeClock())
            monitor.on_event(_ber_event(1, errors=25, bits=100, total=1))
            writer.add_flight(monitor.flight_records())
        record = writer.finalize(tracer=None, registry=None)
        return store, record

    def test_round_trip_and_integrity(self, tmp_path):
        store, record = self._store_run(tmp_path, with_flight=True)
        loaded = store.load_run(record.run_id)
        assert loaded.flight == record.flight
        assert loaded.flight[0]["convergence"]["point"] == "snr_db=4"
        assert loaded.digest == loaded.stored_digest
        path = tmp_path / "runs" / record.run_id / "flight.jsonl"
        assert path.exists()
        assert json.loads(path.read_text().splitlines()[0])["seq"] == 0

    def test_no_flight_no_file_and_digest_unchanged(self, tmp_path):
        store, record = self._store_run(tmp_path, with_flight=False)
        assert not (tmp_path / "runs" / record.run_id
                    / "flight.jsonl").exists()
        loaded = store.load_run(record.run_id)
        assert loaded.flight == []
        assert loaded.digest == loaded.stored_digest

    def test_report_gains_run_timeline_section(self, tmp_path):
        from repro.obs.report import run_sections

        store, record = self._store_run(tmp_path, with_flight=True)
        titles = [s.title for s in run_sections(store.load_run(record.run_id))]
        assert "Run timeline" in titles
        store, record = self._store_run(tmp_path / "b", with_flight=False)
        titles = [s.title for s in run_sections(store.load_run(record.run_id))]
        assert "Run timeline" not in titles


# -- OpenMetrics exposition ---------------------------------------------
class TestOpenMetrics:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("events", "event count").inc(3, stage="sweep")
        registry.gauge("ber", "bit error rate").set(1e-3, point="snr=4")
        hist = registry.histogram("task_s", "task seconds")
        for value in (0.1, 0.2, 0.3, 0.4):
            hist.observe(value)
        return registry

    def test_round_trips_through_strict_parser(self):
        text = openmetrics_text(self._registry())
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert families["events"]["type"] == "counter"
        (sample,) = families["events"]["samples"]
        assert sample["name"] == "events_total"
        assert sample["labels"] == {"stage": "sweep"}
        assert sample["value"] == 3.0
        assert families["ber"]["samples"][0]["value"] == pytest.approx(1e-3)

    def test_histogram_exports_as_summary_quantiles(self):
        families = parse_openmetrics(openmetrics_text(self._registry()))
        assert families["task_s"]["type"] == "summary"
        names = {s["name"] for s in families["task_s"]["samples"]}
        assert {"task_s", "task_s_count", "task_s_sum"} <= names
        quantiles = {
            s["labels"]["quantile"] for s in families["task_s"]["samples"]
            if "quantile" in s["labels"]
        }
        assert quantiles == {"0.5", "0.9", "0.99"}

    def test_monitor_gauges_merged_without_mutating_registry(self):
        registry = self._registry()
        monitor = LiveMonitor(clock=FakeClock())
        monitor.on_event(_ber_event(1, errors=25, bits=100))
        families = parse_openmetrics(openmetrics_text(registry, monitor))
        assert families["live_flight_events"]["samples"][0]["value"] == 1.0
        assert "live_flight_events" not in registry.as_dict()

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.gauge("g", "h").set(1.0, name='quo"te\\back\nline')
        (sample,) = parse_openmetrics(
            openmetrics_text(registry)
        )["g"]["samples"]
        assert sample["labels"]["name"] == 'quo"te\\back\nline'

    @pytest.mark.parametrize("text,why", [
        ("g 1\n", "EOF"),
        ("# TYPE g gauge\ng 1\n", "EOF"),
        ("orphan 1\n# EOF\n", "undeclared"),
        ("# TYPE c counter\nc 1\n# EOF\n", "_total"),
        ("# TYPE g widget\ng 1\n# EOF\n", "type"),
        ("# TYPE g gauge\ng notafloat\n# EOF\n", "float"),
    ])
    def test_strict_parser_rejects(self, text, why):
        with pytest.raises(ValueError):
            parse_openmetrics(text)


class TestMetricsServer:
    def test_serves_parseable_exposition(self):
        registry = MetricsRegistry()
        registry.gauge("up", "liveness").set(1.0)
        monitor = LiveMonitor(clock=FakeClock())
        monitor.on_event(_event(current=1))
        server = MetricsServer(
            port=0, registry_fn=lambda: registry,
            monitor_fn=lambda: monitor,
        ).start()
        try:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "application/openmetrics-text"
                )
                families = parse_openmetrics(resp.read().decode())
            assert families["up"]["samples"][0]["value"] == 1.0
            assert families["live_flight_events"]["samples"][0]["value"] \
                == 1.0
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
        finally:
            server.stop()


# -- cross-run KPI trends -----------------------------------------------
class TestKpiTrend:
    def _store(self, tmp_path):
        store = obs.RunStore(tmp_path / "runs")
        for i, value in enumerate((0.3, 0.2, 0.1)):
            writer = store.create(
                kind="bench" if i == 1 else "sweep", name=f"r{i}",
                seed=i, config={}, command="test",
            )
            writer.add_kpis({"ber": value, "wall_s": float(i)})
            writer.finalize(tracer=None, registry=None)
        return store

    def test_trajectory_in_chronological_order(self, tmp_path):
        trend = kpi_trend(self._store(tmp_path), "ber")
        assert [s["value"] for s in trend["ber"]] == [0.3, 0.2, 0.1]

    def test_glob_and_kind_filters(self, tmp_path):
        store = self._store(tmp_path)
        assert set(kpi_trend(store, "*")) == {"ber", "wall_s"}
        only_sweep = kpi_trend(store, "ber", kinds=["sweep"])
        assert [s["value"] for s in only_sweep["ber"]] == [0.3, 0.1]
        excluded = kpi_trend(store, "ber", kinds=["!bench"])
        assert [s["value"] for s in excluded["ber"]] == [0.3, 0.1]

    def test_last_trims_series(self, tmp_path):
        trend = kpi_trend(self._store(tmp_path), "ber", last=2)
        assert [s["value"] for s in trend["ber"]] == [0.2, 0.1]

    def test_kind_selected(self):
        assert _kind_selected("sweep", ["sweep"])
        assert not _kind_selected("point", ["sweep"])
        assert not _kind_selected("point", ["!point"])
        assert _kind_selected("sweep", ["!point"])

    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert len(sparkline([1.0, 2.0, 3.0])) == 3
        flat = sparkline([5.0, 5.0])
        assert len(set(flat)) == 1


# -- CLI integration ----------------------------------------------------
class TestCliLive:
    def test_live_run_stores_flight_and_watch_trend(self, tmp_path,
                                                    capsys):
        from repro.cli import main

        store = str(tmp_path / "runs")
        assert main(["--live", "--store", store, "--seed", "7",
                     "fig5", "--packets", "1"]) == 0
        err = capsys.readouterr().err
        assert "live:" in err
        run_dirs = [
            p for p in (tmp_path / "runs").iterdir()
            if p.is_dir() and p.name.startswith("fig5")
        ]
        assert any((d / "flight.jsonl").exists() for d in run_dirs)
        # The spool is cleaned up after a successful run.
        assert not list((tmp_path / "runs" / "live").glob("*.jsonl"))

        assert main(["watch", "latest", "--store", store, "--once"]) == 0
        out = capsys.readouterr().out
        assert "live:" in out and "converged" in out

        assert main(["runs", "trend", "*ber_max", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "ber_max" in out and "1 run(s)" in out

    def test_openmetrics_file_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "om.txt"
        assert main(["--live", "--openmetrics", str(path),
                     "fig5", "--packets", "1"]) == 0
        capsys.readouterr()
        families = parse_openmetrics(path.read_text())
        assert any(name.startswith("live_") for name in families)

    def test_live_gauges_ignored_by_regression_default(self):
        assert any(
            pattern.startswith("live_")
            for pattern in obs.RegressionConfig().metric_ignore
        )
