"""Tests for noise generation (repro.rf.noise)."""

import numpy as np
import pytest

from repro.rf.noise import (
    BOLTZMANN,
    NoiseSource,
    flicker_noise,
    noise_figure_to_added_power,
    thermal_noise_power,
    thermal_noise_psd_dbm_hz,
    white_noise,
)


class TestThermalFloor:
    def test_kTB(self):
        assert thermal_noise_power(1.0) == pytest.approx(BOLTZMANN * 290.0)

    def test_minus_174_dbm_hz(self):
        assert thermal_noise_psd_dbm_hz() == pytest.approx(-174.0, abs=0.1)

    def test_20mhz_floor(self):
        # kTB over 20 MHz is about -101 dBm.
        p = thermal_noise_power(20e6)
        assert 10 * np.log10(p / 1e-3) == pytest.approx(-101.0, abs=0.2)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            thermal_noise_power(-1.0)


class TestWhiteNoise:
    def test_power_accuracy(self):
        rng = np.random.default_rng(0)
        n = white_noise(200_000, 2e-6, rng)
        assert np.mean(np.abs(n) ** 2) == pytest.approx(2e-6, rel=0.02)

    def test_zero_power(self):
        rng = np.random.default_rng(1)
        n = white_noise(100, 0.0, rng)
        assert not n.any()

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            white_noise(10, -1.0, np.random.default_rng(0))

    def test_circular_symmetry(self):
        rng = np.random.default_rng(2)
        n = white_noise(100_000, 1.0, rng)
        assert np.mean(n.real**2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(n.imag**2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(n.real * n.imag)) < 0.01


class TestFlickerNoise:
    def test_total_power_normalized(self):
        rng = np.random.default_rng(3)
        n = flicker_noise(65536, 5e-7, 1e6, 80e6, rng)
        assert np.mean(np.abs(n) ** 2) == pytest.approx(5e-7, rel=1e-6)

    def test_spectrum_slopes_down(self):
        rng = np.random.default_rng(4)
        n = flicker_noise(1 << 16, 1.0, 2e6, 80e6, rng)
        spectrum = np.abs(np.fft.fft(n)) ** 2
        freqs = np.fft.fftfreq(n.size, 1 / 80e6)
        low = spectrum[(np.abs(freqs) > 1e4) & (np.abs(freqs) < 1e5)].mean()
        high = spectrum[(np.abs(freqs) > 1e7) & (np.abs(freqs) < 3e7)].mean()
        assert low > 10 * high

    def test_empty(self):
        assert flicker_noise(0, 1.0, 1e6, 80e6, np.random.default_rng(0)).size == 0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            flicker_noise(16, -1.0, 1e6, 80e6, np.random.default_rng(0))


class TestNoiseSource:
    def test_combined_power(self):
        rng = np.random.default_rng(5)
        src = NoiseSource(
            white_power_watts=1e-6,
            flicker_power_watts=5e-7,
            flicker_corner_hz=1e6,
        )
        n = src.generate(1 << 16, 80e6, rng)
        assert np.mean(np.abs(n) ** 2) == pytest.approx(1.5e-6, rel=0.1)

    def test_silent_source(self):
        src = NoiseSource()
        n = src.generate(128, 80e6, np.random.default_rng(0))
        assert not n.any()


class TestNoiseFigure:
    def test_zero_nf_adds_nothing(self):
        assert noise_figure_to_added_power(0.0, 20e6) == 0.0

    def test_3db_doubles_floor(self):
        added = noise_figure_to_added_power(10 * np.log10(2.0), 20e6)
        assert added == pytest.approx(thermal_noise_power(20e6), rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            noise_figure_to_added_power(-1.0, 20e6)
