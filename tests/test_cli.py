"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(subparsers.choices)
        assert commands == {
            "quickstart", "fig5", "fig6", "table2", "sensitivity",
            "flow", "netlist", "campaign", "profile", "runs", "report",
            "qa", "probe", "watch", "rare", "scenario",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.rate == 54
        assert args.level == -60.0


class TestCommands:
    def test_quickstart_clean_link(self, capsys):
        code = main(["quickstart", "--rate", "24", "--bytes", "60",
                     "--level", "-55"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0/480 bit errors" in out

    def test_quickstart_dead_link(self, capsys):
        code = main(["quickstart", "--rate", "54", "--bytes", "60",
                     "--level", "-99"])
        assert code == 1

    def test_netlist_emits_module(self, capsys):
        code = main(["netlist"])
        captured = capsys.readouterr()
        assert code == 0
        assert "module double_conversion_receiver" in captured.out
        assert "not supported in transient" in captured.err

    def test_netlist_spectre_target_silent(self, capsys):
        main(["netlist", "--target", "spectre"])
        assert capsys.readouterr().err == ""

    def test_table2_prints_slowdown(self, capsys):
        code = main(["table2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown" in out

    def test_sensitivity_single_rate(self, capsys):
        code = main(["sensitivity", "--rates", "24", "--packets", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_fig6_runs(self, capsys):
        code = main(["fig6", "--packets", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adjacent +16 dB" in out
        assert "frontend.lna_p1db_dbm" in out


class TestObservability:
    def test_trace_writes_manifest_and_spans(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        trace = tmp_path / "run.jsonl"
        code = main([
            "--trace", str(trace),
            "quickstart", "--rate", "24", "--bytes", "60", "--level", "-55",
        ])
        capsys.readouterr()
        assert code == 0
        records = read_jsonl(trace)
        assert records[0]["type"] == "manifest"
        assert records[0]["seed"] == 0
        assert records[0]["run_id"].startswith("repro-")
        spans = [r for r in records if r["type"] == "span"]
        assert any(r["name"] == "run:quickstart" for r in spans)

    def test_trace_captures_block_spans_and_progress(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        trace = tmp_path / "fig5.jsonl"
        code = main(["--trace", str(trace), "fig5", "--packets", "1"])
        capsys.readouterr()
        assert code == 0
        records = read_jsonl(trace)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "block:receiver" in span_names
        assert "block:rf_frontend" in span_names
        assert "sweep:point" in span_names
        progress = [
            r for r in records
            if r["type"] == "event" and r["name"] == "progress"
        ]
        by_stage = {}
        for r in progress:
            by_stage.setdefault(r["attributes"]["stage"], []).append(r)
        # One per sweep point, plus the per-chunk BER accumulation
        # events that feed live convergence tracking.
        assert len(by_stage["sweep"]) == 6  # six filter bandwidths
        assert all("ber" in r["attributes"] for r in by_stage["sweep"])
        assert len(by_stage["ber"]) == 6  # one chunk per point at 1 packet
        assert all(
            "bit_errors" in r["attributes"] for r in by_stage["ber"]
        )

    def test_metrics_json(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code = main(["--metrics", str(metrics), "table2"])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["manifest"]["run_id"].startswith("repro-")
        wall = payload["metrics"]["cosim_wall_seconds"]
        phases = {
            (s["labels"]["mode"], s["labels"]["phase"])
            for s in wall["series"]
        }
        assert phases == {
            ("cosim", "stimulus"), ("cosim", "rf"), ("cosim", "dsp"),
            ("system", "stimulus"), ("system", "rf"), ("system", "dsp"),
        }
        assert payload["metrics"]["cosim_packets"]["kind"] == "counter"

    def test_profile_prints_block_table(self, capsys):
        code = main(["profile", "fig5", "--packets", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-block time breakdown (fig5)" in out
        assert "block" in out and "total [s]" in out and "share" in out
        assert "receiver" in out
        assert "rf_frontend" in out

    def test_disabled_instrumentation_bit_identical(self, capsys):
        main(["fig5", "--packets", "1"])
        plain = capsys.readouterr().out
        main(["profile", "fig5", "--packets", "1"])
        profiled = capsys.readouterr().out
        # The profiled run prints the identical experiment output (same
        # BER table line for line) before the breakdown.
        assert plain.strip() in profiled

    def test_tracer_restored_after_run(self, tmp_path, capsys):
        from repro import obs
        from repro.obs.tracer import NullTracer

        main(["--trace", str(tmp_path / "t.jsonl"), "netlist"])
        capsys.readouterr()
        assert isinstance(obs.get_tracer(), NullTracer)


class TestRunStoreCli:
    def _store_fig5(self, store, capsys):
        code = main(["--store", str(store), "fig5", "--packets", "1"])
        err = capsys.readouterr().err
        assert code == 0
        assert "run stored: fig5-" in err
        return store

    def test_store_creates_run_and_lists_it(self, tmp_path, capsys):
        store = self._store_fig5(tmp_path / "runs", capsys)
        code = main(["runs", "list", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig5-" in out and "sweep" not in out.splitlines()[0]
        code = main(["runs", "show", "latest", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "integrity" in out

    def test_self_diff_is_zero_and_passes(self, tmp_path, capsys):
        store = self._store_fig5(tmp_path / "runs", capsys)
        code = main(["runs", "diff", "latest", "latest",
                     "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 nonzero deltas" in out
        assert "0 over tolerance" in out

    def test_tampered_kpis_fail_diff(self, tmp_path, capsys):
        store = self._store_fig5(tmp_path / "runs", capsys)
        run_dir = next(p for p in store.iterdir() if p.is_dir())
        kpis_path = run_dir / "kpis.json"
        kpis = json.loads(kpis_path.read_text())
        key = sorted(kpis)[0]
        kpis[key] = kpis[key] + 0.25  # inject a BER regression
        kpis_path.write_text(json.dumps(kpis))
        code = main(["runs", "diff", "latest", "latest",
                     "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "integrity" in out

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        store = self._store_fig5(tmp_path / "runs", capsys)
        code = main(["runs", "diff", "latest", "nope-000",
                     "--store", str(store)])
        capsys.readouterr()
        assert code == 2

    def test_injected_abort_exits_70(self, tmp_path, capsys):
        code = main(["--store", str(tmp_path / "runs"),
                     "--resume", "--inject-faults", "sweep/abort:3",
                     "fig5", "--packets", "1"])
        err = capsys.readouterr().err
        assert code == 70
        assert "interrupted" in err

    def test_unrecovered_task_failure_exits_71(self, capsys):
        code = main(["--inject-faults", "sweep/fail:0",
                     "fig5", "--packets", "1"])
        err = capsys.readouterr().err
        assert code == 71
        assert "task failed after retries" in err
        assert "InjectedFault" in err

    def test_faulted_retry_run_diffs_clean_against_baseline(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "runs")
        assert main(["--store", store, "--seed", "7",
                     "fig5", "--packets", "1"]) == 0
        err = capsys.readouterr().err
        baseline = err.split("run stored: ")[1].split(" ")[0]
        assert main(["--store", store, "--seed", "7", "--jobs", "2",
                     "--retries", "1",
                     "--inject-faults", "sweep/fail:1@0,sweep/fail:3@0",
                     "fig5", "--packets", "1"]) == 0
        capsys.readouterr()
        code = main(["runs", "diff", baseline, "latest",
                     "--store", store, "--no-timing"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 nonzero deltas" in out

    def test_resume_after_interrupt_diffs_clean(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(["--store", store, "--seed", "7",
                     "fig5", "--packets", "1"]) == 0
        err = capsys.readouterr().err
        baseline = err.split("run stored: ")[1].split(" ")[0]
        assert main(["--store", store, "--seed", "7", "--resume",
                     "--inject-faults", "sweep/abort:3",
                     "fig5", "--packets", "1"]) == 70
        capsys.readouterr()
        assert main(["--store", store, "--seed", "7", "--resume",
                     "fig5", "--packets", "1"]) == 0
        err = capsys.readouterr().err
        resumed = err.split("run stored: ")[1].split(" ")[0]
        code = main(["runs", "diff", baseline, resumed, "--store", store,
                     "--no-timing", "--no-metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 nonzero deltas" in out

    def test_gc_keeps_newest(self, tmp_path, capsys):
        store = tmp_path / "runs"
        self._store_fig5(store, capsys)
        code = main(["--store", str(store), "quickstart", "--rate", "24",
                     "--bytes", "60", "--level", "-55"])
        capsys.readouterr()
        assert code == 0
        code = main(["runs", "gc", "--keep", "1", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "removed fig5-" in out
        code = main(["runs", "list", "--store", str(store)])
        out = capsys.readouterr().out
        assert "quickstart-" in out and "fig5-" not in out

    def test_report_markdown_and_chrome_trace(self, tmp_path, capsys):
        store = self._store_fig5(tmp_path / "runs", capsys)
        md = tmp_path / "report.md"
        ct = tmp_path / "trace.json"
        code = main(["report", "latest", "--store", str(store),
                     "--out", str(md), "--chrome-trace", str(ct)])
        capsys.readouterr()
        assert code == 0
        text = md.read_text()
        assert text.startswith("# Run fig5-")
        assert "| field | value |" in text
        doc = json.loads(ct.read_text())
        assert doc["traceEvents"]
        assert all(e["ph"] in ("X", "i") for e in doc["traceEvents"])

    def test_report_html(self, tmp_path, capsys):
        store = self._store_fig5(tmp_path / "runs", capsys)
        code = main(["report", "latest", "--html", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "<table>" in out and "</html>" in out

    def test_profile_chrome_trace_export(self, tmp_path, capsys):
        ct = tmp_path / "profile-trace.json"
        code = main(["profile", "fig5", "--packets", "1",
                     "--chrome-trace", str(ct)])
        capsys.readouterr()
        assert code == 0
        doc = json.loads(ct.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "block:receiver" in names
        durations = [e["dur"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert durations and all(d >= 0 for d in durations)

    def test_ambient_writer_restored_after_run(self, tmp_path, capsys):
        from repro import obs

        self._store_fig5(tmp_path / "runs", capsys)
        assert obs.current_writer() is None
