"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(subparsers.choices)
        assert commands == {
            "quickstart", "fig5", "fig6", "table2", "sensitivity",
            "flow", "netlist", "campaign",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.rate == 54
        assert args.level == -60.0


class TestCommands:
    def test_quickstart_clean_link(self, capsys):
        code = main(["quickstart", "--rate", "24", "--bytes", "60",
                     "--level", "-55"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0/480 bit errors" in out

    def test_quickstart_dead_link(self, capsys):
        code = main(["quickstart", "--rate", "54", "--bytes", "60",
                     "--level", "-99"])
        assert code == 1

    def test_netlist_emits_module(self, capsys):
        code = main(["netlist"])
        captured = capsys.readouterr()
        assert code == 0
        assert "module double_conversion_receiver" in captured.out
        assert "not supported in transient" in captured.err

    def test_netlist_spectre_target_silent(self, capsys):
        main(["netlist", "--target", "spectre"])
        assert capsys.readouterr().err == ""

    def test_table2_prints_slowdown(self, capsys):
        code = main(["table2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown" in out

    def test_sensitivity_single_rate(self, capsys):
        code = main(["sensitivity", "--rates", "24", "--packets", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_fig6_runs(self, capsys):
        code = main(["fig6", "--packets", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adjacent +16 dB" in out
        assert "frontend.lna_p1db_dbm" in out
