"""Tests for analog filter models (repro.rf.filters)."""

import numpy as np
import pytest

from repro.rf.filters import (
    BandwidthLimitError,
    butterworth_highpass,
    chebyshev_bandpass,
    chebyshev_lowpass,
    wideband_bandpass,
)
from repro.rf.signal import Signal


def _tone(f, fs=80e6, n=16384):
    t = np.arange(n) / fs
    return Signal(np.exp(2j * np.pi * f * t), fs)


def _gain_db(filt, f, fs=80e6):
    out = filt.process(_tone(f, fs))
    settled = out.samples[4096:]
    return 10 * np.log10(np.mean(np.abs(settled) ** 2))


class TestChebyshevLowpass:
    def test_passband_nearly_flat(self):
        filt = chebyshev_lowpass(8.6e6, 80e6, order=7, ripple_db=0.5)
        assert _gain_db(filt, 1e6) == pytest.approx(0.0, abs=0.6)
        assert _gain_db(filt, 7e6) == pytest.approx(0.0, abs=0.6)

    def test_stopband_attenuates(self):
        filt = chebyshev_lowpass(8.6e6, 80e6, order=7)
        assert _gain_db(filt, 20e6) < -60.0

    def test_edge_has_ripple_level(self):
        filt = chebyshev_lowpass(10e6, 80e6, order=5, ripple_db=1.0)
        g = _gain_db(filt, 9.9e6)
        assert -2.0 < g < 0.5

    def test_negative_frequencies_symmetric(self):
        # Real-coefficient filter: same response at +/-f on the envelope.
        filt = chebyshev_lowpass(8e6, 80e6)
        assert _gain_db(filt, 5e6) == pytest.approx(_gain_db(filt, -5e6), abs=0.1)

    @pytest.mark.parametrize("edge", [0.0, -1e6, 40e6, 50e6])
    def test_invalid_edges(self, edge):
        with pytest.raises(ValueError):
            chebyshev_lowpass(edge, 80e6)

    def test_frequency_response_helper(self):
        filt = chebyshev_lowpass(8e6, 80e6)
        freqs, h = filt.frequency_response(80e6, n_points=512)
        assert freqs.size == h.size == 512
        mid = np.argmin(np.abs(freqs))
        assert abs(h[mid]) == pytest.approx(1.0, abs=0.12)

    def test_group_delay_positive(self):
        filt = chebyshev_lowpass(8e6, 80e6, order=7)
        gd = filt.group_delay_samples(1e6, 80e6)
        assert gd > 0


class TestHighpass:
    def test_blocks_dc(self):
        filt = butterworth_highpass(120e3, 80e6, order=2)
        dc = Signal(np.ones(32768, complex), 80e6)
        out = filt.process(dc)
        assert np.mean(np.abs(out.samples[16384:]) ** 2) < 1e-5

    def test_passes_band(self):
        filt = butterworth_highpass(120e3, 80e6, order=2)
        assert _gain_db(filt, 5e6) == pytest.approx(0.0, abs=0.1)

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            butterworth_highpass(0.0, 80e6)


class TestBandpassRestriction:
    def test_narrow_bandpass_ok(self):
        filt = chebyshev_bandpass(10e6, 4e6, 80e6)
        assert _gain_db(filt, 10e6) == pytest.approx(0.0, abs=1.0)
        assert _gain_db(filt, 2e6) < -25.0

    def test_wideband_request_rejected(self):
        # The Spectre rflib limitation: bandwidth > 0.5 * center.
        with pytest.raises(BandwidthLimitError):
            chebyshev_bandpass(10e6, 6e6, 80e6)

    def test_workaround_composite(self):
        # The paper's workaround: high-pass + low-pass composition.
        filt = wideband_bandpass(1e6, 12e6, 80e6)
        assert _gain_db(filt, 6e6) == pytest.approx(0.0, abs=1.0)
        assert _gain_db(filt, 0.1e6) < -10.0
        assert _gain_db(filt, 30e6) < -20.0

    def test_workaround_bad_edges(self):
        with pytest.raises(ValueError):
            wideband_bandpass(5e6, 2e6, 80e6)

    def test_descriptions(self):
        assert "lowpass" in chebyshev_lowpass(8e6, 80e6).description
        assert "highpass" in butterworth_highpass(1e5, 80e6).description
        assert "composite" in wideband_bandpass(1e6, 9e6, 80e6).description
