"""Tests for run-to-run regression detection (repro.obs.regress)."""

import json

from repro.obs.regress import (
    RegressionConfig,
    compare_runs,
    curve_drift_decades,
    flatten_metrics,
    shift_at_fixed_ber,
)
from repro.obs.store import RunStore


def _run(store, ber=1e-3, wall=None, curve=None, name="demo"):
    writer = store.create(kind="demo", name=name, seed=0)
    writer.add_kpis({"ber": ber})
    if wall is not None:
        writer.add_kpis({"wall_seconds": wall})
    if curve is not None:
        writer.add_curve("ber", curve.get("x_label", "snr_db"),
                         curve["x"], curve["ber"])
    return writer.finalize(tracer=None, registry=None)


class TestCompareRuns:
    def test_self_diff_passes_with_zero_deltas(self, tmp_path):
        store = RunStore(tmp_path)
        record = _run(store, curve={"x": [0.0, 5.0], "ber": [0.1, 0.01]})
        verdict = compare_runs(record, record)
        assert verdict.passed
        assert verdict.nonzero == []
        assert verdict.failures == []
        assert "PASS" in verdict.summary()

    def test_kpi_regression_fails(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store, ber=1e-3)
        cand = _run(store, ber=2e-3)
        verdict = compare_runs(base, cand)
        assert not verdict.passed
        names = [d.name for d in verdict.failures]
        assert any("ber" in n for n in names)

    def test_kpi_tolerance_allows_drift(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store, ber=1e-3)
        cand = _run(store, ber=1.05e-3)
        config = RegressionConfig(kpi_rel_tol=0.1)
        assert compare_runs(base, cand, config).passed

    def test_timing_is_one_sided(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store, wall=1.0)
        faster = _run(store, wall=0.4)
        slower = _run(store, wall=2.0)
        assert compare_runs(base, faster).passed  # faster never fails
        verdict = compare_runs(base, slower)
        assert not verdict.passed
        assert any("wall" in d.name for d in verdict.failures)

    def test_tiny_timings_ignored(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store, wall=0.001)
        slow = _run(store, wall=0.04)  # below timing_min_s
        assert compare_runs(base, slow).passed

    def test_missing_kpi_fails(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store)
        writer = store.create(kind="demo", name="nokpi")
        writer.add_kpis({"other": 1.0})
        cand = writer.finalize(tracer=None, registry=None)
        verdict = compare_runs(base, cand)
        assert not verdict.passed
        notes = " ".join(d.note for d in verdict.failures)
        assert "missing" in notes

    def test_tampered_candidate_fails_on_integrity(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store, ber=1e-3)
        cand = _run(store, ber=5e-4)
        kpis = cand.path / "kpis.json"
        kpis.write_text(json.dumps({"ber": 1e-3}))
        verdict = compare_runs(base, store.load_run(cand.run_id))
        assert not verdict.passed
        assert any(d.kind == "integrity" for d in verdict.failures)

    def test_ber_curve_drift_fails(self, tmp_path):
        store = RunStore(tmp_path)
        base = _run(store, curve={"x": [0.0, 5.0, 10.0],
                                  "ber": [0.1, 0.01, 0.001]})
        cand = _run(store, curve={"x": [0.0, 5.0, 10.0],
                                  "ber": [0.1, 0.08, 0.05]})
        verdict = compare_runs(base, cand)
        assert not verdict.passed

    def test_as_dict_is_json_serializable(self, tmp_path):
        store = RunStore(tmp_path)
        record = _run(store)
        verdict = compare_runs(record, record)
        json.dumps(verdict.as_dict())


class TestCurveMath:
    def test_drift_zero_for_identical(self):
        curve = {"x": [0.0, 5.0], "ber": [0.1, 0.01]}
        assert curve_drift_decades(curve, curve) == 0.0

    def test_drift_one_decade(self):
        base = {"x": [0.0], "ber": [0.01]}
        cand = {"x": [0.0], "ber": [0.1]}
        assert abs(curve_drift_decades(base, cand) - 1.0) < 1e-12

    def test_drift_none_without_common_grid(self):
        assert curve_drift_decades({"x": [0.0], "ber": [0.1]},
                                   {"x": [1.0], "ber": [0.1]}) is None

    def test_shift_matches_db_offset(self):
        # Candidate curve is the baseline shifted right by exactly 2 dB.
        x = [0.0, 2.0, 4.0, 6.0]
        ber = [0.1, 0.03, 0.005, 0.0005]
        base = {"x_label": "snr_db", "x": x, "ber": ber}
        cand = {"x_label": "snr_db", "x": [v + 2.0 for v in x], "ber": ber}
        shift, target = shift_at_fixed_ber(base, cand)
        assert abs(shift - 2.0) < 1e-9
        assert 0.0005 < target < 0.1

    def test_shift_none_when_never_crossing(self):
        base = {"x_label": "snr_db", "x": [0.0, 5.0], "ber": [0.5, 0.4]}
        cand = {"x_label": "snr_db", "x": [0.0, 5.0], "ber": [1e-6, 1e-7]}
        assert shift_at_fixed_ber(base, cand, target=1e-3) is None


class TestFlattenMetrics:
    def test_counter_and_histogram(self):
        metrics = {
            "packets": {
                "kind": "counter",
                "series": [{"labels": {}, "value": 12.0}],
            },
            "ber": {
                "kind": "histogram",
                "series": [{
                    "labels": {"rate": 24},
                    "count": 2, "sum": 0.3, "min": 0.1, "max": 0.2,
                    "p50": 0.15, "p90": 0.19, "p99": 0.2,
                }],
            },
        }
        flat = flatten_metrics(metrics)
        assert flat["packets"] == 12.0
        assert flat["ber.p50{rate=24}"] == 0.15
        assert flat["ber.count{rate=24}"] == 2
