"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.budget import CascadeAnalysis, Stage
from repro.dsp.mac import MacFrame, parse_mpdu
from repro.flow.netlist import (
    NetlistError,
    frontend_to_netlist,
    netlist_to_config,
    parse_netlist,
)
from repro.rf.frontend import FrontendConfig

mac_bodies = st.binary(min_size=0, max_size=256)
addresses = st.binary(min_size=6, max_size=6)


class TestMacProperties:
    @given(
        body=mac_bodies,
        dst=addresses,
        src=addresses,
        seq=st.integers(0, 4095),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, body, dst, src, seq):
        frame = MacFrame(
            destination=dst, source=src, sequence=seq, body=body
        )
        parsed = parse_mpdu(frame.to_bytes())
        assert parsed.fcs_ok
        assert parsed.frame.body == body
        assert parsed.frame.destination == dst
        assert parsed.frame.source == src
        assert parsed.frame.sequence == seq

    @given(
        body=st.binary(min_size=1, max_size=64),
        bit=st.integers(0, 7),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_bit_flip_always_caught(self, body, bit, seed):
        mpdu = MacFrame(body=body).to_bytes()
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(0, mpdu.size))
        corrupted = mpdu.copy()
        corrupted[pos] ^= 1 << bit
        assert not parse_mpdu(corrupted).fcs_ok


class TestBudgetProperties:
    @given(
        gains=st.lists(st.floats(-5.0, 25.0), min_size=1, max_size=5),
        nfs=st.lists(st.floats(0.0, 15.0), min_size=1, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_cascade_nf_at_least_first_stage(self, gains, nfs):
        n = min(len(gains), len(nfs))
        stages = [
            Stage(f"s{i}", gains[i], nfs[i]) for i in range(n)
        ]
        analysis = CascadeAnalysis(stages)
        assert analysis.total_nf_db >= nfs[0] - 1e-9

    @given(
        gains=st.lists(st.floats(-5.0, 25.0), min_size=2, max_size=5),
        nfs=st.lists(st.floats(0.0, 15.0), min_size=2, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_cumulative_nf_monotone(self, gains, nfs):
        n = min(len(gains), len(nfs))
        stages = [Stage(f"s{i}", gains[i], nfs[i]) for i in range(n)]
        rows = CascadeAnalysis(stages).rows()
        nf_values = [r.cumulative_nf_db for r in rows]
        for earlier, later in zip(nf_values, nf_values[1:]):
            assert later >= earlier - 1e-9

    @given(
        gain=st.floats(-10.0, 30.0),
        iip3=st.floats(-30.0, 30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_stage_identity(self, gain, iip3):
        a = CascadeAnalysis([Stage("x", gain, 0.0, iip3)])
        assert a.total_iip3_dbm == pytest.approx(iip3, abs=1e-6)


class TestNetlistFuzz:
    @given(
        line_index=st.integers(2, 9),
        mutation=st.sampled_from(
            ["truncate", "rename", "garbage_value", "drop_paren"]
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_mutations_never_crash(self, line_index, mutation):
        """Mutated netlists either parse or raise NetlistError — never
        anything else."""
        lines = frontend_to_netlist(FrontendConfig()).splitlines()
        if line_index >= len(lines):
            line_index = len(lines) - 2
        line = lines[line_index]
        if mutation == "truncate":
            lines[line_index] = line[: len(line) // 2]
        elif mutation == "rename":
            lines[line_index] = line.replace("gain_db", "gian_db", 1)
        elif mutation == "garbage_value":
            lines[line_index] = line.replace("(16)", "(#!?)", 1)
        elif mutation == "drop_paren":
            lines[line_index] = line.replace(")", "", 1)
        text = "\n".join(lines)
        try:
            netlist_to_config(text)
        except NetlistError:
            pass  # the expected failure mode

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_random_binary_never_crashes_parser(self, seed):
        rng = np.random.default_rng(seed)
        junk = bytes(rng.integers(32, 127, size=200, dtype=np.uint8)).decode()
        try:
            parse_netlist("module x;\n" + junk + "\nendmodule")
        except NetlistError:
            pass


class TestStreamProperties:
    @given(
        n_packets=st.integers(1, 4),
        gap=st.integers(120, 500),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_all_clean_packets_recovered(self, n_packets, gap, seed):
        from repro.dsp.stream import StreamReceiver
        from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu

        rng = np.random.default_rng(seed)
        psdus = [random_psdu(40, rng) for _ in range(n_packets)]
        pieces = [np.zeros(gap, complex)]
        for psdu in psdus:
            pieces.append(
                Transmitter(TxConfig(rate_mbps=12)).transmit(psdu)
            )
            pieces.append(np.zeros(gap, complex))
        samples = np.concatenate(pieces)
        noise = 10 ** (-30 / 20) / np.sqrt(2)
        samples = samples + noise * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
        report = StreamReceiver().receive_stream(samples)
        assert len(report.packets) == n_packets
        for sent, got in zip(psdus, report.psdus):
            assert np.array_equal(sent, got)
