"""Tests for the SpectreRF-style analyses (repro.flow.rfsim)."""

import numpy as np
import pytest

from repro.flow.rfsim import (
    ac_response,
    measure_noise_figure,
    swept_power_compression,
    two_tone_intermod,
)
from repro.rf.amplifier import Amplifier
from repro.rf.filters import chebyshev_lowpass
from repro.rf.nonlinearity import iip3_from_p1db


class TestCompression:
    def test_linear_amp_never_compresses(self):
        amp = Amplifier(gain_db=12.0)
        result = swept_power_compression(amp)
        assert np.isnan(result.input_p1db_dbm)
        assert result.small_signal_gain_db == pytest.approx(12.0, abs=0.05)

    @pytest.mark.parametrize("p1db", [-20.0, -12.0, 0.0])
    def test_p1db_extraction_cubic(self, p1db):
        amp = Amplifier.spw_style(16.0, 0.0, p1db)
        result = swept_power_compression(
            amp, input_dbm=np.arange(p1db - 30, p1db + 8, 1.0)
        )
        assert result.input_p1db_dbm == pytest.approx(p1db, abs=0.2)

    def test_p1db_extraction_rapp(self):
        amp = Amplifier.spectre_style(10.0, 0.0, iip3_dbm=-5.0)
        result = swept_power_compression(amp)
        assert result.input_p1db_dbm == pytest.approx(
            -5.0 - 9.636, abs=0.5
        )

    def test_output_power_monotone(self):
        amp = Amplifier.spw_style(10.0, 0.0, -10.0)
        result = swept_power_compression(amp)
        assert (np.diff(result.output_dbm) > -0.5).all()


class TestIntermod:
    def test_iip3_matches_cubic_model(self):
        amp = Amplifier.spw_style(16.0, 0.0, -12.0)
        result = two_tone_intermod(amp, tone_power_dbm=-40.0)
        expected = iip3_from_p1db(-12.0)
        assert result.iip3_dbm == pytest.approx(expected, abs=0.3)

    def test_oip3_is_iip3_plus_gain(self):
        amp = Amplifier.spw_style(10.0, 0.0, 0.0)
        result = two_tone_intermod(amp, tone_power_dbm=-30.0)
        assert result.oip3_dbm - result.iip3_dbm == pytest.approx(
            result.gain_db, abs=0.01
        )

    def test_im3_below_fundamental(self):
        amp = Amplifier.spw_style(10.0, 0.0, -5.0)
        result = two_tone_intermod(amp, tone_power_dbm=-35.0)
        assert result.im3_dbm < result.fundamental_dbm - 30.0

    def test_extraction_stable_across_drive(self):
        amp = Amplifier.spw_style(12.0, 0.0, -10.0)
        lo = two_tone_intermod(amp, tone_power_dbm=-45.0)
        hi = two_tone_intermod(amp, tone_power_dbm=-35.0)
        assert lo.iip3_dbm == pytest.approx(hi.iip3_dbm, abs=0.7)


class TestNoiseFigure:
    @pytest.mark.parametrize("nf", [2.0, 5.0, 9.0])
    def test_nf_extraction(self, nf):
        amp = Amplifier(gain_db=20.0, noise_figure_db=nf)
        result = measure_noise_figure(
            amp, rng=np.random.default_rng(7), n_trials=12
        )
        assert result.noise_figure_db == pytest.approx(nf, abs=0.4)

    def test_noiseless_nf_zero(self):
        amp = Amplifier(gain_db=15.0)
        result = measure_noise_figure(amp, rng=np.random.default_rng(8))
        assert result.noise_figure_db == pytest.approx(0.0, abs=0.3)

    def test_gain_reported(self):
        amp = Amplifier(gain_db=17.0, noise_figure_db=3.0)
        result = measure_noise_figure(amp, rng=np.random.default_rng(9))
        assert result.gain_db == pytest.approx(17.0, abs=0.2)


class TestAcResponse:
    def test_flat_for_amplifier(self):
        amp = Amplifier(gain_db=6.0)
        gains = ac_response(amp, [1e6, 5e6, 15e6])
        assert np.allclose(np.abs(gains), 10 ** (6.0 / 20.0), rtol=0.02)

    def test_filter_rolloff(self):
        filt = chebyshev_lowpass(8e6, 80e6, order=7)
        gains = ac_response(filt, [1e6, 20e6])
        assert abs(gains[0]) > 0.8
        assert abs(gains[1]) < 0.01

    def test_returns_complex_phase(self):
        filt = chebyshev_lowpass(8e6, 80e6, order=3)
        gains = ac_response(filt, [4e6])
        assert abs(np.angle(gains[0])) > 0.01  # causal filter: phase lag
