"""Tests for the convolutional encoder and puncturing (repro.dsp.convcode)."""

import numpy as np
import pytest

from repro.dsp.convcode import (
    ConvolutionalEncoder,
    depuncture,
    puncture,
)


class TestEncoder:
    def test_output_length(self):
        enc = ConvolutionalEncoder()
        assert enc.encode(np.zeros(10, dtype=np.uint8)).size == 20

    def test_zero_input_zero_output(self):
        enc = ConvolutionalEncoder()
        out = enc.encode(np.zeros(32, dtype=np.uint8))
        assert not out.any()

    def test_impulse_response_matches_generators(self):
        # A single 1 followed by zeros emits the generator taps on each arm.
        enc = ConvolutionalEncoder()
        out = enc.encode(np.array([1, 0, 0, 0, 0, 0, 0], dtype=np.uint8))
        a = out[0::2]
        b = out[1::2]
        # g0 = 133 oct = 1011011 (MSB = current bit).
        assert a.tolist() == [1, 0, 1, 1, 0, 1, 1]
        # g1 = 171 oct = 1111001.
        assert b.tolist() == [1, 1, 1, 1, 0, 0, 1]

    def test_linearity(self):
        # Convolutional codes are linear: enc(x ^ y) == enc(x) ^ enc(y).
        rng = np.random.default_rng(1)
        enc = ConvolutionalEncoder()
        x = rng.integers(0, 2, 100, dtype=np.uint8)
        y = rng.integers(0, 2, 100, dtype=np.uint8)
        assert np.array_equal(enc.encode(x ^ y), enc.encode(x) ^ enc.encode(y))

    def test_known_annex_g_prefix(self):
        # Rate-1/2 encoding of the standard's example SIGNAL bits must be a
        # deterministic self-consistent prefix (regression guard).
        enc = ConvolutionalEncoder()
        bits = np.array([1, 0, 1, 1, 0, 0, 0], dtype=np.uint8)
        out1 = enc.encode(bits)
        out2 = enc.encode(bits)
        assert np.array_equal(out1, out2)


class TestPuncturing:
    def test_rate_half_identity(self):
        coded = np.arange(8) % 2
        assert np.array_equal(puncture(coded, (1, 2)), coded)

    def test_rate_23_length(self):
        coded = np.zeros(24, dtype=np.uint8)
        assert puncture(coded, (2, 3)).size == 18

    def test_rate_34_length(self):
        coded = np.zeros(24, dtype=np.uint8)
        assert puncture(coded, (3, 4)).size == 16

    def test_rate_34_pattern(self):
        # Keep A0 B0 A1 B2 per period of 6 (A0 B0 A1 B1 A2 B2).
        coded = np.arange(6)
        assert puncture(coded, (3, 4)).tolist() == [0, 1, 2, 5]

    def test_rate_23_pattern(self):
        coded = np.arange(4)
        assert puncture(coded, (2, 3)).tolist() == [0, 1, 2]

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            puncture(np.zeros(5), (3, 4))

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            puncture(np.zeros(12), (5, 6))


class TestDepuncture:
    @pytest.mark.parametrize("rate", [(1, 2), (2, 3), (3, 4)])
    def test_roundtrip_positions(self, rate):
        rng = np.random.default_rng(2)
        coded = rng.normal(size=48)
        kept = puncture(coded, rate)
        restored = depuncture(kept, rate, erasure=np.nan)
        # All non-NaN positions must match the original stream.
        mask = ~np.isnan(restored)
        assert np.array_equal(restored[mask], coded[mask])
        assert restored.size == coded.size

    def test_erasure_value(self):
        kept = puncture(np.ones(12), (3, 4))
        restored = depuncture(kept, (3, 4), erasure=0.0)
        # 4 erasures per 12 mother bits (2 per period of 6).
        assert int((restored == 0).sum()) == 4

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            depuncture(np.zeros(5), (3, 4))

    def test_depuncture_length_multiple_of_two(self):
        restored = depuncture(np.zeros(16), (3, 4))
        assert restored.size % 2 == 0
