"""Tests for the ADC model (repro.rf.adc)."""

import numpy as np
import pytest

from repro.rf.adc import Adc
from repro.rf.signal import Signal, dbm_to_watts


class TestQuantization:
    def test_ideal_adc_passthrough(self):
        adc = Adc(n_bits=None)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        out = adc.process(Signal(x, 20e6))
        assert np.allclose(out.samples, x)

    def test_quantization_step(self):
        adc = Adc(n_bits=4, full_scale_dbm=0.0)
        step = adc.clip_amplitude / 8
        x = np.array([0.3 * adc.clip_amplitude + 0j])
        out = adc.process(Signal(x, 20e6))
        assert out.samples[0].real % step == pytest.approx(0.0, abs=1e-12)

    def test_snr_improves_with_bits(self):
        rng = np.random.default_rng(1)
        x = 0.25 * (rng.standard_normal(8192) + 1j * rng.standard_normal(8192))
        x = x * np.sqrt(dbm_to_watts(0.0))
        sig = Signal(x, 20e6)
        def qsnr(bits):
            out = Adc(n_bits=bits, full_scale_dbm=6.0).process(sig)
            err = out.samples - x
            return 10 * np.log10(
                np.mean(np.abs(x) ** 2) / np.mean(np.abs(err) ** 2)
            )
        assert qsnr(10) > qsnr(6) + 20.0  # ~6 dB/bit

    def test_clipping(self):
        adc = Adc(n_bits=8, full_scale_dbm=0.0)
        big = np.array([10 * adc.clip_amplitude * (1 + 1j)])
        out = adc.process(Signal(big, 20e6))
        assert abs(out.samples[0].real) <= adc.clip_amplitude
        assert abs(out.samples[0].imag) <= adc.clip_amplitude

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            Adc(n_bits=0)


class TestDecimation:
    def test_subsampling_length(self):
        adc = Adc(n_bits=None, decimation=4)
        out = adc.process(Signal(np.zeros(400, complex), 80e6))
        assert out.samples.size == 100
        assert out.sample_rate == pytest.approx(20e6)

    def test_subsampling_aliases(self):
        # A 25 MHz tone at 80 MHz subsampled to 20 MHz folds to +5 MHz.
        fs = 80e6
        t = np.arange(4000) / fs
        tone = Signal(np.exp(2j * np.pi * 25e6 * t), fs)
        out = Adc(n_bits=None, decimation=4).process(tone)
        n = out.samples.size
        spec = np.abs(np.fft.fft(out.samples))
        freqs = np.fft.fftfreq(n, 1 / 20e6)
        assert freqs[np.argmax(spec)] == pytest.approx(5e6, abs=20e6 / n)

    def test_anti_alias_removes_out_of_band(self):
        fs = 80e6
        t = np.arange(8000) / fs
        tone = Signal(np.exp(2j * np.pi * 25e6 * t), fs)
        out = Adc(n_bits=None, decimation=4, anti_alias=True).process(tone)
        assert np.mean(np.abs(out.samples) ** 2) < 0.01

    def test_invalid_decimation(self):
        with pytest.raises(ValueError):
            Adc(decimation=0)
