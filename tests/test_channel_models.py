"""Tests for channel models (repro.channel)."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel, ebn0_to_snr_db, snr_to_ebn0_db
from repro.channel.fading import (
    FadingChannel,
    exponential_power_delay_profile,
)
from repro.channel.interference import (
    ADJACENT_EXCESS_DB,
    AdjacentChannelSource,
    InterferenceScenario,
    NON_ADJACENT_EXCESS_DB,
)
from repro.dsp.params import RATES
from repro.rf.noise import thermal_noise_power
from repro.rf.signal import Signal


class TestAwgn:
    def test_snr_accuracy(self):
        rng = np.random.default_rng(0)
        x = np.ones(100_000, dtype=complex)
        out = AwgnChannel(snr_db=10.0).process(Signal(x, 20e6), rng)
        noise = out.samples - x
        snr = 10 * np.log10(1.0 / np.mean(np.abs(noise) ** 2))
        assert snr == pytest.approx(10.0, abs=0.1)

    def test_thermal_floor_level(self):
        rng = np.random.default_rng(1)
        silence = Signal(np.zeros(100_000, complex), 20e6)
        out = AwgnChannel(include_thermal_floor=True).process(silence, rng)
        assert out.power_watts() == pytest.approx(
            thermal_noise_power(20e6), rel=0.05
        )

    def test_no_noise_configured(self):
        rng = np.random.default_rng(2)
        x = np.ones(100, dtype=complex)
        out = AwgnChannel().process(Signal(x, 20e6), rng)
        assert np.allclose(out.samples, x)

    def test_ebn0_snr_roundtrip(self):
        for mbps in RATES:
            r = RATES[mbps]
            assert snr_to_ebn0_db(ebn0_to_snr_db(7.0, r), r) == pytest.approx(7.0)

    def test_higher_rate_needs_less_snr_per_eb(self):
        # More data bits per symbol -> same Eb/N0 maps to higher SNR.
        assert ebn0_to_snr_db(10.0, RATES[54]) > ebn0_to_snr_db(10.0, RATES[6])


class TestFading:
    def test_pdp_normalized(self):
        p = exponential_power_delay_profile(100e-9, 20e6)
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) < 0).all()

    def test_zero_spread_single_tap(self):
        p = exponential_power_delay_profile(0.0, 20e6)
        assert p.size == 1

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            exponential_power_delay_profile(-1e-9, 20e6)

    def test_realization_unit_average_power(self):
        ch = FadingChannel(rms_delay_spread_s=100e-9)
        rng = np.random.default_rng(3)
        taps = ch.realize(20e6, rng)
        assert np.sum(np.abs(taps) ** 2) == pytest.approx(1.0)

    def test_realizations_differ(self):
        ch = FadingChannel()
        rng = np.random.default_rng(4)
        a = ch.realize(20e6, rng)
        b = ch.realize(20e6, rng)
        assert not np.allclose(a, b)

    def test_rician_los_dominates(self):
        ch = FadingChannel(rms_delay_spread_s=50e-9, rice_factor_db=20.0)
        rng = np.random.default_rng(5)
        taps = ch.realize(20e6, rng)
        assert np.abs(taps[0]) ** 2 > 0.4

    def test_process_preserves_length(self):
        ch = FadingChannel()
        rng = np.random.default_rng(6)
        sig = Signal(np.ones(500, complex), 20e6)
        out = ch.process(sig, rng)
        assert out.samples.size == 500


class TestInterference:
    def test_standard_excess_levels(self):
        assert ADJACENT_EXCESS_DB == 16.0
        assert NON_ADJACENT_EXCESS_DB == 32.0

    def test_offset_hz(self):
        assert AdjacentChannelSource(offset_channels=1).offset_hz == 20e6
        assert AdjacentChannelSource(offset_channels=-2).offset_hz == -40e6

    def test_generated_power_level(self):
        rng = np.random.default_rng(7)
        src = AdjacentChannelSource(offset_channels=1, excess_db=16.0,
                                    timing_jitter_samples=0)
        wanted_power = 1e-7
        sig = src.generate(40000, 80e6, wanted_power, rng)
        measured = np.mean(np.abs(sig.samples[sig.samples != 0]) ** 2)
        assert 10 * np.log10(measured / wanted_power) == pytest.approx(16.0, abs=1.0)

    def test_spectrum_centered_at_offset(self):
        rng = np.random.default_rng(8)
        src = AdjacentChannelSource(offset_channels=1)
        sig = src.generate(32768, 80e6, 1e-6, rng)
        spec = np.abs(np.fft.fft(sig.samples)) ** 2
        freqs = np.fft.fftfreq(sig.samples.size, 1 / 80e6)
        centroid = np.sum(freqs * spec) / np.sum(spec)
        assert centroid == pytest.approx(20e6, abs=2e6)

    def test_insufficient_sample_rate_rejected(self):
        rng = np.random.default_rng(9)
        src = AdjacentChannelSource(offset_channels=2)
        with pytest.raises(ValueError):
            src.generate(1000, 80e6, 1e-6, rng)

    def test_scenario_none_is_noop(self):
        rng = np.random.default_rng(10)
        sig = Signal(np.ones(100, complex), 80e6)
        out = InterferenceScenario.none().apply(sig, rng)
        assert np.allclose(out.samples, sig.samples)

    def test_scenario_adjacent_adds_power(self):
        rng = np.random.default_rng(11)
        sig = Signal(np.full(20000, 1e-4 + 0j), 80e6)
        out = InterferenceScenario.adjacent().apply(sig, rng)
        assert out.power_watts() > 5 * sig.power_watts()

    def test_scenario_factories(self):
        adj = InterferenceScenario.adjacent()
        non = InterferenceScenario.non_adjacent()
        assert adj.sources[0].offset_channels == 1
        assert adj.sources[0].excess_db == 16.0
        assert non.sources[0].offset_channels == 2
        assert non.sources[0].excess_db == 32.0
