"""Tests for the Viterbi decoder (repro.dsp.viterbi)."""

import numpy as np
import pytest

from repro.dsp.convcode import ConvolutionalEncoder, depuncture, puncture
from repro.dsp.viterbi import ViterbiDecoder


def _encode_terminated(bits):
    bits = np.concatenate([bits, np.zeros(6, dtype=np.uint8)])
    return bits, ConvolutionalEncoder().encode(bits)


class TestHardDecoding:
    def test_noiseless_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 200, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        decoded = ViterbiDecoder().decode_hard(coded)
        assert np.array_equal(decoded, bits)

    def test_corrects_isolated_errors(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, 300, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        corrupted = coded.copy()
        # Flip well-separated bits (free distance 10 of the K=7 code).
        for pos in (10, 100, 250, 400, 550):
            corrupted[pos] ^= 1
        decoded = ViterbiDecoder().decode_hard(corrupted)
        assert np.array_equal(decoded, bits)

    def test_burst_beyond_capability_fails(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, 100, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        corrupted = coded.copy()
        corrupted[20:40] ^= 1  # 20-bit burst
        decoded = ViterbiDecoder().decode_hard(corrupted)
        assert not np.array_equal(decoded, bits)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            ViterbiDecoder().decode_hard(np.zeros(7))


class TestSoftDecoding:
    def test_soft_roundtrip(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, 150, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        llr = (1.0 - 2.0 * coded) * 5.0
        decoded = ViterbiDecoder().decode_soft(llr)
        assert np.array_equal(decoded, bits)

    def test_soft_beats_hard_with_noise(self):
        rng = np.random.default_rng(4)
        n_trials = 8
        soft_errors = 0
        hard_errors = 0
        for t in range(n_trials):
            data = rng.integers(0, 2, 200, dtype=np.uint8)
            bits, coded = _encode_terminated(data)
            tx = 1.0 - 2.0 * coded
            rx = tx + rng.normal(scale=0.85, size=tx.size)
            soft = ViterbiDecoder().decode_soft(2.0 * rx)
            hard = ViterbiDecoder().decode_hard((rx < 0).astype(np.uint8))
            soft_errors += int((soft != bits).sum())
            hard_errors += int((hard != bits).sum())
        assert soft_errors <= hard_errors

    @pytest.mark.parametrize("rate", [(2, 3), (3, 4)])
    def test_punctured_roundtrip(self, rate):
        rng = np.random.default_rng(5)
        n = 120 if rate == (2, 3) else 120
        data = rng.integers(0, 2, n, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        # Trim to a multiple of the puncture period.
        period = 4 if rate == (2, 3) else 6
        usable = coded.size - coded.size % period
        coded = coded[:usable]
        kept = puncture(coded, rate)
        llr = depuncture((1.0 - 2.0 * kept) * 4.0, rate)
        decoded = ViterbiDecoder(terminated=False).decode_soft(llr)
        assert np.array_equal(decoded, bits[: decoded.size])

    def test_erasures_only_decodes_something(self):
        # All-zero LLRs carry no information; decoding must not crash and
        # must return a valid bit array.
        decoded = ViterbiDecoder(terminated=False).decode_soft(np.zeros(100))
        assert decoded.size == 50
        assert set(np.unique(decoded)) <= {0, 1}


class TestTermination:
    def test_unterminated_tail_needs_best_state(self):
        rng = np.random.default_rng(6)
        data = rng.integers(0, 2, 64, dtype=np.uint8)  # no tail bits
        coded = ConvolutionalEncoder().encode(data)
        llr = (1.0 - 2.0 * coded) * 3.0
        decoded = ViterbiDecoder(terminated=False).decode_soft(llr)
        assert np.array_equal(decoded, data)

    def test_terminated_flag_wrong_degrades_tail(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 2, 64, dtype=np.uint8)
        data[-1] = 1  # ensure a non-zero final state
        coded = ConvolutionalEncoder().encode(data)
        llr = (1.0 - 2.0 * coded) * 3.0
        decoded = ViterbiDecoder(terminated=True).decode_soft(llr)
        # Forcing state 0 at the end corrupts at least the final bit.
        assert not np.array_equal(decoded, data)


def _reference_decode_soft(llr, terminated=True):
    """The pre-vectorization ACS loop, kept verbatim as a bit-exactness
    oracle for the hoisted branch-metric computation."""
    from repro.dsp import viterbi as vt

    llr = np.asarray(llr, dtype=float)
    n_steps = llr.size // 2
    la = llr[0::2]
    lb = llr[1::2]
    metrics = np.full(vt._N_STATES, -np.inf)
    metrics[0] = 0.0
    decisions = np.empty((n_steps, vt._N_STATES), dtype=np.uint8)
    sign_a = 1.0 - 2.0 * vt._PREV_OUT_A
    sign_b = 1.0 - 2.0 * vt._PREV_OUT_B
    prev = vt._PREV_STATE
    for t in range(n_steps):
        branch = sign_a * la[t] + sign_b * lb[t]
        cand = metrics[prev] + branch
        best = np.argmax(cand, axis=1)
        decisions[t] = best
        metrics = cand[np.arange(vt._N_STATES), best]
    state = 0 if terminated else int(np.argmax(metrics))
    bits = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        slot = decisions[t, state]
        bits[t] = vt._PREV_BIT[state, slot]
        state = vt._PREV_STATE[state, slot]
    return bits


class TestVectorizedBranchMetrics:
    """The hoisted (n_steps, 64, 2) branch computation is the same IEEE
    multiply/add per element as the old per-step form, so decoding must
    be bit-exact against it — including on noisy and erasure-laden
    inputs where tie-breaking could expose any numeric difference."""

    @pytest.mark.parametrize("terminated", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_exact_vs_reference(self, terminated, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 240, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        llr = (1.0 - 2.0 * coded) * 2.0 + rng.normal(0.0, 2.0, coded.size)
        llr[rng.integers(0, llr.size, 30)] = 0.0  # erasures
        got = ViterbiDecoder(terminated=terminated).decode_soft(llr)
        want = _reference_decode_soft(llr, terminated=terminated)
        assert np.array_equal(got, want)

    def test_bit_exact_on_hard_input(self):
        rng = np.random.default_rng(9)
        data = rng.integers(0, 2, 120, dtype=np.uint8)
        bits, coded = _encode_terminated(data)
        got = ViterbiDecoder().decode_hard(coded)
        want = _reference_decode_soft(1.0 - 2.0 * coded.astype(float))
        assert np.array_equal(got, want)
