"""Tests for the RF cascade / link-budget analysis (repro.core.budget)."""

import numpy as np
import pytest

from repro.core.budget import CascadeAnalysis, Stage, frontend_cascade
from repro.flow.cosim import cascade_noise_figure_db
from repro.rf.frontend import FrontendConfig
from repro.rf.nonlinearity import effective_iip3_cascade_dbm


class TestCascadeAnalysis:
    def test_single_stage(self):
        a = CascadeAnalysis([Stage("amp", 10.0, 3.0, 5.0)])
        assert a.total_gain_db == pytest.approx(10.0)
        assert a.total_nf_db == pytest.approx(3.0)
        assert a.total_iip3_dbm == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CascadeAnalysis([])

    def test_gain_adds(self):
        a = CascadeAnalysis(
            [Stage("a", 10.0), Stage("b", 8.0), Stage("c", -2.0)]
        )
        assert a.total_gain_db == pytest.approx(16.0)

    def test_friis_matches_cosim_helper(self):
        cfg = FrontendConfig()
        a = frontend_cascade(cfg)
        assert a.total_nf_db == pytest.approx(
            cascade_noise_figure_db(cfg), abs=1e-9
        )

    def test_iip3_matches_rf_helper(self):
        stages = [("LNA", 16.0, -2.4), ("MIX", 8.0, 14.0)]
        a = CascadeAnalysis(
            [Stage(n, g, 0.0, i) for n, g, i in stages]
        )
        expected = effective_iip3_cascade_dbm(
            [(g, i) for _, g, i in stages]
        )
        assert a.total_iip3_dbm == pytest.approx(expected, abs=1e-9)

    def test_first_stage_dominates_nf(self):
        front_heavy = CascadeAnalysis(
            [Stage("lna", 20.0, 2.0), Stage("mix", 0.0, 12.0)]
        )
        # With 20 dB in front, the 12 dB second stage barely matters.
        assert front_heavy.total_nf_db < 3.0

    def test_rows_are_cumulative(self):
        a = frontend_cascade(FrontendConfig())
        rows = a.rows()
        assert [r.name for r in rows] == ["LNA", "MIX1", "MIX2"]
        gains = [r.cumulative_gain_db for r in rows]
        assert gains == sorted(gains)  # all stages have positive gain
        nfs = [r.cumulative_nf_db for r in rows]
        assert nfs == sorted(nfs)  # NF can only grow along the chain

    def test_infinite_iip3_linear_chain(self):
        a = CascadeAnalysis([Stage("ideal", 10.0, 0.0, np.inf)])
        assert a.total_iip3_dbm == np.inf
        assert a.spurious_free_range_db(-30.0) == np.inf


class TestSensitivityEstimate:
    def test_formula(self):
        a = CascadeAnalysis([Stage("amp", 10.0, 4.0)])
        s = a.sensitivity_dbm(required_snr_db=10.0, bandwidth_hz=16.6e6)
        expected = -174.0 + 10 * np.log10(16.6e6) + 4.0 + 10.0
        assert s == pytest.approx(expected, abs=0.1)

    def test_budget_predicts_measured_sensitivity(self):
        """The paper-style cross-check: link budget vs simulated BER.

        24 Mbps (16-QAM r=1/2) needs ~11 dB SNR; the measured sensitivity
        of the default front end (-87 dBm, see bench_sensitivity) must
        agree with the budget within a couple of dB.
        """
        budget = frontend_cascade(FrontendConfig()).sensitivity_dbm(
            required_snr_db=11.0
        )
        assert budget == pytest.approx(-87.0, abs=3.0)

    def test_bandwidth_validation(self):
        a = CascadeAnalysis([Stage("amp", 10.0)])
        with pytest.raises(ValueError):
            a.sensitivity_dbm(10.0, bandwidth_hz=0.0)

    def test_spurious_free_range(self):
        a = CascadeAnalysis([Stage("amp", 0.0, 0.0, 0.0)])
        assert a.spurious_free_range_db(-20.0) == pytest.approx(40.0)


class TestRendering:
    def test_table_renders(self):
        table = frontend_cascade(FrontendConfig()).as_table()
        assert "LNA" in table
        assert "cum NF [dB]" in table
