"""Tests for the minimal MAC framing (repro.dsp.mac)."""

import numpy as np
import pytest

from repro.dsp.mac import (
    FCS_BYTES,
    HEADER_BYTES,
    MacFrame,
    mpdu_for_body,
    parse_mpdu,
)


class TestFraming:
    def test_roundtrip(self):
        frame = MacFrame(
            destination=b"\x00\x11\x22\x33\x44\x55",
            source=b"\xaa\xbb\xcc\xdd\xee\xff",
            bssid=b"\x01\x02\x03\x04\x05\x06",
            sequence=1234,
            body=b"hello WLAN",
            duration=44,
        )
        parsed = parse_mpdu(frame.to_bytes())
        assert parsed.fcs_ok
        assert parsed.frame.destination == frame.destination
        assert parsed.frame.source == frame.source
        assert parsed.frame.bssid == frame.bssid
        assert parsed.frame.sequence == 1234
        assert parsed.frame.body == b"hello WLAN"
        assert parsed.frame.duration == 44

    def test_length(self):
        mpdu = mpdu_for_body(b"x" * 100)
        assert mpdu.size == HEADER_BYTES + 100 + FCS_BYTES

    def test_fcs_catches_corruption(self):
        mpdu = mpdu_for_body(b"payload", sequence=7)
        corrupted = mpdu.copy()
        corrupted[HEADER_BYTES + 2] ^= 0x40
        assert not parse_mpdu(corrupted).fcs_ok
        assert parse_mpdu(mpdu).fcs_ok

    def test_too_short_rejected(self):
        parsed = parse_mpdu(np.zeros(10, dtype=np.uint8))
        assert parsed.frame is None
        assert not parsed.fcs_ok

    def test_bad_address_length(self):
        with pytest.raises(ValueError):
            MacFrame(destination=b"\x00" * 5)

    def test_sequence_range(self):
        with pytest.raises(ValueError):
            MacFrame(sequence=4096)

    def test_empty_body(self):
        parsed = parse_mpdu(MacFrame().to_bytes())
        assert parsed.fcs_ok
        assert parsed.frame.body == b""


class TestMacOverPhy:
    def test_mpdu_through_the_phy(self):
        """Figure 1 end to end: MAC PDU -> PHY -> channel -> PHY -> MAC."""
        from repro.dsp.receiver import Receiver, RxConfig
        from repro.dsp.transmitter import Transmitter, TxConfig

        rng = np.random.default_rng(0)
        mpdu = mpdu_for_body(b"The MAC layer is not discussed" * 4,
                             sequence=99)
        wave = Transmitter(TxConfig(rate_mbps=24)).transmit(mpdu)
        samples = np.concatenate(
            [np.zeros(150, complex), wave, np.zeros(80, complex)]
        )
        noise = 10 ** (-25 / 20) / np.sqrt(2)
        samples = samples + noise * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
        result = Receiver(RxConfig()).receive(samples)
        assert result.success
        parsed = parse_mpdu(result.psdu)
        assert parsed.fcs_ok
        assert parsed.frame.sequence == 99
        assert b"MAC layer" in parsed.frame.body

    def test_fcs_flags_residual_phy_errors(self):
        """Near sensitivity, a decodable-but-errored packet fails the FCS."""
        from repro.dsp.receiver import Receiver, RxConfig
        from repro.dsp.transmitter import Transmitter, TxConfig

        rng = np.random.default_rng(3)
        mpdu = mpdu_for_body(bytes(500), sequence=1)
        wave = Transmitter(TxConfig(rate_mbps=54)).transmit(mpdu)
        samples = np.concatenate(
            [np.zeros(150, complex), wave, np.zeros(80, complex)]
        )
        # 17 dB SNR: 64-QAM r=3/4 decodes the SIGNAL but the payload has
        # residual errors.
        noise = 10 ** (-17 / 20) / np.sqrt(2)
        samples = samples + noise * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
        result = Receiver(RxConfig()).receive(samples)
        if result.success and result.psdu.size == mpdu.size:
            errors = int(np.unpackbits(result.psdu ^ mpdu).sum())
            parsed = parse_mpdu(result.psdu)
            # The FCS verdict must agree with the ground truth.
            assert parsed.fcs_ok == (errors == 0)
