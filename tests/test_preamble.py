"""Tests for the PLCP preamble and SIGNAL field (repro.dsp.preamble)."""

import numpy as np
import pytest

from repro.dsp.ofdm import OfdmDemodulator
from repro.dsp.params import MAX_PSDU_BYTES, RATES
from repro.dsp.preamble import (
    LONG_TRAINING_SEQUENCE,
    LTF_LENGTH,
    PREAMBLE_LENGTH,
    STF_LENGTH,
    decode_signal_field,
    encode_signal_field,
    long_training_field,
    long_training_symbol_freq,
    preamble,
    short_training_field,
    signal_field_bits,
)


class TestShortTrainingField:
    def test_length(self):
        assert short_training_field().size == STF_LENGTH == 160

    def test_periodicity_16(self):
        stf = short_training_field()
        assert np.allclose(stf[:144], stf[16:160])

    def test_unit_power_scale(self):
        stf = short_training_field()
        assert np.mean(np.abs(stf) ** 2) == pytest.approx(1.0, rel=0.05)


class TestLongTrainingField:
    def test_length(self):
        assert long_training_field().size == LTF_LENGTH == 160

    def test_sequence_values(self):
        assert LONG_TRAINING_SEQUENCE.size == 53
        assert LONG_TRAINING_SEQUENCE[26] == 0  # DC
        assert set(np.unique(LONG_TRAINING_SEQUENCE)) == {-1.0, 0.0, 1.0}

    def test_two_identical_symbols(self):
        ltf = long_training_field()
        assert np.allclose(ltf[32:96], ltf[96:160])

    def test_guard_is_cyclic(self):
        ltf = long_training_field()
        assert np.allclose(ltf[:32], ltf[64:96])

    def test_freq_domain_occupancy(self):
        freq = long_training_symbol_freq()
        assert int(np.count_nonzero(freq)) == 52

    def test_preamble_concatenation(self):
        p = preamble()
        assert p.size == PREAMBLE_LENGTH == 320
        assert np.allclose(p[:160], short_training_field())
        assert np.allclose(p[160:], long_training_field())


class TestSignalFieldBits:
    def test_length_24(self):
        assert signal_field_bits(RATES[6], 100).size == 24

    def test_rate_bits_first(self):
        bits = signal_field_bits(RATES[54], 1)
        assert tuple(bits[:4]) == RATES[54].rate_bits

    def test_length_lsb_first(self):
        bits = signal_field_bits(RATES[6], 0b000000000101)
        assert bits[5] == 1 and bits[6] == 0 and bits[7] == 1

    def test_even_parity(self):
        for length in (1, 77, 4095):
            bits = signal_field_bits(RATES[24], length)
            assert bits[:18].sum() % 2 == 0

    def test_tail_zero(self):
        bits = signal_field_bits(RATES[36], 1000)
        assert not bits[18:].any()

    @pytest.mark.parametrize("bad", [0, -5, MAX_PSDU_BYTES + 1])
    def test_invalid_length_rejected(self, bad):
        with pytest.raises(ValueError):
            signal_field_bits(RATES[6], bad)


class TestSignalFieldCodec:
    @pytest.mark.parametrize("mbps", sorted(RATES))
    def test_roundtrip_all_rates(self, mbps):
        wave = encode_signal_field(RATES[mbps], 345)
        assert wave.size == 80
        rows = OfdmDemodulator().demodulate(wave)
        data = OfdmDemodulator().extract_data(rows)[0]
        content = decode_signal_field(data)
        assert content is not None
        assert content.rate.data_rate_mbps == mbps
        assert content.length_bytes == 345
        assert content.parity_ok

    @pytest.mark.parametrize("length", [1, 64, 1500, 4095])
    def test_roundtrip_lengths(self, length):
        wave = encode_signal_field(RATES[12], length)
        rows = OfdmDemodulator().demodulate(wave)
        data = OfdmDemodulator().extract_data(rows)[0]
        content = decode_signal_field(data)
        assert content.length_bytes == length

    def test_noisy_decode(self):
        rng = np.random.default_rng(0)
        wave = encode_signal_field(RATES[6], 200)
        noisy = wave + 0.05 * (
            rng.standard_normal(wave.size) + 1j * rng.standard_normal(wave.size)
        )
        rows = OfdmDemodulator().demodulate(noisy)
        data = OfdmDemodulator().extract_data(rows)[0]
        content = decode_signal_field(data, noise_var=0.005)
        assert content is not None
        assert content.rate.data_rate_mbps == 6
        assert content.length_bytes == 200

    def test_garbage_reports_failure(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        content = decode_signal_field(data)
        # Either an invalid rate (None) or a parity error must be flagged.
        assert content is None or not content.parity_ok or content.length_bytes >= 0
