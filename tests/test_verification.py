"""Tests for the executable design flow (repro.core.verification)."""

import pytest

from repro.core.verification import DesignFlow


@pytest.fixture(scope="module")
def completed_flow():
    flow = DesignFlow(n_packets=2, psdu_bytes=40, seed=1)
    flow.run_all()
    return flow


class TestDesignFlow:
    def test_all_steps_executed(self, completed_flow):
        assert len(completed_flow.reports) == 5
        names = [r.name for r in completed_flow.reports]
        assert names[0].startswith("1:")
        assert names[-1].startswith("5:")

    def test_all_steps_pass(self, completed_flow):
        failing = [r.name for r in completed_flow.reports if not r.passed]
        assert not failing, f"steps failed: {failing}"
        assert completed_flow.all_passed

    def test_step2_records_library_mismatch(self, completed_flow):
        step2 = completed_flow.reports[1]
        mismatches = step2.details["library_parameter_mismatches"]
        assert any(name == "lna_model" for name, _, _ in mismatches)

    def test_step4_calibration_folded_back(self, completed_flow):
        step4 = completed_flow.reports[3]
        assert abs(step4.details["residual_p1db_db"]) < 0.5

    def test_step5_noise_gap_documented(self, completed_flow):
        step5 = completed_flow.reports[4]
        assert step5.details["netlist_warnings"]
        assert step5.details["cosim_ber"] <= step5.details["system_ber"] + 1e-12

    def test_step5_cosim_slower(self, completed_flow):
        assert completed_flow.reports[4].details["cosim_slowdown"] > 1.0

    def test_summary_renders(self, completed_flow):
        text = completed_flow.summary()
        assert "[PASS]" in text
        assert "co-simulation" in text

    def test_fresh_flow_not_passed(self):
        assert not DesignFlow().all_passed
