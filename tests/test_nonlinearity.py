"""Tests for RF nonlinearity models (repro.rf.nonlinearity)."""

import numpy as np
import pytest

from repro.rf.nonlinearity import (
    CubicNonlinearity,
    P1DB_IIP3_OFFSET_DB,
    RappNonlinearity,
    effective_iip3_cascade_dbm,
    iip3_from_p1db,
    p1db_from_iip3,
)
from repro.rf.signal import dbm_to_watts


class TestP1dbIip3Relations:
    def test_offset_is_9_6_db(self):
        assert P1DB_IIP3_OFFSET_DB == pytest.approx(9.636, abs=0.01)

    def test_roundtrip(self):
        assert p1db_from_iip3(iip3_from_p1db(-12.0)) == pytest.approx(-12.0)


class TestCubicNonlinearity:
    def test_small_signal_gain(self):
        nl = CubicNonlinearity(gain_db=16.0, iip3_dbm=0.0)
        x = np.full(10, np.sqrt(dbm_to_watts(-60.0)), dtype=complex)
        y = nl.apply(x)
        gain_db = 20 * np.log10(np.abs(y[0] / x[0]))
        assert gain_db == pytest.approx(16.0, abs=0.01)

    def test_exactly_1db_compression_at_p1db(self):
        nl = CubicNonlinearity.from_p1db(gain_db=10.0, p1db_dbm=-10.0)
        a = np.sqrt(dbm_to_watts(-10.0))
        y = nl.apply(np.array([a + 0j]))
        gain_db = 20 * np.log10(abs(y[0]) / a)
        assert gain_db == pytest.approx(9.0, abs=0.01)

    def test_monotone_saturation(self):
        nl = CubicNonlinearity(gain_db=0.0, iip3_dbm=0.0)
        amps = np.sqrt(dbm_to_watts(np.arange(-30.0, 20.0, 1.0)))
        out = np.abs(nl.apply(amps.astype(complex)))
        assert (np.diff(out) >= -1e-12).all()

    def test_phase_preserved(self):
        nl = CubicNonlinearity(gain_db=6.0, iip3_dbm=10.0)
        x = np.sqrt(dbm_to_watts(0.0)) * np.exp(1j * 1.234)
        y = nl.apply(np.array([x]))
        assert np.angle(y[0]) == pytest.approx(1.234, abs=1e-9)

    def test_two_tone_im3_level(self):
        # IM3 relative to fundamental: 2*(P_in - IIP3) per tone.
        nl = CubicNonlinearity(gain_db=0.0, iip3_dbm=10.0)
        fs, n = 80e6, 8000  # 10 kHz bins: all tones bin-aligned
        t = np.arange(n) / fs
        p_in = -20.0
        amp = np.sqrt(dbm_to_watts(p_in))
        f1, f2 = 1e6, 2e6
        x = amp * (np.exp(2j * np.pi * f1 * t) + np.exp(2j * np.pi * f2 * t))
        y = nl.apply(x)
        def bin_power(f):
            c = np.dot(y, np.exp(-2j * np.pi * f * t)) / n
            return 10 * np.log10(abs(c) ** 2 / 1e-3)
        rel = bin_power(2 * f2 - f1) - bin_power(f2)
        assert rel == pytest.approx(2 * (p_in - 10.0), abs=0.5)


class TestRappNonlinearity:
    def test_small_signal_gain(self):
        nl = RappNonlinearity(gain_db=12.0, osat_dbm=10.0)
        x = np.full(4, np.sqrt(dbm_to_watts(-50.0)), dtype=complex)
        y = nl.apply(x)
        assert 20 * np.log10(abs(y[0] / x[0])) == pytest.approx(12.0, abs=0.05)

    def test_output_saturates(self):
        nl = RappNonlinearity(gain_db=0.0, osat_dbm=0.0)
        big = np.array([np.sqrt(dbm_to_watts(40.0)) + 0j])
        y = nl.apply(big)
        assert 10 * np.log10(abs(y[0]) ** 2 / 1e-3) <= 0.01

    def test_p1db_property_consistent(self):
        nl = RappNonlinearity(gain_db=10.0, osat_dbm=5.0, smoothness=2.0)
        p1 = nl.input_p1db_dbm
        a = np.sqrt(dbm_to_watts(p1))
        y = nl.apply(np.array([a + 0j]))
        assert 20 * np.log10(abs(y[0]) / a) == pytest.approx(9.0, abs=0.05)

    def test_am_pm_grows_with_drive(self):
        nl = RappNonlinearity(gain_db=0.0, osat_dbm=0.0, am_pm_deg=10.0)
        small = nl.apply(np.array([np.sqrt(dbm_to_watts(-40.0)) + 0j]))
        large = nl.apply(np.array([np.sqrt(dbm_to_watts(0.0)) + 0j]))
        assert abs(np.angle(small[0])) < np.deg2rad(0.2)
        assert abs(np.angle(large[0])) > np.deg2rad(3.0)

    def test_no_am_pm_keeps_phase(self):
        nl = RappNonlinearity(gain_db=0.0, osat_dbm=0.0, am_pm_deg=0.0)
        x = np.sqrt(dbm_to_watts(-3.0)) * np.exp(0.5j)
        y = nl.apply(np.array([x]))
        assert np.angle(y[0]) == pytest.approx(0.5, abs=1e-9)

    def test_invalid_smoothness(self):
        with pytest.raises(ValueError):
            RappNonlinearity(gain_db=0.0, osat_dbm=0.0, smoothness=0.2)

    def test_zero_input(self):
        nl = RappNonlinearity(gain_db=10.0, osat_dbm=0.0)
        y = nl.apply(np.zeros(5, complex))
        assert not y.any()


class TestCascadeIip3:
    def test_single_stage(self):
        assert effective_iip3_cascade_dbm([(10.0, 0.0)]) == pytest.approx(0.0)

    def test_second_stage_dominates_with_gain(self):
        # 20 dB gain in front of a 10 dBm-IIP3 stage: cascade ~ -10 dBm.
        total = effective_iip3_cascade_dbm([(20.0, 100.0), (0.0, 10.0)])
        assert total == pytest.approx(-10.0, abs=0.1)

    def test_cascade_below_best_stage(self):
        total = effective_iip3_cascade_dbm([(10.0, 0.0), (10.0, 10.0)])
        assert total < 0.0

    def test_empty_cascade(self):
        assert effective_iip3_cascade_dbm([]) == np.inf
