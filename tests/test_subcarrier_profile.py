"""Tests for the per-subcarrier error profile (repro.core.metrics)."""

import numpy as np
import pytest

from repro.core.metrics import subcarrier_error_profile
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.dsp.params import DATA_CARRIER_INDICES


class TestProfileMath:
    def test_perfect_is_zero(self):
        rng = np.random.default_rng(0)
        ref = rng.standard_normal((10, 48)) + 1j * rng.standard_normal((10, 48))
        profile = subcarrier_error_profile(ref, ref)
        assert profile.shape == (48,)
        assert np.allclose(profile, 0.0)

    def test_single_bad_column(self):
        ref = np.ones((20, 48), dtype=complex)
        rx = ref.copy()
        rx[:, 7] += 0.5
        profile = subcarrier_error_profile(rx, ref)
        assert profile[7] == pytest.approx(0.5)
        others = np.delete(profile, 7)
        assert np.allclose(others, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            subcarrier_error_profile(np.ones((2, 48)), np.ones((3, 48)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            subcarrier_error_profile(
                np.ones((0, 48)), np.ones((0, 48))
            )


class TestDiagnosticUse:
    def test_zeroif_notch_hits_inner_subcarriers(self):
        """A wide zero-IF DC block inflates EVM on the inner subcarriers."""
        from repro.rf.zeroif import ZeroIfConfig

        bench = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24,
                psdu_bytes=100,
                thermal_floor=True,
                frontend=ZeroIfConfig(
                    dc_block_cutoff_hz=2.5e6,
                    dc_block_order=2,
                    lo_error_ppm=0.0,
                    dc_offset_dbm=None,
                    flicker_power_dbm=None,
                    noise_enabled=False,
                    adc_bits=None,
                ),
                input_level_dbm=-60.0,
            )
        )
        rng = np.random.default_rng(1)
        outcome = bench.run_packet(rng)
        assert not outcome.lost
        n = min(outcome.rx_result.data_symbols.shape[0],
                outcome.tx_symbols.shape[0])
        profile = subcarrier_error_profile(
            outcome.rx_result.data_symbols[:n], outcome.tx_symbols[:n]
        )
        # Columns follow DATA_CARRIER_INDICES order: identify inner
        # (|k| <= 2) and outer (|k| >= 20) carriers.
        inner = np.abs(DATA_CARRIER_INDICES) <= 2
        outer = np.abs(DATA_CARRIER_INDICES) >= 20
        assert profile[inner].mean() > 2.0 * profile[outer].mean()

    def test_awgn_profile_flat(self):
        bench = WlanTestbench(
            TestbenchConfig(rate_mbps=24, psdu_bytes=150, snr_db=18.0,
                            genie_rx=True)
        )
        rng = np.random.default_rng(2)
        outcome = bench.run_packet(rng)
        n = min(outcome.rx_result.data_symbols.shape[0],
                outcome.tx_symbols.shape[0])
        profile = subcarrier_error_profile(
            outcome.rx_result.data_symbols[:n], outcome.tx_symbols[:n]
        )
        # White noise: no subcarrier should be wildly above the median.
        assert profile.max() < 4.0 * np.median(profile)
