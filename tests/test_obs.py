"""Tests for the observability layer (repro.obs)."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import aggregate_spans, profile_rows
from repro.obs.progress import ProgressEvent, as_listener, printer
from repro.obs.tracer import NullTracer, Tracer, read_jsonl


@pytest.fixture
def tracer():
    """A recording tracer installed as the process tracer."""
    t = Tracer()
    previous = obs.set_tracer(t)
    yield t
    obs.set_tracer(previous)


class TestSpans:
    def test_nesting_parent_ids(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_completion_order_inner_first(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_attributes_and_set(self, tracer):
        with tracer.span("s", a=1) as sp:
            sp.set(b=2)
        (span,) = tracer.spans()
        assert span.attributes == {"a": 1, "b": 2}

    def test_duration_positive(self, tracer):
        with tracer.span("s"):
            time.sleep(0.01)
        (span,) = tracer.spans()
        assert span.duration_s >= 0.009

    def test_exception_annotated_and_stack_popped(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "ValueError"
        # The stack unwound: a new span is top-level again.
        with tracer.span("after"):
            pass
        assert tracer.spans("after")[0].parent_id is None

    def test_events_attach_to_active_span(self, tracer):
        with tracer.span("outer"):
            tracer.event("ping", k="v")
        events = [r for r in tracer.records if not hasattr(r, "duration_s")]
        (event,) = events
        assert event.span_id == tracer.spans("outer")[0].span_id
        assert event.attributes == {"k": "v"}

    def test_record_span_parents_under_active(self, tracer):
        with tracer.span("outer"):
            tracer.record_span("measured", 0.25, samples=10)
        measured = tracer.spans("measured")[0]
        assert measured.duration_s == 0.25
        assert measured.parent_id == tracer.spans("outer")[0].span_id

    def test_thread_safety_and_per_thread_stacks(self, tracer):
        def worker(i):
            with tracer.span(f"thread-{i}"):
                for _ in range(50):
                    with tracer.span(f"inner-{i}"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans()) == 4 * 51
        for i in range(4):
            outer = tracer.spans(f"thread-{i}")[0]
            assert outer.parent_id is None
            for inner in tracer.spans(f"inner-{i}"):
                assert inner.parent_id == outer.span_id


class TestJsonl:
    def test_round_trip(self, tracer, tmp_path):
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
            tracer.event("marker", n=1)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path, header={"type": "manifest", "run_id": "x"})
        records = read_jsonl(path)
        assert records[0] == {"type": "manifest", "run_id": "x"}
        by_type = {}
        for r in records[1:]:
            by_type.setdefault(r["type"], []).append(r)
        assert len(by_type["span"]) == 2
        assert len(by_type["event"]) == 1
        spans = {r["name"]: r for r in by_type["span"]}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["attributes"] == {"kind": "test"}

    def test_every_line_is_valid_json(self, tracer, tmp_path):
        with tracer.span("s"):
            pass
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_streaming_sink(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w") as fh:
            t = Tracer(sink=fh)
            with t.span("live"):
                pass
        (record,) = read_jsonl(path)
        assert record["name"] == "live"


class TestNullTracer:
    def test_records_nothing(self):
        t = NullTracer()
        with t.span("s", a=1):
            t.event("e")
        t.record_span("m", 1.0)
        assert t.records == []
        assert t.spans() == []

    def test_is_process_default(self):
        assert isinstance(obs.get_tracer(), NullTracer) or True
        # Whatever the ambient state, module-level span on a NullTracer
        # must be a no-op context manager.
        with NullTracer().span("x") as sp:
            assert sp.set(k=1) is sp

    def test_noop_overhead_small(self):
        t = NullTracer()
        start = time.perf_counter()
        for _ in range(100_000):
            with t.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # ~0.3 us/span on any modern machine; 100k spans well under 1 s.
        assert elapsed < 1.0

    def test_write_refused(self):
        with pytest.raises(RuntimeError):
            NullTracer().write_jsonl("/tmp/never.jsonl")


class TestTimed:
    def test_measures_without_tracer(self):
        with obs.timed("region") as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009
        frozen = timer.elapsed
        time.sleep(0.005)
        assert timer.elapsed == frozen

    def test_emits_span_when_tracing(self, tracer):
        with obs.timed("region", depth="quick"):
            pass
        (span,) = tracer.spans("region")
        assert span.attributes == {"depth": "quick"}


class TestMetrics:
    def test_counter_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("packets", "help text")
        c.inc(3, mode="cosim")
        c.inc(2, mode="cosim")
        c.inc(1, mode="system")
        assert c.value(mode="cosim") == 5
        assert c.value(mode="system") == 1
        assert c.value(mode="absent") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("ber")
        g.set(0.5)
        g.set(0.25)
        assert g.value() == 0.25

    def test_histogram_percentiles(self):
        h = MetricsRegistry().histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)

    def test_histogram_empty_and_bad_percentile(self):
        h = MetricsRegistry().histogram("empty")
        with pytest.raises(ValueError):
            h.percentile(50)
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_name_kind_collision(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_as_dict_and_json(self):
        reg = MetricsRegistry()
        reg.counter("packets").inc(4, mode="cosim")
        reg.histogram("work").observe(1.0)
        reg.histogram("work").observe(3.0)
        d = reg.as_dict()
        assert d["packets"]["kind"] == "counter"
        assert d["packets"]["series"][0] == {
            "labels": {"mode": "cosim"}, "value": 4.0,
        }
        work = d["work"]["series"][0]
        assert work["count"] == 2
        assert work["sum"] == 4.0
        assert work["p50"] == 2.0
        json.loads(reg.to_json())

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("packets", "total packets").inc(7, mode="system")
        text = reg.render_text()
        assert "# HELP packets total packets" in text
        assert "# TYPE packets counter" in text
        assert 'packets{mode="system"} 7' in text


class TestProgress:
    def test_legacy_string_callback(self):
        seen = []
        emit = as_listener(seen.append)
        emit(ProgressEvent("sweep", 1, 3, "point 1 done"))
        assert seen == ["point 1 done"]

    def test_structured_listener(self):
        events = []
        listener = printer(print_fn=lambda s: None)
        listener.on_event = events.append
        emit = as_listener(listener)
        event = ProgressEvent("sweep", 2, 3, "msg", {"ber": 0.1})
        emit(event)
        assert events == [event]

    def test_none_is_silent(self):
        emit = as_listener(None)
        emit(ProgressEvent("sweep", 1, None, "quiet"))  # must not raise

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            as_listener(42)

    def test_mirrors_to_tracer(self, tracer):
        emit = as_listener(None)
        emit(ProgressEvent("sweep", 1, 2, "msg", {"ber": 0.5}))
        events = [r for r in tracer.records if not hasattr(r, "duration_s")]
        (event,) = events
        assert event.name == "progress"
        assert event.attributes["stage"] == "sweep"
        assert event.attributes["ber"] == 0.5


class TestManifest:
    def test_fields_and_snapshot(self):
        manifest = obs.build_manifest(
            seed=7, command="repro fig5", config={"packets": 3},
        )
        assert manifest.seed == 7
        assert manifest.command == "repro fig5"
        assert manifest.config == {"packets": 3}
        assert manifest.run_id.startswith("repro-")
        assert "python" in manifest.versions
        assert "numpy" in manifest.versions
        d = manifest.as_dict()
        assert d["type"] == "manifest"
        json.loads(manifest.to_json())

    def test_dataclass_config_snapshot(self):
        from repro.rf.frontend import FrontendConfig

        manifest = obs.build_manifest(config=FrontendConfig())
        assert isinstance(manifest.config, dict)
        assert "lna_gain_db" in manifest.config


class TestProfileAggregation:
    def test_aggregate_mixed_records(self, tracer):
        tracer.record_span("block:rx", 0.2, samples=100)
        tracer.record_span("block:rx", 0.4, samples=200)
        tracer.record_span("block:tx", 0.1, samples=50)
        tracer.event("noise")  # must be skipped
        summary = aggregate_spans(tracer.records, prefix="block:")
        assert summary["block:rx"].calls == 2
        assert summary["block:rx"].total_s == pytest.approx(0.6)
        assert summary["block:rx"].mean_s == pytest.approx(0.3)
        assert summary["block:rx"].samples == 300
        assert summary["block:tx"].calls == 1

    def test_rows_sorted_hottest_first(self, tracer):
        tracer.record_span("block:cold", 0.1, samples=1)
        tracer.record_span("block:hot", 0.9, samples=9)
        rows = profile_rows(tracer.records)
        assert rows[0][0] == "hot"
        assert rows[0][4] == "90.0%"
        assert rows[1][0] == "cold"

    def test_from_jsonl_dicts(self, tracer, tmp_path):
        tracer.record_span("block:rx", 0.5, samples=10)
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path)
        summary = aggregate_spans(read_jsonl(path), prefix="block:")
        assert summary["block:rx"].total_s == pytest.approx(0.5)
