"""Tests for OFDM modulation/demodulation (repro.dsp.ofdm)."""

import numpy as np
import pytest

from repro.dsp.ofdm import (
    N_USED,
    OfdmDemodulator,
    OfdmModulator,
    pilot_values,
    subcarriers_to_fft_bins,
)
from repro.dsp.params import N_CP, N_FFT, N_SYMBOL


class TestBinMapping:
    def test_positive_carriers(self):
        assert subcarriers_to_fft_bins(np.array([1, 26])).tolist() == [1, 26]

    def test_negative_carriers(self):
        assert subcarriers_to_fft_bins(np.array([-1, -26])).tolist() == [63, 38]

    def test_used_count(self):
        assert N_USED == 52


class TestPilots:
    def test_pilot_base_pattern(self):
        # DATA symbol 0 uses polarity index 1 (p_1 = +1).
        assert pilot_values(0).tolist() == [1.0, 1.0, 1.0, -1.0]

    def test_polarity_cycles_127(self):
        assert np.array_equal(pilot_values(0), pilot_values(127))

    def test_signal_symbol_polarity(self):
        # SIGNAL uses p_0 = +1 via symbol_index=-1.
        assert pilot_values(-1).tolist() == [1.0, 1.0, 1.0, -1.0]

    def test_negative_polarity_somewhere(self):
        # p_4 = -1 flips all pilots for DATA symbol 3.
        assert pilot_values(3).tolist() == [-1.0, -1.0, -1.0, 1.0]


class TestRoundTrip:
    def test_single_symbol_roundtrip(self):
        rng = np.random.default_rng(0)
        data = (rng.standard_normal(48) + 1j * rng.standard_normal(48)) / np.sqrt(2)
        mod = OfdmModulator()
        demod = OfdmDemodulator()
        time = mod.modulate_symbol(data, symbol_index=0)
        assert time.size == N_SYMBOL
        rows = demod.demodulate(time)
        recovered = demod.extract_data(rows)[0]
        assert np.allclose(recovered, data, atol=1e-12)

    def test_multi_symbol_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((5, 48)) + 1j * rng.standard_normal((5, 48))
        mod = OfdmModulator()
        demod = OfdmDemodulator()
        stream = mod.modulate(data)
        assert stream.size == 5 * N_SYMBOL
        rows = demod.demodulate(stream)
        assert np.allclose(demod.extract_data(rows), data, atol=1e-12)

    def test_pilots_recovered(self):
        mod = OfdmModulator()
        demod = OfdmDemodulator()
        time = mod.modulate(np.zeros((3, 48), dtype=complex))
        rows = demod.demodulate(time)
        pilots = demod.extract_pilots(rows)
        for n in range(3):
            assert np.allclose(pilots[n], pilot_values(n), atol=1e-12)

    def test_cyclic_prefix_is_cyclic(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        time = OfdmModulator().modulate_symbol(data, 0)
        assert np.allclose(time[:N_CP], time[N_FFT:])


class TestNormalization:
    def test_unit_power_with_unit_constellation(self):
        rng = np.random.default_rng(3)
        # Unit-energy QPSK-like points on all 48 data carriers.
        data = np.exp(1j * rng.uniform(0, 2 * np.pi, (20, 48)))
        stream = OfdmModulator().modulate(data)
        power = np.mean(np.abs(stream) ** 2)
        assert power == pytest.approx(1.0, rel=0.05)

    def test_dc_bin_empty(self):
        data = np.ones(48, dtype=complex)
        time = OfdmModulator().modulate_symbol(data, 0)
        spectrum = np.fft.fft(time[N_CP:])
        assert abs(spectrum[0]) < 1e-9

    def test_guard_bins_empty(self):
        data = np.ones(48, dtype=complex)
        time = OfdmModulator().modulate_symbol(data, 0)
        spectrum = np.fft.fft(time[N_CP:])
        for k in range(27, 38):  # carriers +/-27..31 unused
            assert abs(spectrum[k]) < 1e-9


class TestValidation:
    def test_wrong_data_count(self):
        with pytest.raises(ValueError):
            OfdmModulator().modulate_symbol(np.zeros(47), 0)

    def test_wrong_stream_length(self):
        with pytest.raises(ValueError):
            OfdmDemodulator().demodulate(np.zeros(81))

    def test_multipath_needs_equalization(self):
        # A two-tap channel rotates subcarriers; raw demod must differ.
        rng = np.random.default_rng(4)
        data = np.exp(1j * rng.uniform(0, 2 * np.pi, 48))
        time = OfdmModulator().modulate_symbol(data, 0)
        channel = np.array([1.0, 0.4j])
        received = np.convolve(time, channel)[: time.size]
        rows = OfdmDemodulator().demodulate(received)
        recovered = OfdmDemodulator().extract_data(rows)[0]
        assert not np.allclose(recovered, data, atol=1e-3)
