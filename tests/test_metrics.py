"""Tests for BER/EVM metrics (repro.core.metrics)."""

import numpy as np
import pytest

from repro.core.metrics import (
    BerCounter,
    binomial_confidence,
    error_vector_magnitude,
    evm_to_snr_db,
    snr_to_evm_percent,
    weighted_binomial_confidence,
)


def _wilson_reference(k, n, z):
    """Independent scipy-free Wilson interval for cross-checking."""
    p = k / n
    z2 = z * z
    center = (p + z2 / (2 * n)) / (1 + z2 / n)
    half = (
        z * np.sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / (1 + z2 / n)
    )
    return max(center - half, 0.0), min(center + half, 1.0)


class TestBinomialConfidence:
    def test_zero_errors(self):
        low, high = binomial_confidence(0, 1000, z=1.96)
        assert low == 0.0
        assert 0.0 < high < 0.01

    def test_all_errors(self):
        low, high = binomial_confidence(1000, 1000, z=1.96)
        assert high == 1.0
        assert 0.99 < low < 1.0

    def test_single_trial(self):
        for k in (0, 1):
            low, high = binomial_confidence(k, 1, z=1.96)
            assert 0.0 <= low <= k <= high <= 1.0
            assert high - low > 0.5  # one trial: nearly uninformative

    def test_huge_n_stability(self):
        low, high = binomial_confidence(int(1e8), int(1e12), z=4.5)
        assert np.isfinite(low) and np.isfinite(high)
        assert low < 1e-4 < high
        assert (high - low) < 1e-7

    def test_zero_trials_raises(self):
        with pytest.raises(ValueError):
            binomial_confidence(0, 0)

    def test_matches_reference_formula(self):
        for k, n, z in ((3, 100, 1.96), (0, 50, 4.5), (49, 50, 2.5)):
            assert binomial_confidence(k, n, z=z) == pytest.approx(
                _wilson_reference(k, n, z)
            )

    def test_interval_shrinks_with_n(self):
        w1 = np.diff(binomial_confidence(5, 100))[0]
        w2 = np.diff(binomial_confidence(50, 1000))[0]
        assert w2 < w1


class TestWeightedBinomialConfidence:
    def test_reduces_to_integer_wilson(self):
        # Integer effective counts must reproduce the plain interval
        # bit for bit — the weighted CI *is* Wilson on effective counts.
        for k, n in ((0, 10), (3, 100), (10, 10)):
            assert weighted_binomial_confidence(
                float(k), float(n), z=4.5
            ) == binomial_confidence(k, n, z=4.5)

    def test_fractional_effective_counts(self):
        low, high = weighted_binomial_confidence(2.5, 317.3, z=1.96)
        assert np.isfinite(low) and np.isfinite(high)
        assert 0.0 <= low <= 2.5 / 317.3 <= high <= 1.0
        assert (low, high) == pytest.approx(
            _wilson_reference(2.5, 317.3, 1.96)
        )

    def test_degenerate_trials_give_vacuous_interval(self):
        assert weighted_binomial_confidence(0.0, 0.0) == (0.0, 1.0)
        assert weighted_binomial_confidence(1.0, -2.0) == (0.0, 1.0)

    def test_overweight_errors_clipped(self):
        # Weighted error mass can numerically exceed the effective
        # trial count; the proportion must clip into [0, 1].
        low, high = weighted_binomial_confidence(12.0, 10.0, z=1.96)
        assert high == 1.0
        assert 0.0 <= low <= 1.0


class TestBerCounter:
    def test_clean_packets(self):
        c = BerCounter()
        bits = np.zeros(100, dtype=np.uint8)
        c.add_packet(bits, bits)
        r = c.result()
        assert r.ber == 0.0
        assert r.per == 0.0
        assert r.packets == 1

    def test_bit_errors_counted(self):
        c = BerCounter()
        ref = np.zeros(100, dtype=np.uint8)
        rx = ref.copy()
        rx[:10] = 1
        c.add_packet(ref, rx)
        r = c.result()
        assert r.ber == pytest.approx(0.1)
        assert r.per == 1.0

    def test_lost_packet_is_half(self):
        c = BerCounter()
        ref = np.zeros(200, dtype=np.uint8)
        c.add_packet(ref, None)
        r = c.result()
        assert r.ber == pytest.approx(0.5)
        assert r.packets_lost == 1

    def test_wrong_size_counts_as_lost(self):
        c = BerCounter()
        c.add_packet(np.zeros(100, np.uint8), np.zeros(50, np.uint8))
        assert c.packets_lost == 1

    def test_mixed_accumulation(self):
        c = BerCounter()
        ref = np.zeros(100, dtype=np.uint8)
        c.add_packet(ref, ref)
        c.add_packet(ref, None)
        r = c.result()
        assert r.ber == pytest.approx(0.25)
        assert r.per == pytest.approx(0.5)

    def test_confidence_interval_shrinks(self):
        wide = BerCounter()
        narrow = BerCounter()
        ref100 = np.zeros(100, dtype=np.uint8)
        rx100 = ref100.copy()
        rx100[:10] = 1
        wide.add_packet(ref100, rx100)
        for _ in range(100):
            narrow.add_packet(ref100, rx100)
        w = wide.result()
        n = narrow.result()
        assert (n.ci95[1] - n.ci95[0]) < (w.ci95[1] - w.ci95[0])

    def test_ci_bounded(self):
        c = BerCounter()
        c.add_packet(np.zeros(4, np.uint8), np.ones(4, np.uint8))
        r = c.result()
        assert 0.0 <= r.ci95[0] <= r.ber <= r.ci95[1] <= 1.0

    def test_empty_counter(self):
        r = BerCounter().result()
        assert r.ber == 0.0
        assert r.packets == 0


class TestEvm:
    def test_zero_for_perfect(self):
        rng = np.random.default_rng(0)
        ref = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        assert error_vector_magnitude(ref, ref) == pytest.approx(0.0, abs=1e-12)

    def test_known_noise_level(self):
        rng = np.random.default_rng(1)
        ref = np.exp(1j * rng.uniform(0, 2 * np.pi, 100_000))
        noise = 0.1 * (
            rng.standard_normal(ref.size) + 1j * rng.standard_normal(ref.size)
        ) / np.sqrt(2)
        evm = error_vector_magnitude(ref + noise, ref, normalize=False)
        assert evm == pytest.approx(0.1, rel=0.03)

    def test_normalization_removes_complex_gain(self):
        rng = np.random.default_rng(2)
        ref = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        rotated = ref * 1.3 * np.exp(0.4j)
        assert error_vector_magnitude(rotated, ref) == pytest.approx(0.0, abs=1e-9)
        assert error_vector_magnitude(
            rotated, ref, normalize=False
        ) > 0.3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_vector_magnitude(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_vector_magnitude(np.ones(0), np.ones(0))

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            error_vector_magnitude(np.ones(4), np.zeros(4))


class TestEvmSnrConversions:
    def test_roundtrip(self):
        assert evm_to_snr_db(
            snr_to_evm_percent(20.0) / 100.0
        ) == pytest.approx(20.0)

    def test_known_points(self):
        assert snr_to_evm_percent(20.0) == pytest.approx(10.0)
        assert snr_to_evm_percent(40.0) == pytest.approx(1.0)
        assert evm_to_snr_db(0.0) == np.inf
