"""Tests for baseband impairment operators (repro.dsp.impairments)."""

import numpy as np
import pytest

from repro.dsp.impairments import (
    apply_dc_offset,
    apply_frequency_offset,
    apply_iq_imbalance,
    apply_sample_clock_offset,
    image_rejection_from_imbalance,
)
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu


class TestFrequencyOffset:
    def test_rotation_rate(self):
        x = np.ones(2000, complex)
        y = apply_frequency_offset(x, 10e3)
        phase = np.unwrap(np.angle(y))
        slope = (phase[-1] - phase[0]) / ((x.size - 1) / 20e6)
        assert slope / (2 * np.pi) == pytest.approx(10e3, rel=1e-6)

    def test_invertible(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        y = apply_frequency_offset(apply_frequency_offset(x, 37e3), -37e3)
        assert np.allclose(x, y)


class TestSampleClockOffset:
    def test_zero_ppm_identity(self):
        x = np.arange(50, dtype=complex)
        assert np.array_equal(apply_sample_clock_offset(x, 0.0), x)

    def test_length_scales_with_ppm(self):
        x = np.zeros(1_000_000, complex)
        y = apply_sample_clock_offset(x, 100.0)
        # 100 ppm fast clock -> ~100 fewer samples per million.
        assert abs((x.size - y.size) - 100) <= 2

    def test_tone_frequency_shifts(self):
        fs = 20e6
        n = 1 << 16
        t = np.arange(n) / fs
        tone = np.exp(2j * np.pi * 5e6 * t)
        y = apply_sample_clock_offset(tone, 200.0)
        spec = np.abs(np.fft.fft(y[: n // 2]))
        freqs = np.fft.fftfreq(n // 2, 1 / fs)
        peak = freqs[np.argmax(spec)]
        # 200 ppm on a 5 MHz tone: ~1 kHz apparent shift.
        assert peak == pytest.approx(5e6 * (1 + 200e-6), abs=2 * fs / n)

    def test_receiver_tolerates_standard_sco(self):
        # +/-20 ppm clock error (802.11a spec) on a full packet.
        rng = np.random.default_rng(1)
        psdu = random_psdu(100, rng)
        wave = Transmitter(TxConfig(rate_mbps=24)).transmit(psdu)
        stretched = apply_sample_clock_offset(
            np.concatenate([np.zeros(150, complex), wave,
                            np.zeros(100, complex)]),
            20.0,
        )
        noise = 10 ** (-28 / 20) / np.sqrt(2)
        stretched = stretched + noise * (
            rng.standard_normal(stretched.size)
            + 1j * rng.standard_normal(stretched.size)
        )
        result = Receiver(RxConfig()).receive(stretched)
        assert result.success
        assert np.array_equal(result.psdu, psdu)


class TestIqImbalance:
    def test_no_imbalance_identity(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        assert np.allclose(apply_iq_imbalance(x, 0.0, 0.0), x)

    def test_creates_image(self):
        fs, n = 20e6, 4096
        t = np.arange(n) / fs
        tone = np.exp(2j * np.pi * 3e6 * t)
        y = apply_iq_imbalance(tone, 1.0, 5.0)
        wanted = abs(np.dot(y, np.exp(-2j * np.pi * 3e6 * t)) / n)
        image = abs(np.dot(y, np.exp(+2j * np.pi * 3e6 * t)) / n)
        measured_irr = 20 * np.log10(wanted / image)
        predicted = image_rejection_from_imbalance(1.0, 5.0)
        assert measured_irr == pytest.approx(predicted, abs=0.5)

    def test_perfect_irr_infinite(self):
        assert image_rejection_from_imbalance(0.0, 0.0) == np.inf


class TestDcOffset:
    def test_offset_added(self):
        x = np.zeros(10, complex)
        y = apply_dc_offset(x, 0.5 + 0.25j)
        assert np.allclose(y, 0.5 + 0.25j)
