"""Tests for the A/B design comparison (repro.core.verification)."""

import pytest

from repro.core.verification import DesignComparison, compare_designs
from repro.rf.frontend import FrontendConfig, ideal_frontend_config


class TestDesignComparison:
    def test_winner_by_total_ber(self):
        comparison = DesignComparison(
            "good", "bad", [(-60.0, 0.0, 0.1), (-80.0, 0.01, 0.3)]
        )
        assert comparison.winner == "good"

    def test_tie(self):
        comparison = DesignComparison("a", "b", [(-60.0, 0.1, 0.1)])
        assert comparison.winner == "tie"

    def test_table_renders(self):
        comparison = DesignComparison("a", "b", [(-60.0, 0.0, 0.5)])
        table = comparison.as_table()
        assert "a" in table and "b" in table and "-60" in table

    def test_compare_real_designs(self):
        """An impaired LNA loses to the nominal design near sensitivity."""
        nominal = FrontendConfig()
        degraded = FrontendConfig(lna_nf_db=12.0)
        result = compare_designs(
            nominal,
            degraded,
            labels=("nominal", "noisy LNA"),
            levels_dbm=(-60.0, -88.0),
            n_packets=3,
            seed=2,
        )
        assert result.winner in ("nominal", "tie")
        # At the comfortable level both are clean.
        assert result.rows[0][1] == 0.0
        # Near sensitivity the 12 dB LNA must be the worse one.
        assert result.rows[1][2] >= result.rows[1][1]

    def test_mixed_architectures(self):
        """Double-conversion and zero-IF configs can be compared directly."""
        from repro.rf.zeroif import ZeroIfConfig

        result = compare_designs(
            FrontendConfig(),
            ZeroIfConfig(),
            labels=("double", "zero-IF"),
            levels_dbm=(-55.0,),
            n_packets=2,
            seed=3,
        )
        assert result.rows[0][1] == 0.0
        assert result.rows[0][2] == 0.0
