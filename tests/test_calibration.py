"""Tests for model calibration (repro.core.calibration)."""

import numpy as np
import pytest

from repro.core.calibration import (
    CircuitLevelAmplifier,
    calibrate_amplifier,
    compare_model_libraries,
)
from repro.flow.rfsim import swept_power_compression
from repro.rf.frontend import spectre_library_config, spw_library_config
from repro.rf.signal import Signal, dbm_to_watts


class TestCircuitLevelAmplifier:
    def test_small_signal_gain(self):
        circ = CircuitLevelAmplifier(gain_db=16.0, noise_figure_db=0.0)
        n = 1024
        t = np.arange(n) / 80e6
        x = Signal(np.sqrt(dbm_to_watts(-60)) * np.exp(2j * np.pi * 1e6 * t), 80e6)
        y = circ.process(x)
        gain = 10 * np.log10(y.power_watts() / x.power_watts())
        assert gain == pytest.approx(16.0, abs=0.05)

    def test_p1db_by_construction(self):
        circ = CircuitLevelAmplifier(
            gain_db=10.0, p1db_dbm=-15.0, noise_figure_db=0.0
        )
        result = swept_power_compression(circ)
        assert result.input_p1db_dbm == pytest.approx(-15.0, abs=0.3)

    def test_am_pm_present(self):
        circ = CircuitLevelAmplifier(
            gain_db=0.0, p1db_dbm=-10.0, am_pm_deg_at_p1db=5.0,
            noise_figure_db=0.0,
        )
        small = circ.process(Signal(np.array([1e-5 + 0j]), 80e6))
        large = circ.process(
            Signal(np.array([np.sqrt(dbm_to_watts(-10.0)) + 0j]), 80e6)
        )
        assert abs(np.angle(large.samples[0])) > abs(np.angle(small.samples[0])) + 0.01

    def test_noise_requires_rng(self):
        circ = CircuitLevelAmplifier(noise_figure_db=3.0)
        with pytest.raises(ValueError):
            circ.process(Signal(np.ones(10, complex), 80e6))


class TestCalibration:
    @pytest.mark.parametrize("style", ["spw", "spectre"])
    def test_fit_quality(self, style):
        circ = CircuitLevelAmplifier(
            gain_db=16.0, p1db_dbm=-12.0, noise_figure_db=3.2
        )
        report = calibrate_amplifier(
            circ, style=style, rng=np.random.default_rng(0)
        )
        assert report.measured_gain_db == pytest.approx(16.0, abs=0.3)
        assert report.measured_p1db_dbm == pytest.approx(-12.0, abs=0.8)
        assert report.measured_nf_db == pytest.approx(3.2, abs=0.5)
        assert abs(report.residual_gain_db) < 0.5
        assert abs(report.residual_p1db_db) < 0.6

    def test_unknown_style_rejected(self):
        circ = CircuitLevelAmplifier(noise_figure_db=0.0)
        with pytest.raises(ValueError):
            calibrate_amplifier(circ, style="matlab")

    def test_fitted_model_has_noise_figure(self):
        circ = CircuitLevelAmplifier(noise_figure_db=4.0)
        report = calibrate_amplifier(circ, rng=np.random.default_rng(1))
        assert report.fitted.noise_figure_db == pytest.approx(4.0, abs=0.6)


class TestLibraryComparison:
    def test_detects_known_mismatches(self):
        diffs = compare_model_libraries(
            spw_library_config(), spectre_library_config()
        )
        fields = {name for name, _, _ in diffs}
        assert "lna_model" in fields
        assert "lna_am_pm_deg" in fields

    def test_identical_configs_no_diff(self):
        cfg = spw_library_config()
        assert compare_model_libraries(cfg, cfg) == []
