"""Tests for the 802.11a scrambler (repro.dsp.scrambler)."""

import numpy as np
import pytest

from repro.dsp.scrambler import Scrambler, pilot_polarity_sequence, scramble


class TestScrambler:
    def test_sequence_period_127(self):
        seq = Scrambler(0b1011101).sequence(254)
        assert np.array_equal(seq[:127], seq[127:254])

    def test_sequence_not_constant(self):
        seq = Scrambler(0b1011101).sequence(127)
        assert 0 < seq.sum() < 127

    def test_scramble_is_involution(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 500, dtype=np.uint8)
        once = scramble(bits, seed=0b0110110)
        twice = scramble(once, seed=0b0110110)
        assert np.array_equal(twice, bits)

    def test_different_seeds_differ(self):
        bits = np.zeros(127, dtype=np.uint8)
        a = scramble(bits, seed=1)
        b = scramble(bits, seed=2)
        assert not np.array_equal(a, b)

    def test_scrambling_all_zero_yields_sequence(self):
        s = Scrambler(0b1111111)
        zeros = np.zeros(64, dtype=np.uint8)
        assert np.array_equal(s.process(zeros), s.sequence(64))

    @pytest.mark.parametrize("seed", [0, 128, -1, 200])
    def test_invalid_seed_rejected(self, seed):
        with pytest.raises(ValueError):
            Scrambler(seed)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Scrambler(1).sequence(-1)

    def test_empty_input(self):
        out = Scrambler(1).process(np.zeros(0, dtype=np.uint8))
        assert out.size == 0


class TestPilotPolarity:
    def test_length_127(self):
        assert pilot_polarity_sequence().size == 127

    def test_values_pm_one(self):
        p = pilot_polarity_sequence()
        assert set(np.unique(p)) <= {-1.0, 1.0}

    def test_standard_prefix(self):
        # First 20 values of p_n from IEEE 802.11a-1999, 17.3.5.9.
        expected = [1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
                    -1, -1, 1, 1]
        p = pilot_polarity_sequence()
        assert p[:20].tolist() == expected

    def test_balance(self):
        # The maximal-length LFSR sequence has 64 ones and 63 zeros.
        p = pilot_polarity_sequence()
        assert int((p == -1).sum()) == 64
        assert int((p == 1).sum()) == 63
