"""Tests for the 802.11a transmitter (repro.dsp.transmitter)."""

import numpy as np
import pytest

from repro.dsp.params import N_SYMBOL, RATES, symbols_for_psdu
from repro.dsp.preamble import PREAMBLE_LENGTH
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu


class TestWaveformStructure:
    @pytest.mark.parametrize("mbps", sorted(RATES))
    def test_length(self, mbps):
        tx = Transmitter(TxConfig(rate_mbps=mbps))
        psdu = np.zeros(100, dtype=np.uint8)
        wave = tx.transmit(psdu)
        n_sym = symbols_for_psdu(100, RATES[mbps])
        assert wave.size == PREAMBLE_LENGTH + N_SYMBOL + n_sym * N_SYMBOL

    def test_oversampled_length(self):
        tx = Transmitter(TxConfig(rate_mbps=24, oversample=4))
        wave = tx.transmit(np.zeros(50, dtype=np.uint8))
        base = Transmitter(TxConfig(rate_mbps=24)).transmit(
            np.zeros(50, dtype=np.uint8)
        )
        assert wave.size == 4 * base.size

    def test_preamble_always_identical(self):
        a = Transmitter(TxConfig(rate_mbps=6)).transmit(
            np.arange(10, dtype=np.uint8)
        )
        b = Transmitter(TxConfig(rate_mbps=54)).transmit(
            np.arange(30, dtype=np.uint8)
        )
        assert np.allclose(a[:PREAMBLE_LENGTH], b[:PREAMBLE_LENGTH])

    def test_unit_average_power(self):
        tx = Transmitter(TxConfig(rate_mbps=36))
        wave = tx.transmit(random_psdu(300, np.random.default_rng(0)))
        assert np.mean(np.abs(wave) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_papr_reasonable_for_ofdm(self):
        tx = Transmitter(TxConfig(rate_mbps=54))
        wave = tx.transmit(random_psdu(500, np.random.default_rng(1)))
        papr = np.max(np.abs(wave) ** 2) / np.mean(np.abs(wave) ** 2)
        assert 4.0 < papr < 50.0  # 6..17 dB typical


class TestDataFieldBits:
    def test_bit_count_is_padded(self):
        tx = Transmitter(TxConfig(rate_mbps=24))
        bits = tx.data_field_bits(np.zeros(57, dtype=np.uint8))
        assert bits.size % RATES[24].n_dbps == 0

    def test_tail_bits_zero_after_scrambling(self):
        tx = Transmitter(TxConfig(rate_mbps=6))
        psdu = random_psdu(40, np.random.default_rng(2))
        bits = tx.data_field_bits(psdu)
        tail_start = 16 + 8 * 40
        assert not bits[tail_start : tail_start + 6].any()

    def test_scrambling_changes_bits(self):
        tx = Transmitter(TxConfig(rate_mbps=6))
        zeros = np.zeros(100, dtype=np.uint8)
        bits = tx.data_field_bits(zeros)
        # Scrambled zeros are the scrambler sequence: non-trivial.
        assert bits[:16].any() or bits[16:100].any()

    def test_seed_changes_output(self):
        psdu = np.zeros(20, dtype=np.uint8)
        a = Transmitter(TxConfig(rate_mbps=6, scrambler_seed=1)).transmit(psdu)
        b = Transmitter(TxConfig(rate_mbps=6, scrambler_seed=2)).transmit(psdu)
        assert not np.allclose(a, b)


class TestSpectralProperties:
    def test_spectral_mask_with_shaping(self):
        from repro.rf.signal import Signal
        from repro.spectrum.psd import check_transmit_mask

        tx = Transmitter(TxConfig(rate_mbps=24, oversample=4))
        wave = tx.transmit(random_psdu(400, np.random.default_rng(3)))
        passes, margin = check_transmit_mask(Signal(wave, 80e6))
        assert passes, f"mask violated by {-margin:.1f} dB"

    def test_unshaped_spectrum_wider(self):
        from repro.rf.signal import Signal
        from repro.spectrum.psd import occupied_bandwidth_hz

        rng = np.random.default_rng(4)
        psdu = random_psdu(300, rng)
        shaped = Transmitter(
            TxConfig(rate_mbps=24, oversample=4, spectral_shaping=True)
        ).transmit(psdu)
        raw = Transmitter(
            TxConfig(rate_mbps=24, oversample=4, spectral_shaping=False)
        ).transmit(psdu)
        bw_shaped = occupied_bandwidth_hz(Signal(shaped, 80e6), 0.999)
        bw_raw = occupied_bandwidth_hz(Signal(raw, 80e6), 0.999)
        assert bw_shaped < bw_raw


class TestValidation:
    def test_unsupported_rate(self):
        with pytest.raises(ValueError):
            Transmitter(TxConfig(rate_mbps=11))

    def test_bad_oversample(self):
        with pytest.raises(ValueError):
            Transmitter(TxConfig(oversample=0))

    def test_oversized_psdu(self):
        tx = Transmitter(TxConfig())
        with pytest.raises(ValueError):
            tx.transmit(np.zeros(4096, dtype=np.uint8))

    def test_random_psdu_properties(self):
        rng = np.random.default_rng(5)
        psdu = random_psdu(64, rng)
        assert psdu.dtype == np.uint8
        assert psdu.size == 64
        with pytest.raises(ValueError):
            random_psdu(0, rng)
