"""Deterministic fuzz harness tests: netlist parser + PHY loopback."""

import os

import numpy as np
import pytest

from repro.flow.netlist import NetlistError, netlist_to_config
from repro.qa import fuzz

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "data", "netlist"
)


class TestRoundTripFuzz:
    def test_random_configs_round_trip(self):
        report = fuzz.fuzz_round_trip(25, seed=0)
        assert report.cases == 25
        assert report.ok, report.failures[0].message if report.failures else ""

    def test_random_config_generator_is_deterministic(self):
        a = fuzz.random_frontend_config(np.random.default_rng(42))
        b = fuzz.random_frontend_config(np.random.default_rng(42))
        assert a == b

    def test_check_round_trip_flags_lossy_export(self):
        from repro.rf.frontend import FrontendConfig

        # A value off the %.10g-exact grid must still round-trip; the
        # checker returns None exactly when export->import->export holds.
        assert fuzz.check_round_trip(FrontendConfig()) is None


class TestMutationFuzz:
    def test_parser_never_crashes(self):
        report = fuzz.fuzz_parser(150, seed=0)
        assert report.cases == 150
        assert report.parsed + report.rejected == report.cases
        assert report.ok, report.failures[0].message if report.failures else ""

    def test_fuzz_is_deterministic(self):
        a = fuzz.fuzz_parser(60, seed=9)
        b = fuzz.fuzz_parser(60, seed=9)
        assert (a.parsed, a.rejected) == (b.parsed, b.rejected)

    def test_mutations_do_mutate(self):
        from repro.flow.netlist import frontend_to_netlist
        from repro.rf.frontend import FrontendConfig

        text = frontend_to_netlist(FrontendConfig())
        rng = np.random.default_rng(0)
        changed = sum(fuzz.mutate_netlist(text, rng) != text for _ in range(20))
        assert changed >= 18


class TestCorpusReplay:
    def test_corpus_exists_and_is_populated(self):
        assert os.path.isdir(CORPUS_DIR)
        names = sorted(os.listdir(CORPUS_DIR))
        valid = [n for n in names if n.startswith("valid_")]
        malformed = [n for n in names if n.startswith("malformed_")]
        assert len(valid) >= 5
        assert len(malformed) >= 10

    def test_replay_clean(self):
        report = fuzz.replay_corpus(CORPUS_DIR)
        assert report.cases >= 15
        assert report.ok, report.failures[0].message if report.failures else ""

    def test_regression_files_still_raise_netlist_error(self):
        # The three malformed_crash_* files each reproduced a bug where a
        # raw ValueError/TypeError escaped the parser; pin the fix.
        for name in sorted(os.listdir(CORPUS_DIR)):
            if not name.startswith("malformed_crash_"):
                continue
            with open(os.path.join(CORPUS_DIR, name)) as fh:
                text = fh.read()
            with pytest.raises(NetlistError):
                from repro.flow.netlist import NetlistCompiler

                NetlistCompiler("ams").compile(text)

    def test_valid_corpus_files_parse(self):
        for name in sorted(os.listdir(CORPUS_DIR)):
            if not name.startswith("valid_"):
                continue
            with open(os.path.join(CORPUS_DIR, name)) as fh:
                config = netlist_to_config(fh.read())
            assert config.sample_rate_in > 0


class TestPhyLoopback:
    def test_single_rate_trial(self):
        result = fuzz.loopback_trial(24, psdu_bytes=60, seed=0)
        assert result.ok, result.failure

    @pytest.mark.slow
    def test_all_rates_random_payloads(self):
        results = fuzz.fuzz_loopback(trials_per_rate=2, seed=0)
        assert len(results) == 16
        bad = [r for r in results if not r.ok]
        assert not bad, f"{bad[0].rate_mbps} Mbit/s: {bad[0].failure}"
        assert sorted({r.rate_mbps for r in results}) == [
            6, 9, 12, 18, 24, 36, 48, 54,
        ]
