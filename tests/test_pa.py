"""Tests for the transmit power amplifier model (repro.rf.pa)."""

import numpy as np
import pytest

from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.rf.pa import PowerAmplifier
from repro.rf.signal import Signal, dbm_to_watts
from repro.spectrum.psd import check_transmit_mask


def _ofdm(oversample=4, n_bytes=300, seed=0):
    rng = np.random.default_rng(seed)
    wave = Transmitter(TxConfig(rate_mbps=24, oversample=oversample)).transmit(
        random_psdu(n_bytes, rng)
    )
    return Signal(wave, oversample * 20e6)


class TestPowerAmplifier:
    def test_drive_level(self):
        pa = PowerAmplifier(psat_dbm=24.0, gain_db=25.0)
        assert pa.drive_level_dbm(6.0) == pytest.approx(-7.0)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            PowerAmplifier().drive_level_dbm(-1.0)

    def test_small_signal_gain(self):
        pa = PowerAmplifier(psat_dbm=24.0, gain_db=25.0, am_pm_deg=0.0)
        t = np.arange(1024) / 80e6
        tone = Signal(
            np.sqrt(dbm_to_watts(-40.0)) * np.exp(2j * np.pi * 1e6 * t), 80e6
        )
        out = pa.process(tone)
        assert out.power_dbm() == pytest.approx(-15.0, abs=0.1)

    def test_backoff_sets_average_output(self):
        pa = PowerAmplifier(psat_dbm=24.0, gain_db=25.0)
        out = pa.process(_ofdm(), output_backoff_db=10.0)
        # With 10 dB OBO the average output sits near Psat - 10, slightly
        # lower because the peaks compress.
        assert out.power_dbm() == pytest.approx(14.0, abs=1.5)

    def test_compression_reduces_papr(self):
        pa = PowerAmplifier(psat_dbm=24.0, gain_db=25.0)
        sig = _ofdm()
        backed_off = pa.process(sig, output_backoff_db=12.0)
        driven = pa.process(sig, output_backoff_db=2.0)
        assert driven.papr_db() < backed_off.papr_db()

    def test_mask_vs_backoff(self):
        """Spectral regrowth: hard drive violates the mask, backoff fixes it."""
        pa = PowerAmplifier(psat_dbm=24.0, gain_db=25.0)
        sig = _ofdm()
        clean = pa.process(sig, output_backoff_db=12.0)
        hot = pa.process(sig, output_backoff_db=1.0)
        ok_clean, margin_clean = check_transmit_mask(clean)
        ok_hot, margin_hot = check_transmit_mask(hot)
        assert margin_clean > margin_hot
        assert ok_clean
