"""Batch-vs-serial bit-exactness of the batched PHY engine.

The batched TX -> channel -> RX chain (``WlanTestbench.run_packet_batch``,
``Transmitter.transmit_batch``, ``Receiver.receive_batch``) promises to be
a pure throughput optimization: every batch size must reproduce the
per-packet path bit for bit — decoded bits, BER/PER KPIs, probe
summaries, early-stop behaviour, and the frozen golden digests.  This
module is that promise as a test suite.
"""

import json

import numpy as np
import pytest

from repro import obs, perf
from repro.core.testbench import (
    _BENCH_CACHE,
    TestbenchConfig,
    WlanTestbench,
    _bench_for_config,
)
from repro.dsp.ofdm import OfdmModulator
from repro.dsp.params import RATES
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.scrambler import Scrambler, _sequence_period
from repro.dsp.synchronization import detect_packet
from repro.dsp.transmitter import Transmitter, TxConfig
from repro.dsp.viterbi import ViterbiDecoder, acs_tables, branch_codes
from repro.obs.probes import ProbeRegistry, probe_preset
from repro.qa import vectors as vec

ALL_RATES = sorted(RATES)


def _outcomes_equal(a, b):
    """Strict equality of two PacketOutcome lists (bits and symbols)."""
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.bit_errors == y.bit_errors
        assert x.n_bits == y.n_bits
        assert x.lost == y.lost
        assert x.rx_result.success == y.rx_result.success
        assert x.rx_result.failure == y.rx_result.failure
        if x.rx_result.psdu is None:
            assert y.rx_result.psdu is None
        else:
            assert np.array_equal(x.rx_result.psdu, y.rx_result.psdu)
        if x.rx_result.data_symbols is None:
            assert y.rx_result.data_symbols is None
        else:
            assert np.array_equal(
                x.rx_result.data_symbols, y.rx_result.data_symbols
            )
        assert np.array_equal(x.tx_symbols, y.tx_symbols)


def _kpis(measurement):
    return (
        measurement.ber,
        measurement.per,
        measurement.bit_errors,
        measurement.bits_total,
        measurement.packets,
        measurement.packets_lost,
    )


class TestChainBitExactness:
    """run_packet_batch == N x run_packet, bit for bit, at every rate."""

    @pytest.mark.parametrize("rate_mbps", ALL_RATES)
    def test_run_packet_batch_matches_scalar(self, rate_mbps):
        cfg = TestbenchConfig(rate_mbps=rate_mbps, snr_db=9.0, psdu_bytes=40)
        bench = WlanTestbench(cfg)
        children = perf.spawn(1234, 6)
        scalar = [
            bench.run_packet(np.random.default_rng(c)) for c in children
        ]
        batched = bench.run_packet_batch(
            [np.random.default_rng(c) for c in children]
        )
        _outcomes_equal(scalar, batched)

    @pytest.mark.parametrize("rate_mbps", ALL_RATES)
    def test_transmit_batch_rows_match_transmit(self, rate_mbps):
        tx = Transmitter(TxConfig(rate_mbps=rate_mbps))
        rng = np.random.default_rng(5)
        psdus = rng.integers(0, 256, size=(4, 33), dtype=np.uint8)
        waves, symbols = tx.transmit_batch(psdus)
        for k in range(4):
            assert np.array_equal(waves[k], tx.transmit(psdus[k]))
            assert np.array_equal(symbols[k], tx.data_symbols(psdus[k]))

    def test_low_snr_failures_match_scalar(self):
        """Failure paths (detect / parity / decode) stay identical too."""
        cfg = TestbenchConfig(rate_mbps=54, snr_db=-2.0, psdu_bytes=40)
        bench = WlanTestbench(cfg)
        children = perf.spawn(77, 8)
        scalar = [
            bench.run_packet(np.random.default_rng(c)) for c in children
        ]
        batched = bench.run_packet_batch(
            [np.random.default_rng(c) for c in children]
        )
        assert any(o.lost for o in scalar)  # the scenario exercises failures
        _outcomes_equal(scalar, batched)


class TestMeasureBerBatchSizes:
    """measure_ber KPIs identical at batch sizes {1, 3, 8, n_packets}."""

    N_PACKETS = 16

    @pytest.mark.parametrize("rate_mbps", ALL_RATES)
    @pytest.mark.parametrize("batch", [3, 8, 16])
    def test_kpis_match_serial(self, rate_mbps, batch):
        cfg = TestbenchConfig(rate_mbps=rate_mbps, snr_db=8.0, psdu_bytes=36)
        bench = WlanTestbench(cfg)
        ref = bench.measure_ber(
            n_packets=self.N_PACKETS, seed=9, batch_size=1
        )
        got = bench.measure_ber(
            n_packets=self.N_PACKETS, seed=9, batch_size=batch
        )
        assert _kpis(got) == _kpis(ref)

    def test_ambient_default_batch_size(self):
        cfg = TestbenchConfig(rate_mbps=24, snr_db=8.0, psdu_bytes=36)
        bench = WlanTestbench(cfg)
        ref = bench.measure_ber(n_packets=8, seed=3, batch_size=1)
        previous = perf.set_default_batch_size(4)
        try:
            assert perf.get_default_batch_size() == 4
            got = bench.measure_ber(n_packets=8, seed=3)
        finally:
            perf.set_default_batch_size(previous)
        assert _kpis(got) == _kpis(ref)

    def test_resolve_batch_size_validation(self):
        assert perf.resolve_batch_size(None) == perf.get_default_batch_size()
        assert perf.resolve_batch_size(5) == 5
        with pytest.raises(ValueError):
            perf.resolve_batch_size(0)
        with pytest.raises(ValueError):
            perf.set_default_batch_size(0)

    def test_parallel_jobs_match_serial(self):
        cfg = TestbenchConfig(rate_mbps=24, snr_db=8.0, psdu_bytes=36)
        bench = WlanTestbench(cfg)
        ref = bench.measure_ber(n_packets=8, seed=3, batch_size=1, jobs=1)
        got = bench.measure_ber(n_packets=8, seed=3, batch_size=4, jobs=2)
        assert _kpis(got) == _kpis(ref)

    def test_early_stop_matches_at_pinned_chunk_size(self):
        """Early stop is a chunk-boundary decision: pin the chunk size and
        the batched engine must stop at the same packet count."""
        cfg = TestbenchConfig(rate_mbps=54, snr_db=3.0, psdu_bytes=36)
        bench = WlanTestbench(cfg)
        ref = bench.measure_ber(
            n_packets=24, seed=11, batch_size=1, chunk_size=4,
            max_bit_errors=50,
        )
        got = bench.measure_ber(
            n_packets=24, seed=11, batch_size=4, chunk_size=4,
            max_bit_errors=50,
        )
        assert ref.packets + ref.packets_lost < 24  # stop actually fired
        assert _kpis(got) == _kpis(ref)


class TestProbeSummaries:
    """Probe exports are byte-identical at equal chunking."""

    def _run(self, batch, chunk):
        cfg = TestbenchConfig(rate_mbps=24, snr_db=15.0, psdu_bytes=36)
        bench = WlanTestbench(cfg)
        registry = ProbeRegistry(probe_preset("full"))
        previous = obs.set_probes(registry)
        try:
            bench.measure_ber(
                n_packets=8, seed=21, batch_size=batch, chunk_size=chunk
            )
        finally:
            obs.set_probes(previous)
        return registry.export()

    def test_batch_probe_export_identical(self):
        serial = self._run(batch=1, chunk=4)
        batched = self._run(batch=4, chunk=4)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            batched, sort_keys=True
        )


class TestRandomizedLoopback:
    """Hypothesis-style randomized-payload loopback at batch > 1."""

    def test_random_payloads_roundtrip(self):
        rng = np.random.default_rng(2024)
        guard = 200
        for _ in range(10):
            rate_mbps = int(rng.choice(ALL_RATES))
            n_bytes = int(rng.integers(16, 90))
            n_packets = int(rng.integers(2, 6))
            psdus = rng.integers(
                0, 256, size=(n_packets, n_bytes), dtype=np.uint8
            )
            tx = Transmitter(TxConfig(rate_mbps=rate_mbps))
            waves, _ = tx.transmit_batch(psdus)
            padded = np.zeros(
                (n_packets, waves.shape[1] + 2 * guard), dtype=complex
            )
            padded[:, guard : guard + waves.shape[1]] = waves
            padded += 0.004 * (
                rng.normal(size=padded.shape)
                + 1j * rng.normal(size=padded.shape)
            )
            results = Receiver(RxConfig()).receive_batch(padded)
            for k, result in enumerate(results):
                assert result.success, result.failure
                assert np.array_equal(result.psdu, psdus[k])


class TestBenchMemoization:
    """Chunk workers reuse one bench per config instead of rebuilding."""

    def test_same_config_returns_same_bench(self):
        _BENCH_CACHE.clear()
        cfg_a = TestbenchConfig(rate_mbps=24, snr_db=10.0)
        cfg_b = TestbenchConfig(rate_mbps=24, snr_db=10.0)
        cfg_c = TestbenchConfig(rate_mbps=36, snr_db=10.0)
        bench = _bench_for_config(cfg_a)
        assert _bench_for_config(cfg_a) is bench
        assert _bench_for_config(cfg_b) is bench  # equal content, same key
        assert _bench_for_config(cfg_c) is not bench

    def test_memoized_bench_is_deterministic(self):
        """Reusing the bench across chunks leaves results unchanged."""
        _BENCH_CACHE.clear()
        cfg = TestbenchConfig(rate_mbps=24, snr_db=8.0, psdu_bytes=36)
        bench = WlanTestbench(cfg)
        first = bench.measure_ber(n_packets=6, seed=4, chunk_size=2)
        again = bench.measure_ber(n_packets=6, seed=4, chunk_size=2)
        assert _kpis(first) == _kpis(again)

    def test_cache_capacity_bounded(self):
        from repro.core.testbench import _BENCH_CACHE_MAX

        _BENCH_CACHE.clear()
        for rate in ALL_RATES:
            for snr in (5.0, 10.0):
                _bench_for_config(TestbenchConfig(rate_mbps=rate, snr_db=snr))
        assert len(_BENCH_CACHE) <= _BENCH_CACHE_MAX


class TestViterbiTableCache:
    """The hoisted branch-metric tables are built once and reused."""

    def test_tables_cached_and_read_only(self):
        sa1, sb1 = acs_tables()
        sa2, sb2 = acs_tables()
        assert sa1 is sa2 and sb1 is sb2
        assert branch_codes() is branch_codes()
        assert not sa1.flags.writeable
        assert not branch_codes().flags.writeable

    def test_decodes_identical_across_instances(self):
        """Two decoder instances share tables and agree bit for bit."""
        rng = np.random.default_rng(8)
        llr = rng.normal(size=(5, 2 * 200)) * 4.0
        llr[rng.random(llr.shape) < 0.3] = 0.0
        first = ViterbiDecoder(terminated=False).decode_soft(llr)
        second = ViterbiDecoder(terminated=False).decode_soft(llr)
        assert np.array_equal(first, second)


class TestOfdmStackedGolden:
    """The stacked-FFT modulator reproduces the frozen Annex-G symbol."""

    def test_first_data_symbol_frozen(self):
        tx = Transmitter(TxConfig(
            rate_mbps=vec.REFERENCE_RATE_MBPS,
            scrambler_seed=vec.SCRAMBLER_SEED,
        ))
        symbols = tx.data_symbols(vec.reference_psdu())
        wave = OfdmModulator().modulate(symbols)
        assert np.allclose(
            wave[:80], vec.first_data_symbol_samples(), atol=1e-9
        )

    def test_modulate_batch_rows_match_modulate(self):
        tx = Transmitter(TxConfig(
            rate_mbps=vec.REFERENCE_RATE_MBPS,
            scrambler_seed=vec.SCRAMBLER_SEED,
        ))
        symbols = tx.data_symbols(vec.reference_psdu())
        stacked = np.stack([symbols, symbols[::-1]])
        ofdm = OfdmModulator()
        batch = ofdm.modulate_batch(stacked)
        for k in range(2):
            assert np.array_equal(batch[k], ofdm.modulate(stacked[k]))


class TestGoldenDigestsBatched:
    """Batched transmit reproduces the frozen per-rate digests."""

    @pytest.mark.parametrize("rate_mbps", ALL_RATES)
    def test_batched_ppdu_digest(self, rate_mbps):
        tx = Transmitter(TxConfig(rate_mbps=rate_mbps))
        psdus = np.tile(vec.fixed_psdu(), (3, 1))
        golden = vec.GOLDEN_RATE_DIGESTS[rate_mbps]
        bits = tx.data_field_bits_batch(psdus)
        waves, _ = tx.transmit_batch(psdus)
        for k in range(3):
            assert vec.digest_bits(bits[k]) == golden["data_bits"]
            assert waves[k].size == golden["n_samples"]
            assert vec.digest_samples(waves[k]) == golden["ppdu"]


class TestScramblerCache:
    """The cached 127-bit scrambler period matches a reference LFSR."""

    def test_sequence_matches_reference_lfsr(self):
        seed = 0b1011101
        state = [(seed >> i) & 1 for i in range(7)]
        ref = []
        for _ in range(200):
            bit = state[6] ^ state[3]  # x^7 + x^4 + 1
            ref.append(bit)
            state = [bit] + state[:6]
        assert np.array_equal(
            Scrambler(seed).sequence(200), np.array(ref, dtype=np.uint8)
        )

    def test_period_is_cached(self):
        assert _sequence_period(0b1011101) is _sequence_period(0b1011101)


class TestDetectPacketVectorized:
    """The sliding-window detector equals the scalar run-count reference."""

    @staticmethod
    def _reference_detect(samples, threshold=0.6, min_run=64):
        samples = np.asarray(samples, dtype=complex)
        d = 16
        if samples.size < 160:
            return None
        prod = samples[d:] * np.conj(samples[:-d])
        energy = np.abs(samples[d:]) ** 2
        window = np.ones(2 * d)
        corr = np.convolve(prod, window, mode="valid")
        norm = np.convolve(energy, window, mode="valid")
        metric = np.abs(corr) / np.maximum(norm, 1e-30)
        run = 0
        for i, above in enumerate(metric > threshold):
            run = run + 1 if above else 0
            if run >= min_run:
                return i - min_run + 1
        return None

    def test_matches_reference_on_packets_and_noise(self):
        rng = np.random.default_rng(31)
        tx = Transmitter(TxConfig(rate_mbps=24))
        for guard in (0, 37, 150):
            wave = tx.transmit(rng.integers(0, 256, 40, dtype=np.uint8))
            samples = np.concatenate([np.zeros(guard), wave])
            samples = samples + 0.05 * (
                rng.normal(size=samples.size)
                + 1j * rng.normal(size=samples.size)
            )
            assert detect_packet(samples) == self._reference_detect(samples)
        noise = rng.normal(size=4000) + 1j * rng.normal(size=4000)
        assert detect_packet(noise) is None
        assert self._reference_detect(noise) is None
