"""Tests for constellation mapping/demapping (repro.dsp.modulation)."""

import numpy as np
import pytest

from repro.dsp.modulation import (
    BITS_PER_SYMBOL,
    Demapper,
    K_MOD,
    Mapper,
    constellation,
)

ALL_MODS = sorted(BITS_PER_SYMBOL)


class TestConstellations:
    @pytest.mark.parametrize("mod", ALL_MODS)
    def test_unit_average_energy(self, mod):
        points = constellation(mod)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0, rel=1e-12)

    @pytest.mark.parametrize("mod", ALL_MODS)
    def test_point_count(self, mod):
        assert constellation(mod).size == 2 ** BITS_PER_SYMBOL[mod]

    def test_bpsk_points(self):
        assert np.allclose(constellation("BPSK"), [-1, 1])

    def test_qpsk_levels(self):
        pts = constellation("QPSK")
        k = K_MOD["QPSK"]
        assert np.allclose(sorted(np.unique(pts.real)), [-k, k])
        assert np.allclose(sorted(np.unique(pts.imag)), [-k, k])

    def test_qam16_gray_mapping(self):
        # Standard: I from b0b1 with 00->-3, 01->-1, 11->+1, 10->+3.
        pts = constellation("QAM16") / K_MOD["QAM16"]
        assert pts[0b0000] == pytest.approx(-3 - 3j)
        assert pts[0b0111] == pytest.approx(-1 + 1j)
        assert pts[0b0110] == pytest.approx(-1 + 3j)
        assert pts[0b1010] == pytest.approx(3 + 3j)
        assert pts[0b1111] == pytest.approx(1 + 1j)

    def test_gray_property_neighbours(self):
        # Nearest horizontal neighbours differ in exactly one I bit group
        # bit: check for 64-QAM on the I axis.
        pts = constellation("QAM64") / K_MOD["QAM64"]
        by_level = {}
        for idx in range(64):
            i_bits = idx >> 3
            by_level[pts[idx].real] = by_level.get(pts[idx].real, set()) | {i_bits}
        levels = sorted(by_level)
        codes = [by_level[l].pop() for l in levels]
        for a, b in zip(codes, codes[1:]):
            assert bin(a ^ b).count("1") == 1


class TestMapper:
    @pytest.mark.parametrize("mod", ALL_MODS)
    def test_map_demap_hard_roundtrip(self, mod):
        rng = np.random.default_rng(42)
        n = BITS_PER_SYMBOL[mod] * 100
        bits = rng.integers(0, 2, n, dtype=np.uint8)
        symbols = Mapper(mod).map(bits)
        back = Demapper(mod).demap_hard(symbols)
        assert np.array_equal(back, bits)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Mapper("QAM16").map(np.zeros(5, dtype=np.uint8))

    def test_unknown_modulation(self):
        with pytest.raises(ValueError):
            Mapper("QAM256")
        with pytest.raises(ValueError):
            Demapper("PSK8")

    def test_symbol_count(self):
        bits = np.zeros(96, dtype=np.uint8)
        assert Mapper("QPSK").map(bits).size == 48


class TestSoftDemapping:
    @pytest.mark.parametrize("mod", ALL_MODS)
    def test_llr_signs_match_hard_decisions(self, mod):
        rng = np.random.default_rng(7)
        n = BITS_PER_SYMBOL[mod] * 64
        bits = rng.integers(0, 2, n, dtype=np.uint8)
        symbols = Mapper(mod).map(bits)
        llr = Demapper(mod).demap_soft(symbols, noise_var=0.1)
        # Positive LLR favours bit 0 by convention.
        hard_from_llr = (llr < 0).astype(np.uint8)
        assert np.array_equal(hard_from_llr, bits)

    def test_noise_var_scales_llr(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        symbols = Mapper("QPSK").map(bits)
        llr1 = Demapper("QPSK").demap_soft(symbols, noise_var=1.0)
        llr2 = Demapper("QPSK").demap_soft(symbols, noise_var=0.5)
        assert np.allclose(llr2, 2.0 * llr1)

    def test_llr_magnitude_reflects_distance(self):
        # A symbol exactly on a decision boundary has near-zero LLR.
        d = Demapper("BPSK")
        llr_boundary = d.demap_soft(np.array([0.0 + 0j]))
        llr_far = d.demap_soft(np.array([1.0 + 0j]))
        assert abs(llr_boundary[0]) < 1e-9
        assert abs(llr_far[0]) > 1.0

    def test_noisy_soft_decisions_majority_correct(self):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, 6 * 500, dtype=np.uint8)
        symbols = Mapper("QAM64").map(bits)
        noisy = symbols + 0.05 * (
            rng.standard_normal(symbols.size)
            + 1j * rng.standard_normal(symbols.size)
        )
        llr = Demapper("QAM64").demap_soft(noisy, noise_var=0.005)
        errors = int(((llr < 0).astype(np.uint8) != bits).sum())
        assert errors < bits.size * 0.01
