"""Tests for the WLAN system test bench (repro.core.testbench)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.channel.fading import FadingChannel
from repro.channel.interference import InterferenceScenario
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.rf.frontend import FrontendConfig, ideal_frontend_config


class TestDspOnlyBench:
    def test_high_snr_error_free(self):
        tb = WlanTestbench(
            TestbenchConfig(rate_mbps=24, psdu_bytes=40, snr_db=25.0)
        )
        m = tb.measure_ber(n_packets=3, seed=0)
        assert m.ber == 0.0
        assert m.packets == 3

    def test_low_snr_errors(self):
        tb = WlanTestbench(
            TestbenchConfig(rate_mbps=54, psdu_bytes=40, snr_db=5.0)
        )
        m = tb.measure_ber(n_packets=3, seed=1)
        assert m.ber > 0.1

    def test_ber_monotone_in_snr(self):
        bers = []
        for snr in (6.0, 10.0, 14.0):
            tb = WlanTestbench(
                TestbenchConfig(rate_mbps=24, psdu_bytes=40, snr_db=snr)
            )
            bers.append(tb.measure_ber(n_packets=4, seed=2).ber)
        assert bers[0] >= bers[1] >= bers[2]

    def test_early_stop(self):
        tb = WlanTestbench(
            TestbenchConfig(rate_mbps=54, psdu_bytes=40, snr_db=0.0)
        )
        m = tb.measure_ber(n_packets=50, seed=3, max_bit_errors=100)
        assert m.packets < 50

    def test_fading_channel_configured(self):
        tb = WlanTestbench(
            TestbenchConfig(
                rate_mbps=6,
                psdu_bytes=40,
                snr_db=25.0,
                fading=FadingChannel(rms_delay_spread_s=50e-9),
            )
        )
        m = tb.measure_ber(n_packets=4, seed=4)
        # Most packets decode over a benign 50 ns channel at 6 Mbps.
        assert m.packets_lost <= 1


class TestEvmBench:
    @pytest.mark.parametrize("snr", [15.0, 25.0])
    def test_evm_tracks_snr(self, snr):
        tb = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24, psdu_bytes=40, snr_db=snr, genie_rx=True
            )
        )
        e = tb.measure_evm(n_packets=3, seed=5)
        expected = 100.0 * 10 ** (-snr / 20.0)
        assert e.evm_percent == pytest.approx(expected, rel=0.2)

    def test_evm_db_property(self):
        tb = WlanTestbench(
            TestbenchConfig(rate_mbps=24, psdu_bytes=30, snr_db=20.0,
                            genie_rx=True)
        )
        e = tb.measure_evm(n_packets=2, seed=6)
        assert e.evm_db == pytest.approx(20 * np.log10(e.evm_rms))
        assert e.n_symbols > 0

    def test_evm_through_practical_receiver(self):
        # Our receiver exposes equalized symbols, so EVM also works on the
        # practical (synchronized) receiver -- beyond what the paper could
        # capture from the SPW demo model.
        tb = WlanTestbench(
            TestbenchConfig(rate_mbps=24, psdu_bytes=40, snr_db=22.0)
        )
        e = tb.measure_evm(n_packets=2, seed=7)
        assert 3.0 < e.evm_percent < 20.0


class TestRfBench:
    def test_clean_through_frontend(self):
        tb = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24,
                psdu_bytes=40,
                thermal_floor=True,
                frontend=FrontendConfig(),
                input_level_dbm=-55.0,
            )
        )
        m = tb.measure_ber(n_packets=2, seed=8)
        assert m.ber == 0.0

    def test_weak_signal_degrades(self):
        tb = WlanTestbench(
            TestbenchConfig(
                rate_mbps=54,
                psdu_bytes=40,
                thermal_floor=True,
                frontend=FrontendConfig(),
                input_level_dbm=-85.0,
            )
        )
        m = tb.measure_ber(n_packets=3, seed=9)
        assert m.ber > 0.05

    def test_ideal_frontend_better_than_impaired(self):
        level = -78.0
        impaired = WlanTestbench(
            TestbenchConfig(
                rate_mbps=54, psdu_bytes=40, thermal_floor=True,
                frontend=FrontendConfig(), input_level_dbm=level,
            )
        ).measure_ber(n_packets=4, seed=10)
        ideal = WlanTestbench(
            TestbenchConfig(
                rate_mbps=54, psdu_bytes=40, thermal_floor=True,
                frontend=ideal_frontend_config(), input_level_dbm=level,
            )
        ).measure_ber(n_packets=4, seed=10)
        assert ideal.ber <= impaired.ber

    def test_adjacent_channel_oversampling_chosen(self):
        tb = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24,
                psdu_bytes=40,
                snr_db=25.0,
                interference=InterferenceScenario.adjacent(),
            )
        )
        # No front end: the bench must oversample on its own ("to fulfill
        # the sampling theorem").
        assert tb.oversample >= 4

    def test_interference_scenario_none_native_rate(self):
        tb = WlanTestbench(TestbenchConfig(rate_mbps=24, snr_db=20.0))
        assert tb.oversample == 1
