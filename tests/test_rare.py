"""Tests for rare-event BER acceleration (repro.perf.rare).

The estimator contract under test: importance sampling must be
*unbiased* (agree with closed-form oracles and plain Monte-Carlo in the
overlap regime), *diagnosable* (weight moments, ESS, variance-reduction
factor with known units), and *deterministic* (bit-identical across
jobs / batch / chunk scheduling, like every other harness in the repo).
"""

import numpy as np
import pytest

from repro.core.metrics import binomial_confidence
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.perf import rare
from repro.perf.rare import (
    WeightedBerMeasurement,
    WeightedBerState,
    auto_boost_db,
    boost_for,
    dimension_capped_boost_db,
    ebn0_for_ber,
    measure_uncoded_ber,
    noise_log_weight,
    packet_noise_dimension,
    run_adaptive_sweep,
)
from repro.qa.oracles import theoretical_ber


def _states_equal(a: WeightedBerState, b: WeightedBerState) -> bool:
    return a == b  # dataclass: field-exact


def _genie_config(snr_db=2.0):
    return TestbenchConfig(
        rate_mbps=6, psdu_bytes=20, snr_db=snr_db, genie_rx=True
    )


class TestNoiseLogWeight:
    def test_zero_at_unit_boost(self):
        assert noise_log_weight(123.4, 512, 1.0) == 0.0

    def test_matches_density_ratio(self):
        # log w must equal the explicit CN density ratio p(x)/q(x)
        # evaluated at the scaled draw x = sqrt(nu) * z.
        rng = np.random.default_rng(3)
        power = 0.7
        nu = 3.5
        z = np.sqrt(power / 2) * (
            rng.standard_normal(64) + 1j * rng.standard_normal(64)
        )
        x = np.sqrt(nu) * z

        def log_cn(v, p):
            return float(np.sum(-np.abs(v) ** 2 / p - np.log(np.pi * p)))

        expected = log_cn(x, power) - log_cn(x, nu * power)
        got = noise_log_weight(
            float(np.sum(np.abs(z) ** 2)) / power, z.size, nu
        )
        assert got == pytest.approx(expected, rel=1e-12)

    def test_mean_weight_is_one(self):
        # E_q[w] = 1 exactly; the sample mean over many draws must
        # concentrate there.
        rng = np.random.default_rng(5)
        nu = 2.0
        z2 = 0.5 * (
            rng.standard_normal(200_000) ** 2
            + rng.standard_normal(200_000) ** 2
        )
        logw = np.log(nu) - (nu - 1.0) * z2
        assert np.exp(logw).mean() == pytest.approx(1.0, abs=0.02)


class TestWeightedBerState:
    def test_unit_weights_reduce_to_raw_counts(self):
        s = WeightedBerState()
        for errors in (0, 3, 0, 1):
            s.add(errors, 10)
        assert s.ber == pytest.approx(4 / 40)
        assert s.raw_ber == pytest.approx(4 / 40)
        assert s.mean_weight == 1.0
        assert s.ess == pytest.approx(4.0)
        assert s.ess_fraction == pytest.approx(1.0)

    def test_add_many_matches_scalar_adds(self):
        rng = np.random.default_rng(7)
        errors = rng.integers(0, 4, 50)
        logw = rng.normal(0.0, 0.3, 50)
        a = WeightedBerState()
        b = WeightedBerState()
        for e, lw in zip(errors, logw):
            a.add(float(e), 8, float(lw))
        b.add_many(errors.astype(float), 8, logw)
        assert a.trials == b.trials
        assert a.error_trials == b.error_trials
        assert a.sum_wp == pytest.approx(b.sum_wp, rel=1e-12)
        assert a.ess == pytest.approx(b.ess, rel=1e-12)
        assert a.max_w == b.max_w

    def test_merge_in_chunk_order_is_exact(self):
        # The parallel fold is always ((empty + c0) + c1) + c2 ... in
        # chunk order; that exact sequence must reproduce the serial
        # state bit for bit.
        rng = np.random.default_rng(11)
        serial = WeightedBerState()
        chunks = []
        for _ in range(4):
            c = WeightedBerState()
            for _ in range(8):
                e = float(rng.integers(0, 3))
                lw = float(rng.normal(0.0, 0.2))
                c.add(e, 12, lw)
            chunks.append(c)
        for c in chunks:
            serial = serial.merge(c)
        refolded = WeightedBerState()
        for c in chunks:
            refolded = refolded.merge(c)
        assert _states_equal(serial, refolded)

    def test_merge_regrouping_agrees_statistically(self):
        rng = np.random.default_rng(13)
        chunks = []
        for _ in range(3):
            c = WeightedBerState()
            for _ in range(16):
                c.add(float(rng.integers(0, 2)), 4, float(rng.normal(0, 0.4)))
            chunks.append(c)
        a, b, c = chunks
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.trials == right.trials
        assert left.sum_wp == pytest.approx(right.sum_wp, rel=1e-12)
        assert left.ber == pytest.approx(right.ber, rel=1e-12)
        assert left.ess == pytest.approx(right.ess, rel=1e-12)

    def test_ber_clipped_to_unit_interval(self):
        s = WeightedBerState()
        s.add(10, 10, log_weight=3.0)  # w ~ 20: unclipped estimate > 1
        assert s.ber_unclipped > 1.0
        assert s.ber == 1.0
        s2 = WeightedBerState()
        assert s2.ber == 0.0

    def test_weight_diagnostics_units(self):
        s = WeightedBerState()
        s.add(1, 10, log_weight=np.log(3.0))
        s.add(0, 10, log_weight=np.log(1.0))
        # mean weight: (3 + 1) / 2
        assert s.mean_weight == pytest.approx(2.0)
        # Kish ESS: (3+1)^2 / (9+1)
        assert s.ess == pytest.approx(16.0 / 10.0)
        assert s.ess_fraction == pytest.approx(0.8)
        assert s.max_weight_share == pytest.approx(3.0 / 4.0)

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            WeightedBerState().add(0, 0)
        with pytest.raises(ValueError):
            WeightedBerState().add_many([0.0], 0, [0.0])

    def test_result_round_trips_confidence(self):
        s = WeightedBerState()
        rng = np.random.default_rng(17)
        for _ in range(64):
            s.add(float(rng.integers(0, 3)), 16, float(rng.normal(0, 0.3)))
        m = s.result(packets=64)
        assert isinstance(m, WeightedBerMeasurement)
        assert m.confidence(z=4.5) == s.confidence(z=4.5)
        assert m.ci95 == s.confidence(z=1.96)


class TestBoostSelection:
    def test_ebn0_for_ber_inverts_theory(self):
        for mod in ("BPSK", "QAM16"):
            ebn0 = ebn0_for_ber(mod, 1e-4)
            assert theoretical_ber(mod, ebn0) == pytest.approx(
                1e-4, rel=1e-4
            )

    def test_ebn0_for_ber_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            ebn0_for_ber("BPSK", 0.0)
        with pytest.raises(ValueError):
            ebn0_for_ber("BPSK", 0.7)

    def test_boost_lands_proposal_at_target(self):
        ebn0 = ebn0_for_ber("BPSK", 1e-5)
        boost = boost_for("BPSK", ebn0, target_ber=2e-2)
        assert theoretical_ber("BPSK", ebn0 - boost) == pytest.approx(
            2e-2, rel=1e-3
        )

    def test_boost_never_negative(self):
        assert boost_for("BPSK", -5.0) == 0.0

    def test_dimension_cap_shrinks_with_dimension(self):
        assert dimension_capped_boost_db(1) > dimension_capped_boost_db(100)
        nu = 10 ** (dimension_capped_boost_db(400) / 10.0)
        assert nu == pytest.approx(1.0 + 1.0 / 20.0)

    def test_auto_boost_capped_by_packet_dimension(self):
        cfg = _genie_config(snr_db=2.0)
        cap = dimension_capped_boost_db(packet_noise_dimension(cfg))
        assert 0.0 <= auto_boost_db(cfg) <= cap

    def test_auto_boost_zero_without_snr(self):
        assert auto_boost_db(TestbenchConfig(rate_mbps=6, psdu_bytes=20)) == 0.0


class TestUncodedUnbiasedness:
    def test_is_agrees_with_oracle_bpsk(self):
        ebn0 = ebn0_for_ber("BPSK", 1e-4)
        m = measure_uncoded_ber(
            "BPSK", ebn0, n_packets=120, symbols_per_packet=256, seed=0
        )
        low, high = m.confidence(z=4.5)
        assert low <= theoretical_ber("BPSK", ebn0) <= high

    def test_is_agrees_with_oracle_qam16(self):
        ebn0 = ebn0_for_ber("QAM16", 1e-4)
        m = measure_uncoded_ber(
            "QAM16", ebn0, n_packets=120, symbols_per_packet=256, seed=1
        )
        low, high = m.confidence(z=4.5)
        assert low <= theoretical_ber("QAM16", ebn0) <= high

    def test_variance_reduction_gate(self):
        # The acceptance criterion: >= 10x fewer packets than plain MC
        # for the same CI width at the deep BPSK point.
        ebn0 = ebn0_for_ber("BPSK", 1e-4)
        m = measure_uncoded_ber(
            "BPSK", ebn0, n_packets=120, symbols_per_packet=256, seed=0
        )
        assert m.vr_estimate >= 10.0

    def test_zero_boost_is_bit_identical_to_mc(self):
        ebn0 = 6.0
        a = measure_uncoded_ber(
            "BPSK", ebn0, n_packets=24, symbols_per_packet=64,
            estimator="is", boost_db=0.0, seed=3,
        )
        b = measure_uncoded_ber(
            "BPSK", ebn0, n_packets=24, symbols_per_packet=64,
            estimator="mc", seed=3,
        )
        assert a.ber == b.ber
        assert a.bit_errors == b.bit_errors
        assert a.bits_total == b.bits_total
        assert a.mean_weight == 1.0

    def test_jobs_bit_identity(self):
        ebn0 = ebn0_for_ber("BPSK", 1e-4)
        serial = measure_uncoded_ber(
            "BPSK", ebn0, n_packets=40, symbols_per_packet=64,
            seed=5, jobs=1,
        )
        pooled = measure_uncoded_ber(
            "BPSK", ebn0, n_packets=40, symbols_per_packet=64,
            seed=5, jobs=2,
        )
        assert serial == pooled  # dataclass: every field exact

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError):
            measure_uncoded_ber("BPSK", 8.0, estimator="mcmc")


class TestFullChainImportanceSampling:
    def test_zero_boost_matches_mc_raw_counts(self):
        bench = WlanTestbench(_genie_config())
        is0 = bench.measure_ber(n_packets=8, seed=0, estimator="is",
                                boost_db=0.0)
        mc = bench.measure_ber(n_packets=8, seed=0)
        assert is0.bit_errors == mc.bit_errors
        assert is0.bits_total == mc.bits_total
        assert is0.ber == pytest.approx(mc.ber, rel=1e-12)
        assert is0.mean_weight == 1.0
        assert is0.ess_fraction == pytest.approx(1.0)

    def test_bit_identity_serial_jobs_batch(self):
        bench = WlanTestbench(_genie_config())
        boost = auto_boost_db(bench.config)
        kwargs = dict(n_packets=16, seed=2, estimator="is", boost_db=boost)
        serial = bench.measure_ber(jobs=1, batch_size=1, chunk_size=1,
                                   **kwargs)
        pooled = bench.measure_ber(jobs=2, batch_size=1, chunk_size=1,
                                   **kwargs)
        batched = bench.measure_ber(jobs=1, batch_size=8, chunk_size=1,
                                    **kwargs)
        assert serial == pooled
        assert serial == batched

    def test_is_measurement_carries_diagnostics(self):
        bench = WlanTestbench(_genie_config())
        m = bench.measure_ber(n_packets=8, seed=0, estimator="is")
        assert isinstance(m, WeightedBerMeasurement)
        assert m.estimator == "is"
        assert m.boost_db > 0.0
        assert 0.0 < m.ess_fraction <= 1.0
        assert m.trials == 8

    def test_unknown_estimator_rejected(self):
        bench = WlanTestbench(_genie_config())
        with pytest.raises(ValueError):
            bench.measure_ber(n_packets=1, estimator="bogus")


class TestEarlyStopSemantics:
    """``max_bit_errors`` keys on RAW counts; overshoot is chunk-bounded."""

    def test_mc_stop_is_prefix_of_full_run(self):
        # An early-stopped run must equal an uninterrupted run over
        # exactly the packets it consumed (spawn children are a pure
        # function of their index).
        bench = WlanTestbench(_genie_config(snr_db=-4.0))
        stopped = bench.measure_ber(
            n_packets=20, seed=1, max_bit_errors=50, chunk_size=4
        )
        assert stopped.packets < 20
        assert stopped.packets % 4 == 0
        assert stopped.bit_errors >= 50
        prefix = bench.measure_ber(
            n_packets=stopped.packets, seed=1, chunk_size=4
        )
        assert stopped == prefix

    def test_chunk_overshoot_is_bounded(self):
        # The stop decision happens at chunk boundaries: the crossing
        # chunk is consumed whole, and nothing beyond it.
        bench = WlanTestbench(_genie_config(snr_db=-4.0))
        per_packet = bench.measure_ber(
            n_packets=20, seed=1, max_bit_errors=1, chunk_size=1
        )
        chunked = bench.measure_ber(
            n_packets=20, seed=1, max_bit_errors=1, chunk_size=5
        )
        # chunk_size=1 reproduces the classic per-packet stop: the
        # first errored packet is the last one consumed.
        assert per_packet.packets <= chunked.packets
        assert chunked.packets % 5 == 0

    def test_is_stop_keys_on_raw_not_weighted_errors(self):
        # At a deep operating point with a boosted proposal the raw
        # error count is large while the weighted error mass is tiny;
        # the run must still stop early (i.e. the threshold reads raw
        # counts, not weighted ones).
        bench = WlanTestbench(_genie_config(snr_db=0.0))
        m = bench.measure_ber(
            n_packets=40, seed=0, estimator="is", boost_db=6.0,
            max_bit_errors=30, chunk_size=2,
        )
        assert m.packets < 40
        assert m.bit_errors >= 30  # raw errors under the proposal
        # The weighted estimate stays deep even though raw errors are
        # plentiful — exactly the regime where a weighted stopping rule
        # would never have triggered.
        assert m.ber < m.bit_errors / m.bits_total

    def test_is_stop_is_prefix_of_full_run(self):
        bench = WlanTestbench(_genie_config(snr_db=-4.0))
        stopped = bench.measure_ber(
            n_packets=24, seed=4, estimator="is", boost_db=0.1,
            max_bit_errors=40, chunk_size=3,
        )
        assert stopped.packets < 24
        prefix = bench.measure_ber(
            n_packets=stopped.packets, seed=4, estimator="is",
            boost_db=0.1, chunk_size=3,
        )
        assert stopped == prefix


class TestSweepEstimator:
    def test_is_sweep_points_are_weighted(self):
        from repro.core.sweep import ParameterSweep

        sweep = ParameterSweep(
            base_config=_genie_config(),
            parameter="snr_db",
            values=[0.0, 2.0],
            n_packets=2,
            seed=0,
            estimator="is",
        )
        result = sweep.run()
        assert all(
            isinstance(p.measurement, WeightedBerMeasurement)
            for p in result.points
        )
        table = result.as_table()
        assert "est" in table and "is" in table
        kpis = result.as_kpis()
        assert any(k.startswith("estimator_is[") for k in kpis)

    def test_auto_switches_below_threshold(self):
        from repro.core.sweep import ParameterSweep

        sweep = ParameterSweep(
            base_config=_genie_config(),
            parameter="snr_db",
            values=[-4.0, 6.0],
            n_packets=1,
            seed=0,
            estimator="auto",
            is_threshold=1e-2,
        )
        plans = [
            sweep._point_estimator(sweep._configured(v))
            for v in sweep.values
        ]
        # Low SNR: uncoded theory well above 1e-2 -> plain MC; high
        # SNR: below the threshold -> importance sampling.
        assert plans[0][0] == "mc"
        assert plans[1][0] == "is"
        assert plans[1][1] > 0.0

    def test_bad_estimator_rejected(self):
        from repro.core.sweep import ParameterSweep

        sweep = ParameterSweep(
            base_config=_genie_config(),
            parameter="snr_db",
            values=[0.0],
            n_packets=1,
            seed=0,
            estimator="nope",
        )
        with pytest.raises(ValueError):
            sweep.run()

    def test_memoized_is_point_round_trips(self, tmp_path):
        from repro.core.sweep import ParameterSweep
        from repro.obs import RunStore

        store = RunStore(tmp_path)
        sweep = ParameterSweep(
            base_config=_genie_config(),
            parameter="snr_db",
            values=[0.0, 2.0],
            n_packets=2,
            seed=0,
            estimator="is",
        )
        fresh = sweep.run(store=store, memoize=True)
        replay = sweep.run(store=store, memoize=True)
        for a, b in zip(fresh.points, replay.points):
            assert isinstance(b.measurement, WeightedBerMeasurement)
            assert a.measurement == b.measurement

    def test_memo_key_unchanged_for_mc(self):
        # Legacy Monte-Carlo memo keys must not change because the
        # estimator plumbing exists — stored caches stay valid.
        from repro.core.sweep import _point_memo_key

        cfg = _genie_config()
        legacy = _point_memo_key(cfg, 4, 0, 1, None)
        explicit = _point_memo_key(
            cfg, 4, 0, 1, None, estimator="mc", boost_db=None
        )
        assert legacy == explicit


class TestAdaptiveAllocation:
    def _sweep(self, estimator="mc"):
        from repro.core.sweep import ParameterSweep

        return ParameterSweep(
            base_config=_genie_config(),
            parameter="snr_db",
            values=[0.0, 2.0, 4.0],
            n_packets=1,
            seed=0,
            estimator=estimator,
        )

    def test_budget_exactly_spent(self):
        result = run_adaptive_sweep(self._sweep(), 9)
        spent = sum(p.measurement.packets for p in result.points)
        assert spent == 9
        assert all(p.measurement.packets >= 1 for p in result.points)

    def test_deterministic_across_runs_and_jobs(self):
        a = run_adaptive_sweep(self._sweep(), 9, jobs=1)
        b = run_adaptive_sweep(self._sweep(), 9, jobs=2)
        assert [p.measurement for p in a.points] == [
            p.measurement for p in b.points
        ]

    def test_ci_shrinks_with_budget(self):
        small = run_adaptive_sweep(self._sweep(), 6, z=1.96)
        large = run_adaptive_sweep(self._sweep(), 24, z=1.96)

        def widest(result):
            widths = []
            for p in result.points:
                m = p.measurement
                low, high = binomial_confidence(
                    m.bit_errors, m.bits_total, z=1.96
                )
                widths.append(high - low)
            return max(widths)

        assert widest(large) < widest(small)

    def test_budget_must_cover_points(self):
        with pytest.raises(ValueError):
            run_adaptive_sweep(self._sweep(), 2)

    def test_weighted_points_allocate_too(self):
        result = run_adaptive_sweep(self._sweep(estimator="is"), 9)
        assert all(
            isinstance(p.measurement, WeightedBerMeasurement)
            for p in result.points
        )
        assert sum(p.measurement.packets for p in result.points) == 9


class TestQaRareSection:
    def test_quick_section_passes(self):
        from repro.qa.harness import run_rare_checks

        checks = run_rare_checks(seed=0, quick=True)
        names = {c.name for c in checks}
        assert "rare_is_vs_oracle" in names
        assert "rare_variance_reduction" in names
        failed = [c.name for c in checks if not c.passed]
        assert not failed


class TestRareCli:
    def test_rare_command_passes_against_oracle(self, capsys):
        from repro.cli import main

        code = main([
            "rare", "--packets", "40", "--symbols", "64",
            "--ebn0", "8.4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
