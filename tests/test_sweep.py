"""Tests for the simulation-manager sweeps (repro.core.sweep)."""

import numpy as np
import pytest

from repro.core.sweep import ParameterSweep, SimulationManager, SweepResult
from repro.core.testbench import TestbenchConfig
from repro.rf.frontend import FrontendConfig


def _dsp_config(**kw):
    return TestbenchConfig(rate_mbps=24, psdu_bytes=30, snr_db=20.0, **kw)


class TestParameterSweep:
    def test_snr_sweep_monotone(self):
        sweep = ParameterSweep(
            base_config=_dsp_config(),
            parameter="snr_db",
            values=[6.0, 12.0, 20.0],
            n_packets=3,
        )
        result = sweep.run()
        assert result.parameter == "snr_db"
        assert result.values.tolist() == [6.0, 12.0, 20.0]
        bers = result.bers
        assert bers[0] >= bers[-1]

    def test_frontend_parameter_addressing(self):
        cfg = TestbenchConfig(
            rate_mbps=24,
            psdu_bytes=30,
            thermal_floor=True,
            frontend=FrontendConfig(),
            input_level_dbm=-55.0,
        )
        sweep = ParameterSweep(
            base_config=cfg,
            parameter="frontend.lna_p1db_dbm",
            values=[-12.0],
            n_packets=1,
        )
        result = sweep.run()
        assert result.points[0].measurement.packets == 1

    def test_frontend_param_without_frontend_rejected(self):
        sweep = ParameterSweep(
            base_config=_dsp_config(),
            parameter="frontend.lna_p1db_dbm",
            values=[-12.0],
            n_packets=1,
        )
        with pytest.raises(ValueError):
            sweep.run()

    def test_unknown_parameter_rejected(self):
        sweep = ParameterSweep(
            base_config=_dsp_config(),
            parameter="bogus",
            values=[1.0],
            n_packets=1,
        )
        with pytest.raises(AttributeError):
            sweep.run()

    def test_progress_callback(self):
        lines = []
        ParameterSweep(
            base_config=_dsp_config(),
            parameter="snr_db",
            values=[15.0, 20.0],
            n_packets=1,
        ).run(progress=lines.append)
        assert len(lines) == 2
        assert "snr_db" in lines[0]

    def test_as_table_renders(self):
        result = ParameterSweep(
            base_config=_dsp_config(),
            parameter="snr_db",
            values=[20.0],
            n_packets=1,
        ).run()
        table = result.as_table()
        assert "snr_db" in table
        assert "BER" in table


class TestSimulationManager:
    def test_run_all_and_report(self):
        manager = SimulationManager()
        manager.add(
            "a",
            ParameterSweep(_dsp_config(), "snr_db", [20.0], n_packets=1),
        )
        manager.add(
            "b",
            ParameterSweep(_dsp_config(), "snr_db", [25.0], n_packets=1),
        )
        results = manager.run_all()
        assert set(results) == {"a", "b"}
        report = manager.report()
        assert "== a ==" in report
        assert "== b ==" in report

    def test_duplicate_name_rejected(self):
        manager = SimulationManager()
        sweep = ParameterSweep(_dsp_config(), "snr_db", [20.0], n_packets=1)
        manager.add("x", sweep)
        with pytest.raises(ValueError):
            manager.add("x", sweep)

    def test_single_run(self):
        manager = SimulationManager()
        manager.add(
            "only",
            ParameterSweep(_dsp_config(), "snr_db", [18.0], n_packets=1),
        )
        result = manager.run("only")
        assert isinstance(result, SweepResult)
        assert "only" in manager.results
