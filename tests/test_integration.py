"""Cross-module integration tests: the paper's scenarios end to end."""

from dataclasses import replace

import numpy as np
import pytest

from repro.channel.interference import InterferenceScenario
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.flow.blocks import build_figure3_schematic
from repro.flow.cosim import CoSimConfig, CoSimulation
from repro.flow.dataflow import DataflowEngine
from repro.rf.frontend import FrontendConfig


class TestFigure5Mechanism:
    """The two failure modes of the channel-filter sweep."""

    def _ber(self, edge_hz, seed=0):
        cfg = TestbenchConfig(
            rate_mbps=36,
            psdu_bytes=30,
            thermal_floor=True,
            frontend=replace(FrontendConfig(), lpf_edge_hz=edge_hz),
            interference=InterferenceScenario.adjacent(),
            input_level_dbm=-60.0,
        )
        return WlanTestbench(cfg).measure_ber(n_packets=2, seed=seed).ber

    def test_too_narrow_filter_kills_signal(self):
        assert self._ber(3e6) > 0.3

    def test_nominal_filter_works(self):
        assert self._ber(8.6e6) < 0.01

    def test_too_wide_filter_admits_interferer(self):
        assert self._ber(25e6) > 0.3


class TestFigure6Mechanism:
    """Compression-point sensitivity with and without the interferer."""

    def _ber(self, p1db, interference, seed=0):
        cfg = TestbenchConfig(
            rate_mbps=36,
            psdu_bytes=30,
            thermal_floor=True,
            frontend=replace(FrontendConfig(), lna_p1db_dbm=p1db),
            interference=interference,
            input_level_dbm=-60.0,
        )
        return WlanTestbench(cfg).measure_ber(n_packets=2, seed=seed).ber

    def test_linear_lna_clean_with_adjacent(self):
        assert self._ber(-10.0, InterferenceScenario.adjacent()) < 0.01

    def test_compressed_lna_fails_with_adjacent(self):
        assert self._ber(-50.0, InterferenceScenario.adjacent()) > 0.3

    def test_without_interferer_same_p1db_is_fine(self):
        assert self._ber(-50.0, InterferenceScenario.none()) < 0.01


class TestCosimNoiseGapScenario:
    def test_paper_section_5_1_observation(self):
        """Co-sim without noise functions reports optimistic BER."""
        config = CoSimConfig(
            rate_mbps=24,
            psdu_bytes=40,
            input_level_dbm=-92.0,
            analog_substeps=1,
        )
        cs = CoSimulation(FrontendConfig(), config)
        system = cs.run_system_only(4, seed=7)
        cosim_plain = cs.run_cosim(4, seed=7)
        assert system.ber > cosim_plain.ber
        # Workaround restores pessimism.
        config_fix = replace(config, noise_workaround="random_functions")
        cs_fix = CoSimulation(FrontendConfig(), config_fix)
        cosim_fixed = cs_fix.run_cosim(4, seed=7)
        assert cosim_fixed.ber > cosim_plain.ber


class TestSchematicEquivalence:
    def test_figure3_schematic_matches_testbench(self):
        """The dataflow schematic and the imperative bench agree."""
        sch, meter = build_figure3_schematic(
            rate_mbps=24, psdu_bytes=40, input_level_dbm=-55.0
        )
        for seed in range(2):
            DataflowEngine(mode="compiled", seed=seed).run(sch)
        schematic_ber = meter.bit_errors / meter.bits_total

        bench = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24,
                psdu_bytes=40,
                thermal_floor=True,
                frontend=FrontendConfig(),
                input_level_dbm=-55.0,
            )
        )
        bench_ber = bench.measure_ber(n_packets=2, seed=0).ber
        assert schematic_ber == bench_ber == 0.0


class TestFullFlowSmoke:
    def test_netlist_to_ber(self):
        """Netlist a design, compile it, run it in the system bench."""
        from repro.flow.netlist import NetlistCompiler, frontend_to_netlist

        text = frontend_to_netlist(FrontendConfig(lna_p1db_dbm=-18.0))
        design = NetlistCompiler("ams").compile(text)
        cfg = TestbenchConfig(
            rate_mbps=24,
            psdu_bytes=30,
            thermal_floor=True,
            frontend=design.config,
            input_level_dbm=-55.0,
        )
        m = WlanTestbench(cfg).measure_ber(n_packets=1, seed=0)
        assert m.ber == 0.0
