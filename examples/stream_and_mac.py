"""Multi-packet stream reception with MAC-layer verification.

Extends figure 1 to its "MAC PDU stream" terminus: several MAC frames are
transmitted back to back at different rates, the stream receiver recovers
them without knowing the boundaries, and the MAC checks each frame by its
FCS — the way a real station decides what to pass up the stack.

Run:  python examples/stream_and_mac.py
"""

import numpy as np

from repro.core.reporting import render_table
from repro.dsp.mac import MacFrame, parse_mpdu
from repro.dsp.stream import StreamReceiver
from repro.dsp.transmitter import Transmitter, TxConfig
from repro.flow.sigcalc import render_constellation, waveform_stats
from repro.rf.signal import Signal


def main():
    rng = np.random.default_rng(7)
    messages = [
        (b"beacon: ssid=HGDAT-lab", 6),
        (b"data: the quick brown fox jumps over the lazy dog " * 4, 24),
        (b"ack-heavy bulk transfer payload " * 8, 54),
    ]

    # --- build the burst --------------------------------------------------
    pieces = [np.zeros(400, complex)]
    for seq, (body, rate) in enumerate(messages):
        mpdu = MacFrame(body=body, sequence=seq).to_bytes()
        pieces.append(Transmitter(TxConfig(rate_mbps=rate)).transmit(mpdu))
        pieces.append(np.zeros(400, complex))
    samples = np.concatenate(pieces)
    noise = 10 ** (-27 / 20) / np.sqrt(2)
    samples = samples + noise * (
        rng.standard_normal(samples.size)
        + 1j * rng.standard_normal(samples.size)
    )
    stats = waveform_stats(Signal(samples, 20e6))
    print(f"air time: {samples.size / 20e6 * 1e6:.0f} us, "
          f"crest factor {stats.crest_factor_db:.1f} dB\n")

    # --- receive the stream -----------------------------------------------
    report = StreamReceiver().receive_stream(samples)
    rows = []
    for packet in report.packets:
        parsed = parse_mpdu(packet.result.psdu)
        body = parsed.frame.body if parsed.frame else b""
        rows.append(
            [
                str(packet.start_index),
                f"{packet.result.rate.data_rate_mbps}",
                str(packet.result.length_bytes),
                "OK" if parsed.fcs_ok else "BAD",
                (body[:30] + b"...").decode(errors="replace")
                if len(body) > 30 else body.decode(errors="replace"),
            ]
        )
    print(
        render_table(
            ["start", "rate [Mbps]", "MPDU [B]", "FCS", "body"], rows
        )
    )
    print(f"\n{len(report.packets)} packets recovered, "
          f"{report.failures} decode failures")

    # --- constellation of the last packet (SigCalc view) ------------------
    last = report.packets[-1].result
    print()
    print(
        render_constellation(
            last.data_symbols.reshape(-1)[:400],
            title=f"received constellation "
                  f"({last.rate.modulation}, {last.rate.data_rate_mbps} Mbps)",
        )
    )


if __name__ == "__main__":
    main()
