"""Quickstart: one 802.11a packet through the complete system.

Transmits a 54 Mbps packet, passes it through an AWGN channel and the
double-conversion RF front end, decodes it with the full synchronized
receiver and prints the stage-by-stage story.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel.awgn import AwgnChannel
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
from repro.rf.signal import Signal


def main():
    rng = np.random.default_rng(2003)

    # --- Transmitter -----------------------------------------------------
    tx = Transmitter(TxConfig(rate_mbps=54, oversample=4))
    psdu = random_psdu(256, rng)
    waveform = tx.transmit(psdu)
    print(f"transmitted {psdu.size} bytes at 54 Mbps "
          f"({waveform.size} samples @ {tx.config.sample_rate / 1e6:.0f} MHz)")

    # --- Channel: -60 dBm at the antenna plus the thermal floor ----------
    guard = np.zeros(600, dtype=complex)
    rf_in = Signal(
        np.concatenate([guard, waveform, guard]), 80e6, 5.2e9
    ).scaled_to_dbm(-60.0)
    rf_in = AwgnChannel(include_thermal_floor=True).process(rf_in, rng)
    print(f"antenna level: {rf_in.power_dbm():.1f} dBm "
          f"(PAPR {rf_in.papr_db():.1f} dB)")

    # --- RF front end (figure 2 of the paper) ----------------------------
    frontend = DoubleConversionReceiver(FrontendConfig())
    baseband = frontend.process(rf_in, rng)
    print(f"after front end: {baseband.power_dbm():.1f} dBm "
          f"@ {baseband.sample_rate / 1e6:.0f} MHz complex baseband")

    # --- DSP receiver ------------------------------------------------------
    result = Receiver(RxConfig()).receive(
        baseband.samples / np.sqrt(baseband.power_watts())
    )
    if not result.success:
        print(f"reception FAILED: {result.failure}")
        return
    errors = int(np.unpackbits(result.psdu ^ psdu).sum())
    print(f"decoded rate: {result.rate.data_rate_mbps} Mbps, "
          f"length {result.length_bytes} bytes")
    print(f"packet start @ sample {result.packet_start}, "
          f"estimated CFO {result.cfo_hz / 1e3:.1f} kHz")
    print(f"bit errors: {errors} / {psdu.size * 8} "
          f"-> {'PASS' if errors == 0 else 'FAIL'}")


if __name__ == "__main__":
    main()
