"""Adjacent-channel scenario: spectrum and receiver robustness.

Builds the paper's figure-4 situation — a wanted 802.11a channel at
5.2 GHz plus a duplicate transmitter shifted by +20 MHz, 16 dB hotter —
shows the combined spectrum, and measures how the double-conversion
receiver copes with and without the interferer.

Run:  python examples/adjacent_channel.py
"""

import numpy as np

from repro.channel.interference import InterferenceScenario
from repro.core.reporting import render_ascii_plot
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.rf.frontend import FrontendConfig
from repro.rf.signal import Signal
from repro.spectrum.psd import (
    adjacent_channel_power_ratio_db,
    occupied_bandwidth_hz,
    welch_psd,
)


def show_spectrum():
    rng = np.random.default_rng(5)
    wave = Transmitter(TxConfig(rate_mbps=24, oversample=4)).transmit(
        random_psdu(400, rng)
    )
    wanted = Signal(wave, 80e6, 5.2e9).scaled_to_dbm(-40.0)
    print(f"wanted channel: {wanted.power_dbm():.1f} dBm, occupied BW "
          f"{occupied_bandwidth_hz(wanted) / 1e6:.1f} MHz")

    combined = InterferenceScenario.adjacent().apply(wanted, rng)
    psd = welch_psd(combined, nperseg=2048)
    print(
        render_ascii_plot(
            psd.absolute_freqs_hz / 1e9,
            psd.psd_dbm_hz,
            width=70,
            height=16,
            title="OFDM signal and adjacent channel (figure 4)",
            x_label="frequency [GHz]",
            y_label="PSD [dBm/Hz]",
        )
    )
    lower, upper = adjacent_channel_power_ratio_db(combined)
    print(f"adjacent-channel power ratio: lower {lower:+.1f} dB, "
          f"upper {upper:+.1f} dB (interferer is ~16 dB hot)")


def measure_robustness():
    print("\nBER through the double-conversion receiver at -60 dBm:")
    for name, scenario in (
        ("no interferer      ", InterferenceScenario.none()),
        ("adjacent    (+16dB)", InterferenceScenario.adjacent()),
        ("non-adjacent(+32dB)", InterferenceScenario.non_adjacent()),
    ):
        fs = 120e6 if scenario.sources and scenario.sources[0].offset_channels == 2 else 80e6
        bench = WlanTestbench(
            TestbenchConfig(
                rate_mbps=24,
                psdu_bytes=60,
                thermal_floor=True,
                frontend=FrontendConfig(sample_rate_in=fs),
                interference=scenario,
                input_level_dbm=-60.0,
            )
        )
        m = bench.measure_ber(n_packets=3, seed=1)
        print(f"  {name}: BER = {m.ber:.4f} "
              f"({m.packets_lost}/{m.packets} packets lost)")


if __name__ == "__main__":
    show_spectrum()
    measure_robustness()
