"""SpectreRF-style RF characterization and behavioral-model calibration.

Characterizes a "circuit-level" LNA (a fifth-order nonlinearity with AM/PM
and excess noise) with the swept-power, two-tone and noise-figure analyses,
then calibrates both behavioral library models (SPW-style cubic and
Spectre-style Rapp) to the measurements — the calibration step of the
paper's design flow.

Run:  python examples/rf_characterization.py
"""

import numpy as np

from repro.core.calibration import CircuitLevelAmplifier, calibrate_amplifier
from repro.core.reporting import render_ascii_plot, render_table
from repro.flow.rfsim import swept_power_compression, two_tone_intermod


def main():
    circuit = CircuitLevelAmplifier(
        gain_db=16.0,
        p1db_dbm=-12.0,
        fifth_order_fraction=0.15,
        am_pm_deg_at_p1db=2.0,
        noise_figure_db=3.2,
    )
    rng = np.random.default_rng(0)

    print("=== swept-power compression analysis ===")
    comp = swept_power_compression(circuit, rng=rng)
    print(
        render_ascii_plot(
            comp.input_dbm,
            comp.output_dbm,
            width=60,
            height=14,
            title="AM/AM of the circuit-level LNA",
            x_label="input [dBm]",
            y_label="output [dBm]",
        )
    )
    print(f"small-signal gain: {comp.small_signal_gain_db:.2f} dB, "
          f"input P1dB: {comp.input_p1db_dbm:.2f} dBm")

    print("\n=== two-tone (PSS-style) intermodulation analysis ===")
    im = two_tone_intermod(circuit, tone_power_dbm=-37.0, rng=rng)
    print(f"fundamental {im.fundamental_dbm:.1f} dBm, IM3 {im.im3_dbm:.1f} "
          f"dBm -> IIP3 {im.iip3_dbm:.2f} dBm / OIP3 {im.oip3_dbm:.2f} dBm")

    print("\n=== calibrating both behavioral libraries ===")
    rows = []
    for style in ("spw", "spectre"):
        report = calibrate_amplifier(
            circuit, style=style, rng=np.random.default_rng(1)
        )
        rows.append(
            [
                style,
                f"{report.measured_gain_db:.2f}",
                f"{report.measured_p1db_dbm:.2f}",
                f"{report.measured_nf_db:.2f}",
                f"{report.residual_gain_db:+.3f}",
                f"{report.residual_p1db_db:+.3f}",
            ]
        )
    print(
        render_table(
            ["library", "gain [dB]", "P1dB [dBm]", "NF [dB]",
             "gain residual", "P1dB residual"],
            rows,
        )
    )
    print("\nresiduals within a fraction of a dB: the behavioral models "
          "are calibrated\nand can replace the circuit in system-level "
          "simulation (design-flow step 4).")


if __name__ == "__main__":
    main()
