"""RF impairment study: miniature versions of the paper's figures 5 and 6.

Uses the simulation manager to sweep the Chebyshev channel-filter edge and
the LNA compression point against the end-to-end BER, with the +16 dB
adjacent channel present — the central experiments of the paper.

Run:  python examples/rf_impairment_study.py
"""

from repro.channel.interference import InterferenceScenario
from repro.core.reporting import render_ascii_plot
from repro.core.sweep import ParameterSweep, SimulationManager
from repro.core.testbench import TestbenchConfig
from repro.rf.frontend import FrontendConfig


def main():
    base = TestbenchConfig(
        rate_mbps=36,
        psdu_bytes=60,
        thermal_floor=True,
        frontend=FrontendConfig(),
        interference=InterferenceScenario.adjacent(),
        input_level_dbm=-60.0,
    )

    manager = SimulationManager()
    manager.add(
        "figure5: BER vs channel-filter passband edge",
        ParameterSweep(
            base_config=base,
            parameter="frontend.lpf_edge_hz",
            values=[4e6, 6e6, 7e6, 8.6e6, 10e6, 14e6, 20e6],
            n_packets=3,
        ),
    )
    manager.add(
        "figure6: BER vs LNA compression point",
        ParameterSweep(
            base_config=base,
            parameter="frontend.lna_p1db_dbm",
            values=[-50.0, -45.0, -40.0, -35.0, -30.0, -20.0, -10.0],
            n_packets=3,
        ),
    )

    manager.run_all(progress=lambda msg: print("  " + msg))
    print()
    print(manager.report())

    fig6 = manager.results["figure6: BER vs LNA compression point"]
    print()
    print(
        render_ascii_plot(
            fig6.values,
            fig6.bers,
            width=60,
            height=12,
            title="BER vs compression point of LNA1 (adjacent channel)",
            x_label="P1dB [dBm]",
            y_label="BER",
        )
    )


if __name__ == "__main__":
    main()
