"""The section-4 design flow, end to end.

Executes all five steps the paper suggests — SPW system verification,
SpectreRF standalone verification, circuit-level design, behavioral-model
calibration and Verilog-AMS co-simulation — printing each step's report,
the generated netlist, the compiler's noise warning and the table-2-style
timing comparison.

Run:  python examples/cosim_flow.py
"""

from repro.core.reporting import render_table
from repro.core.verification import DesignFlow
from repro.flow.cosim import CoSimConfig, CoSimulation
from repro.flow.netlist import frontend_to_netlist
from repro.rf.frontend import FrontendConfig


def main():
    print("=== executable design flow (paper section 4) ===\n")
    flow = DesignFlow(n_packets=3, psdu_bytes=60)
    flow.run_all()
    print(flow.summary())
    print(f"\nflow verdict: {'PASS' if flow.all_passed else 'FAIL'}\n")

    print("=== generated Verilog-AMS-style netlist ===\n")
    print(frontend_to_netlist(FrontendConfig()))

    print("=== table 2: system simulation vs co-simulation ===\n")
    cosim = CoSimulation(
        FrontendConfig(),
        CoSimConfig(rate_mbps=24, psdu_bytes=60, input_level_dbm=-55.0),
    )
    rows = cosim.compare(packet_counts=(1, 2, 4))
    print(
        render_table(
            ["packets", "system [s]", "co-sim [s]", "slowdown"],
            [
                [str(r["packets"]), f"{r['system_time_s']:.3f}",
                 f"{r['cosim_time_s']:.3f}", f"{r['slowdown']:.1f}x"]
                for r in rows
            ],
        )
    )
    print("\n(the paper measured a 30-40x slowdown on its Sun server)")


if __name__ == "__main__":
    main()
