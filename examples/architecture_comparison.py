"""Double-conversion vs zero-IF architecture comparison.

Quantifies section 2.2 of the paper: why the 5.2 GHz receiver uses two
mixer stages sharing a half-frequency LO instead of direct conversion —
plus the RF link-budget view of the chosen design.

Run:  python examples/architecture_comparison.py
"""

from repro.core.budget import frontend_cascade
from repro.core.reporting import render_table
from repro.core.testbench import TestbenchConfig, WlanTestbench
from repro.rf.frontend import FrontendConfig
from repro.rf.zeroif import ZeroIfConfig


def ber(frontend, level, rate=54, seed=9):
    bench = WlanTestbench(
        TestbenchConfig(
            rate_mbps=rate,
            psdu_bytes=60,
            thermal_floor=True,
            frontend=frontend,
            input_level_dbm=level,
        )
    )
    return bench.measure_ber(n_packets=3, seed=seed).ber


def main():
    print("=== link budget of the double-conversion front end ===\n")
    cascade = frontend_cascade(FrontendConfig())
    print(cascade.as_table())
    print(f"\ncascade: gain {cascade.total_gain_db:+.1f} dB, "
          f"NF {cascade.total_nf_db:.2f} dB, "
          f"IIP3 {cascade.total_iip3_dbm:+.1f} dBm")
    print(f"budget sensitivity at 24 Mbps (11 dB SNR): "
          f"{cascade.sensitivity_dbm(11.0):.1f} dBm")

    print("\n=== architecture shoot-out (54 Mbps, 10 ppm LO error) ===\n")
    double = FrontendConfig(lo_error_ppm=10.0)
    zif = ZeroIfConfig(lo_error_ppm=10.0)
    zif_raw = ZeroIfConfig(lo_error_ppm=10.0, dc_block_cutoff_hz=0.0)
    rows = []
    for level in (-55.0, -72.0, -76.0, -78.0):
        rows.append(
            [f"{level:+.0f}",
             f"{ber(double, level):.3f}",
             f"{ber(zif, level):.3f}",
             f"{ber(zif_raw, level):.3f}"]
        )
    print(
        render_table(
            ["input [dBm]", "double conv.", "zero-IF + DC block",
             "zero-IF raw"],
            rows,
        )
    )
    print(
        "\nThe raw zero-IF fails at every level: its -25 dBm self-mixing\n"
        "DC offset (the LO sits at the RF carrier) swamps 64-QAM.  With a\n"
        "DC block it works, but gives up sensitivity to in-band flicker\n"
        "noise — the double conversion receiver's 2.6 GHz LO avoids both\n"
        "problems, which is exactly the paper's architectural argument."
    )


if __name__ == "__main__":
    main()
