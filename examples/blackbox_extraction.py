"""J&K black-box model extraction (the paper's "other solution").

Characterizes the complete double-conversion front end with SpectreRF-style
measurements and builds the K-model surrogate that can be "instantiated in
SPW" — then validates the surrogate against the structural model across
input levels.

Run:  python examples/blackbox_extraction.py
"""

import time

import numpy as np

from repro.channel.awgn import AwgnChannel
from repro.core.reporting import render_ascii_plot, render_table
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.flow.blackbox import extract_blackbox
from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
from repro.rf.signal import Signal


def ber_through(block, level_dbm, n_packets=4, seed=11):
    rng = np.random.default_rng(seed)
    errors, bits = 0.0, 0
    for _ in range(n_packets):
        psdu = random_psdu(60, rng)
        wave = Transmitter(TxConfig(rate_mbps=24, oversample=4)).transmit(psdu)
        sig = Signal(
            np.concatenate([np.zeros(600, complex), wave,
                            np.zeros(600, complex)]),
            80e6, 5.2e9,
        ).scaled_to_dbm(level_dbm)
        sig = AwgnChannel(include_thermal_floor=True).process(sig, rng)
        out = block.process(sig, rng)
        res = Receiver(RxConfig()).receive(
            out.samples / np.sqrt(out.power_watts())
        )
        bits += 480
        if res.success and res.psdu.size == 60:
            errors += int(np.unpackbits(res.psdu ^ psdu).sum())
        else:
            errors += 240
    return errors / bits


def main():
    cfg = FrontendConfig()
    print("extracting the black-box model from SpectreRF-style "
          "measurements...")
    t0 = time.perf_counter()
    surrogate = extract_blackbox(cfg)
    print(f"  done in {time.perf_counter() - t0:.2f} s")
    c = surrogate.characterization

    print("\n=== extracted characterization ===")
    print(f"noise figure : {c.noise_figure_db:.2f} dB")
    print(f"noise bandwidth: {c.equivalent_noise_bandwidth_hz / 1e6:.1f} MHz")
    print(f"DC offset    : {abs(c.dc_offset)**2 * 1e3:.2e} mW residual")
    print("\nAM/AM lookup (relative gain vs drive):")
    rel_gain_db = 20 * np.log10(np.abs(c.complex_gain / c.complex_gain[0]))
    print(
        render_ascii_plot(
            c.drive_dbm, rel_gain_db, width=56, height=10,
            title="compression characteristic",
            x_label="drive [dBm]", y_label="gain delta [dB]",
        )
    )

    print("\n=== surrogate vs structural model (BER) ===")
    full = DoubleConversionReceiver(cfg)
    rows = []
    for level in (-60.0, -85.0, -92.0, -95.0):
        rows.append(
            [f"{level:+.0f}",
             f"{ber_through(full, level):.4f}",
             f"{ber_through(surrogate, level):.4f}"]
        )
    print(render_table(["input [dBm]", "structural", "black-box"], rows))
    print("\nNote: the surrogate captures in-band behavior; effects that "
          "depend on the\ninternal filter/sampling order (adjacent-channel "
          "aliasing) stay with the\nstructural model — the documented "
          "K-model validity envelope.")


if __name__ == "__main__":
    main()
