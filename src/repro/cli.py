"""Command-line interface: run the reproduction's experiments by name.

Usage::

    repro quickstart                    (or: python -m repro ...)
    repro fig5 [--packets N]
    repro fig6 [--packets N]
    repro table2
    repro sensitivity [--rates 6,24,54]
    repro flow
    repro netlist
    repro qa [--quick] [--faults] [--rare] [--scenarios] [--store DIR]
    repro rare [--rate 6] [--ebn0 8.4,9.6,10.5] [--packets N]
    repro scenario [--preset NAME | --config FILE] [--snr 8,12,16]
    repro profile fig5 [--packets N] [--chrome-trace out.json]

Conformance: ``repro qa`` runs the :mod:`repro.qa` harness — frozen
Annex-G-style TX vectors, analytic BER / Friis-cascade oracles, and the
netlist + PHY fuzz passes — and exits nonzero on any failed check.
With ``--store`` the outcome persists as a run of kind ``qa`` that
``repro runs diff`` gates like any experiment.

Observability: every command accepts ``--trace PATH`` (write a JSONL
span/event trace with a run-manifest header line) and ``--metrics PATH``
(write the run's metrics plus manifest as JSON).  ``repro profile``
wraps any experiment in a tracer and prints a per-block time breakdown.

Parallelism: ``--jobs N`` fans sweeps, packet batches and campaign
checks out over N worker processes (``--jobs 0`` = one per CPU); seed
derivation guarantees results bit-identical to a serial run.
``--memoize`` (with ``--store``) reuses stored sweep-point results
whose exact measurement setup was already run.

Resilience: ``--retries N`` re-runs a failed sweep point / packet chunk
/ campaign check up to N times (same payload each attempt, so a retried
run matches a clean one exactly), ``--task-timeout S`` bounds each task,
and ``--resume`` (with ``--store``) checkpoints completed sweep points
and campaign checks incrementally so an interrupted run picks up where
it died — bit-identical to an uninterrupted run, which ``repro runs
diff`` can verify.  ``--inject-faults SPEC`` deterministically injects
failures (``[stage/]action:task[@attempt][=delay_s]``, e.g.
``sweep/fail:1@0`` or ``sweep/abort:3``) to exercise those paths; an
injected abort exits with code 70, an unrecovered task failure with 71.

Live telemetry: ``--live`` streams an ASCII dashboard (per-point
Wilson-CI convergence, worker heartbeats with stall detection, ETA)
while a run executes, ``--metrics-port PORT`` serves the run's metrics
as OpenMetrics text on ``127.0.0.1`` (0 picks a free port), and
``--openmetrics PATH`` writes the final exposition to a file.  All are
read-only: a ``--live`` run's measurements are bit-identical to one
without.  With ``--store`` the event timeline also persists as
``flight.jsonl`` (deterministic per seed and jobs), rendered as a "Run
timeline" section by ``repro report``; ``repro watch [run]`` tails an
in-flight run's spool (or replays a stored flight), and ``repro runs
trend [kpi-glob]`` prints per-KPI trajectories across stored runs.

Run store: ``--store DIR`` persists the whole run — manifest, metrics,
trace, result tables, BER curves, KPIs — as a content-addressed run
directory under DIR (default ``runs/``).  Stored runs are consumed by::

    repro runs list|show|diff|gc        inspect / regression-gate / prune
    repro runs trend [kpi-glob]         cross-run KPI trajectories
    repro report <run_id>               render markdown/HTML + chrome trace
    repro watch [run]                   tail / replay live telemetry

``repro runs diff <baseline> <candidate>`` exits nonzero when any KPI,
metric, BER curve or wall-clock aggregate regresses beyond tolerance —
the CI gate.  Run ids accept unique prefixes and the ``latest`` keyword.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np


def _cmd_quickstart(args) -> int:
    from repro.channel.awgn import AwgnChannel
    from repro.dsp.receiver import Receiver, RxConfig
    from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
    from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
    from repro.rf.signal import Signal

    rng = np.random.default_rng(args.seed)
    tx = Transmitter(TxConfig(rate_mbps=args.rate, oversample=4))
    psdu = random_psdu(args.bytes, rng)
    wave = tx.transmit(psdu)
    sig = Signal(
        np.concatenate([np.zeros(600, complex), wave, np.zeros(600, complex)]),
        80e6,
        5.2e9,
    ).scaled_to_dbm(args.level)
    sig = AwgnChannel(include_thermal_floor=True).process(sig, rng)
    out = DoubleConversionReceiver(FrontendConfig()).process(sig, rng)
    result = Receiver(RxConfig()).receive(
        out.samples / np.sqrt(out.power_watts())
    )
    if not result.success:
        print(f"reception failed: {result.failure}")
        return 1
    errors = int(np.unpackbits(result.psdu ^ psdu).sum())
    print(
        f"{args.rate} Mbps packet at {args.level} dBm: "
        f"{errors}/{8 * args.bytes} bit errors "
        f"(CFO estimate {result.cfo_hz / 1e3:.1f} kHz)"
    )
    return 0 if errors == 0 else 1


def _cmd_fig5(args) -> int:
    from repro.channel.interference import InterferenceScenario
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig
    from repro.rf.frontend import FrontendConfig

    cfg = TestbenchConfig(
        rate_mbps=36,
        psdu_bytes=60,
        thermal_floor=True,
        frontend=FrontendConfig(),
        interference=InterferenceScenario.adjacent(),
        input_level_dbm=-60.0,
    )
    sweep = ParameterSweep(
        base_config=cfg,
        parameter="frontend.lpf_edge_hz",
        values=[r * 1e8 for r in (0.04, 0.06, 0.08, 0.10, 0.14, 0.20)],
        n_packets=args.packets,
        seed=args.seed,
    )
    result = sweep.run(progress=print)
    print()
    print(result.as_table())
    return 0


def _cmd_fig6(args) -> int:
    from repro.channel.interference import InterferenceScenario
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig
    from repro.rf.frontend import FrontendConfig

    for name, scenario in (
        ("no interferer", InterferenceScenario.none()),
        ("adjacent +16 dB", InterferenceScenario.adjacent()),
    ):
        cfg = TestbenchConfig(
            rate_mbps=36,
            psdu_bytes=60,
            thermal_floor=True,
            frontend=FrontendConfig(),
            interference=scenario,
            input_level_dbm=-60.0,
        )
        result = ParameterSweep(
            base_config=cfg,
            parameter="frontend.lna_p1db_dbm",
            values=[-55.0, -45.0, -40.0, -35.0, -25.0, -15.0],
            n_packets=args.packets,
            seed=args.seed,
        ).run(run_name=name)
        print(f"\n== {name} ==")
        print(result.as_table())
    return 0


def _cmd_table2(args) -> int:
    from repro.core.reporting import render_table
    from repro.flow.cosim import CoSimConfig, CoSimulation
    from repro.rf.frontend import FrontendConfig

    cosim = CoSimulation(
        FrontendConfig(),
        CoSimConfig(rate_mbps=24, psdu_bytes=60, input_level_dbm=-55.0),
    )
    rows = cosim.compare(packet_counts=(1, 2, 4), seed=args.seed)
    print(
        render_table(
            ["packets", "system [s]", "co-sim [s]", "slowdown"],
            [
                [str(r["packets"]), f"{r['system_time_s']:.3f}",
                 f"{r['cosim_time_s']:.3f}", f"{r['slowdown']:.1f}x"]
                for r in rows
            ],
        )
    )
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.core.reporting import render_table
    from repro.core.sensitivity import find_sensitivity

    starts = {6: -84.0, 9: -84.0, 12: -82.0, 18: -80.0,
              24: -78.0, 36: -72.0, 48: -68.0, 54: -66.0}
    rates = [int(r) for r in args.rates.split(",")]
    rows = []
    ok = True
    for rate in rates:
        result = find_sensitivity(
            rate, n_packets=args.packets, psdu_bytes=120,
            start_dbm=starts.get(rate, -70.0), seed=args.seed,
        )
        ok &= result.meets_standard
        rows.append(
            [str(rate), f"{result.sensitivity_dbm:.0f}",
             f"{result.standard_requirement_dbm:.0f}",
             "PASS" if result.meets_standard else "FAIL"]
        )
    print(render_table(
        ["rate [Mbps]", "measured [dBm]", "required [dBm]", "verdict"], rows
    ))
    return 0 if ok else 1


def _cmd_flow(args) -> int:
    from repro.core.verification import DesignFlow

    flow = DesignFlow(n_packets=args.packets, psdu_bytes=60, seed=args.seed)
    flow.run_all()
    print(flow.summary())
    return 0 if flow.all_passed else 1


def _cmd_campaign(args) -> int:
    from repro.core.campaign import VerificationCampaign

    campaign = VerificationCampaign(depth=args.depth, seed=args.seed)
    report = campaign.run()
    print(report.as_table())
    print(f"\ncampaign verdict: {'PASS' if report.passed else 'FAIL'}")
    return 0 if report.passed else 1


#: Experiments the profiler can wrap, and whether they take --packets.
_PROFILABLE = {
    "quickstart": False,
    "fig5": True,
    "fig6": True,
    "table2": False,
    "sensitivity": True,
    "flow": True,
    "campaign": False,
}


def _cmd_profile(args) -> int:
    from repro import obs
    from repro.core.reporting import render_table

    inner_argv = ["--seed", str(args.seed), args.experiment]
    if _PROFILABLE[args.experiment]:
        inner_argv += ["--packets", str(args.packets)]
    inner = build_parser().parse_args(inner_argv)

    # Reuse an already-installed tracer (e.g. from an outer --trace) so
    # the profile and the trace file see the same spans.
    active = obs.get_tracer()
    tracer = active if active.enabled else obs.Tracer()
    previous = obs.set_tracer(tracer)
    try:
        code = inner.func(inner)
    finally:
        obs.set_tracer(previous)

    rows = obs.profile_rows(tracer.records, prefix="block:")
    print()
    print(f"per-block time breakdown ({args.experiment}):")
    if rows:
        print(render_table(
            ["block", "calls", "total [s]", "mean [ms]", "share", "samples"],
            rows,
        ))
    else:
        print("(no block spans recorded)")
    if args.chrome_trace:
        obs.write_chrome_trace(args.chrome_trace, tracer.records)
        print(f"chrome trace written to {args.chrome_trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    return code


# -- run-store consumers ------------------------------------------------
def _open_store(args):
    from repro.obs import RunStore

    return RunStore(args.store or "runs")


def _parse_since(text: str) -> Optional[float]:
    """Turn ``--since`` into a unix timestamp cutoff, or None on error.

    Accepts a relative age (``30m``, ``2h``, ``3d``, ``1w``, ``90s``)
    or an ISO date/datetime (``2026-08-01``, ``2026-08-01T12:00``).
    """
    import re
    import time
    from datetime import datetime

    match = re.fullmatch(r"(\d+(?:\.\d+)?)([smhdw])", text.strip())
    if match:
        unit_s = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
        return time.time() - float(match.group(1)) * unit_s[match.group(2)]
    try:
        return datetime.fromisoformat(text.strip()).timestamp()
    except ValueError:
        print(
            f"bad --since value {text!r}: expected a relative age "
            "(30m, 2h, 3d, 1w) or an ISO date/datetime",
            file=sys.stderr,
        )
        return None


def _kind_spec(text: Optional[str]) -> Optional[List[str]]:
    """Split a ``--kind`` value into its include/exclude entries."""
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_runs_list(args) -> int:
    from repro.core.reporting import render_table
    from repro.obs.live import _kind_selected

    store = _open_store(args)
    entries = store.list_runs()
    spec = _kind_spec(args.kind)
    if spec:
        entries = [e for e in entries if _kind_selected(e.kind, spec)]
    if args.since:
        cutoff = _parse_since(args.since)
        if cutoff is None:
            return 2
        entries = [e for e in entries if e.created_unix_s >= cutoff]
    if args.ids:
        for entry in entries:
            print(entry.run_id)
        return 0
    if not entries:
        print(f"(no runs under {store.root})")
        return 0
    print(render_table(
        ["run id", "kind", "name", "seed", "created"],
        [
            [
                e.run_id,
                e.kind,
                e.name or "-",
                str(e.seed) if e.seed is not None else "-",
                e.created_iso,
            ]
            for e in entries
        ],
    ))
    return 0


def _cmd_runs_show(args) -> int:
    from repro.core.reporting import render_table

    store = _open_store(args)
    try:
        run = store.load_run(args.run)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    manifest = run.manifest
    print(render_table(["field", "value"], [
        ["run id", run.run_id],
        ["created", str(manifest.get("created_iso", "-"))],
        ["seed", str(manifest.get("seed", "-"))],
        ["command", str(manifest.get("command", "-"))],
        ["integrity", "ok" if run.integrity_ok else
         "MODIFIED AFTER STORAGE"],
        ["curves", ", ".join(sorted(run.curves)) or "-"],
        ["tables", ", ".join(sorted(run.tables)) or "-"],
        ["trace", "yes" if run.has_trace else "no"],
    ]))
    if run.kpis:
        print()
        print(render_table(
            ["kpi", "value"],
            [[k, f"{v:.6g}"] for k, v in sorted(run.kpis.items())],
        ))
    return 0


def _cmd_runs_diff(args) -> int:
    from repro.core.reporting import render_table
    from repro.obs import RegressionConfig, compare_runs

    store = _open_store(args)
    try:
        baseline = store.load_run(args.baseline)
        candidate = store.load_run(args.candidate)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    config = RegressionConfig(
        kpi_abs_tol=args.kpi_abs_tol,
        kpi_rel_tol=args.kpi_rel_tol,
        timing_rel_tol=args.timing_tol,
        ber_shift_tol_db=args.ber_tol_db,
        probe_kpi_abs_tol=args.probe_tol,
        compare_timing=not args.no_timing,
        compare_metrics=not args.no_metrics,
    )
    verdict = compare_runs(baseline, candidate, config)
    headers, rows = verdict.rows(only_interesting=True)
    if rows:
        print(render_table(headers, rows))
        print()
    print(verdict.summary())
    return 0 if verdict.passed else 1


def _cmd_runs_gc(args) -> int:
    store = _open_store(args)
    removed = store.gc(args.keep, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    if removed:
        for run_id in removed:
            print(f"{verb} {run_id}")
    kept = len(store.list_runs()) - (len(removed) if args.dry_run else 0)
    print(f"{verb} {len(removed)} run(s), kept {kept} under {store.root}")
    return 0


def _cmd_runs_trend(args) -> int:
    from repro import obs
    from repro.core.reporting import render_table

    store = _open_store(args)
    since = None
    if args.since:
        since = _parse_since(args.since)
        if since is None:
            return 2
    series = obs.kpi_trend(
        store,
        pattern=args.pattern,
        kinds=_kind_spec(args.kind),
        since=since,
        last=args.last,
    )
    if not series:
        print(
            f"no stored KPIs match {args.pattern!r} under {store.root}",
            file=sys.stderr,
        )
        return 1
    for name, samples in series.items():
        values = [s["value"] for s in samples]
        print(
            f"{name}: {len(values)} run(s), "
            f"first={values[0]:.6g} last={values[-1]:.6g}  "
            f"[{obs.sparkline(values)}]"
        )
        print(render_table(
            ["created", "kind", "run id", "value"],
            [
                [s["created_iso"] or "-", s["kind"], s["run_id"],
                 f"{s['value']:.6g}"]
                for s in samples
            ],
        ))
        print()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(series, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"trend data written to {args.json_out}", file=sys.stderr)
    return 0


def _cmd_watch(args) -> int:
    import time as _time
    from pathlib import Path

    from repro import obs

    root = Path(args.store or "runs")
    token = args.run or "latest"

    def read_spool(path: Path):
        records = []
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return records
        for line in lines:
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # partial line mid-write; next tick gets it
        return records

    # Prefer an in-flight spool (<store>/live/<command>.jsonl) matching
    # the token; fall back to a finished run's stored flight recorder.
    live_dir = root / "live"
    spools = []
    if live_dir.is_dir():
        spools = [
            p for p in live_dir.glob("*.jsonl")
            if token == "latest" or token in p.stem
        ]
        spools.sort(key=lambda p: p.stat().st_mtime)
    if spools:
        spool = spools[-1]
        print(f"watching {spool} (ctrl-c to stop)", file=sys.stderr)
        last = None
        while True:
            monitor = obs.LiveMonitor.replay(read_spool(spool))
            text = obs.render_dashboard(monitor.snapshot())
            if text != last:
                print(text)
                print()
                last = text
            if args.once:
                return 0
            try:
                _time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
    store = obs.RunStore(root)
    try:
        run = store.load_run(token)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not run.flight:
        print(
            f"run {run.run_id} has no flight recorder "
            "(it was executed without --live)",
            file=sys.stderr,
        )
        return 1
    print(
        f"replaying stored flight of {run.run_id} "
        f"({len(run.flight)} records)",
        file=sys.stderr,
    )
    print(obs.render_dashboard(obs.LiveMonitor.replay(run.flight).snapshot()))
    return 0


def _cmd_report(args) -> int:
    from repro import obs

    store = _open_store(args)
    try:
        run = store.load_run(args.run)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.chrome_trace:
        obs.write_chrome_trace(
            args.chrome_trace, run.trace_records(),
            metadata={"run_id": run.run_id},
        )
        print(f"chrome trace written to {args.chrome_trace} "
              "(load in chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)
    sections = obs.run_sections(run)
    title = f"Run {run.run_id}"
    text = (
        obs.render_html(title, sections) if args.html
        else obs.render_markdown(title, sections)
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_netlist(args) -> int:
    from repro.flow.netlist import NetlistCompiler, frontend_to_netlist
    from repro.rf.frontend import FrontendConfig

    text = frontend_to_netlist(FrontendConfig())
    print(text)
    design = NetlistCompiler(target=args.target).compile(text)
    for warning in design.warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    return 0


def _cmd_probe(args) -> int:
    from repro import obs
    from repro.channel.interference import InterferenceScenario
    from repro.core.reporting import render_table
    from repro.core.testbench import TestbenchConfig, WlanTestbench
    from repro.obs.probes import (
        ccdf_rows,
        evm_rows,
        render_spectrum_ascii,
        waterfall_rows,
    )
    from repro.rf.frontend import FrontendConfig

    interference = (
        InterferenceScenario.adjacent() if args.adjacent
        else InterferenceScenario.none()
    )
    cfg = TestbenchConfig(
        rate_mbps=args.rate,
        psdu_bytes=args.bytes,
        thermal_floor=True,
        frontend=FrontendConfig(),
        interference=interference,
        input_level_dbm=args.level,
    )
    bench = WlanTestbench(cfg)
    measurement = bench.measure_ber(n_packets=args.packets, seed=args.seed)
    probes = obs.get_probes()
    export = probes.export()
    print(
        f"{args.packets} packets at {args.rate} Mbps, {args.level:.1f} dBm "
        f"input{' + adjacent channel' if args.adjacent else ''}: "
        f"BER {measurement.ber:.3g}, PER {measurement.per:.3g}"
    )
    headers, rows = waterfall_rows(export)
    if rows:
        print("\nbudget waterfall (measured vs cascade prediction):")
        print(render_table(headers, rows))
    headers, rows = evm_rows(export)
    if rows:
        print("\ndata-aided EVM at the equalizer output:")
        print(render_table(headers, rows))
    for stage, v in sorted(export.get("mask", {}).items()):
        verdict = "pass" if v["worst_margin_db"] >= 0.0 else "FAIL"
        print(
            f"\n802.11a transmit mask at '{stage}': worst margin "
            f"{v['worst_margin_db']:.2f} dB over {v['n']} burst(s) "
            f"[{verdict}]"
        )
    for stage in ("tx",):
        headers, rows = ccdf_rows(export, stage)
        if rows:
            print(f"\nPAPR CCDF at '{stage}':")
            print(render_table(headers, rows))
    for stage in ("rf:lpf", "channel", "tx"):
        if stage in export.get("psd", {}):
            art = render_spectrum_ascii(export, stage)
            if not art.startswith("("):
                print(f"\naccumulated Welch PSD at '{stage}':")
                print(art)
            break
    return 0


def _cmd_rare(args) -> int:
    from repro import obs, perf
    from repro.core.reporting import render_table
    from repro.perf import rare
    from repro.qa.oracles import RATE_MODULATIONS, theoretical_ber

    modulation = RATE_MODULATIONS.get(args.rate)
    if modulation is None:
        print(f"unknown rate {args.rate} Mbit/s", file=sys.stderr)
        return 2
    ebn0s = [float(tok) for tok in args.ebn0.split(",") if tok.strip()]
    children = perf.spawn(args.seed, len(ebn0s))
    rows = []
    curve = {"x_label": "ebn0_db", "x": [], "ber": [], "per": [],
             "packets": []}
    kpis = {}
    ok = True
    for ebn0, child in zip(ebn0s, children):
        meas = rare.measure_uncoded_ber(
            modulation, ebn0,
            n_packets=args.packets, symbols_per_packet=args.symbols,
            estimator=args.estimator, boost_db=args.boost_db,
            seed=child, jobs=args.jobs,
        )
        theory = theoretical_ber(modulation, ebn0)
        low, high = meas.confidence(z=4.5)
        contained = low <= theory <= high
        ok &= contained
        rows.append([
            f"{ebn0:.2f}",
            f"{meas.ber:.4g}",
            f"{theory:.4g}",
            f"[{low:.3g}, {high:.3g}]",
            f"{meas.boost_db:.2f}",
            f"{100.0 * meas.ess_fraction:.0f}%",
            f"{meas.vr_estimate:.3g}",
            "PASS" if contained else "FAIL",
        ])
        tag = f"ebn0={ebn0:g}"
        kpis[f"ber[{tag}]"] = meas.ber
        kpis[f"theory[{tag}]"] = theory
        kpis[f"ess[{tag}]"] = meas.ess
        kpis[f"vr_estimate[{tag}]"] = meas.vr_estimate
        kpis[f"estimator_is[{tag}]"] = (
            1.0 if meas.estimator == "is" else 0.0
        )
        curve["x"].append(float(ebn0))
        curve["ber"].append(meas.ber)
        curve["per"].append(meas.per)
        curve["packets"].append(meas.packets)
    table = render_table(
        ["Eb/N0 [dB]", "BER", "theory", "CI (z=4.5)", "boost [dB]",
         "ESS", "VR", "verdict"],
        rows,
    )
    print(
        f"{modulation} uncoded rare-event BER "
        f"({args.estimator}, {args.packets} packets x "
        f"{args.symbols} symbols per point):"
    )
    print(table)
    obs.contribute(
        None,
        kind="rare",
        name="rare",
        seed=args.seed,
        config={
            "rate_mbps": args.rate,
            "modulation": modulation,
            "ebn0_db": ebn0s,
            "packets": args.packets,
            "symbols": args.symbols,
            "estimator": args.estimator,
            "boost_db": args.boost_db,
        },
        tables={"rare": table},
        curves={"rare": curve},
        kpis=kpis,
    )
    if not ok:
        print(
            "\nrare: theory escaped the z=4.5 confidence interval at "
            "one or more points",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scenario(args) -> int:
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig
    from repro.scenario import PRESETS, Scenario, preset_names

    if args.list_presets:
        for name in preset_names():
            preset = PRESETS[name]
            parts = [
                f"{e['type']}{e['excess_db']:+g}dB"
                for e in preset.get("emitters", [])
            ]
            if "fading" in preset:
                parts.append("fading")
            print(f"{name}: {', '.join(parts) or '(clean)'}")
        return 0
    if args.config:
        with open(args.config, "r", encoding="utf-8") as fh:
            scenario = Scenario.from_json(fh.read())
    elif args.preset:
        scenario = Scenario.preset(args.preset)
    else:
        print(
            "scenario: pass --preset NAME, --config PATH, or "
            "--list-presets",
            file=sys.stderr,
        )
        return 2
    snrs = [float(tok) for tok in args.snr.split(",") if tok.strip()]
    if not snrs:
        print("scenario: --snr needs at least one value", file=sys.stderr)
        return 2
    sweep = ParameterSweep(
        base_config=TestbenchConfig(
            rate_mbps=args.rate,
            psdu_bytes=args.bytes,
            scenario=scenario,
        ),
        parameter="snr_db",
        values=snrs,
        n_packets=args.packets,
        seed=args.seed,
    )
    result = sweep.run(run_name=f"scenario:{scenario.name}")
    print(scenario.describe())
    print()
    print(result.as_table())
    return 0


def _cmd_qa(args) -> int:
    from repro.qa import run_qa

    report = run_qa(
        seed=args.seed, jobs=args.jobs, quick=args.quick,
        faults=args.faults, rare=args.rare, scenarios=args.scenarios,
    )
    print(report.as_table())
    n = len(report.checks)
    if report.passed:
        print(f"\nQA: all {n} checks passed")
        return 0
    failed = [c for c in report.checks if not c.passed]
    print(f"\nQA: {len(failed)}/{n} checks FAILED:", file=sys.stderr)
    for c in failed:
        print(f"  {c.section}.{c.name}: {c.detail}", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Verification of the RF Subsystem within "
            "Wireless LAN System Level Simulation' (DATE 2003)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweeps/packets/checks "
             "(0 = one per CPU; default 1, i.e. serial; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="packets evaluated per stacked PHY-chain pass inside a "
             "packet chunk (default 1, i.e. the per-packet chain); any "
             "batch size is bit-identical — it only changes throughput",
    )
    parser.add_argument(
        "--memoize",
        action="store_true",
        help="with --store: skip sweep points whose exact measurement "
             "setup already has a stored result, and store fresh points "
             "for future runs",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-run a failed sweep point / packet chunk / campaign "
             "check up to N times before giving up (default 0); retries "
             "replay the same seeds, so a retried run is bit-identical "
             "to a clean one",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-task wall-clock budget in seconds; a task that "
             "exceeds it fails (and is retried under --retries)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --store: checkpoint completed sweep points and "
             "campaign checks incrementally, and resume an interrupted "
             "run from its checkpoints — bit-identical to an "
             "uninterrupted run",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="deterministically inject failures for testing the error "
             "paths: comma-separated [stage/]action:task[@attempt]"
             "[=delay_s] with action fail|kill|delay|abort, e.g. "
             "'sweep/fail:1@0,sweep/abort:3'",
    )
    parser.add_argument(
        "--probes",
        nargs="?",
        const="basic",
        choices=("basic", "full"),
        default=None,
        metavar="PRESET",
        help="attach signal probes (stage power waterfall, EVM, "
             "transmit-mask margin, PAPR) to the simulated chain; "
             "'basic' (default) keeps scalar summaries, 'full' adds "
             "PSDs and constellation snapshots; probe KPIs persist "
             "with --store and render under 'repro report'",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="stream a live telemetry dashboard (per-point Wilson-CI "
             "convergence, worker heartbeats, ETA) to stderr while the "
             "run executes; with --store the event timeline persists as "
             "flight.jsonl — measurements are bit-identical either way",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live run metrics as OpenMetrics text on "
             "127.0.0.1:PORT/metrics while the run executes "
             "(0 = pick a free port, printed to stderr)",
    )
    parser.add_argument(
        "--openmetrics",
        metavar="PATH",
        default=None,
        help="write the run's final metrics as an OpenMetrics text "
             "exposition to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span/event trace of the run to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write run metrics + manifest as JSON to PATH",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "persist the run (manifest, metrics, trace, tables, curves, "
            "KPIs) as a run directory under DIR; 'repro runs'/'repro "
            "report' read the same store (their default DIR is runs/)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="one packet end to end")
    p.add_argument("--rate", type=int, default=54)
    p.add_argument("--bytes", type=int, default=200)
    p.add_argument("--level", type=float, default=-60.0)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("fig5", help="BER vs channel-filter bandwidth")
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="BER vs LNA compression point")
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("table2", help="co-simulation slowdown")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("sensitivity", help="receiver sensitivity vs table 91")
    p.add_argument("--rates", default="6,24,54")
    p.add_argument("--packets", type=int, default=5)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("flow", help="the section-4 design flow")
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_flow)

    p = sub.add_parser(
        "campaign", help="run the full verification acceptance campaign"
    )
    p.add_argument("--depth", choices=("quick", "full"), default="quick")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "probe",
        help="run one configurable packet burst with full signal probes "
             "and print the stage budget waterfall, EVM, transmit-mask "
             "margin, PAPR CCDF, and accumulated spectrum",
    )
    p.add_argument("--rate", type=int, default=24, help="PHY rate [Mb/s]")
    p.add_argument("--bytes", type=int, default=60, help="PSDU size")
    p.add_argument("--packets", type=int, default=4, help="burst length")
    p.add_argument(
        "--level", type=float, default=-55.0,
        help="antenna input level [dBm]",
    )
    p.add_argument(
        "--adjacent", action="store_true",
        help="add the paper's adjacent-channel interferer",
    )
    p.add_argument(
        "--preset", choices=("basic", "full"), default="full",
        help="probe preset when the global --probes flag is absent",
    )
    p.set_defaults(func=_cmd_probe)

    p = sub.add_parser("netlist", help="emit + compile the RF netlist")
    p.add_argument("--target", choices=("ams", "spectre"), default="ams")
    p.set_defaults(func=_cmd_netlist)

    p = sub.add_parser(
        "profile",
        help="run an experiment under the tracer and print the "
             "per-block time breakdown",
    )
    p.add_argument("experiment", choices=sorted(_PROFILABLE))
    p.add_argument("--packets", type=int, default=3)
    p.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="additionally export the trace as Chrome trace-event JSON "
             "(chrome://tracing / Perfetto)",
    )
    p.set_defaults(func=_cmd_profile)

    # Store consumers also accept --store *after* the subcommand; the
    # value parsed at the global position wins (argparse only applies a
    # subparser default when the attribute is not set yet).
    store_opt = argparse.ArgumentParser(add_help=False)
    store_opt.add_argument(
        "--store", metavar="DIR", default=None,
        help="run store directory (default runs/)",
    )

    p = sub.add_parser(
        "qa",
        parents=[store_opt],
        help="conformance vectors + analytic oracles + fuzz harness; "
             "exits nonzero on any failed check",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="reduced sample sizes (CI smoke; statistical bounds widen "
             "accordingly)",
    )
    p.add_argument(
        "--faults",
        action="store_true",
        help="additionally exercise the resilience paths: injected task "
             "failures with retries, a killed worker with pool "
             "fallback, timeouts, and interrupt/resume determinism",
    )
    p.add_argument(
        "--rare",
        action="store_true",
        help="additionally run the rare-event estimator section: "
             "importance-sampling unbiasedness against plain MC and "
             "the Cho-Yoon closed forms (z=4.5), the >=10x "
             "variance-reduction gate, weight diagnostics, and "
             "adaptive-allocation determinism",
    )
    p.add_argument(
        "--scenarios",
        action="store_true",
        help="additionally run the multi-emitter scenario section: "
             "emitter stream isolation, legacy-interference-path "
             "equivalence, power-convention accuracy, and serial vs "
             "parallel schedule invariance",
    )
    p.set_defaults(func=_cmd_qa)

    p = sub.add_parser(
        "scenario",
        help="measure BER over an SNR sweep inside a declarative "
             "multi-emitter RF scenario (built-in preset or JSON "
             "config)",
    )
    p.add_argument(
        "--preset", default=None,
        help="built-in scenario name (see --list-presets)",
    )
    p.add_argument(
        "--config", metavar="PATH", default=None,
        help="JSON scenario config file (overrides --preset)",
    )
    p.add_argument(
        "--list-presets", action="store_true",
        help="list the built-in scenario presets and exit",
    )
    p.add_argument(
        "--snr", default="8,12,16,20",
        help="comma-separated SNR points [dB]",
    )
    p.add_argument("--rate", type=int, default=24, help="PHY rate [Mb/s]")
    p.add_argument("--bytes", type=int, default=60, help="PSDU size")
    p.add_argument("--packets", type=int, default=4,
                   help="packets per SNR point")
    p.set_defaults(func=_cmd_scenario)

    p = sub.add_parser(
        "rare",
        help="importance-sampled uncoded BER at deep operating points, "
             "checked against the Cho-Yoon closed forms; exits nonzero "
             "when theory escapes any point's z=4.5 interval",
    )
    p.add_argument("--rate", type=int, default=6,
                   help="PHY rate selecting the constellation [Mb/s]")
    p.add_argument(
        "--ebn0", default="8.4,9.6,10.5",
        help="comma-separated Eb/N0 points [dB] (defaults span "
             "BER 1e-4 .. 1e-6 for BPSK)",
    )
    p.add_argument("--packets", type=int, default=200,
                   help="trial blocks per point")
    p.add_argument("--symbols", type=int, default=256,
                   help="symbols per trial block")
    p.add_argument(
        "--estimator", choices=("mc", "is"), default="is",
        help="plain Monte-Carlo or importance sampling (default)",
    )
    p.add_argument(
        "--boost-db", type=float, default=None,
        help="explicit proposal noise boost [dB]; default picks the "
             "boost landing each point at BER ~2e-2",
    )
    p.set_defaults(func=_cmd_rare)

    p = sub.add_parser("runs", help="inspect the persistent run store")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    q = runs_sub.add_parser("list", parents=[store_opt],
                            help="list stored runs, newest first")
    q.add_argument("--kind", default=None,
                   help="only runs of these kinds (comma-separated; "
                        "prefix a kind with ! to exclude it, e.g. "
                        "--kind '!point' hides memoized sweep points)")
    q.add_argument("--since", default=None, metavar="AGE|DATE",
                   help="only runs created within a relative age "
                        "(30m, 2h, 3d, 1w) or at/after an ISO "
                        "date/datetime")
    q.add_argument("--ids", action="store_true",
                   help="print bare run ids only")
    q.set_defaults(func=_cmd_runs_list, consumes_store=True)

    q = runs_sub.add_parser(
        "trend",
        parents=[store_opt],
        help="per-KPI trajectories across stored runs, oldest first "
             "(the consumer for accumulated run history)",
    )
    q.add_argument("pattern", nargs="?", default="*",
                   help="fnmatch glob over KPI names (default: all)")
    q.add_argument("--kind", default=None,
                   help="only runs of these kinds (comma-separated, "
                        "! excludes)")
    q.add_argument("--since", default=None, metavar="AGE|DATE",
                   help="only runs created within a relative age or "
                        "at/after an ISO date/datetime")
    q.add_argument("--last", type=int, default=None, metavar="N",
                   help="keep only each KPI's most recent N samples")
    q.add_argument("--json", dest="json_out", metavar="PATH",
                   default=None,
                   help="also export the full series as JSON to PATH")
    q.set_defaults(func=_cmd_runs_trend, consumes_store=True)

    q = runs_sub.add_parser("show", parents=[store_opt],
                            help="summarize one stored run")
    q.add_argument("run", help="run id, unique prefix, or 'latest'")
    q.set_defaults(func=_cmd_runs_show, consumes_store=True)

    q = runs_sub.add_parser(
        "diff",
        parents=[store_opt],
        help="compare a candidate run against a baseline; exits nonzero "
             "on any regression beyond tolerance",
    )
    q.add_argument("baseline", help="run id, unique prefix, or 'latest'")
    q.add_argument("candidate", help="run id, unique prefix, or 'latest'")
    q.add_argument("--kpi-abs-tol", type=float, default=0.0,
                   help="absolute KPI/metric tolerance (default exact)")
    q.add_argument("--kpi-rel-tol", type=float, default=0.0,
                   help="relative KPI/metric tolerance (default exact)")
    q.add_argument("--ber-tol-db", type=float, default=1.0,
                   help="allowed BER-curve shift in dB at fixed BER")
    q.add_argument("--timing-tol", type=float, default=0.5,
                   help="allowed one-sided wall-clock growth (0.5 = +50%%)")
    q.add_argument("--probe-tol", type=float, default=0.0,
                   help="absolute tolerance for probe.* KPIs — EVM, mask "
                        "margin, PAPR, stage power, all in dB "
                        "(default exact)")
    q.add_argument("--no-timing", action="store_true",
                   help="skip wall-clock comparisons entirely")
    q.add_argument("--no-metrics", action="store_true",
                   help="skip operational-metric comparisons (KPIs and "
                        "curves still gate); use when comparing a "
                        "resumed run, whose cached points skip "
                        "simulation-side counters")
    q.set_defaults(func=_cmd_runs_diff, consumes_store=True)

    q = runs_sub.add_parser(
        "gc", parents=[store_opt],
        help="prune the oldest runs, keeping the N newest",
    )
    q.add_argument("--keep", type=int, required=True,
                   help="number of newest runs to keep")
    q.add_argument("--dry-run", action="store_true",
                   help="list what would be removed without deleting")
    q.set_defaults(func=_cmd_runs_gc, consumes_store=True)

    p = sub.add_parser(
        "report",
        parents=[store_opt],
        help="render a stored run as markdown/HTML, optionally with a "
             "chrome://tracing export",
    )
    p.add_argument("run", help="run id, unique prefix, or 'latest'")
    p.add_argument("--html", action="store_true",
                   help="render HTML instead of markdown")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write to PATH instead of stdout")
    p.add_argument("--chrome-trace", metavar="PATH", default=None,
                   help="also export the stored trace as Chrome "
                        "trace-event JSON")
    p.set_defaults(func=_cmd_report, consumes_store=True)

    p = sub.add_parser(
        "watch",
        parents=[store_opt],
        help="tail an in-flight --live run's telemetry spool, or "
             "replay a finished run's stored flight recorder",
    )
    p.add_argument("run", nargs="?", default=None,
                   help="run id prefix, command name, or 'latest' "
                        "(default: the most recent)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="refresh period in seconds (default 2)")
    p.add_argument("--once", action="store_true",
                   help="render one snapshot and exit (no tailing)")
    p.set_defaults(func=_cmd_watch, consumes_store=True)
    return parser


def _run_observed(args, argv) -> int:
    """Run the selected command under a tracer + fresh metrics registry.

    With ``--store`` the whole observed run — manifest, metrics, trace,
    plus whatever tables/curves/KPIs the command's sweeps, campaigns and
    co-simulations contributed — is additionally persisted as one run
    directory.
    """
    from repro import obs

    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    command_line = (
        "repro " + " ".join(argv if argv is not None else sys.argv[1:])
    )
    manifest = obs.build_manifest(
        seed=args.seed,
        command=command_line,
        config={
            k: v for k, v in vars(args).items()
            # Pure observation flags stay out of the manifest config
            # (like --trace/--metrics/--store), so a --live run's
            # manifest matches its baseline's.
            if k not in ("func", "trace", "metrics", "store",
                         "live", "metrics_port", "openmetrics")
        },
    )
    writer = None
    if args.store:
        store = obs.RunStore(args.store)
        writer = store.create(
            args.command, name=args.command, seed=args.seed,
            command=command_line,
        )
    monitor = obs.get_live_monitor()
    if monitor is not None and args.store:
        # Spool flight records next to the store so `repro watch` can
        # tail this run from another terminal while it executes.
        from pathlib import Path

        monitor.open_spool(
            Path(args.store) / "live" / f"{args.command}.jsonl"
        )
    previous_tracer = obs.set_tracer(tracer)
    previous_registry = obs.set_registry(registry)
    previous_writer = obs.set_current_writer(writer)
    try:
        with tracer.span(f"run:{args.command}"):
            code = args.func(args)
    finally:
        obs.set_tracer(previous_tracer)
        obs.set_registry(previous_registry)
        obs.set_current_writer(previous_writer)
    probes = obs.get_probes()
    if probes.enabled and probes.has_data():
        probes.emit_metrics(registry)
        if writer is not None:
            writer.add_probes(probes.export())
            writer.add_kpis(probes.kpis())
    if monitor is not None and monitor.has_data():
        monitor.emit_metrics(registry)
        if writer is not None:
            writer.add_flight(monitor.flight_records())
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as fh:
            fh.write(obs.openmetrics_text(registry))
        print(f"openmetrics written to {args.openmetrics}",
              file=sys.stderr)
    if args.trace:
        tracer.write_jsonl(args.trace, header=manifest.as_dict())
    if args.metrics:
        payload = {
            "manifest": manifest.as_dict(),
            "metrics": registry.as_dict(),
        }
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if writer is not None:
        record = writer.finalize(
            tracer=tracer, registry=registry, manifest=manifest
        )
        print(f"run stored: {record.run_id} ({record.path})",
              file=sys.stderr)
    if monitor is not None:
        # The run finished: its flight is persisted (when storing), so
        # the tail spool is no longer needed.  On an aborted run this
        # line is never reached and the spool survives for post-mortem
        # `repro watch`.
        monitor.close_spool(remove=True)
    return code


def _normalize_probe_flag(argv: List[str]) -> List[str]:
    """Make the optional value of ``--probes`` actually optional.

    argparse's ``nargs="?"`` greedily consumes the next token, so a bare
    ``repro --probes fig5`` would read ``fig5`` as the preset.  Insert
    the default preset whenever ``--probes`` is not followed by one.
    """
    out: List[str] = []
    for i, tok in enumerate(argv):
        out.append(tok)
        if tok == "--probes":
            nxt = argv[i + 1] if i + 1 < len(argv) else None
            if nxt not in ("basic", "full"):
                out.append("basic")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro import perf

    parser = build_parser()
    argv = _normalize_probe_flag(
        list(argv) if argv is not None else sys.argv[1:]
    )
    args = parser.parse_args(argv)
    if getattr(args, "consumes_store", False):
        # Store consumers (runs/report) read run directories; they never
        # trace or persist themselves.
        return args.func(args)
    previous_jobs = None
    previous_memoize = None
    previous_retries = None
    previous_timeout = None
    previous_resume = None
    previous_plan = None
    previous_probes = None
    installed_plan = False
    installed_probes = False
    probe_preset_name = args.probes
    if args.command == "probe" and probe_preset_name is None:
        probe_preset_name = args.preset
    if probe_preset_name is not None:
        from repro import obs

        previous_probes = obs.set_probes(
            obs.ProbeRegistry(obs.probe_preset(probe_preset_name))
        )
        installed_probes = True
    if args.jobs is not None:
        previous_jobs = perf.set_default_jobs(args.jobs)
    previous_batch = None
    if args.batch_size is not None:
        previous_batch = perf.set_default_batch_size(args.batch_size)
    if args.memoize:
        previous_memoize = perf.set_default_memoize(True)
    if args.retries is not None:
        previous_retries = perf.set_default_retries(args.retries)
    if args.task_timeout is not None:
        previous_timeout = perf.set_default_task_timeout(args.task_timeout)
    if args.resume:
        previous_resume = perf.set_default_resume(True)
    if args.inject_faults:
        previous_plan = perf.set_fault_plan(
            perf.parse_fault_spec(args.inject_faults)
        )
        installed_plan = True
    live_requested = bool(
        args.live or args.metrics_port is not None or args.openmetrics
    )
    monitor = None
    dashboard = None
    server = None
    previous_monitor = None
    installed_monitor = False
    if live_requested:
        from repro import obs

        monitor = obs.LiveMonitor()
        if args.live:
            dashboard = obs.LiveDashboard()
            monitor.on_update = dashboard.on_update
        previous_monitor = obs.set_live_monitor(monitor)
        installed_monitor = True
        if args.metrics_port is not None:
            server = obs.MetricsServer(port=args.metrics_port).start()
            print(f"live metrics: {server.url}", file=sys.stderr)
    try:
        if args.trace or args.metrics or args.store or live_requested:
            return _run_observed(args, argv)
        return args.func(args)
    except perf.InjectedFault as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 70
    except perf.TaskFailedError as exc:
        print(exc.error.traceback, file=sys.stderr, end="")
        print(f"task failed after retries: {exc}", file=sys.stderr)
        return 71
    finally:
        if server is not None:
            server.stop()
        if dashboard is not None and monitor is not None:
            dashboard.final(monitor)
        if monitor is not None:
            # No-op on a clean run (the spool was already removed);
            # flushes and keeps the spool after an abort.
            monitor.close_spool()
        if installed_monitor:
            from repro import obs

            obs.set_live_monitor(previous_monitor)
        if previous_jobs is not None:
            perf.set_default_jobs(previous_jobs)
        if previous_batch is not None:
            perf.set_default_batch_size(previous_batch)
        if previous_memoize is not None:
            perf.set_default_memoize(previous_memoize)
        if previous_retries is not None:
            perf.set_default_retries(previous_retries)
        if previous_timeout is not None:
            perf.set_default_task_timeout(previous_timeout)
        if previous_resume is not None:
            perf.set_default_resume(previous_resume)
        if installed_plan:
            perf.set_fault_plan(previous_plan)
        if installed_probes:
            from repro import obs

            obs.set_probes(previous_probes)


if __name__ == "__main__":
    sys.exit(main())
