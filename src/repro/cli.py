"""Command-line interface: run the reproduction's experiments by name.

Usage::

    repro quickstart                    (or: python -m repro ...)
    repro fig5 [--packets N]
    repro fig6 [--packets N]
    repro table2
    repro sensitivity [--rates 6,24,54]
    repro flow
    repro netlist
    repro profile fig5 [--packets N]

Observability: every command accepts ``--trace PATH`` (write a JSONL
span/event trace with a run-manifest header line) and ``--metrics PATH``
(write the run's metrics plus manifest as JSON).  ``repro profile``
wraps any experiment in a tracer and prints a per-block time breakdown.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np


def _cmd_quickstart(args) -> int:
    from repro.channel.awgn import AwgnChannel
    from repro.dsp.receiver import Receiver, RxConfig
    from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
    from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
    from repro.rf.signal import Signal

    rng = np.random.default_rng(args.seed)
    tx = Transmitter(TxConfig(rate_mbps=args.rate, oversample=4))
    psdu = random_psdu(args.bytes, rng)
    wave = tx.transmit(psdu)
    sig = Signal(
        np.concatenate([np.zeros(600, complex), wave, np.zeros(600, complex)]),
        80e6,
        5.2e9,
    ).scaled_to_dbm(args.level)
    sig = AwgnChannel(include_thermal_floor=True).process(sig, rng)
    out = DoubleConversionReceiver(FrontendConfig()).process(sig, rng)
    result = Receiver(RxConfig()).receive(
        out.samples / np.sqrt(out.power_watts())
    )
    if not result.success:
        print(f"reception failed: {result.failure}")
        return 1
    errors = int(np.unpackbits(result.psdu ^ psdu).sum())
    print(
        f"{args.rate} Mbps packet at {args.level} dBm: "
        f"{errors}/{8 * args.bytes} bit errors "
        f"(CFO estimate {result.cfo_hz / 1e3:.1f} kHz)"
    )
    return 0 if errors == 0 else 1


def _cmd_fig5(args) -> int:
    from repro.channel.interference import InterferenceScenario
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig
    from repro.rf.frontend import FrontendConfig

    cfg = TestbenchConfig(
        rate_mbps=36,
        psdu_bytes=60,
        thermal_floor=True,
        frontend=FrontendConfig(),
        interference=InterferenceScenario.adjacent(),
        input_level_dbm=-60.0,
    )
    sweep = ParameterSweep(
        base_config=cfg,
        parameter="frontend.lpf_edge_hz",
        values=[r * 1e8 for r in (0.04, 0.06, 0.08, 0.10, 0.14, 0.20)],
        n_packets=args.packets,
        seed=args.seed,
    )
    result = sweep.run(progress=print)
    print()
    print(result.as_table())
    return 0


def _cmd_fig6(args) -> int:
    from repro.channel.interference import InterferenceScenario
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig
    from repro.rf.frontend import FrontendConfig

    for name, scenario in (
        ("no interferer", InterferenceScenario.none()),
        ("adjacent +16 dB", InterferenceScenario.adjacent()),
    ):
        cfg = TestbenchConfig(
            rate_mbps=36,
            psdu_bytes=60,
            thermal_floor=True,
            frontend=FrontendConfig(),
            interference=scenario,
            input_level_dbm=-60.0,
        )
        result = ParameterSweep(
            base_config=cfg,
            parameter="frontend.lna_p1db_dbm",
            values=[-55.0, -45.0, -40.0, -35.0, -25.0, -15.0],
            n_packets=args.packets,
            seed=args.seed,
        ).run()
        print(f"\n== {name} ==")
        print(result.as_table())
    return 0


def _cmd_table2(args) -> int:
    from repro.core.reporting import render_table
    from repro.flow.cosim import CoSimConfig, CoSimulation
    from repro.rf.frontend import FrontendConfig

    cosim = CoSimulation(
        FrontendConfig(),
        CoSimConfig(rate_mbps=24, psdu_bytes=60, input_level_dbm=-55.0),
    )
    rows = cosim.compare(packet_counts=(1, 2, 4), seed=args.seed)
    print(
        render_table(
            ["packets", "system [s]", "co-sim [s]", "slowdown"],
            [
                [str(r["packets"]), f"{r['system_time_s']:.3f}",
                 f"{r['cosim_time_s']:.3f}", f"{r['slowdown']:.1f}x"]
                for r in rows
            ],
        )
    )
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.core.reporting import render_table
    from repro.core.sensitivity import find_sensitivity

    starts = {6: -84.0, 9: -84.0, 12: -82.0, 18: -80.0,
              24: -78.0, 36: -72.0, 48: -68.0, 54: -66.0}
    rates = [int(r) for r in args.rates.split(",")]
    rows = []
    ok = True
    for rate in rates:
        result = find_sensitivity(
            rate, n_packets=args.packets, psdu_bytes=120,
            start_dbm=starts.get(rate, -70.0), seed=args.seed,
        )
        ok &= result.meets_standard
        rows.append(
            [str(rate), f"{result.sensitivity_dbm:.0f}",
             f"{result.standard_requirement_dbm:.0f}",
             "PASS" if result.meets_standard else "FAIL"]
        )
    print(render_table(
        ["rate [Mbps]", "measured [dBm]", "required [dBm]", "verdict"], rows
    ))
    return 0 if ok else 1


def _cmd_flow(args) -> int:
    from repro.core.verification import DesignFlow

    flow = DesignFlow(n_packets=args.packets, psdu_bytes=60, seed=args.seed)
    flow.run_all()
    print(flow.summary())
    return 0 if flow.all_passed else 1


def _cmd_campaign(args) -> int:
    from repro.core.campaign import VerificationCampaign

    campaign = VerificationCampaign(depth=args.depth, seed=args.seed)
    report = campaign.run()
    print(report.as_table())
    print(f"\ncampaign verdict: {'PASS' if report.passed else 'FAIL'}")
    return 0 if report.passed else 1


#: Experiments the profiler can wrap, and whether they take --packets.
_PROFILABLE = {
    "quickstart": False,
    "fig5": True,
    "fig6": True,
    "table2": False,
    "sensitivity": True,
    "flow": True,
    "campaign": False,
}


def _cmd_profile(args) -> int:
    from repro import obs
    from repro.core.reporting import render_table

    inner_argv = ["--seed", str(args.seed), args.experiment]
    if _PROFILABLE[args.experiment]:
        inner_argv += ["--packets", str(args.packets)]
    inner = build_parser().parse_args(inner_argv)

    # Reuse an already-installed tracer (e.g. from an outer --trace) so
    # the profile and the trace file see the same spans.
    active = obs.get_tracer()
    tracer = active if active.enabled else obs.Tracer()
    previous = obs.set_tracer(tracer)
    try:
        code = inner.func(inner)
    finally:
        obs.set_tracer(previous)

    rows = obs.profile_rows(tracer.records, prefix="block:")
    print()
    print(f"per-block time breakdown ({args.experiment}):")
    if rows:
        print(render_table(
            ["block", "calls", "total [s]", "mean [ms]", "share", "samples"],
            rows,
        ))
    else:
        print("(no block spans recorded)")
    return code


def _cmd_netlist(args) -> int:
    from repro.flow.netlist import NetlistCompiler, frontend_to_netlist
    from repro.rf.frontend import FrontendConfig

    text = frontend_to_netlist(FrontendConfig())
    print(text)
    design = NetlistCompiler(target=args.target).compile(text)
    for warning in design.warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Verification of the RF Subsystem within "
            "Wireless LAN System Level Simulation' (DATE 2003)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span/event trace of the run to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write run metrics + manifest as JSON to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="one packet end to end")
    p.add_argument("--rate", type=int, default=54)
    p.add_argument("--bytes", type=int, default=200)
    p.add_argument("--level", type=float, default=-60.0)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("fig5", help="BER vs channel-filter bandwidth")
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="BER vs LNA compression point")
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("table2", help="co-simulation slowdown")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("sensitivity", help="receiver sensitivity vs table 91")
    p.add_argument("--rates", default="6,24,54")
    p.add_argument("--packets", type=int, default=5)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("flow", help="the section-4 design flow")
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_flow)

    p = sub.add_parser(
        "campaign", help="run the full verification acceptance campaign"
    )
    p.add_argument("--depth", choices=("quick", "full"), default="quick")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("netlist", help="emit + compile the RF netlist")
    p.add_argument("--target", choices=("ams", "spectre"), default="ams")
    p.set_defaults(func=_cmd_netlist)

    p = sub.add_parser(
        "profile",
        help="run an experiment under the tracer and print the "
             "per-block time breakdown",
    )
    p.add_argument("experiment", choices=sorted(_PROFILABLE))
    p.add_argument("--packets", type=int, default=3)
    p.set_defaults(func=_cmd_profile)
    return parser


def _run_observed(args, argv) -> int:
    """Run the selected command under a tracer + fresh metrics registry."""
    from repro import obs

    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    manifest = obs.build_manifest(
        seed=args.seed,
        command="repro " + " ".join(argv if argv is not None else sys.argv[1:]),
        config={
            k: v for k, v in vars(args).items()
            if k not in ("func", "trace", "metrics")
        },
    )
    previous_tracer = obs.set_tracer(tracer)
    previous_registry = obs.set_registry(registry)
    try:
        with tracer.span(f"run:{args.command}"):
            code = args.func(args)
    finally:
        obs.set_tracer(previous_tracer)
        obs.set_registry(previous_registry)
    if args.trace:
        tracer.write_jsonl(args.trace, header=manifest.as_dict())
    if args.metrics:
        payload = {
            "manifest": manifest.as_dict(),
            "metrics": registry.as_dict(),
        }
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace or args.metrics:
        return _run_observed(args, argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
