"""Waveform measurement toolkit (the SigCalc stand-in).

SPW ships "a waveform viewer SigCalc"; the co-simulation notes also record
that "the visualization capability for analog waveforms is restricted" in
signalscan.  This module provides the measurement side of such a viewer:
scalar waveform statistics, tone frequency/power estimation, and text
rendering of waveforms and constellations for probe inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reporting import render_ascii_plot
from repro.rf.signal import Signal, watts_to_dbm


@dataclass
class WaveformStats:
    """Scalar statistics of a complex waveform.

    Attributes:
        rms: RMS magnitude.
        peak: peak magnitude.
        crest_factor_db: peak-to-RMS ratio in dB.
        mean_power_dbm: average envelope power.
        dc_fraction: |mean| / RMS — how much of the waveform is DC.
        n_samples: length.
    """

    rms: float
    peak: float
    crest_factor_db: float
    mean_power_dbm: float
    dc_fraction: float
    n_samples: int


def waveform_stats(signal: Signal) -> WaveformStats:
    """Compute the standard scalar measurements of a waveform."""
    x = signal.samples
    if x.size == 0:
        raise ValueError("empty waveform")
    rms = float(np.sqrt(np.mean(np.abs(x) ** 2)))
    peak = float(np.max(np.abs(x)))
    dc = abs(np.mean(x))
    return WaveformStats(
        rms=rms,
        peak=peak,
        crest_factor_db=float(
            20.0 * np.log10(peak / rms) if rms > 0 else np.inf
        ),
        mean_power_dbm=watts_to_dbm(rms**2),
        dc_fraction=float(dc / rms) if rms > 0 else 0.0,
        n_samples=x.size,
    )


def estimate_tone(signal: Signal) -> tuple:
    """Estimate the dominant tone's frequency and power.

    Uses a parabolic interpolation of the FFT peak for sub-bin accuracy.

    Returns:
        ``(frequency_hz, power_dbm)`` of the strongest spectral line.
    """
    x = signal.samples
    if x.size < 8:
        raise ValueError("waveform too short")
    window = np.hanning(x.size)
    spectrum = np.fft.fft(x * window)
    mag = np.abs(spectrum)
    k = int(np.argmax(mag))
    # Parabolic peak interpolation on log magnitude.
    k_prev = (k - 1) % x.size
    k_next = (k + 1) % x.size
    a, b, c = (
        np.log(mag[k_prev] + 1e-300),
        np.log(mag[k] + 1e-300),
        np.log(mag[k_next] + 1e-300),
    )
    denom = a - 2 * b + c
    delta = 0.5 * (a - c) / denom if abs(denom) > 1e-12 else 0.0
    freqs = np.fft.fftfreq(x.size, 1.0 / signal.sample_rate)
    df = signal.sample_rate / x.size
    freq = freqs[k] + delta * df
    # Coherent power of the line, compensating the window gain and the
    # scalloping loss of an off-bin tone (parabolic peak value).
    log_peak = b - 0.25 * (a - c) * delta
    coherent_gain = window.sum() / x.size
    amp = np.exp(log_peak) / (x.size * coherent_gain)
    return float(freq), watts_to_dbm(float(amp**2))


def render_waveform(
    signal: Signal,
    n_points: int = 256,
    width: int = 64,
    height: int = 12,
    title: str = "waveform",
) -> str:
    """ASCII rendering of a waveform's magnitude envelope."""
    x = np.abs(signal.samples)
    if x.size == 0:
        return "(empty waveform)"
    if x.size > n_points:
        # Peak-decimate so transients remain visible.
        chunk = x.size // n_points
        x = x[: chunk * n_points].reshape(n_points, chunk).max(axis=1)
    t = np.arange(x.size) * (signal.duration / max(x.size, 1)) * 1e6
    return render_ascii_plot(
        t, x, width=width, height=height, title=title,
        x_label="time [us]", y_label="|x|",
    )


def render_constellation(
    symbols: np.ndarray,
    width: int = 41,
    height: int = 21,
    span: float = 1.6,
    title: str = "constellation",
) -> str:
    """ASCII scatter of constellation points (the SigCalc eye view)."""
    symbols = np.asarray(symbols, dtype=complex).ravel()
    if symbols.size == 0:
        return "(no symbols)"
    canvas = [[" "] * width for _ in range(height)]
    for s in symbols:
        col = int((s.real / span + 0.5) * (width - 1) + 0.5)
        row = int((0.5 - s.imag / span) * (height - 1) + 0.5)
        if 0 <= col < width and 0 <= row < height:
            canvas[row][col] = "*"
    # Axes.
    mid_r, mid_c = height // 2, width // 2
    for c in range(width):
        if canvas[mid_r][c] == " ":
            canvas[mid_r][c] = "-"
    for r in range(height):
        if canvas[r][mid_c] == " ":
            canvas[r][mid_c] = "|"
    canvas[mid_r][mid_c] = "+"
    lines = [title] + ["".join(row) for row in canvas]
    return "\n".join(lines)
