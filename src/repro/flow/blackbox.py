"""Black-box ("J&K / K-model") extraction of the RF subsystem.

The paper's "other solution" for bringing the RF design into the system
simulation: "Extraction of a black-box model of the complete RF subsystem
in SpectreRF simulation which can be instantiated in SPW (J&K models, see
[6])" — Moult & Chen, *The K-model: RF IC modelling for communications
system simulation*, 1998.

:func:`extract_blackbox` characterizes a full front end — swept-power
AM/AM + AM/PM, small-signal frequency response, cascade noise figure and
residual DC offset, all with the AGC pinned (as a SpectreRF test bench
would) — and assembles a :class:`BlackBoxFrontend`: a Wiener-style
surrogate (input noise -> static nonlinearity -> linear FIR -> decimation
-> leveling -> DC) that can replace the structural model in system
simulation.

Validity notes (inherent to K-model-style surrogates, recorded in
DESIGN.md): the surrogate captures in-band behavior; wideband effects that
depend on the *internal* ordering of filtering and sampling (e.g.
adjacent-channel aliasing through the ADC) and signal-dependent AGC
dynamics are approximated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
from repro.rf.noise import thermal_noise_power, white_noise
from repro.rf.signal import Signal, dbm_to_watts, watts_to_dbm


@dataclass
class BlackBoxCharacterization:
    """Measurement data extracted from the structural model.

    Attributes:
        drive_dbm: input powers of the AM/AM / AM/PM sweep.
        complex_gain: large-signal complex gain per drive level (AGC
            pinned), in linear amplitude units.
        freqs_hz: frequency grid of the small-signal response.
        response: complex small-signal transfer function, normalized to
            its in-band maximum.
        noise_figure_db: measured cascade noise figure.
        equivalent_noise_bandwidth_hz: ENB of the measured response.
        dc_offset: residual complex DC at the (pinned-AGC) output.
        agc_target_dbm: output level target replicated by the surrogate.
    """

    drive_dbm: np.ndarray
    complex_gain: np.ndarray
    freqs_hz: np.ndarray
    response: np.ndarray
    noise_figure_db: float
    equivalent_noise_bandwidth_hz: float
    dc_offset: complex
    agc_target_dbm: float


class BlackBoxFrontend:
    """Behavioral surrogate of a characterized RF front end.

    Args:
        characterization: data from :func:`extract_blackbox`.
        input_rate: envelope rate the surrogate accepts.
        decimation: decimation factor to the 20 MHz output.
        n_taps: FIR length realizing the measured response.
    """

    def __init__(
        self,
        characterization: BlackBoxCharacterization,
        input_rate: float = 80e6,
        decimation: int = 4,
        n_taps: int = 129,
    ):
        self.characterization = characterization
        self.input_rate = input_rate
        self.decimation = decimation
        c = characterization
        self._lut_amp_in = np.sqrt(dbm_to_watts(c.drive_dbm))
        small = c.complex_gain[0]
        # Normalized compression characteristic; the absolute gain lives
        # in the leveling stage.
        self._lut_gain = c.complex_gain / small
        self._fir = self._design_fir(c.freqs_hz, c.response, n_taps)
        nf_lin = 10.0 ** (c.noise_figure_db / 10.0)
        self._input_noise = (nf_lin - 1.0) * thermal_noise_power(input_rate)
        self._dc = c.dc_offset
        self._target = dbm_to_watts(c.agc_target_dbm)

    def _design_fir(self, freqs, response, n_taps):
        """Complex FIR matching the measured response (freq. sampling)."""
        grid = np.fft.fftfreq(n_taps, d=1.0 / self.input_rate)
        order = np.argsort(freqs)
        f_sorted = freqs[order]
        mag = np.abs(response[order])
        phase = np.unwrap(np.angle(response[order]))
        target_mag = np.interp(grid, f_sorted, mag, left=mag[0], right=mag[-1])
        target_phase = np.interp(
            grid, f_sorted, phase, left=phase[0], right=phase[-1]
        )
        outside = (grid < f_sorted[0]) | (grid > f_sorted[-1])
        target_mag[outside] *= 1e-3
        h = np.fft.ifft(target_mag * np.exp(1j * target_phase))
        h = np.roll(h, n_taps // 2)
        return h * np.hanning(n_taps)

    def _apply_nonlinearity(self, x: np.ndarray) -> np.ndarray:
        amp = np.abs(x)
        lut = self._lut_gain
        gain = np.interp(
            amp, self._lut_amp_in, lut.real,
            left=lut.real[0], right=lut.real[-1],
        ) + 1j * np.interp(
            amp, self._lut_amp_in, lut.imag,
            left=lut.imag[0], right=lut.imag[-1],
        )
        return x * gain

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Run the surrogate; mirrors the structural model's interface."""
        if signal.sample_rate != self.input_rate:
            raise ValueError(f"surrogate expects {self.input_rate:g} Hz input")
        x = signal.samples
        if self._input_noise > 0 and rng is not None:
            x = x + white_noise(x.size, self._input_noise, rng)
        x = self._apply_nonlinearity(x)
        x = np.convolve(x, self._fir, mode="same")
        x = x[:: self.decimation]
        power = float(np.mean(np.abs(x) ** 2)) if x.size else 0.0
        if power > 0:
            x = x * np.sqrt(self._target / power)
        x = x + self._dc
        return Signal(x, signal.sample_rate / self.decimation, 0.0)


def extract_blackbox(
    config: FrontendConfig,
    drive_dbm: Optional[np.ndarray] = None,
    n_freqs: int = 33,
    rng: Optional[np.random.Generator] = None,
) -> BlackBoxFrontend:
    """Characterize a front end and build its black-box surrogate.

    The characterization test bench pins the AGC at 0 dB (a fixed-gain
    measurement configuration, like a SpectreRF test bench), runs the
    swept-tone and noise analyses on the structural model, and returns the
    assembled surrogate.

    Args:
        config: the structural front-end design to characterize.
        drive_dbm: input powers for the AM/AM / AM/PM sweep (default
            -90..-20 dBm in 2 dB steps).
        n_freqs: number of small-signal frequency-response points.
        rng: generator for the noise measurement.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if drive_dbm is None:
        drive_dbm = np.arange(-90.0, -19.0, 2.0)
    drive_dbm = np.asarray(drive_dbm, dtype=float)

    pinned = dict(agc_min_gain_db=0.0, agc_max_gain_db=0.0, adc_bits=None)
    quiet = DoubleConversionReceiver(
        replace(
            config,
            noise_enabled=False,
            dc_offset_dbm=None,
            flicker_power_dbm=None,
            **pinned,
        )
    )
    fs = config.sample_rate_in
    n = 8192
    settle = 2048 // config.decimation

    def tone(power_dbm, freq):
        t = np.arange(n) / fs
        return Signal(
            np.sqrt(dbm_to_watts(power_dbm)) * np.exp(2j * np.pi * freq * t),
            fs,
            config.carrier_frequency,
        )

    def complex_gain(block, power_dbm, freq):
        out = block.process(tone(power_dbm, freq), rng)
        x = out.samples[settle:]
        t = np.arange(settle, settle + x.size) / out.sample_rate
        probe = np.exp(-2j * np.pi * freq * t)
        amp_in = np.sqrt(dbm_to_watts(power_dbm))
        return np.dot(x, probe) / x.size / amp_in

    # --- AM/AM + AM/PM sweep ---------------------------------------------
    f0 = 1e6
    gains = np.array([complex_gain(quiet, p, f0) for p in drive_dbm])

    # --- small-signal frequency response ----------------------------------
    freqs = np.linspace(-9.5e6, 9.5e6, n_freqs)
    response = np.array([complex_gain(quiet, -70.0, f) for f in freqs])
    peak = np.max(np.abs(response))
    if peak > 0:
        response = response / peak

    # --- cascade noise figure (pinned AGC: gains cancel consistently) -----
    noisy = DoubleConversionReceiver(replace(config, **pinned))
    g_small = abs(gains[0]) ** 2  # linear power gain at small signal
    floor_in = thermal_noise_power(fs)
    n_noise = 1 << 15
    floor = Signal(
        white_noise(n_noise, floor_in, rng), fs, config.carrier_frequency
    )
    noise_out = noisy.process(floor, rng).samples
    # Discard the settle portion: the DC-offset step excites an HPF
    # transient that would bias a short measurement upward.
    n_out = float(np.mean(np.abs(noise_out[n_noise // 8 :]) ** 2))
    # Input-referred: remove the ideally-amplified floor within the
    # measured equivalent noise bandwidth.
    df = freqs[1] - freqs[0]
    enb = float(np.sum(np.abs(response) ** 2) * df)
    ideal_floor_out = g_small * floor_in * (enb / fs)
    factor = max(n_out / max(ideal_floor_out, 1e-300), 1.0)
    noise_figure_db = float(10.0 * np.log10(factor))

    # --- residual DC offset ------------------------------------------------
    quiet_dc = DoubleConversionReceiver(
        replace(config, noise_enabled=False, **pinned)
    )
    silence = Signal(np.zeros(n, complex), fs, config.carrier_frequency)
    dc_out = quiet_dc.process(silence, rng)
    dc = complex(np.mean(dc_out.samples[settle:]))

    characterization = BlackBoxCharacterization(
        drive_dbm=drive_dbm,
        complex_gain=gains,
        freqs_hz=freqs,
        response=response,
        noise_figure_db=noise_figure_db,
        equivalent_noise_bandwidth_hz=enb,
        dc_offset=dc,
        agc_target_dbm=config.agc_target_dbm,
    )
    return BlackBoxFrontend(
        characterization,
        input_rate=fs,
        decimation=config.decimation,
    )
