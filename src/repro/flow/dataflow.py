"""A block-diagram dataflow simulator (the SPW stand-in).

The engine executes a :class:`Schematic` of connected :class:`Block`
instances in topological order.  Two execution modes mirror SPW's
interpreted and compiled (SPB-C) simulation:

* ``"compiled"`` — each block processes the entire stream in one
  vectorized call; this is the fast mode the paper recommends "for long
  simulation times as necessary for BER computations".
* ``"interpreted"`` — the stream is cut into frames and blocks are invoked
  once per frame in a Python loop, like a scheduler stepping a block
  diagram; markedly slower, useful for debugging probes mid-run.

Probes capture wire contents; they can be deselected ("to avoid a data
overload, it can be necessary to deselect probes during simulations with a
large number of samples").

Every run also accounts *time* per block: :class:`RunResult` carries a
:class:`BlockStat` per block (invocations, work seconds, samples in/out)
in both execution modes — the engine-side extension of the probe concept
from signals to wall-clock.  When a :class:`repro.obs.Tracer` is active
the compiled mode additionally emits one ``block:<name>`` span per
invocation, so ``repro profile`` can render a breakdown offline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs


class SchematicError(RuntimeError):
    """Raised for invalid schematics (dangling ports, cycles, rebinding)."""


@dataclass
class SimulationContext:
    """Run-time context handed to every block invocation.

    Attributes:
        rng: shared random generator.
        sample_rate: nominal schematic sample rate.
        mode: "compiled" or "interpreted".
        frame_index: current frame number (always 0 in compiled mode).
    """

    rng: np.random.Generator
    sample_rate: float
    mode: str = "compiled"
    frame_index: int = 0


class Block:
    """Base class of all dataflow blocks.

    Subclasses declare ``inputs`` and ``outputs`` (port name tuples) and
    implement :meth:`work`.  Blocks whose state cannot be chunked (e.g. a
    whole-packet receiver) set ``supports_interpreted = False``.

    Parameters live as plain attributes; :meth:`set_param` /
    :meth:`get_param` provide the generic access the sweep manager uses.
    """

    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    supports_interpreted: bool = True

    def work(
        self, inputs: Dict[str, np.ndarray], ctx: SimulationContext
    ) -> Dict[str, np.ndarray]:
        """Process one frame; must return one array per output port."""
        raise NotImplementedError

    def reset(self):
        """Clear internal state before a run (filters, counters...)."""

    def set_param(self, name: str, value):
        """Set a block parameter by name."""
        if not hasattr(self, name):
            raise AttributeError(
                f"{type(self).__name__} has no parameter {name!r}"
            )
        setattr(self, name, value)

    def get_param(self, name: str):
        """Read a block parameter by name."""
        return getattr(self, name)


class FunctionBlock(Block):
    """A block wrapping a plain function ``f(*arrays) -> array(s)``.

    Args:
        func: callable receiving the input arrays in declared port order.
        inputs: input port names.
        outputs: output port names.
        stateless: set False if ``func`` closes over state that breaks
            frame-wise execution.
    """

    def __init__(
        self,
        func: Callable,
        inputs: Sequence[str] = ("in",),
        outputs: Sequence[str] = ("out",),
        stateless: bool = True,
    ):
        self.func = func
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.supports_interpreted = stateless

    def work(self, inputs, ctx):
        args = [inputs[name] for name in self.inputs]
        result = self.func(*args)
        if len(self.outputs) == 1:
            return {self.outputs[0]: np.asarray(result)}
        return {
            name: np.asarray(arr) for name, arr in zip(self.outputs, result)
        }


class CompositeBlock(Block):
    """A block whose implementation is a nested schematic.

    The paper's design flow starts with the "creation of a hierarchical
    model of the RF part": composite blocks give the dataflow engine that
    hierarchy — a sub-schematic with designated boundary ports appears as
    a single block in the parent schematic.

    Args:
        schematic: the inner block diagram.
        input_map: outer input port -> inner ``"block.port"`` input.
        output_map: outer output port -> inner ``"block.port"`` output.
    """

    supports_interpreted = False

    def __init__(
        self,
        schematic: "Schematic",
        input_map: Dict[str, str],
        output_map: Dict[str, str],
    ):
        self._schematic = schematic
        self._input_map = {}
        for outer, inner in input_map.items():
            block, port = schematic._resolve(inner, is_output=False)
            if (block, port) in schematic._input_bindings:
                raise SchematicError(
                    f"inner input {inner} is already driven internally"
                )
            self._input_map[outer] = (block, port)
        self._output_map = {
            outer: schematic._resolve(inner, is_output=True)
            for outer, inner in output_map.items()
        }
        self.inputs = tuple(input_map)
        self.outputs = tuple(output_map)

    @property
    def schematic(self) -> "Schematic":
        """The wrapped inner schematic."""
        return self._schematic

    def reset(self):
        for block in self._schematic._blocks.values():
            block.reset()

    def set_param(self, name: str, value):
        """Hierarchical parameters: ``"block.param"`` paths reach inside."""
        if "." in name:
            self._schematic.set_block_param(name, value)
        else:
            super().set_param(name, value)

    def get_param(self, name: str):
        if "." in name:
            return self._schematic.block_param(name)
        return super().get_param(name)

    def work(self, inputs, ctx):
        sch = self._schematic
        order = sch.topological_order()
        values: Dict[Tuple[str, str], np.ndarray] = {}
        # Seed the boundary inputs.
        boundary = {
            self._input_map[outer]: arr for outer, arr in inputs.items()
        }
        for name in order:
            block = sch._blocks[name]
            block_inputs = {}
            missing = False
            for port in block.inputs:
                key = (name, port)
                if key in boundary:
                    block_inputs[port] = boundary[key]
                elif key in sch._input_bindings:
                    block_inputs[port] = values[sch._input_bindings[key]]
                else:
                    raise SchematicError(
                        f"composite inner input {name}.{port} is neither "
                        f"mapped nor driven"
                    )
            outputs = block.work(block_inputs, ctx)
            for port in block.outputs:
                values[(name, port)] = outputs[port]
        return {
            outer: values[inner] for outer, inner in self._output_map.items()
        }


@dataclass
class _Wire:
    src: Tuple[str, str]
    dsts: List[Tuple[str, str]] = field(default_factory=list)
    probed: bool = False


class Schematic:
    """A named collection of blocks and the wires between their ports."""

    def __init__(self, name: str = "schematic"):
        self.name = name
        self._blocks: Dict[str, Block] = {}
        self._wires: Dict[Tuple[str, str], _Wire] = {}
        self._input_bindings: Dict[Tuple[str, str], Tuple[str, str]] = {}

    @property
    def blocks(self) -> Dict[str, Block]:
        """Mapping of instance name to block."""
        return dict(self._blocks)

    def add(self, name: str, block: Block) -> Block:
        """Add a block instance under ``name``; returns the block."""
        if name in self._blocks:
            raise SchematicError(f"duplicate block name {name!r}")
        self._blocks[name] = block
        return block

    def connect(self, src: str, dst: str):
        """Connect ``"block.port"`` to ``"block.port"``.

        Port names default to the single port when omitted
        (``"tx" -> "tx.out"`` if the block has exactly one output).
        """
        s_block, s_port = self._resolve(src, is_output=True)
        d_block, d_port = self._resolve(dst, is_output=False)
        key = (d_block, d_port)
        if key in self._input_bindings:
            raise SchematicError(
                f"input {d_block}.{d_port} already driven by "
                f"{self._input_bindings[key]}"
            )
        self._input_bindings[key] = (s_block, s_port)
        wire = self._wires.setdefault((s_block, s_port), _Wire((s_block, s_port)))
        wire.dsts.append((d_block, d_port))

    def probe(self, src: str, enabled: bool = True):
        """Enable/disable a probe on an output ``"block.port"``."""
        s_block, s_port = self._resolve(src, is_output=True)
        wire = self._wires.setdefault((s_block, s_port), _Wire((s_block, s_port)))
        wire.probed = enabled

    def _resolve(self, ref: str, is_output: bool) -> Tuple[str, str]:
        if "." in ref:
            block_name, port = ref.split(".", 1)
        else:
            block_name, port = ref, None
        if block_name not in self._blocks:
            raise SchematicError(f"unknown block {block_name!r}")
        block = self._blocks[block_name]
        ports = block.outputs if is_output else block.inputs
        if port is None:
            if len(ports) != 1:
                raise SchematicError(
                    f"{block_name} has {len(ports)} "
                    f"{'outputs' if is_output else 'inputs'}; specify a port"
                )
            port = ports[0]
        if port not in ports:
            raise SchematicError(
                f"{block_name} has no "
                f"{'output' if is_output else 'input'} port {port!r}"
            )
        return block_name, port

    def validate(self):
        """Check that every input port of every block is driven."""
        for name, block in self._blocks.items():
            for port in block.inputs:
                if (name, port) not in self._input_bindings:
                    raise SchematicError(f"unconnected input {name}.{port}")

    def topological_order(self) -> List[str]:
        """Blocks sorted so producers run before consumers."""
        deps: Dict[str, set] = {name: set() for name in self._blocks}
        for (d_block, _), (s_block, _) in self._input_bindings.items():
            if s_block != d_block:
                deps[d_block].add(s_block)
        order: List[str] = []
        ready = sorted(n for n, d in deps.items() if not d)
        remaining = {n: set(d) for n, d in deps.items() if d}
        while ready:
            n = ready.pop(0)
            order.append(n)
            newly = []
            for m, d in list(remaining.items()):
                d.discard(n)
                if not d:
                    newly.append(m)
                    del remaining[m]
            ready.extend(sorted(newly))
        if remaining:
            raise SchematicError(
                f"schematic contains a cycle among {sorted(remaining)}"
            )
        return order

    def block_param(self, path: str):
        """Read a parameter by ``"block.param"`` path (sweep support)."""
        block_name, param = path.split(".", 1)
        return self._blocks[block_name].get_param(param)

    def set_block_param(self, path: str, value):
        """Set a parameter by ``"block.param"`` path (sweep support)."""
        block_name, param = path.split(".", 1)
        self._blocks[block_name].set_param(param, value)


@dataclass
class BlockStat:
    """Per-block accounting for one engine run.

    Attributes:
        name: block instance name.
        calls: ``work()`` invocations (0 for pre-rolled sources in
            interpreted mode).
        work_seconds: monotonic time spent inside ``work()``.
        samples_in / samples_out: summed array sizes over all ports.
    """

    name: str
    calls: int = 0
    work_seconds: float = 0.0
    samples_in: int = 0
    samples_out: int = 0


@dataclass
class RunResult:
    """Outcome of one engine run.

    Attributes:
        outputs: final frame (or concatenated frames) per output wire of
            every block, keyed ``"block.port"``.
        probes: captured samples for probed wires, keyed ``"block.port"``.
        n_block_invocations: total block work() calls (engine statistics).
        block_stats: per-block time and sample accounting, keyed by
            block instance name.
    """

    outputs: Dict[str, np.ndarray]
    probes: Dict[str, np.ndarray]
    n_block_invocations: int
    block_stats: Dict[str, BlockStat] = field(default_factory=dict)


class DataflowEngine:
    """Executes a schematic in compiled or interpreted mode.

    Args:
        mode: "compiled" (single vectorized pass) or "interpreted"
            (frame-by-frame Python scheduling).
        frame_size: samples per frame in interpreted mode.
        sample_rate: nominal sample rate handed to blocks.
        seed: seed of the run's random generator.
        tracer: span sink for per-block timing; None uses the process
            tracer (a no-op unless one was installed via
            :func:`repro.obs.set_tracer`).
    """

    def __init__(
        self,
        mode: str = "compiled",
        frame_size: int = 256,
        sample_rate: float = 20e6,
        seed: int = 0,
        tracer=None,
    ):
        if mode not in ("compiled", "interpreted"):
            raise ValueError(f"unknown mode {mode!r}")
        if frame_size < 1:
            raise ValueError("frame_size must be >= 1")
        self.mode = mode
        self.frame_size = frame_size
        self.sample_rate = sample_rate
        self.seed = seed
        self.tracer = tracer

    def _active_tracer(self):
        return self.tracer if self.tracer is not None else obs.get_tracer()

    def run(self, schematic: Schematic) -> RunResult:
        """Run the schematic until its sources are exhausted."""
        schematic.validate()
        order = schematic.topological_order()
        ctx = SimulationContext(
            rng=np.random.default_rng(self.seed),
            sample_rate=self.sample_rate,
            mode=self.mode,
        )
        for block in schematic.blocks.values():
            block.reset()
        with self._active_tracer().span(
            "engine:run", schematic=schematic.name, mode=self.mode
        ):
            if self.mode == "compiled":
                return self._run_compiled(schematic, order, ctx)
            return self._run_interpreted(schematic, order, ctx)

    def _tap_signal_probes(self, schematic, probes) -> None:
        """Feed probed wires into the ambient signal-probe registry.

        Wires the schematic designer marked ``probe=True`` show up in the
        signal-level telemetry (power/PAPR summaries) under
        ``flow:{schematic}.{block}.{port}``.  Sorted order keeps the
        registry state independent of wire-dict insertion order.
        """
        registry = obs.get_probes()
        if not registry.enabled:
            return
        for key in sorted(probes):
            samples = np.asarray(probes[key])
            if samples.size:
                registry.tap(
                    f"flow:{schematic.name}.{key}",
                    samples,
                    self.sample_rate,
                )

    def _run_compiled(self, schematic, order, ctx) -> RunResult:
        tracer = self._active_tracer()
        tracing = tracer.enabled
        values: Dict[Tuple[str, str], np.ndarray] = {}
        probes: Dict[str, np.ndarray] = {}
        stats: Dict[str, BlockStat] = {}
        invocations = 0
        for name in order:
            block = schematic._blocks[name]
            inputs = {
                port: values[schematic._input_bindings[(name, port)]]
                for port in block.inputs
            }
            n_in = sum(arr.size for arr in inputs.values())
            start = time.perf_counter()
            outputs = block.work(inputs, ctx)
            work_s = time.perf_counter() - start
            invocations += 1
            for port in block.outputs:
                if port not in outputs:
                    raise SchematicError(
                        f"{name} did not produce output {port!r}"
                    )
                values[(name, port)] = outputs[port]
            n_out = sum(
                outputs[port].size for port in block.outputs
            )
            stats[name] = BlockStat(name, 1, work_s, n_in, n_out)
            if tracing:
                tracer.record_span(
                    f"block:{name}",
                    work_s,
                    kind=type(block).__name__,
                    mode="compiled",
                    samples=n_out,
                    samples_in=n_in,
                )
        for key, wire in schematic._wires.items():
            if wire.probed and key in values:
                probes[f"{key[0]}.{key[1]}"] = values[key]
        outputs = {f"{b}.{p}": v for (b, p), v in values.items()}
        self._tap_signal_probes(schematic, probes)
        return RunResult(outputs, probes, invocations, stats)

    def _run_interpreted(self, schematic, order, ctx) -> RunResult:
        tracer = self._active_tracer()
        for name in order:
            block = schematic._blocks[name]
            if not block.supports_interpreted:
                raise SchematicError(
                    f"block {name} ({type(block).__name__}) does not "
                    f"support interpreted mode; use compiled mode"
                )
        stats: Dict[str, BlockStat] = {
            name: BlockStat(name) for name in order
        }
        # Sources produce their full stream once; the engine then steps
        # through it frame by frame.
        source_streams: Dict[str, Dict[str, np.ndarray]] = {}
        stream_length = 0
        for name in order:
            block = schematic._blocks[name]
            if not block.inputs:
                start = time.perf_counter()
                outputs = block.work({}, ctx)
                stat = stats[name]
                stat.calls += 1
                stat.work_seconds += time.perf_counter() - start
                source_streams[name] = outputs
                for arr in outputs.values():
                    stat.samples_out += arr.size
                    stream_length = max(stream_length, arr.size)
        chunks: Dict[Tuple[str, str], List[np.ndarray]] = {}
        invocations = 0
        n_frames = max(int(np.ceil(stream_length / self.frame_size)), 1)
        for f in range(n_frames):
            ctx.frame_index = f
            lo, hi = f * self.frame_size, (f + 1) * self.frame_size
            values: Dict[Tuple[str, str], np.ndarray] = {}
            for name in order:
                block = schematic._blocks[name]
                if not block.inputs:
                    outputs = {
                        port: arr[lo:hi]
                        for port, arr in source_streams[name].items()
                    }
                else:
                    inputs = {
                        port: values[schematic._input_bindings[(name, port)]]
                        for port in block.inputs
                    }
                    stat = stats[name]
                    stat.samples_in += sum(
                        arr.size for arr in inputs.values()
                    )
                    start = time.perf_counter()
                    outputs = block.work(inputs, ctx)
                    stat.work_seconds += time.perf_counter() - start
                    stat.calls += 1
                    stat.samples_out += sum(
                        arr.size for arr in outputs.values()
                    )
                    invocations += 1
                for port, arr in outputs.items():
                    values[(name, port)] = arr
                    chunks.setdefault((name, port), []).append(arr)
        if tracer.enabled:
            # One summary span per block (not per frame) keeps traces
            # bounded for long interpreted runs.
            for name in order:
                stat = stats[name]
                tracer.record_span(
                    f"block:{name}",
                    stat.work_seconds,
                    kind=type(schematic._blocks[name]).__name__,
                    mode="interpreted",
                    calls=stat.calls,
                    samples=stat.samples_out,
                    samples_in=stat.samples_in,
                )
        merged = {
            f"{b}.{p}": np.concatenate(arrs) if arrs else np.zeros(0)
            for (b, p), arrs in chunks.items()
        }
        probes = {
            f"{k[0]}.{k[1]}": merged[f"{k[0]}.{k[1]}"]
            for k, wire in schematic._wires.items()
            if wire.probed and f"{k[0]}.{k[1]}" in merged
        }
        self._tap_signal_probes(schematic, probes)
        return RunResult(merged, probes, invocations, stats)
