"""Filter design program (SPW ships one: "a waveform viewer SigCalc and a
filter design program is also provided").

Given a passband/stopband specification, estimate the minimum Chebyshev-I
order, design the filter, and verify the result against the spec — the
workflow behind choosing the figure-5 channel filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import signal as sps

from repro.rf.filters import AnalogFilter


@dataclass(frozen=True)
class FilterSpec:
    """A low-pass filter requirement.

    Attributes:
        passband_edge_hz: edge of the (envelope) passband.
        stopband_edge_hz: frequency where the attenuation must be reached.
        passband_ripple_db: maximum passband ripple.
        stopband_atten_db: minimum stopband attenuation.
        sample_rate: simulation rate the filter will run at.
    """

    passband_edge_hz: float
    stopband_edge_hz: float
    passband_ripple_db: float = 0.5
    stopband_atten_db: float = 40.0
    sample_rate: float = 80e6

    def __post_init__(self):
        nyq = self.sample_rate / 2.0
        if not 0 < self.passband_edge_hz < self.stopband_edge_hz < nyq:
            raise ValueError(
                "need 0 < passband < stopband < Nyquist "
                f"(got {self.passband_edge_hz:g}, {self.stopband_edge_hz:g}, "
                f"Nyquist {nyq:g})"
            )
        if self.passband_ripple_db <= 0 or self.stopband_atten_db <= 0:
            raise ValueError("ripple and attenuation must be positive")


@dataclass
class FilterDesignReport:
    """Outcome of a filter design run.

    Attributes:
        spec: the requested specification.
        order: the minimum order found.
        filter: the designed filter.
        measured_passband_ripple_db: worst passband deviation.
        measured_stopband_atten_db: attenuation at the stopband edge.
        meets_spec: whether the verification passed.
    """

    spec: FilterSpec
    order: int
    filter: AnalogFilter
    measured_passband_ripple_db: float
    measured_stopband_atten_db: float

    @property
    def meets_spec(self) -> bool:
        return (
            self.measured_passband_ripple_db
            <= self.spec.passband_ripple_db + 0.1
            and self.measured_stopband_atten_db
            >= self.spec.stopband_atten_db - 0.5
        )


def design_channel_filter(spec: FilterSpec) -> FilterDesignReport:
    """Design the minimum-order Chebyshev-I low-pass meeting ``spec``.

    Returns:
        A report with the designed filter and the verification
        measurements (worst passband ripple, stopband-edge attenuation).
    """
    nyq = spec.sample_rate / 2.0
    order, wn = sps.cheb1ord(
        spec.passband_edge_hz / nyq,
        spec.stopband_edge_hz / nyq,
        spec.passband_ripple_db,
        spec.stopband_atten_db,
    )
    sos = sps.cheby1(
        order, spec.passband_ripple_db, wn, btype="low", output="sos"
    )
    filt = AnalogFilter(
        sos=sos,
        description=(
            f"cheby1 lowpass order={order} designed for "
            f"pb={spec.passband_edge_hz:g}Hz "
            f"sb={spec.stopband_edge_hz:g}Hz "
            f"ripple={spec.passband_ripple_db}dB "
            f"atten={spec.stopband_atten_db}dB"
        ),
    )
    ripple, atten = _verify(filt, spec)
    return FilterDesignReport(
        spec=spec,
        order=order,
        filter=filt,
        measured_passband_ripple_db=ripple,
        measured_stopband_atten_db=atten,
    )


def _verify(filt: AnalogFilter, spec: FilterSpec) -> Tuple[float, float]:
    """Measure worst passband ripple and stopband-edge attenuation."""
    nyq = spec.sample_rate / 2.0
    pass_freqs = np.linspace(0.0, spec.passband_edge_hz, 256)
    w = pass_freqs / nyq * np.pi
    _, h_pass = sps.sosfreqz(filt.sos, worN=w)
    ripple = float(-20.0 * np.log10(np.abs(h_pass).min() + 1e-300))
    w_stop = np.array([spec.stopband_edge_hz / nyq * np.pi])
    _, h_stop = sps.sosfreqz(filt.sos, worN=w_stop)
    atten = float(-20.0 * np.log10(abs(h_stop[0]) + 1e-300))
    return ripple, atten
