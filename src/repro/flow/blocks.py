"""Dataflow block library (the SPW rflib / demo-system stand-in).

These blocks wrap the DSP, RF and channel models so the paper's figure-3
schematic — the double-conversion receiver inserted in front of the DSP
receiver of the IEEE 802.11a demo system — can be assembled as an actual
block diagram and executed by :class:`repro.flow.dataflow.DataflowEngine`.

The schematic operates per packet: each engine run transmits one PPDU
through channel, RF front end and receiver, and the BER meter accumulates
bit errors across runs (the harness re-runs the engine with fresh seeds,
exactly like a simulation-manager batch).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.channel.awgn import AwgnChannel
from repro.channel.interference import AdjacentChannelSource
from repro.dsp.params import SAMPLE_RATE
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.flow.dataflow import Block, SimulationContext
from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
from repro.rf.signal import Signal, db_to_amplitude, dbm_to_watts


class TransmitterBlock(Block):
    """802.11a packet source.

    Outputs:
        out: the PPDU waveform (complex, oversampled), with leading and
            trailing guard gaps.
        bits: the transmitted PSDU payload bits (reference for BER).
    """

    inputs = ()
    outputs = ("out", "bits")
    supports_interpreted = False

    def __init__(
        self,
        rate_mbps: int = 24,
        psdu_bytes: int = 100,
        oversample: int = 4,
        guard_samples: int = 600,
    ):
        self.rate_mbps = rate_mbps
        self.psdu_bytes = psdu_bytes
        self.oversample = oversample
        self.guard_samples = guard_samples

    def work(self, inputs, ctx: SimulationContext):
        tx = Transmitter(
            TxConfig(rate_mbps=self.rate_mbps, oversample=self.oversample)
        )
        psdu = random_psdu(self.psdu_bytes, ctx.rng)
        wave = tx.transmit(psdu)
        guard = np.zeros(self.guard_samples, dtype=complex)
        out = np.concatenate([guard, wave, guard])
        return {
            "out": out,
            "bits": np.unpackbits(psdu, bitorder="little"),
        }


class ScaleBlock(Block):
    """Constant multiplier (the paper's RF/DSP level adaptation).

    Either applies a fixed ``gain_db`` or, when ``target_dbm`` is set,
    rescales the frame to that average power.
    """

    inputs = ("in",)
    outputs = ("out",)

    def __init__(
        self, gain_db: float = 0.0, target_dbm: Optional[float] = None
    ):
        self.gain_db = gain_db
        self.target_dbm = target_dbm

    def work(self, inputs, ctx):
        x = inputs["in"]
        if self.target_dbm is not None:
            power = np.mean(np.abs(x) ** 2) if x.size else 0.0
            if power > 0:
                x = x * np.sqrt(dbm_to_watts(self.target_dbm) / power)
        else:
            x = x * db_to_amplitude(self.gain_db)
        return {"out": x}


class AdderBlock(Block):
    """Sum of two streams (shorter input zero-padded)."""

    inputs = ("a", "b")
    outputs = ("out",)

    def work(self, inputs, ctx):
        a, b = inputs["a"], inputs["b"]
        n = max(a.size, b.size)
        out = np.zeros(n, dtype=complex)
        out[: a.size] = a
        out[: b.size] += b
        return {"out": out}


class AdjacentChannelBlock(Block):
    """Adds an interfering 802.11a channel to the stream.

    Parameters mirror :class:`repro.channel.interference
    .AdjacentChannelSource`; set ``enabled`` False for the interferer-free
    reference runs of figure 6.
    """

    inputs = ("in",)
    outputs = ("out",)
    supports_interpreted = False

    def __init__(
        self,
        enabled: bool = True,
        offset_channels: int = 1,
        excess_db: float = 16.0,
        oversample: int = 4,
    ):
        self.enabled = enabled
        self.offset_channels = offset_channels
        self.excess_db = excess_db
        self.oversample = oversample

    def work(self, inputs, ctx):
        x = inputs["in"]
        if not self.enabled or x.size == 0:
            return {"out": x}
        source = AdjacentChannelSource(
            offset_channels=self.offset_channels,
            excess_db=self.excess_db,
        )
        nonzero = x[x != 0]
        power = float(np.mean(np.abs(nonzero) ** 2)) if nonzero.size else 0.0
        interferer = source.generate(
            x.size, SAMPLE_RATE * self.oversample, power, ctx.rng
        )
        return {"out": x + interferer.samples[: x.size]}


class AwgnChannelBlock(Block):
    """AWGN channel block (normalized SNR and/or thermal floor)."""

    inputs = ("in",)
    outputs = ("out",)

    def __init__(
        self,
        snr_db: Optional[float] = None,
        include_thermal_floor: bool = False,
        oversample: int = 4,
    ):
        self.snr_db = snr_db
        self.include_thermal_floor = include_thermal_floor
        self.oversample = oversample

    def work(self, inputs, ctx):
        x = inputs["in"]
        channel = AwgnChannel(
            snr_db=self.snr_db,
            include_thermal_floor=self.include_thermal_floor,
        )
        sig = Signal(x, SAMPLE_RATE * self.oversample)
        return {"out": channel.process(sig, ctx.rng).samples}


class RfFrontendBlock(Block):
    """The double-conversion receiver as a dataflow block.

    The front-end configuration fields are exposed as block parameters
    (``set_param("lna_p1db_dbm", -20)`` etc.), so simulation-manager
    sweeps address them directly.
    """

    inputs = ("in",)
    outputs = ("out",)
    supports_interpreted = False

    def __init__(self, config: FrontendConfig = None):
        self.config = config if config is not None else FrontendConfig()

    def set_param(self, name: str, value):
        from dataclasses import replace

        if hasattr(self.config, name):
            self.config = replace(self.config, **{name: value})
        else:
            super().set_param(name, value)

    def get_param(self, name: str):
        if hasattr(self.config, name):
            return getattr(self.config, name)
        return super().get_param(name)

    def work(self, inputs, ctx):
        frontend = DoubleConversionReceiver(self.config)
        sig = Signal(
            inputs["in"],
            self.config.sample_rate_in,
            self.config.carrier_frequency,
        )
        out = frontend.process(sig, ctx.rng)
        return {"out": out.samples}


class ReceiverBlock(Block):
    """The DSP receiver: decodes one packet, outputs payload bits.

    Outputs:
        bits: decoded PSDU bits; empty when reception failed.
    """

    inputs = ("in",)
    outputs = ("bits",)
    supports_interpreted = False

    def __init__(self, rx_config: RxConfig = None):
        self.rx_config = rx_config if rx_config is not None else RxConfig()
        self.last_result = None

    def work(self, inputs, ctx):
        receiver = Receiver(self.rx_config)
        result = receiver.receive(inputs["in"])
        self.last_result = result
        if not result.success:
            return {"bits": np.zeros(0, dtype=np.uint8)}
        return {"bits": np.unpackbits(result.psdu, bitorder="little")}


class BerMeterBlock(Block):
    """Accumulating bit-error-rate meter.

    Compares reference and received bit streams per run.  A failed
    reception (empty received stream) is counted as half the bits in
    error, matching the asymptotic BER of guessing — this is why the
    paper's BER plots saturate toward 0.5.

    Outputs:
        ber: single-element array with the cumulative BER.
    """

    inputs = ("ref", "rx")
    outputs = ("ber",)

    def __init__(self):
        self.reset()

    def reset_counts(self):
        """Clear the accumulated error counters."""
        self.bit_errors = 0.0
        self.bits_total = 0
        self.packets = 0
        self.packets_lost = 0

    def reset(self):
        # Engine reset happens per run; the meter must survive across runs,
        # so state is only initialized once (see reset_counts()).
        if not hasattr(self, "bits_total"):
            self.reset_counts()

    def work(self, inputs, ctx):
        ref, rx = inputs["ref"], inputs["rx"]
        self.packets += 1
        self.bits_total += ref.size
        if rx.size != ref.size:
            self.packets_lost += 1
            self.bit_errors += ref.size / 2.0
        else:
            self.bit_errors += int(np.count_nonzero(ref != rx))
        ber = self.bit_errors / self.bits_total if self.bits_total else 0.0
        return {"ber": np.array([ber])}


class IirFilterBlock(Block):
    """A streaming IIR filter with persistent state across frames.

    Demonstrates genuinely stateful interpreted-mode execution (the
    engine-mode ablation bench compares it against compiled mode).
    """

    inputs = ("in",)
    outputs = ("out",)

    def __init__(self, sos: np.ndarray):
        from scipy.signal import sosfilt_zi

        self.sos = np.asarray(sos)
        self._zi_template = sosfilt_zi(self.sos)
        self._zi = None

    def reset(self):
        self._zi = None

    def work(self, inputs, ctx):
        from scipy.signal import sosfilt

        x = inputs["in"]
        if self._zi is None:
            self._zi = np.zeros(
                (self.sos.shape[0], 2), dtype=complex
            )
        y, self._zi = sosfilt(self.sos, x, zi=self._zi)
        return {"out": y}


def build_figure3_schematic(
    rate_mbps: int = 24,
    psdu_bytes: int = 100,
    input_level_dbm: float = -50.0,
    adjacent_enabled: bool = False,
    frontend_config: Optional[FrontendConfig] = None,
):
    """Assemble the paper's figure-3 schematic.

    Transmitter -> level scale -> (adjacent channel) -> AWGN (thermal
    floor) -> double-conversion receiver -> output scale -> DSP receiver ->
    BER meter; probes on the RF input and output.

    Returns:
        ``(schematic, ber_meter)`` — the meter accumulates across runs.
    """
    from repro.flow.dataflow import Schematic

    config = frontend_config if frontend_config is not None else FrontendConfig()
    oversample = config.decimation
    sch = Schematic("figure3_wlan_rf_receiver")
    sch.add(
        "tx",
        TransmitterBlock(
            rate_mbps=rate_mbps, psdu_bytes=psdu_bytes, oversample=oversample
        ),
    )
    sch.add("level_in", ScaleBlock(target_dbm=input_level_dbm))
    sch.add(
        "adjacent",
        AdjacentChannelBlock(enabled=adjacent_enabled, oversample=oversample),
    )
    sch.add(
        "antenna",
        AwgnChannelBlock(include_thermal_floor=True, oversample=oversample),
    )
    sch.add("rf_frontend", RfFrontendBlock(config))
    sch.add("level_out", ScaleBlock(target_dbm=0.0))
    sch.add("rx", ReceiverBlock())
    meter = sch.add("ber", BerMeterBlock())

    sch.connect("tx.out", "level_in.in")
    sch.connect("level_in.out", "adjacent.in")
    sch.connect("adjacent.out", "antenna.in")
    sch.connect("antenna.out", "rf_frontend.in")
    sch.connect("rf_frontend.out", "level_out.in")
    sch.connect("level_out.out", "rx.in")
    sch.connect("tx.bits", "ber.ref")
    sch.connect("rx.bits", "ber.rx")
    sch.probe("antenna.out")
    sch.probe("rf_frontend.out")
    return sch, meter
