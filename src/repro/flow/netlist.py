"""Verilog-AMS-flavoured netlist hand-off (the DFII -> ncvlog -> SPW path).

Section 4.3 of the paper: "the Verilog-AMS description is generated
automatically by saving the schematic in the DFII; after few modifications
the Verilog-AMS description is manually compiled by using the ncvlog
compiler; from the netlist a SPW block can be generated."

This module serializes a :class:`repro.rf.frontend.FrontendConfig` into a
textual netlist of RF primitives, parses it back, and "compiles" it: the
:class:`NetlistCompiler` validates primitives and parameters and — like the
AMS Designer — reports which noise functions the design uses, since those
are unsupported in transient co-simulation (the central tool limitation the
paper documents).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rf.frontend import (
    LO_FREQUENCY,
    DoubleConversionReceiver,
    FrontendConfig,
)


class NetlistError(ValueError):
    """Raised for malformed or invalid netlists."""


#: Primitive library: primitive name -> allowed parameter names.
PRIMITIVES: Dict[str, Tuple[str, ...]] = {
    "lna": ("gain_db", "nf_db", "p1db_dbm", "model_style", "am_pm_deg"),
    "lo": (
        "frequency_hz",
        "error_ppm",
        "phase_noise_dbc_hz",
        "phase_noise_ref_hz",
    ),
    "mixer": ("gain_db", "nf_db", "iip3_dbm", "image_rejection_db"),
    "quad_mixer": (
        "gain_db",
        "nf_db",
        "iip3_dbm",
        "dc_offset_dbm",
        "flicker_power_dbm",
        "flicker_corner_hz",
        "iq_amplitude_db",
        "iq_phase_deg",
    ),
    "highpass": ("cutoff_hz", "order", "enabled"),
    "chebyshev_lowpass": ("edge_hz", "order", "ripple_db"),
    "agc": ("target_dbm", "min_gain_db", "max_gain_db"),
    "adc": ("n_bits", "full_scale_dbm"),
}

#: Noise-generating (small-signal) functions each primitive relies on,
#: mirroring the Verilog-A ``white_noise``/``flicker_noise`` usage that the
#: AMS Designer cannot evaluate in transient analyses.
NOISE_FUNCTIONS: Dict[str, Tuple[str, ...]] = {
    "lna": ("white_noise",),
    "mixer": ("white_noise",),
    "quad_mixer": ("white_noise", "flicker_noise"),
    "lo": ("white_noise",),
}


def _fmt(value) -> str:
    if value is None:
        return "none"
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, float) and np.isinf(value):
        return "inf"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return f"{float(value):.10g}"


def frontend_to_netlist(config: FrontendConfig) -> str:
    """Serialize a front-end configuration into netlist text."""
    lines = [
        "// repro RF netlist v1 — double conversion receiver (figure 2)",
        "module double_conversion_receiver(rf_in, bb_out);",
        f"  parameter real sample_rate_in = {_fmt(config.sample_rate_in)};",
        f"  parameter real carrier_frequency = "
        f"{_fmt(config.carrier_frequency)};",
        (
            "  lna #(.gain_db({g}), .nf_db({nf}), .p1db_dbm({p}), "
            ".model_style({m}), .am_pm_deg({ap})) LNA1 (rf_in, n1);"
        ).format(
            g=_fmt(config.lna_gain_db),
            nf=_fmt(config.lna_nf_db),
            p=_fmt(config.lna_p1db_dbm),
            m=_fmt(config.lna_model),
            ap=_fmt(config.lna_am_pm_deg),
        ),
        (
            "  lo #(.frequency_hz({f}), .error_ppm({e}), "
            ".phase_noise_dbc_hz({pn}), .phase_noise_ref_hz({pr})) "
            "LO1 (lo_node);"
        ).format(
            f=_fmt(LO_FREQUENCY),
            e=_fmt(config.lo_error_ppm),
            pn=_fmt(config.lo_phase_noise_dbc_hz),
            pr=_fmt(config.lo_phase_noise_ref_hz),
        ),
        (
            "  mixer #(.gain_db({g}), .nf_db({nf}), .iip3_dbm({i}), "
            ".image_rejection_db({ir})) MIX1 (n1, lo_node, n2);"
        ).format(
            g=_fmt(config.mixer1_gain_db),
            nf=_fmt(config.mixer1_nf_db),
            i=_fmt(config.mixer1_iip3_dbm),
            ir=_fmt(config.image_rejection_db),
        ),
        (
            "  quad_mixer #(.gain_db({g}), .nf_db({nf}), .iip3_dbm({i}), "
            ".dc_offset_dbm({dc}), .flicker_power_dbm({fp}), "
            ".flicker_corner_hz({fc}), .iq_amplitude_db({ia}), "
            ".iq_phase_deg({ip})) MIX2 (n2, lo_node, n3);"
        ).format(
            g=_fmt(config.mixer2_gain_db),
            nf=_fmt(config.mixer2_nf_db),
            i=_fmt(config.mixer2_iip3_dbm),
            dc=_fmt(config.dc_offset_dbm),
            fp=_fmt(config.flicker_power_dbm),
            fc=_fmt(config.flicker_corner_hz),
            ia=_fmt(config.iq_amplitude_db),
            ip=_fmt(config.iq_phase_deg),
        ),
        (
            "  highpass #(.cutoff_hz({c}), .order({o}), .enabled({e})) "
            "HPF1 (n3, n4);"
        ).format(
            c=_fmt(config.hpf_cutoff_hz),
            o=_fmt(config.hpf_order),
            e=_fmt(1 if config.hpf_enabled else 0),
        ),
        (
            "  chebyshev_lowpass #(.edge_hz({e}), .order({o}), "
            ".ripple_db({r})) LPF1 (n4, n5);"
        ).format(
            e=_fmt(config.lpf_edge_hz),
            o=_fmt(config.lpf_order),
            r=_fmt(config.lpf_ripple_db),
        ),
        (
            "  agc #(.target_dbm({t}), .min_gain_db({lo}), "
            ".max_gain_db({hi})) AGC1 (n5, n6);"
        ).format(
            t=_fmt(config.agc_target_dbm),
            lo=_fmt(config.agc_min_gain_db),
            hi=_fmt(config.agc_max_gain_db),
        ),
        (
            "  adc #(.n_bits({b}), .full_scale_dbm({fs})) ADC1 (n6, bb_out);"
        ).format(
            b=_fmt(config.adc_bits), fs=_fmt(config.adc_full_scale_dbm)
        ),
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


_INSTANCE_RE = re.compile(
    r"^\s*(\w+)\s*#\((.*)\)\s*(\w+)\s*\(([^)]*)\)\s*;\s*$"
)
_PARAM_RE = re.compile(r"\.(\w+)\(([^()]*)\)")
_MODULE_PARAM_RE = re.compile(
    r"^\s*parameter\s+real\s+(\w+)\s*=\s*([^;]+);\s*$"
)


def _parse_value(text: str):
    text = text.strip()
    if text == "none":
        return None
    if text == "inf":
        return np.inf
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    try:
        f = float(text)
    except ValueError as exc:
        raise NetlistError(f"unparseable parameter value {text!r}") from exc
    if f.is_integer() and "." not in text and "e" not in text.lower():
        return int(f)
    return f


def parse_netlist(text: str):
    """Parse netlist text into (module_params, instances).

    Returns:
        ``(params, instances)`` where ``params`` maps module-level
        parameter names to floats and ``instances`` is a list of
        ``(primitive, instance_name, param_dict, nodes)`` tuples in file
        order.
    """
    params: Dict[str, float] = {}
    instances = []
    in_module = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].rstrip()
        if not line.strip():
            continue
        if line.strip().startswith("module"):
            in_module = True
            continue
        if line.strip() == "endmodule":
            in_module = False
            continue
        m = _MODULE_PARAM_RE.match(line)
        if m:
            value = _parse_value(m.group(2))
            try:
                params[m.group(1)] = float(value)
            except (TypeError, ValueError) as exc:
                raise NetlistError(
                    f"line {lineno}: module parameter {m.group(1)!r} is "
                    f"not a real number: {value!r}"
                ) from exc
            continue
        m = _INSTANCE_RE.match(line)
        if m:
            if not in_module:
                raise NetlistError(
                    f"line {lineno}: instance outside module body"
                )
            primitive, param_text, inst_name, node_text = m.groups()
            inst_params = {
                name: _parse_value(value)
                for name, value in _PARAM_RE.findall(param_text)
            }
            nodes = [n.strip() for n in node_text.split(",") if n.strip()]
            instances.append((primitive, inst_name, inst_params, nodes))
            continue
        raise NetlistError(f"line {lineno}: cannot parse {line!r}")
    return params, instances


def netlist_to_config(text: str) -> FrontendConfig:
    """Reconstruct a :class:`FrontendConfig` from netlist text."""
    params, instances = parse_netlist(text)
    by_primitive = {}
    for primitive, name, inst_params, nodes in instances:
        if primitive not in PRIMITIVES:
            raise NetlistError(f"unknown primitive {primitive!r}")
        unknown = set(inst_params) - set(PRIMITIVES[primitive])
        if unknown:
            raise NetlistError(
                f"{name}: unknown parameters {sorted(unknown)} for "
                f"primitive {primitive!r}"
            )
        by_primitive.setdefault(primitive, []).append(inst_params)

    def one(primitive: str) -> dict:
        entries = by_primitive.get(primitive, [])
        if len(entries) != 1:
            raise NetlistError(
                f"expected exactly one {primitive!r} instance, found "
                f"{len(entries)}"
            )
        return entries[0]

    lna = one("lna")
    lo = one("lo")
    mix1 = one("mixer")
    mix2 = one("quad_mixer")
    hpf = one("highpass")
    lpf = one("chebyshev_lowpass")
    agc = one("agc")
    adc = one("adc")

    def opt_float(value):
        return None if value is None else float(value)

    try:
        return _build_config(
            params, lna, lo, mix1, mix2, hpf, lpf, agc, adc, opt_float
        )
    except KeyError as exc:
        raise NetlistError(
            f"netlist is missing required parameter {exc.args[0]!r}"
        ) from exc
    except NetlistError:
        raise
    except (TypeError, ValueError) as exc:
        # Parameter values of the wrong type/range (a fuzz-found class:
        # e.g. a sample rate that is not a multiple of 20 MHz, or a
        # quoted string where a number belongs) are netlist errors, not
        # internal faults.
        raise NetlistError(f"invalid netlist parameters: {exc}") from exc


def _build_config(params, lna, lo, mix1, mix2, hpf, lpf, agc, adc, opt_float):
    """Assemble the FrontendConfig; raises KeyError on missing params."""
    return FrontendConfig(
        sample_rate_in=params.get("sample_rate_in", 80e6),
        carrier_frequency=params.get("carrier_frequency", 5.2e9),
        lna_gain_db=float(lna["gain_db"]),
        lna_nf_db=float(lna["nf_db"]),
        lna_p1db_dbm=float(lna["p1db_dbm"]),
        lna_model=str(lna.get("model_style", "cubic")),
        lna_am_pm_deg=float(lna.get("am_pm_deg", 0.0)),
        mixer1_gain_db=float(mix1["gain_db"]),
        mixer1_nf_db=float(mix1["nf_db"]),
        mixer1_iip3_dbm=float(mix1["iip3_dbm"]),
        image_rejection_db=float(mix1.get("image_rejection_db", np.inf)),
        mixer2_gain_db=float(mix2["gain_db"]),
        mixer2_nf_db=float(mix2["nf_db"]),
        mixer2_iip3_dbm=float(mix2["iip3_dbm"]),
        dc_offset_dbm=opt_float(mix2.get("dc_offset_dbm")),
        flicker_power_dbm=opt_float(mix2.get("flicker_power_dbm")),
        flicker_corner_hz=float(mix2.get("flicker_corner_hz", 1e6)),
        iq_amplitude_db=float(mix2.get("iq_amplitude_db", 0.0)),
        iq_phase_deg=float(mix2.get("iq_phase_deg", 0.0)),
        lo_error_ppm=float(lo.get("error_ppm", 0.0)),
        lo_phase_noise_dbc_hz=opt_float(lo.get("phase_noise_dbc_hz")),
        lo_phase_noise_ref_hz=float(lo.get("phase_noise_ref_hz", 1e6)),
        hpf_enabled=bool(int(hpf.get("enabled", 1))),
        hpf_cutoff_hz=float(hpf["cutoff_hz"]),
        hpf_order=int(hpf["order"]),
        lpf_edge_hz=float(lpf["edge_hz"]),
        lpf_order=int(lpf["order"]),
        lpf_ripple_db=float(lpf.get("ripple_db", 0.5)),
        agc_target_dbm=float(agc["target_dbm"]),
        agc_min_gain_db=float(agc.get("min_gain_db", -20.0)),
        agc_max_gain_db=float(agc.get("max_gain_db", 70.0)),
        adc_bits=None if adc.get("n_bits") is None else int(adc["n_bits"]),
        adc_full_scale_dbm=float(adc.get("full_scale_dbm", 0.0)),
    )


@dataclass
class CompiledDesign:
    """Result of "compiling" a netlist for a target simulator.

    Attributes:
        config: the reconstructed front-end configuration.
        frontend: an executable :class:`DoubleConversionReceiver`.
        noise_functions_used: small-signal noise functions the design
            relies on (per instance).
        warnings: compiler diagnostics (e.g. the AMS transient-noise gap).
    """

    config: FrontendConfig
    frontend: DoubleConversionReceiver
    noise_functions_used: Dict[str, Tuple[str, ...]]
    warnings: List[str] = field(default_factory=list)


class NetlistCompiler:
    """The ncvlog stand-in: validate and elaborate a netlist.

    Args:
        target: ``"spectre"`` (all analyses available) or ``"ams"`` (the
            AMS Designer transient engine, where the Verilog-A
            ``white_noise``/``flicker_noise`` functions do not work).
    """

    def __init__(self, target: str = "ams"):
        if target not in ("spectre", "ams"):
            raise ValueError(f"unknown target simulator {target!r}")
        self.target = target

    def compile(self, text: str) -> CompiledDesign:
        """Parse, validate and elaborate the netlist."""
        config = netlist_to_config(text)
        _, instances = parse_netlist(text)
        used: Dict[str, Tuple[str, ...]] = {}
        for primitive, name, inst_params, _ in instances:
            functions = NOISE_FUNCTIONS.get(primitive, ())
            if not functions:
                continue
            active = self._active_noise(primitive, inst_params)
            if active:
                used[name] = tuple(active)
        warnings = []
        if self.target == "ams" and used:
            blocks = ", ".join(sorted(used))
            functions = sorted({f for fs in used.values() for f in fs})
            warnings.append(
                f"noise functions {functions} used by [{blocks}] are not "
                f"supported in transient (large-signal) analysis; noise "
                f"will be silently disabled in co-simulation — insert a "
                f"noise source on the system side or rewrite the models "
                f"with random functions (section 4.3)"
            )
        try:
            frontend = DoubleConversionReceiver(config)
        except (TypeError, ValueError) as exc:
            # Elaboration failures (e.g. an unknown LNA model string,
            # another fuzz-found class) are design errors too.
            raise NetlistError(f"cannot elaborate design: {exc}") from exc
        return CompiledDesign(
            config=config,
            frontend=frontend,
            noise_functions_used=used,
            warnings=warnings,
        )

    @staticmethod
    def _active_noise(primitive: str, params: dict) -> List[str]:
        active = []
        if primitive in ("lna", "mixer", "quad_mixer"):
            if float(params.get("nf_db", 0.0) or 0.0) > 0.0:
                active.append("white_noise")
        if primitive == "quad_mixer":
            if params.get("flicker_power_dbm") is not None:
                active.append("flicker_noise")
        if primitive == "lo":
            if params.get("phase_noise_dbc_hz") is not None:
                active.append("white_noise")
        return active
