"""RF characterization analyses (the SpectreRF stand-in).

SpectreRF "provides specific simulation algorithms for the analysis and
characterization of RF components.  They allow an accurate analysis of
noise and non-linearity, e.g. measurement of Compression Point, Intercept
Points and Noise Figure."  This module implements those measurements over
any behavioral block exposing ``process(Signal, rng) -> Signal``:

* :func:`swept_power_compression` — single-tone power sweep, P1dB
  extraction;
* :func:`two_tone_intermod` — the classic two-tone (periodic steady state)
  test, IIP3/OIP3 extraction;
* :func:`measure_noise_figure` — gain + output-noise measurement against
  the thermal floor;
* :func:`ac_response` — small-signal transfer function;
* :func:`characterize` — the full analysis suite over one block, with
  the analyses (and the compression sweep's points) fanned out across
  worker processes via :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.rf.noise import thermal_noise_power, white_noise
from repro.rf.signal import Signal, dbm_to_watts, watts_to_dbm


def _tone(
    power_dbm: float,
    freq_hz: float,
    sample_rate: float,
    n_samples: int,
    phase: float = 0.0,
) -> Signal:
    """A complex exponential test tone of the given envelope power."""
    amp = np.sqrt(dbm_to_watts(power_dbm))
    t = np.arange(n_samples) / sample_rate
    return Signal(
        amp * np.exp(1j * (2 * np.pi * freq_hz * t + phase)), sample_rate
    )


def _bin_power_dbm(
    samples: np.ndarray, freq_hz: float, sample_rate: float, skip: int = 0
) -> float:
    """Power of the complex-exponential component at ``freq_hz`` in dBm.

    Uses a single-bin DFT (matched filter); ``skip`` drops leading samples
    (filter transients).
    """
    x = samples[skip:]
    n = x.size
    t = np.arange(skip, skip + n) / sample_rate
    probe = np.exp(-2j * np.pi * freq_hz * t)
    coeff = np.dot(x, probe) / n
    return watts_to_dbm(abs(coeff) ** 2)


def _aligned_frequency(freq_hz: float, sample_rate: float, n: int) -> float:
    """Snap a frequency to the nearest DFT bin of an n-point analysis."""
    k = round(freq_hz * n / sample_rate)
    return k * sample_rate / n


@dataclass
class CompressionResult:
    """Swept-power compression measurement.

    Attributes:
        input_dbm: swept input tone powers.
        output_dbm: measured output fundamental powers.
        small_signal_gain_db: gain at the lowest sweep power.
        input_p1db_dbm: interpolated input 1-dB compression point (NaN if
            the sweep never compresses by 1 dB).
    """

    input_dbm: np.ndarray
    output_dbm: np.ndarray
    small_signal_gain_db: float
    input_p1db_dbm: float


def _compression_point_task(payload):
    """Probe one swept power point (a :func:`repro.perf.parallel_map` task)."""
    block, p, freq, sample_rate, n_samples, settle, child = payload
    tone = _tone(p, freq, sample_rate, n_samples)
    y = block.process(tone, np.random.default_rng(child))
    # Blocks may decimate (e.g. a full front end); probe at the
    # output rate with a proportionally scaled settle time.
    skip = int(settle * y.sample_rate / sample_rate)
    return _bin_power_dbm(y.samples, freq, y.sample_rate, skip=skip)


def swept_power_compression(
    block,
    sample_rate: float = 80e6,
    tone_offset_hz: float = 1e6,
    input_dbm: Optional[Sequence[float]] = None,
    n_samples: int = 4096,
    settle: int = 512,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> CompressionResult:
    """Measure gain compression of a block with a swept single tone.

    Without an explicit ``rng`` each swept point draws its noise from
    its own :class:`~numpy.random.SeedSequence` child of ``seed``, so
    the sweep parallelizes across ``jobs`` processes bit-identically to
    serial.  Passing ``rng`` keeps the legacy behavior — one generator
    threaded through the points in order — which is inherently serial.
    """
    if input_dbm is None:
        input_dbm = np.arange(-60.0, 10.1, 1.0)
    input_dbm = np.asarray(input_dbm, dtype=float)
    freq = _aligned_frequency(tone_offset_hz, sample_rate, n_samples - settle)
    if rng is not None:
        out = np.empty_like(input_dbm)
        for i, p in enumerate(input_dbm):
            tone = _tone(p, freq, sample_rate, n_samples)
            y = block.process(tone, rng)
            skip = int(settle * y.sample_rate / sample_rate)
            out[i] = _bin_power_dbm(y.samples, freq, y.sample_rate, skip=skip)
    else:
        from repro import perf

        children = perf.spawn(seed, len(input_dbm))
        out = np.asarray(
            perf.parallel_map(
                _compression_point_task,
                [
                    (block, p, freq, sample_rate, n_samples, settle, child)
                    for p, child in zip(input_dbm, children)
                ],
                jobs=jobs,
                stage="compression",
            ),
            dtype=float,
        )
    gains = out - input_dbm
    g0 = gains[0]
    drop = g0 - gains
    p1db = np.nan
    above = np.nonzero(drop >= 1.0)[0]
    if above.size:
        j = above[0]
        if j == 0:
            p1db = input_dbm[0]
        else:
            x0, x1 = input_dbm[j - 1], input_dbm[j]
            y0, y1 = drop[j - 1], drop[j]
            p1db = x0 + (1.0 - y0) * (x1 - x0) / (y1 - y0)
    return CompressionResult(
        input_dbm=input_dbm,
        output_dbm=out,
        small_signal_gain_db=float(g0),
        input_p1db_dbm=float(p1db),
    )


@dataclass
class IntermodResult:
    """Two-tone intermodulation measurement.

    Attributes:
        tone_power_dbm: per-tone input power used for extraction.
        fundamental_dbm: output power of one fundamental tone.
        im3_dbm: output power of one third-order product.
        gain_db: fundamental conversion gain.
        oip3_dbm / iip3_dbm: extracted intercept points.
    """

    tone_power_dbm: float
    fundamental_dbm: float
    im3_dbm: float
    gain_db: float
    oip3_dbm: float
    iip3_dbm: float


def two_tone_intermod(
    block,
    sample_rate: float = 80e6,
    tone_spacing_hz: float = 2e6,
    tone_power_dbm: float = -40.0,
    n_samples: int = 8192,
    settle: int = 1024,
    rng: Optional[np.random.Generator] = None,
) -> IntermodResult:
    """Two-tone test: drive f1, f2 and measure the 2*f2-f1 product.

    The intercept extraction uses the standard small-signal relation
    ``OIP3 = P_fund + (P_fund - P_IM3) / 2`` (all output powers, dBm).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n_eff = n_samples - settle
    half = _aligned_frequency(tone_spacing_hz / 2.0, sample_rate, n_eff)
    f1, f2 = -half, half
    im3_hi = 2 * f2 - f1  # = 3*half
    t1 = _tone(tone_power_dbm, f1, sample_rate, n_samples)
    t2 = _tone(tone_power_dbm, f2, sample_rate, n_samples, phase=1.234)
    stimulus = t1.with_samples(t1.samples + t2.samples)
    y = block.process(stimulus, rng)
    skip = int(settle * y.sample_rate / sample_rate)
    p_fund = _bin_power_dbm(y.samples, f2, y.sample_rate, skip=skip)
    p_im3 = _bin_power_dbm(y.samples, im3_hi, y.sample_rate, skip=skip)
    gain = p_fund - tone_power_dbm
    oip3 = p_fund + (p_fund - p_im3) / 2.0
    return IntermodResult(
        tone_power_dbm=tone_power_dbm,
        fundamental_dbm=p_fund,
        im3_dbm=p_im3,
        gain_db=gain,
        oip3_dbm=oip3,
        iip3_dbm=oip3 - gain,
    )


@dataclass
class NoiseFigureResult:
    """Noise-figure measurement.

    Attributes:
        gain_db: measured small-signal gain.
        noise_figure_db: extracted noise figure.
        output_noise_dbm: measured output noise power over the band.
    """

    gain_db: float
    noise_figure_db: float
    output_noise_dbm: float


def measure_noise_figure(
    block,
    sample_rate: float = 80e6,
    n_samples: int = 16384,
    n_trials: int = 8,
    tone_power_dbm: float = -60.0,
    rng: Optional[np.random.Generator] = None,
) -> NoiseFigureResult:
    """Measure a block's noise figure against the thermal floor.

    Drives pure ``kT * fs`` thermal noise, measures the output noise power,
    and compares it with the ideally amplified floor:
    ``F = N_out / (G * N_in)``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    freq = _aligned_frequency(1e6, sample_rate, n_samples)
    tone = _tone(tone_power_dbm, freq, sample_rate, n_samples)
    y = block.process(tone, rng)
    gain_db = (
        _bin_power_dbm(y.samples, freq, y.sample_rate) - tone_power_dbm
    )
    n_in = thermal_noise_power(sample_rate)
    out_powers = []
    for _ in range(n_trials):
        noise = Signal(
            white_noise(n_samples, n_in, rng), sample_rate
        )
        out = block.process(noise, rng)
        out_powers.append(np.mean(np.abs(out.samples) ** 2))
    n_out = float(np.mean(out_powers))
    gain_lin = 10.0 ** (gain_db / 10.0)
    factor = n_out / (gain_lin * n_in)
    return NoiseFigureResult(
        gain_db=float(gain_db),
        noise_figure_db=float(10.0 * np.log10(max(factor, 1.0))),
        output_noise_dbm=watts_to_dbm(n_out),
    )


def ac_response(
    block,
    freqs_hz: Sequence[float],
    sample_rate: float = 80e6,
    probe_power_dbm: float = -60.0,
    n_samples: int = 8192,
    settle: int = 2048,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Small-signal complex transfer function at the given frequencies.

    Returns:
        Complex gain array, one entry per frequency in ``freqs_hz``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n_eff = n_samples - settle
    gains = np.empty(len(freqs_hz), dtype=complex)
    amp = np.sqrt(dbm_to_watts(probe_power_dbm))
    for i, f in enumerate(freqs_hz):
        f_snap = _aligned_frequency(f, sample_rate, n_eff)
        tone = _tone(probe_power_dbm, f_snap, sample_rate, n_samples)
        y = block.process(tone, rng)
        skip = int(settle * y.sample_rate / sample_rate)
        x = y.samples[skip:]
        t = np.arange(skip, skip + x.size) / y.sample_rate
        probe = np.exp(-2j * np.pi * f_snap * t)
        gains[i] = np.dot(x, probe) / x.size / amp
    return gains


@dataclass
class CharacterizationResult:
    """The full analysis suite over one block (what a SpectreRF bench
    run delivers): compression, intermodulation, and noise figure.
    """

    compression: CompressionResult
    intermod: IntermodResult
    noise: NoiseFigureResult


#: Analysis fan-out order (also the spawn-tree child assignment).
_ANALYSES = ("compression", "intermod", "noise")


def _characterize_task(payload):
    """Run one characterization analysis (a parallel_map task)."""
    name, block, sample_rate, child = payload
    if callable(block):
        block = block()
    rng = np.random.default_rng(child)
    if name == "compression":
        return swept_power_compression(block, sample_rate=sample_rate, rng=rng)
    if name == "intermod":
        return two_tone_intermod(block, sample_rate=sample_rate, rng=rng)
    return measure_noise_figure(block, sample_rate=sample_rate, rng=rng)


def characterize(
    block,
    sample_rate: float = 80e6,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> CharacterizationResult:
    """Characterize a block with every analysis, optionally in parallel.

    Each analysis draws its random streams from its own child of
    ``seed``'s spawn tree, so the three measurements are independent
    and the fan-out is bit-identical to running them back to back.

    Args:
        block: a behavioral block (``process(Signal, rng) -> Signal``)
            or a zero-argument factory returning one (a factory avoids
            pickling large block state into the workers).
        sample_rate: analysis sample rate.
        seed: base random seed.
        jobs: worker processes; None defers to the ambient ``--jobs``
            default, 1 runs in-process.
    """
    from repro import perf

    children = perf.spawn(seed, len(_ANALYSES))
    results = perf.parallel_map(
        _characterize_task,
        [
            (name, block, sample_rate, child)
            for name, child in zip(_ANALYSES, children)
        ],
        jobs=jobs,
        stage="characterize",
    )
    return CharacterizationResult(*results)
