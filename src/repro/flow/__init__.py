"""Simulation-tool substrate: the three "tools" of the paper.

* :mod:`repro.flow.dataflow` + :mod:`repro.flow.blocks` stand in for SPW:
  a block-diagram dataflow simulator with schematics, probes, interpreted
  and compiled execution modes and a block library.
* :mod:`repro.flow.rfsim` stands in for SpectreRF: swept-power compression,
  two-tone intercept, noise-figure and AC analyses over the RF behavioral
  models.
* :mod:`repro.flow.netlist` + :mod:`repro.flow.cosim` stand in for the AMS
  Designer: a Verilog-AMS-flavoured netlist hand-off and a lock-step
  co-simulation of the netlisted RF part inside the system simulation,
  including the "no noise functions in transient" limitation and its two
  workarounds.
"""

from repro.flow.dataflow import (
    Block,
    CompositeBlock,
    FunctionBlock,
    Schematic,
    DataflowEngine,
    SimulationContext,
    SchematicError,
)
from repro.flow.rfsim import (
    CompressionResult,
    IntermodResult,
    NoiseFigureResult,
    swept_power_compression,
    two_tone_intermod,
    measure_noise_figure,
    ac_response,
)
from repro.flow.netlist import (
    NetlistError,
    frontend_to_netlist,
    netlist_to_config,
    NetlistCompiler,
    CompiledDesign,
)
from repro.flow.cosim import CoSimulation, CoSimConfig, CoSimReport
from repro.flow.blackbox import (
    BlackBoxFrontend,
    BlackBoxCharacterization,
    extract_blackbox,
)
from repro.flow.filterdesign import (
    FilterSpec,
    FilterDesignReport,
    design_channel_filter,
)
from repro.flow.sigcalc import (
    WaveformStats,
    waveform_stats,
    estimate_tone,
    render_waveform,
    render_constellation,
)

__all__ = [
    "Block",
    "CompositeBlock",
    "FunctionBlock",
    "Schematic",
    "DataflowEngine",
    "SimulationContext",
    "SchematicError",
    "CompressionResult",
    "IntermodResult",
    "NoiseFigureResult",
    "swept_power_compression",
    "two_tone_intermod",
    "measure_noise_figure",
    "ac_response",
    "NetlistError",
    "frontend_to_netlist",
    "netlist_to_config",
    "NetlistCompiler",
    "CompiledDesign",
    "CoSimulation",
    "CoSimConfig",
    "CoSimReport",
    "BlackBoxFrontend",
    "BlackBoxCharacterization",
    "extract_blackbox",
    "FilterSpec",
    "FilterDesignReport",
    "design_channel_filter",
    "WaveformStats",
    "waveform_stats",
    "estimate_tone",
    "render_waveform",
    "render_constellation",
]
