"""SPW <-> AMS-Designer co-simulation (section 4.3 of the paper).

The co-simulation couples the vectorized system simulator (the "SPW side":
transmitter, channel, DSP receiver) with a per-timestep interpreted
evaluation of the netlisted RF front end (the "AMS side").  Stepping the
analog solver sample by sample is what makes real co-simulation 30-40x
slower than a pure system simulation (table 2); the Python loop here plays
that role faithfully.

The AMS noise limitation is modeled exactly as reported: by default
(``noise_support=False``) the small-signal noise functions of the RF models
are unavailable in the transient co-simulation, so the front end runs
noiseless and "the measured BER values were better than the results from
the corresponding SPW only simulation".  Both documented workarounds are
implemented:

* ``noise_workaround="system_side"`` — "include an additional noise source
  to the SPW part of the co-simulation": equivalent input-referred cascade
  noise is injected before the RF block;
* ``noise_workaround="random_functions"`` — "insert a noise functionality
  to the analog models by using Verilog-AMS random functions": the models'
  large-signal noise generators are enabled inside the interpreted loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy.signal import cheby1, butter

from repro import obs
from repro.channel.awgn import AwgnChannel
from repro.channel.interference import InterferenceScenario
from repro.dsp.receiver import Receiver, RxConfig
from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu
from repro.flow.netlist import NetlistCompiler, frontend_to_netlist
from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig
from repro.rf.noise import thermal_noise_power, white_noise
from repro.rf.signal import Signal, dbm_to_watts


class CoSimAbort(RuntimeError):
    """Raised when the lock-step analog engine aborts mid-packet.

    A real co-simulation dies this way when the analog solver exhausts
    its step budget or fails to converge; the exception carries how far
    the engine got so the system side can report a clean diagnostic
    instead of hanging or faulting on a partial output vector.

    Attributes:
        steps_completed: analog sub-timesteps evaluated before the abort.
        samples_completed: whole input samples fully processed.
    """

    def __init__(self, steps_completed: int, samples_completed: int):
        self.steps_completed = steps_completed
        self.samples_completed = samples_completed
        super().__init__(
            f"analog engine aborted after {steps_completed} sub-steps "
            f"({samples_completed} input samples fully processed)"
        )


def cascade_noise_figure_db(config: FrontendConfig) -> float:
    """Friis cascade noise figure of the front end's active stages."""
    f1 = 10.0 ** (config.lna_nf_db / 10.0)
    f2 = 10.0 ** (config.mixer1_nf_db / 10.0)
    f3 = 10.0 ** (config.mixer2_nf_db / 10.0)
    g1 = 10.0 ** (config.lna_gain_db / 10.0)
    g2 = 10.0 ** (config.mixer1_gain_db / 10.0)
    total = f1 + (f2 - 1.0) / g1 + (f3 - 1.0) / (g1 * g2)
    return float(10.0 * np.log10(total))


class InterpretedFrontend:
    """Per-timestep (sample-by-sample) evaluation of the RF front end.

    This is the "AMS side" analog solver: every stage of the
    double-conversion receiver is advanced one sample at a time in a plain
    Python loop with explicit IIR/AGC state, mimicking an analog transient
    engine lock-stepped with the system simulator.

    The analog engine integrates at a finer timestep than the system
    sample period (``substeps`` sub-timesteps per input sample, zero-order
    hold on the stimulus), like a transient solver honouring its own
    accuracy-driven step control.  This is the main source of the
    co-simulation slowdown the paper measures in table 2.

    Args:
        config: the front-end parameter set (typically from a compiled
            netlist).
        noise_enabled: whether the models' noise generators run (see module
            docstring).
        agc_time_constant_s: AGC power-detector time constant.
        substeps: analog integration sub-timesteps per input sample.
        max_steps: optional analog sub-timestep budget; when the engine
            would exceed it mid-packet it raises :class:`CoSimAbort`
            (modeling a transient-solver convergence failure) instead of
            running on.
    """

    def __init__(
        self,
        config: FrontendConfig,
        noise_enabled: bool = False,
        agc_time_constant_s: float = 1.0e-6,
        substeps: int = 4,
        max_steps: Optional[int] = None,
    ):
        if substeps < 1:
            raise ValueError("substeps must be >= 1")
        if max_steps is not None and max_steps < 1:
            raise ValueError("max_steps must be >= 1 when given")
        self.config = config
        self.noise_enabled = noise_enabled
        self.substeps = substeps
        self.max_steps = max_steps
        fs = config.sample_rate_in * substeps
        nyq = fs / 2.0
        self._hpf_sos = butter(
            config.hpf_order, config.hpf_cutoff_hz / nyq,
            btype="high", output="sos",
        )
        self._lpf_sos = cheby1(
            config.lpf_order, config.lpf_ripple_db,
            config.lpf_edge_hz / nyq, btype="low", output="sos",
        )
        self._agc_alpha = 1.0 - np.exp(-1.0 / (agc_time_constant_s * fs))
        self.samples_processed = 0

    def run_signal(
        self, signal: Signal, rng: np.random.Generator
    ) -> Signal:
        """Run a :class:`Signal` through the engine with rate checking.

        The lock-step interface hands samples across at the netlisted
        design's input rate; any other rate would silently time-warp the
        analog solve, so a mismatch is a hard error.
        """
        expected = self.config.sample_rate_in
        if abs(signal.sample_rate - expected) > 1e-6 * expected:
            raise ValueError(
                f"co-simulation stimulus is at {signal.sample_rate:g} Hz "
                f"but the netlisted front end expects {expected:g} Hz"
            )
        from repro.dsp.params import SAMPLE_RATE

        return Signal(self.run(signal.samples, rng), SAMPLE_RATE)

    def run(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Process a stimulus vector one sample at a time.

        Returns the decimated 20 MHz baseband output.  A zero-length
        stimulus yields a zero-length output (the engine simply has
        nothing to integrate); a stimulus that blows the ``max_steps``
        budget raises :class:`CoSimAbort`.
        """
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1:
            raise ValueError(
                f"stimulus must be one-dimensional, got shape "
                f"{samples.shape}"
            )
        cfg = self.config
        substeps = self.substeps
        fs = cfg.sample_rate_in * substeps
        n = samples.size
        n_steps = n * substeps
        if n == 0:
            return np.zeros(0, dtype=complex)

        # --- per-stage constants -------------------------------------
        g_lna = 10.0 ** (cfg.lna_gain_db / 20.0)
        p3_lna = dbm_to_watts(
            cfg.lna_p1db_dbm + 9.6357
        )  # cubic-equivalent IIP3
        g_m1 = 10.0 ** (cfg.mixer1_gain_db / 20.0)
        p3_m1 = dbm_to_watts(cfg.mixer1_iip3_dbm)
        g_m2 = 10.0 ** (cfg.mixer2_gain_db / 20.0)
        p3_m2 = dbm_to_watts(cfg.mixer2_iip3_dbm)
        dc = (
            np.sqrt(dbm_to_watts(cfg.dc_offset_dbm))
            if cfg.dc_offset_dbm is not None
            else 0.0
        )
        lo_err = 2.0 * np.pi * 2.6e9 * cfg.lo_error_ppm * 1e-6 / fs
        rot_step = np.exp(-1j * lo_err)

        noise_on = self.noise_enabled
        sigma_lna = sigma_m1 = sigma_m2 = 0.0
        if noise_on:
            kT = thermal_noise_power(fs)
            for attr, nf in (
                ("sigma_lna", cfg.lna_nf_db),
                ("sigma_m1", cfg.mixer1_nf_db),
                ("sigma_m2", cfg.mixer2_nf_db),
            ):
                power = (10.0 ** (nf / 10.0) - 1.0) * kT
                locals_sigma = np.sqrt(power / 2.0)
                if attr == "sigma_lna":
                    sigma_lna = locals_sigma
                elif attr == "sigma_m1":
                    sigma_m1 = locals_sigma
                else:
                    sigma_m2 = locals_sigma
            # Pre-drawn normals: the models' "random functions".
            normals = rng.standard_normal((n_steps, 6))
        flicker = None
        if noise_on and cfg.flicker_power_dbm is not None:
            from repro.rf.noise import flicker_noise

            flicker = flicker_noise(
                n_steps, dbm_to_watts(cfg.flicker_power_dbm),
                cfg.flicker_corner_hz, fs, rng,
            )

        # --- filter and AGC state -------------------------------------
        hpf = [list(sec) for sec in self._hpf_sos]
        lpf = [list(sec) for sec in self._lpf_sos]
        hpf_state = [[0.0 + 0.0j, 0.0 + 0.0j] for _ in hpf]
        lpf_state = [[0.0 + 0.0j, 0.0 + 0.0j] for _ in lpf]
        agc_alpha = self._agc_alpha
        agc_power = dbm_to_watts(cfg.agc_target_dbm)
        agc_target = dbm_to_watts(cfg.agc_target_dbm)
        g_min = 10.0 ** (cfg.agc_min_gain_db / 10.0)
        g_max = 10.0 ** (cfg.agc_max_gain_db / 10.0)

        # --- ADC ------------------------------------------------------
        decim = cfg.decimation
        clip = np.sqrt(dbm_to_watts(cfg.adc_full_scale_dbm))
        levels = 2 ** ((cfg.adc_bits or 1) - 1)
        step = clip / levels
        quantize = cfg.adc_bits is not None

        rot1 = 1.0 + 0.0j
        rot2 = 1.0 + 0.0j
        out = []
        last = substeps - 1
        budget = self.max_steps
        for i in range(n):
            hold = samples[i]  # zero-order hold over the sub-timesteps
            for s in range(substeps):
                k = i * substeps + s
                if budget is not None and k >= budget:
                    self.samples_processed += i
                    raise CoSimAbort(k, i)
                x = hold
                # LNA
                if noise_on:
                    x = x + sigma_lna * (normals[k, 0] + 1j * normals[k, 1])
                p = x.real * x.real + x.imag * x.imag
                pc = p if p < p3_lna / 3.0 else p3_lna / 3.0
                x = g_lna * x * (1.0 - pc / p3_lna)
                # Mixer 1
                if noise_on:
                    x = x + sigma_m1 * (normals[k, 2] + 1j * normals[k, 3])
                x = x * rot1 * g_m1
                rot1 *= rot_step
                p = x.real * x.real + x.imag * x.imag
                pc = p if p < p3_m1 / 3.0 else p3_m1 / 3.0
                x = x * (1.0 - pc / p3_m1)
                # Mixer 2 (quadrature) with DC offset and flicker noise
                if noise_on:
                    x = x + sigma_m2 * (normals[k, 4] + 1j * normals[k, 5])
                x = x * rot2 * g_m2
                rot2 *= rot_step
                p = x.real * x.real + x.imag * x.imag
                pc = p if p < p3_m2 / 3.0 else p3_m2 / 3.0
                x = x * (1.0 - pc / p3_m2) + dc
                if flicker is not None:
                    x = x + flicker[k]
                # Inter-stage high-pass (direct form II transposed)
                for sec, state in zip(hpf, hpf_state):
                    b0, b1, b2, _, a1, a2 = sec
                    y = b0 * x + state[0]
                    state[0] = b1 * x - a1 * y + state[1]
                    state[1] = b2 * x - a2 * y
                    x = y
                # Channel-select low-pass
                for sec, state in zip(lpf, lpf_state):
                    b0, b1, b2, _, a1, a2 = sec
                    y = b0 * x + state[0]
                    state[0] = b1 * x - a1 * y + state[1]
                    state[1] = b2 * x - a2 * y
                    x = y
                # AGC with running power detector
                p = x.real * x.real + x.imag * x.imag
                agc_power += agc_alpha * (p - agc_power)
                gain = agc_target / agc_power if agc_power > 0 else g_max
                if gain < g_min:
                    gain = g_min
                elif gain > g_max:
                    gain = g_max
                x = x * np.sqrt(gain)
                # ADC: sample every decim-th input sample, once settled.
                if s == last and i % decim == 0:
                    if quantize:
                        re = x.real / step
                        im = x.imag / step
                        re = min(max(round(re), -levels), levels - 1) * step
                        im = min(max(round(im), -levels), levels - 1) * step
                        out.append(re + 1j * im)
                    else:
                        out.append(x)
        self.samples_processed += n
        return np.array(out, dtype=complex)


@dataclass
class CoSimConfig:
    """Configuration of a co-simulation campaign.

    Attributes:
        rate_mbps / psdu_bytes: traffic of the wanted transmitter.
        input_level_dbm: wanted-signal level at the antenna.
        adjacent_channel: include the +16 dB adjacent interferer.
        noise_support: whether the AMS-side transient engine supports the
            small-signal noise functions (False reproduces the paper's
            tool limitation).
        noise_workaround: None, "system_side" or "random_functions".
        guard_samples: zero-padding around each packet (20 MHz units,
            scaled by the oversampling factor internally).
        analog_substeps: transient-solver sub-timesteps per system sample
            on the AMS side (accuracy/cost knob; see
            :class:`InterpretedFrontend`).
    """

    rate_mbps: int = 24
    psdu_bytes: int = 100
    input_level_dbm: float = -55.0
    adjacent_channel: bool = False
    noise_support: bool = False
    noise_workaround: Optional[str] = None
    guard_samples: int = 150
    analog_substeps: int = 6

    def __post_init__(self):
        if self.noise_workaround not in (
            None, "system_side", "random_functions",
        ):
            raise ValueError(
                f"unknown noise workaround {self.noise_workaround!r}"
            )


@dataclass
class CoSimReport:
    """Outcome of a (co-)simulation run.

    Attributes:
        mode: "cosim" or "system".
        n_packets: packets simulated.
        ber: measured bit error rate.
        packets_lost: packets that failed to decode at all.
        wall_time_s: wall-clock duration of the run.
        rf_noise_active: whether RF noise was actually simulated.
        warnings: compiler/engine diagnostics (the noise-gap warning).
        time_split: wall-clock decomposition of the run — keys
            ``stimulus_s`` (system-side waveform generation),
            ``rf_s`` (the RF subsystem: the interpreted analog engine in
            co-simulation, the vectorized behavioral model otherwise)
            and ``dsp_s`` (receiver decode + scoring).  The table-2
            "interface overhead" is ``rf_s`` relative to the others.
    """

    mode: str
    n_packets: int
    ber: float
    packets_lost: int
    wall_time_s: float
    rf_noise_active: bool
    warnings: List[str] = field(default_factory=list)
    time_split: dict = field(default_factory=dict)


class CoSimulation:
    """Runs the netlisted RF design inside the system simulation.

    Args:
        frontend_config: the RF design (netlisted internally, compiled
            with the AMS target so the noise diagnostics fire).
        config: co-simulation options.
    """

    def __init__(
        self,
        frontend_config: FrontendConfig = None,
        config: CoSimConfig = CoSimConfig(),
    ):
        self.frontend_config = (
            frontend_config if frontend_config is not None else FrontendConfig()
        )
        self.config = config
        self.netlist_text = frontend_to_netlist(self.frontend_config)
        self.compiled = NetlistCompiler(target="ams").compile(
            self.netlist_text
        )

    # ------------------------------------------------------------------
    def _stimulus(self, rng: np.random.Generator):
        """One packet's antenna-level stimulus plus its reference bits."""
        cfg = self.config
        oversample = self.frontend_config.decimation
        tx = Transmitter(
            TxConfig(rate_mbps=cfg.rate_mbps, oversample=oversample)
        )
        psdu = random_psdu(cfg.psdu_bytes, rng)
        wave = tx.transmit(psdu)
        guard = np.zeros(cfg.guard_samples * oversample, dtype=complex)
        samples = np.concatenate([guard, wave, guard])
        sig = Signal(
            samples,
            self.frontend_config.sample_rate_in,
            self.frontend_config.carrier_frequency,
        ).scaled_to_dbm(cfg.input_level_dbm)
        if cfg.adjacent_channel:
            sig = InterferenceScenario.adjacent().apply(sig, rng)
        sig = AwgnChannel(include_thermal_floor=True).process(sig, rng)
        if (
            not cfg.noise_support
            and cfg.noise_workaround == "system_side"
        ):
            nf_db = cascade_noise_figure_db(self.frontend_config)
            added = (10.0 ** (nf_db / 10.0) - 1.0) * thermal_noise_power(
                sig.sample_rate
            )
            sig = sig.with_samples(
                sig.samples + white_noise(len(sig), added, rng)
            )
        return sig, psdu

    def _score(self, baseband: np.ndarray, psdu: np.ndarray):
        """Decode one packet and return (bit_errors, n_bits, lost)."""
        receiver = Receiver(RxConfig())
        result = receiver.receive(baseband)
        n_bits = psdu.size * 8
        if not result.success or result.psdu.size != psdu.size:
            return n_bits / 2.0, n_bits, 1
        errors = int(
            np.unpackbits(result.psdu ^ psdu, bitorder="little").sum()
        )
        return float(errors), n_bits, 0

    def _run(self, mode: str, n_packets: int, seed: int,
             rf_stage, rf_noise: bool, warnings: List[str]) -> CoSimReport:
        """Shared packet loop: stimulus -> RF stage -> DSP scoring.

        Times the three phases separately so the table-2 comparison can
        attribute the co-simulation slowdown to the interpreted analog
        engine (the "simulator interface" cost) rather than to the
        system-side work, and publishes the split as labelled metrics.
        """
        rng = np.random.default_rng(seed)
        errors = 0.0
        bits = 0
        lost = 0
        t_stimulus = t_rf = t_dsp = 0.0
        with obs.timed(f"cosim:{mode}", n_packets=n_packets) as run_timer:
            for _ in range(n_packets):
                t0 = time.perf_counter()
                sig, psdu = self._stimulus(rng)
                t1 = time.perf_counter()
                baseband = rf_stage(sig, rng)
                t2 = time.perf_counter()
                e, b, l = self._score(baseband, psdu)
                t3 = time.perf_counter()
                t_stimulus += t1 - t0
                t_rf += t2 - t1
                t_dsp += t3 - t2
                errors += e
                bits += b
                lost += l
        elapsed = run_timer.elapsed
        ber = errors / bits if bits else 0.0
        registry = obs.get_registry()
        registry.counter(
            "cosim_packets", "packets simulated per engine mode"
        ).inc(n_packets, mode=mode)
        registry.gauge(
            "cosim_ber", "measured BER per engine mode"
        ).set(ber, mode=mode)
        wall = registry.counter(
            "cosim_wall_seconds",
            "wall-clock split of (co-)simulation runs",
        )
        wall.inc(t_stimulus, mode=mode, phase="stimulus")
        wall.inc(t_rf, mode=mode, phase="rf")
        wall.inc(t_dsp, mode=mode, phase="dsp")
        return CoSimReport(
            mode=mode,
            n_packets=n_packets,
            ber=ber,
            packets_lost=lost,
            wall_time_s=elapsed,
            rf_noise_active=rf_noise,
            warnings=warnings,
            time_split={
                "stimulus_s": t_stimulus,
                "rf_s": t_rf,
                "dsp_s": t_dsp,
            },
        )

    # ------------------------------------------------------------------
    def run_cosim(self, n_packets: int, seed: int = 0) -> CoSimReport:
        """Lock-step co-simulation: interpreted RF, vectorized DSP."""
        cfg = self.config
        rf_noise = bool(
            cfg.noise_support or cfg.noise_workaround == "random_functions"
        )
        engine = InterpretedFrontend(
            self.frontend_config,
            noise_enabled=rf_noise,
            substeps=cfg.analog_substeps,
        )
        warnings = list(self.compiled.warnings) if not cfg.noise_support else []
        return self._run(
            "cosim",
            n_packets,
            seed,
            lambda sig, rng: engine.run_signal(sig, rng).samples,
            rf_noise,
            warnings,
        )

    def run_system_only(self, n_packets: int, seed: int = 0) -> CoSimReport:
        """Pure system-level ("SPW only") simulation, fully vectorized.

        The RF subsystem runs as its native vectorized behavioral model
        with all noise sources active.
        """
        frontend = DoubleConversionReceiver(self.frontend_config)
        return self._run(
            "system",
            n_packets,
            seed,
            lambda sig, rng: frontend.process(sig, rng).samples,
            self.frontend_config.noise_enabled,
            [],
        )

    def compare(self, packet_counts=(1, 2, 4), seed: int = 0,
                store=None, run_name: str = "table2"):
        """Reproduce table 2: wall-clock of system sim vs co-simulation.

        Args:
            packet_counts: packet counts to time at.
            seed: base random seed.
            store: optional :class:`repro.obs.RunStore`; the timing
                table, slowdown/BER KPIs per packet count are persisted
                there (or to the ambient CLI run when one is active).
            run_name: store name for the comparison run.

        Returns:
            List of dictionaries with packets, both wall times and the
            slowdown ratio.
        """
        rows = []
        for n in packet_counts:
            sys_report = self.run_system_only(n, seed=seed)
            cosim_report = self.run_cosim(n, seed=seed)
            rows.append(
                {
                    "packets": n,
                    "system_time_s": sys_report.wall_time_s,
                    "cosim_time_s": cosim_report.wall_time_s,
                    "slowdown": (
                        cosim_report.wall_time_s
                        / max(sys_report.wall_time_s, 1e-12)
                    ),
                    "system_ber": sys_report.ber,
                    "cosim_ber": cosim_report.ber,
                }
            )
        # Lazy import: repro.core pulls in flow.cosim at package-import
        # time, so the reverse import must not run at module top.
        from repro.core.reporting import render_table

        kpis = {}
        for r in rows:
            n = r["packets"]
            kpis[f"slowdown[packets={n}]"] = r["slowdown"]
            kpis[f"system_time_s[packets={n}]"] = r["system_time_s"]
            kpis[f"cosim_time_s[packets={n}]"] = r["cosim_time_s"]
            kpis[f"system_ber[packets={n}]"] = r["system_ber"]
            kpis[f"cosim_ber[packets={n}]"] = r["cosim_ber"]
        table = render_table(
            ["packets", "system [s]", "co-sim [s]", "slowdown",
             "system BER", "co-sim BER"],
            [
                [str(r["packets"]), f"{r['system_time_s']:.3f}",
                 f"{r['cosim_time_s']:.3f}", f"{r['slowdown']:.1f}x",
                 f"{r['system_ber']:.4g}", f"{r['cosim_ber']:.4g}"]
                for r in rows
            ],
        )
        obs.contribute(
            store,
            kind="cosim",
            name=run_name,
            seed=seed,
            config={"cosim": self.config,
                    "frontend": self.frontend_config,
                    "packet_counts": [int(n) for n in packet_counts]},
            tables={run_name: table},
            kpis=kpis,
        )
        return rows
