"""Analog filter models for the RF front-end.

The paper's receiver uses high-pass filtering between the mixer stages
(removing DC offsets and flicker noise) and Chebyshev low-pass channel
selection in the baseband section; figure 5 sweeps the Chebyshev passband
edge.  Filters are designed with scipy at the working sample rate and
applied causally (second-order sections), like the analog originals.

The module also reproduces the Spectre rflib limitation noted in section
4.2: "no bandpass filter model is available which allows a bandwidth
greater than 0.5 of the center frequency.  A high- and a low pass filter
was used instead" — :func:`chebyshev_bandpass` raises
:class:`BandwidthLimitError` for such requests, and
:func:`wideband_bandpass` builds the documented HP+LP composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import signal as sps

from repro.rf.signal import Signal


class BandwidthLimitError(ValueError):
    """Raised when a bandpass request exceeds the library's validity range."""


@dataclass
class AnalogFilter:
    """A causal IIR filter applied to complex envelopes.

    Attributes:
        sos: second-order sections (scipy format).
        description: human-readable summary for netlists and reports.
    """

    sos: np.ndarray
    description: str = "filter"

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Filter the signal (zero initial state).  ``rng`` is unused."""
        y = sps.sosfilt(self.sos, signal.samples)
        return signal.with_samples(y)

    def frequency_response(
        self, sample_rate: float, n_points: int = 1024
    ) -> tuple:
        """Two-sided complex frequency response.

        Returns:
            ``(freqs_hz, response)`` with frequencies spanning
            ``[-fs/2, fs/2)``.
        """
        w = np.fft.fftshift(np.fft.fftfreq(n_points)) * 2 * np.pi
        _, h = sps.sosfreqz(self.sos, worN=w)
        freqs = w / (2 * np.pi) * sample_rate
        return freqs, h

    def group_delay_samples(self, at_frequency_hz: float, sample_rate: float) -> float:
        """Approximate group delay at a given frequency, in samples."""
        b, a = sps.sos2tf(self.sos)
        w = [2 * np.pi * at_frequency_hz / sample_rate]
        _, gd = sps.group_delay((b, a), w=w)
        return float(gd[0])


def chebyshev_lowpass(
    passband_edge_hz: float,
    sample_rate: float,
    order: int = 5,
    ripple_db: float = 0.5,
) -> AnalogFilter:
    """Chebyshev type-I low-pass (the channel-selection filter of fig. 2).

    The filter acts on the complex envelope, i.e. it is applied to both
    I and Q; the equivalent RF bandwidth is ``2 * passband_edge_hz``.

    Args:
        passband_edge_hz: passband edge frequency (the fig. 5 sweep
            parameter, expressed in the paper as a ratio of 1e8 Hz).
        sample_rate: envelope sample rate.
        order: filter order.
        ripple_db: passband ripple.
    """
    nyquist = sample_rate / 2.0
    if not 0 < passband_edge_hz < nyquist:
        raise ValueError(
            f"passband edge {passband_edge_hz:g} Hz outside (0, {nyquist:g})"
        )
    sos = sps.cheby1(
        order, ripple_db, passband_edge_hz / nyquist, btype="low", output="sos"
    )
    return AnalogFilter(
        sos=sos,
        description=(
            f"cheby1 lowpass order={order} ripple={ripple_db}dB "
            f"edge={passband_edge_hz:g}Hz"
        ),
    )


def butterworth_highpass(
    cutoff_hz: float, sample_rate: float, order: int = 2
) -> AnalogFilter:
    """Butterworth high-pass (the inter-stage DC/flicker blocking filter)."""
    nyquist = sample_rate / 2.0
    if not 0 < cutoff_hz < nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz:g} Hz outside (0, {nyquist:g})"
        )
    sos = sps.butter(order, cutoff_hz / nyquist, btype="high", output="sos")
    return AnalogFilter(
        sos=sos,
        description=f"butter highpass order={order} cutoff={cutoff_hz:g}Hz",
    )


def chebyshev_bandpass(
    center_hz: float,
    bandwidth_hz: float,
    sample_rate: float,
    order: int = 4,
    ripple_db: float = 0.5,
    max_relative_bandwidth: float = 0.5,
) -> AnalogFilter:
    """Chebyshev band-pass with the Spectre rflib validity restriction.

    Raises:
        BandwidthLimitError: when ``bandwidth_hz > max_relative_bandwidth *
            center_hz`` (the library limitation reported in section 4.2).
    """
    if bandwidth_hz > max_relative_bandwidth * center_hz:
        raise BandwidthLimitError(
            f"bandpass bandwidth {bandwidth_hz:g} Hz exceeds "
            f"{max_relative_bandwidth} of the center frequency "
            f"{center_hz:g} Hz; compose a high-pass and a low-pass instead "
            f"(see wideband_bandpass)"
        )
    nyquist = sample_rate / 2.0
    lo = (center_hz - bandwidth_hz / 2.0) / nyquist
    hi = (center_hz + bandwidth_hz / 2.0) / nyquist
    if not 0 < lo < hi < 1:
        raise ValueError("bandpass corners outside the representable band")
    sos = sps.cheby1(order, ripple_db, [lo, hi], btype="band", output="sos")
    return AnalogFilter(
        sos=sos,
        description=(
            f"cheby1 bandpass order={order} center={center_hz:g}Hz "
            f"bw={bandwidth_hz:g}Hz"
        ),
    )


def wideband_bandpass(
    low_edge_hz: float,
    high_edge_hz: float,
    sample_rate: float,
    order: int = 3,
    ripple_db: float = 0.5,
) -> AnalogFilter:
    """The paper's workaround: cascade of high-pass and low-pass sections.

    Used when a band-pass wider than half its center frequency is needed
    (impossible with the restricted band-pass model).
    """
    if not 0 < low_edge_hz < high_edge_hz:
        raise ValueError("edges must satisfy 0 < low < high")
    hp = butterworth_highpass(low_edge_hz, sample_rate, order=order)
    lp = chebyshev_lowpass(
        high_edge_hz, sample_rate, order=order, ripple_db=ripple_db
    )
    sos = np.vstack([hp.sos, lp.sos])
    return AnalogFilter(
        sos=sos,
        description=(
            f"HP+LP composite bandpass [{low_edge_hz:g}, {high_edge_hz:g}]Hz"
        ),
    )
