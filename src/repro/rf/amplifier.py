"""Amplifier models: LNA and AGC amplifier (figure 2 blocks).

Each amplifier applies a memoryless nonlinearity (gain + compression) and
optionally injects input-referred thermal noise according to its noise
figure.  The noise injection honours a global enable so that the
co-simulation noise-function limitation of the paper (section 4.3) can be
reproduced faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.rf.noise import noise_figure_to_added_power, white_noise
from repro.rf.nonlinearity import CubicNonlinearity, RappNonlinearity
from repro.rf.signal import Signal, db_to_amplitude, dbm_to_watts, watts_to_dbm

NonlinearModel = Union[CubicNonlinearity, RappNonlinearity]


@dataclass
class Amplifier:
    """Behavioral RF amplifier (LNA or gain stage).

    Attributes:
        gain_db: small-signal power gain.
        noise_figure_db: noise figure; 0 disables noise injection.
        nonlinearity: optional compression model; when None the amplifier
            is perfectly linear.
        noise_enabled: per-instance noise switch (see module docstring).
    """

    gain_db: float
    noise_figure_db: float = 0.0
    nonlinearity: Optional[NonlinearModel] = None
    noise_enabled: bool = True

    @classmethod
    def spw_style(
        cls, gain_db: float, noise_figure_db: float, p1db_dbm: float
    ) -> "Amplifier":
        """SPW rflib-style amplifier parameterized by P1dB."""
        return cls(
            gain_db=gain_db,
            noise_figure_db=noise_figure_db,
            nonlinearity=CubicNonlinearity.from_p1db(gain_db, p1db_dbm),
        )

    @classmethod
    def spectre_style(
        cls,
        gain_db: float,
        noise_figure_db: float,
        iip3_dbm: float,
        am_pm_deg: float = 0.0,
        smoothness: float = 2.0,
    ) -> "Amplifier":
        """Spectre rflib-style amplifier parameterized by IIP3 with AM/PM.

        The saturated output power is set so the Rapp model's numerically
        determined P1dB matches the cubic-model equivalent of the given
        IIP3 to within a fraction of a dB.
        """
        # For Rapp with p=2 the input P1dB sits ~ 0.79 dB below the
        # input-referred saturation; align saturation so the small-signal
        # equivalent P1dB matches p1db_from_iip3(iip3).
        from repro.rf.nonlinearity import p1db_from_iip3

        p1db = p1db_from_iip3(iip3_dbm)
        target = 10.0 ** (1.0 / 20.0)
        r = (target ** (2 * smoothness) - 1.0) ** (1.0 / (2 * smoothness))
        osat_dbm = p1db + gain_db - 20.0 * np.log10(r)
        model = RappNonlinearity(
            gain_db=gain_db,
            osat_dbm=osat_dbm,
            smoothness=smoothness,
            am_pm_deg=am_pm_deg,
        )
        return cls(
            gain_db=gain_db,
            noise_figure_db=noise_figure_db,
            nonlinearity=model,
        )

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Amplify a signal: add input-referred noise, then compress.

        Args:
            signal: input signal.
            rng: random generator; required when noise is enabled and the
                noise figure is non-zero.
        """
        x = signal.samples
        if self.noise_enabled and self.noise_figure_db > 0.0:
            if rng is None:
                raise ValueError("rng required for noisy amplifier")
            added = noise_figure_to_added_power(
                self.noise_figure_db, signal.sample_rate
            )
            x = x + white_noise(x.size, added, rng)
        if self.nonlinearity is not None:
            y = self.nonlinearity.apply(x)
        else:
            y = x * db_to_amplitude(self.gain_db)
        return signal.with_samples(y)


@dataclass
class AgcAmplifier:
    """Automatic gain controlled baseband amplifier.

    Measures the average input power over a leading measurement window and
    applies the gain that brings it to ``target_dbm``, clamped to the
    ``[min_gain_db, max_gain_db]`` range and optionally quantized to
    ``step_db`` steps (real AGCs use discrete gain settings).

    Attributes:
        target_dbm: desired output power.
        min_gain_db / max_gain_db: achievable gain range.
        step_db: gain quantization step; 0 for continuous gain.
        noise_figure_db: noise figure of the amplifier.
        noise_enabled: noise switch.
    """

    target_dbm: float = -10.0
    min_gain_db: float = -10.0
    max_gain_db: float = 60.0
    step_db: float = 0.0
    noise_figure_db: float = 0.0
    noise_enabled: bool = True
    last_gain_db: float = field(default=0.0, init=False, repr=False)

    def required_gain_db(self, signal: Signal) -> float:
        """Gain the AGC would select for ``signal``."""
        power = signal.power_dbm()
        if not np.isfinite(power):
            return self.max_gain_db
        gain = self.target_dbm - power
        gain = float(np.clip(gain, self.min_gain_db, self.max_gain_db))
        if self.step_db > 0:
            gain = round(gain / self.step_db) * self.step_db
        return gain

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Apply AGC gain (and optional noise) to the signal."""
        gain = self.required_gain_db(signal)
        self.last_gain_db = gain
        x = signal.samples
        if self.noise_enabled and self.noise_figure_db > 0.0:
            if rng is None:
                raise ValueError("rng required for noisy AGC amplifier")
            added = noise_figure_to_added_power(
                self.noise_figure_db, signal.sample_rate
            )
            x = x + white_noise(x.size, added, rng)
        return signal.with_samples(x * db_to_amplitude(gain))
