"""Closed-form cascade budgets: Friis noise figure, IIP3 and P1dB.

The paper verifies the behavioral RF models against the numbers an RF
designer would compute on paper — a cascade (spreadsheet) budget of the
receiver line-up.  This module provides those textbook formulas over a
declarative stage list, plus :class:`BlockCascade`, a behavioral chain
that runs the *same* stages through their executable models so
:func:`repro.flow.rfsim.characterize` can be checked against theory.

Formulas (all standard):

* Friis:   ``F = F1 + (F2-1)/G1 + (F3-1)/(G1*G2) + ...``
* IIP3:    ``1/P_casc = sum_k  G_before_k / P_k``  (linear watts)
* P1dB:    cascade IIP3 minus the cubic-model offset of ~9.64 dB
  (exact for a memoryless cubic chain dominated by one compressor,
  a good approximation otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rf.nonlinearity import P1DB_IIP3_OFFSET_DB, iip3_from_p1db
from repro.rf.signal import Signal


@dataclass(frozen=True)
class StageSpec:
    """Paper parameters of one cascade stage.

    Attributes:
        name: stage label (for reports).
        gain_db: small-signal power gain.
        nf_db: noise figure; 0 for a noiseless stage.
        iip3_dbm: input-referred third-order intercept; ``inf`` for a
            linear stage.
    """

    name: str
    gain_db: float
    nf_db: float = 0.0
    iip3_dbm: float = np.inf


def cascade_gain_db(stages: Sequence[StageSpec]) -> float:
    """Total small-signal gain of the cascade."""
    return float(sum(s.gain_db for s in stages))


def friis_noise_figure_db(stages: Sequence[StageSpec]) -> float:
    """Cascade noise figure by the Friis formula."""
    total_f = 1.0
    gain_before = 1.0
    for s in stages:
        f = 10.0 ** (s.nf_db / 10.0)
        total_f += (f - 1.0) / gain_before
        gain_before *= 10.0 ** (s.gain_db / 10.0)
    return float(10.0 * np.log10(total_f))


def cascade_iip3_dbm(stages: Sequence[StageSpec]) -> float:
    """Input-referred cascade IIP3.

    Each stage's intercept is referred back to the cascade input by the
    gain accumulated in front of it; the reciprocal linear powers add.
    """
    inv_sum = 0.0
    gain_before = 1.0
    for s in stages:
        if np.isfinite(s.iip3_dbm):
            p_k = 10.0 ** (s.iip3_dbm / 10.0)  # mW
            inv_sum += gain_before / p_k
        gain_before *= 10.0 ** (s.gain_db / 10.0)
    if inv_sum <= 0.0:
        return float(np.inf)
    return float(10.0 * np.log10(1.0 / inv_sum))


def cascade_input_p1db_dbm(stages: Sequence[StageSpec]) -> float:
    """Input-referred cascade 1-dB compression point.

    Uses the cubic-nonlinearity relation ``P1dB = IIP3 - 9.64 dB``
    applied to the cascade intercept — exact when every nonlinear stage
    is the memoryless cubic model used by the SPW-style library.
    """
    return cascade_iip3_dbm(stages) - P1DB_IIP3_OFFSET_DB


class _ApplyAdapter:
    """Wrap an object exposing ``apply(samples)`` as a behavioral block."""

    def __init__(self, inner):
        self._inner = inner

    def process(self, signal: Signal, rng=None) -> Signal:
        return signal.with_samples(self._inner.apply(signal.samples))


class BlockCascade:
    """A behavioral block chaining other blocks' ``process`` methods.

    Accepts blocks with ``process(Signal, rng) -> Signal`` (amplifiers,
    mixers), ``process(Signal) -> Signal`` (filters), or bare
    ``apply(samples)`` nonlinearities, so a receiver's individual stages
    can be re-assembled into one measurable device under test.
    """

    def __init__(self, blocks: Sequence[object]):
        self.blocks = [
            b if hasattr(b, "process") else _ApplyAdapter(b) for b in blocks
        ]

    @staticmethod
    def _takes_rng(block) -> bool:
        import inspect

        try:
            params = inspect.signature(block.process).parameters
        except (TypeError, ValueError):
            return True
        return "rng" in params

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        s = signal
        for block in self.blocks:
            if self._takes_rng(block):
                s = block.process(s, rng)
            else:
                s = block.process(s)
        return s


def active_stage_cascade(
    receiver,
) -> Tuple[BlockCascade, List[StageSpec]]:
    """The active gain stages of a double-conversion receiver.

    Returns both the executable cascade (LNA, mixer 1 + its
    nonlinearity, quadrature mixer 2 + its nonlinearity) and the
    matching paper :class:`StageSpec` budget derived from the
    receiver's configuration — the pair the conformance oracles
    compare.  Filters, AGC and ADC are excluded: they do not belong in
    a line-up budget (unity in-band gain, negligible noise) and the AGC
    would mask compression.
    """
    cfg = receiver.config
    cascade = BlockCascade(
        [
            receiver.lna,
            receiver.mixer1,
            receiver._mixer1_nl,
            receiver.mixer2,
            receiver._mixer2_nl,
        ]
    )
    specs = [
        StageSpec(
            "lna",
            cfg.lna_gain_db,
            cfg.lna_nf_db,
            iip3_from_p1db(cfg.lna_p1db_dbm),
        ),
        StageSpec("mixer1", cfg.mixer1_gain_db, cfg.mixer1_nf_db),
        # The mixer nonlinearities sit *after* the conversion gain
        # (zero-gain cubic blocks), so they appear as their own stages.
        StageSpec("mixer1_nl", 0.0, iip3_dbm=cfg.mixer1_iip3_dbm),
        StageSpec("mixer2", cfg.mixer2_gain_db, cfg.mixer2_nf_db),
        StageSpec("mixer2_nl", 0.0, iip3_dbm=cfg.mixer2_iip3_dbm),
    ]
    return cascade, specs
