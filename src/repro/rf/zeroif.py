"""Direct-conversion (zero-IF) receiver — the architecture the paper's
double-conversion design avoids.

Section 2.2 motivates the double conversion: converting 5.2 GHz straight
to baseband with a single quadrature mixer puts the LO at the RF
frequency, so LO leakage self-mixes into a *large* in-band DC offset, and
the mixer's flicker noise lands directly on the signal.  The only remedy —
a baseband DC-blocking high-pass — now trades DC rejection against
notching out the OFDM subcarriers nearest to DC (the first data carriers
sit only 312.5 kHz away).

:class:`ZeroIfReceiver` implements that architecture with the same
building blocks and interface as
:class:`repro.rf.frontend.DoubleConversionReceiver`, so the two can be
compared head-to-head in the system test bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.dsp.params import CARRIER_FREQUENCY, SAMPLE_RATE
from repro.rf.adc import Adc
from repro.rf.amplifier import AgcAmplifier, Amplifier
from repro.rf.filters import butterworth_highpass, chebyshev_lowpass
from repro.rf.mixer import QuadratureMixer
from repro.rf.oscillator import LocalOscillator
from repro.rf.signal import Signal


@dataclass
class ZeroIfConfig:
    """Zero-IF receiver parameters.

    The defaults deliberately carry the architecture's burdens: a strong
    self-mixing DC offset (the LO sits at the RF carrier and leaks through
    the LNA) and elevated flicker noise at baseband.

    Attributes:
        sample_rate_in / carrier_frequency: as in the double-conversion
            front end.
        lna_*: low-noise amplifier.
        mixer_*: the single quadrature down-conversion stage.
        dc_offset_dbm: self-mixing DC product at the mixer output —
            typically 20-30 dB larger than in the double-conversion design.
        flicker_power_dbm / flicker_corner_hz: baseband 1/f noise.
        dc_block_cutoff_hz: baseband high-pass cutoff; 0 disables the
            DC block entirely.  The architectural dilemma: a cutoff big
            enough to remove the offset starts eroding subcarrier +/-1 at
            312.5 kHz.
        lpf_*: channel-selection low-pass.
        agc_* / adc_*: as in the double-conversion design.
    """

    sample_rate_in: float = 4 * SAMPLE_RATE
    carrier_frequency: float = CARRIER_FREQUENCY

    lna_gain_db: float = 16.0
    lna_nf_db: float = 3.0
    lna_p1db_dbm: float = -12.0

    mixer_gain_db: float = 10.0
    mixer_nf_db: float = 12.0
    mixer_iip3_dbm: float = 16.0
    dc_offset_dbm: Optional[float] = -25.0
    flicker_power_dbm: Optional[float] = -65.0
    flicker_corner_hz: float = 1e6
    iq_amplitude_db: float = 0.2
    iq_phase_deg: float = 1.0

    lo_error_ppm: float = 0.0
    lo_phase_noise_dbc_hz: Optional[float] = None

    dc_block_cutoff_hz: float = 200e3
    dc_block_order: int = 1

    lpf_edge_hz: float = 8.6e6
    lpf_order: int = 7
    lpf_ripple_db: float = 0.5

    agc_target_dbm: float = -12.0
    agc_min_gain_db: float = -20.0
    agc_max_gain_db: float = 70.0

    adc_bits: Optional[int] = 10
    adc_full_scale_dbm: float = 0.0

    noise_enabled: bool = True

    def __post_init__(self):
        ratio = self.sample_rate_in / SAMPLE_RATE
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ValueError(
                "sample_rate_in must be an integer multiple of 20 MHz"
            )

    @property
    def decimation(self) -> int:
        """ADC decimation down to the 20 MHz DSP rate."""
        return int(round(self.sample_rate_in / SAMPLE_RATE))


class ZeroIfReceiver:
    """Executable model of a direct-conversion receiver front end."""

    def __init__(self, config: ZeroIfConfig = ZeroIfConfig()):
        self.config = config
        self._build()

    def _build(self):
        cfg = self.config
        self.lna = Amplifier.spw_style(
            cfg.lna_gain_db, cfg.lna_nf_db, cfg.lna_p1db_dbm
        )
        self.lna.noise_enabled = cfg.noise_enabled
        self.lo = LocalOscillator(
            frequency_hz=cfg.carrier_frequency,
            frequency_error_ppm=cfg.lo_error_ppm,
            phase_noise_dbc_hz=cfg.lo_phase_noise_dbc_hz,
        )
        self.mixer = QuadratureMixer(
            lo=self.lo,
            conversion_gain_db=cfg.mixer_gain_db,
            noise_figure_db=cfg.mixer_nf_db,
            dc_offset_dbm=cfg.dc_offset_dbm,
            flicker_power_dbm=cfg.flicker_power_dbm,
            flicker_corner_hz=cfg.flicker_corner_hz,
            amplitude_imbalance_db=cfg.iq_amplitude_db,
            phase_imbalance_deg=cfg.iq_phase_deg,
            noise_enabled=cfg.noise_enabled,
        )
        from repro.rf.nonlinearity import CubicNonlinearity

        self._mixer_nl = CubicNonlinearity(
            gain_db=0.0, iip3_dbm=cfg.mixer_iip3_dbm
        )
        self.dc_block = (
            butterworth_highpass(
                cfg.dc_block_cutoff_hz,
                cfg.sample_rate_in,
                order=cfg.dc_block_order,
            )
            if cfg.dc_block_cutoff_hz > 0
            else None
        )
        self.lpf = chebyshev_lowpass(
            cfg.lpf_edge_hz,
            cfg.sample_rate_in,
            order=cfg.lpf_order,
            ripple_db=cfg.lpf_ripple_db,
        )
        self.agc = AgcAmplifier(
            target_dbm=cfg.agc_target_dbm,
            min_gain_db=cfg.agc_min_gain_db,
            max_gain_db=cfg.agc_max_gain_db,
        )
        self.adc = Adc(
            n_bits=cfg.adc_bits,
            full_scale_dbm=cfg.adc_full_scale_dbm,
            decimation=cfg.decimation,
        )

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Run a received RF signal through the zero-IF chain."""
        return self.stage_outputs(signal, rng)[-1][1]

    def stage_outputs(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> List[Tuple[str, Signal]]:
        """Per-stage signal trace (mirrors the double-conversion API)."""
        cfg = self.config
        if signal.sample_rate != cfg.sample_rate_in:
            raise ValueError(
                f"expected input at {cfg.sample_rate_in:g} Hz"
            )
        stages: List[Tuple[str, Signal]] = [("input", signal)]
        s = self.lna.process(signal, rng)
        stages.append(("lna", s))
        s = self.mixer.process(s, rng)
        s = s.with_samples(self._mixer_nl.apply(s.samples))
        stages.append(("mixer", s))
        if self.dc_block is not None:
            s = self.dc_block.process(s)
        stages.append(("dc_block", s))
        s = self.lpf.process(s)
        stages.append(("lpf", s))
        s = self.agc.process(s, rng)
        stages.append(("agc", s))
        s = self.adc.process(s)
        stages.append(("adc", s))
        return stages
