"""Transmit power amplifier model (extension of the paper's RX study).

The paper focuses on the receive chain, but the same behavioral machinery
applies to the transmitter: an OFDM signal with ~10 dB PAPR through a
compressive PA produces spectral regrowth that eats the 802.11a transmit
mask margin.  :class:`PowerAmplifier` wraps a Rapp nonlinearity with an
output-backoff operating convention, the standard knob of PA studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rf.nonlinearity import RappNonlinearity
from repro.rf.signal import Signal, dbm_to_watts, watts_to_dbm


@dataclass
class PowerAmplifier:
    """Rapp-model transmit PA operated at a given output backoff.

    Attributes:
        psat_dbm: saturated output power.
        gain_db: small-signal gain.
        smoothness: Rapp smoothness parameter.
        am_pm_deg: maximum AM/PM deviation.
    """

    psat_dbm: float = 24.0
    gain_db: float = 25.0
    smoothness: float = 2.0
    am_pm_deg: float = 3.0

    def __post_init__(self):
        self._model = RappNonlinearity(
            gain_db=self.gain_db,
            osat_dbm=self.psat_dbm,
            smoothness=self.smoothness,
            am_pm_deg=self.am_pm_deg,
        )

    def drive_level_dbm(self, output_backoff_db: float) -> float:
        """Input power that puts the average output at Psat - OBO."""
        if output_backoff_db < 0:
            raise ValueError("output backoff must be >= 0 dB")
        return self.psat_dbm - output_backoff_db - self.gain_db

    def process(
        self,
        signal: Signal,
        rng: Optional[np.random.Generator] = None,
        output_backoff_db: Optional[float] = None,
    ) -> Signal:
        """Amplify; optionally re-level the input to a target backoff.

        Args:
            signal: input envelope.
            rng: unused (the PA model is noiseless).
            output_backoff_db: when given, the input is first scaled so
                the *average* output power sits this far below Psat.
        """
        work = signal
        if output_backoff_db is not None:
            work = signal.scaled_to_dbm(
                self.drive_level_dbm(output_backoff_db)
            )
        return work.with_samples(self._model.apply(work.samples))

    def output_power_dbm(self, signal: Signal) -> float:
        """Average output power for ``signal`` without re-leveling."""
        return self.process(signal).power_dbm()
