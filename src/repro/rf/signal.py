"""Carrier-referenced complex-baseband signal container.

All RF models operate on :class:`Signal`: a complex envelope around a
carrier reference frequency.  The power convention is the usual system
simulation one: the instantaneous envelope power in watts is ``|x|**2``
(samples carry units of sqrt-watt), so ``0 dBm`` corresponds to an average
``|x|**2`` of 1 mW.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (dbm / 10.0) * 1e-3


def watts_to_dbm(watts: float) -> float:
    """Convert a power in watts to dBm (-inf for zero power)."""
    if watts <= 0.0:
        return -np.inf
    return 10.0 * np.log10(watts / 1e-3)


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def db_to_amplitude(db: float) -> float:
    """Convert a power ratio in dB to a linear amplitude ratio."""
    return 10.0 ** (db / 20.0)


@dataclass
class Signal:
    """A complex-envelope signal at a carrier reference frequency.

    Attributes:
        samples: complex envelope samples in sqrt-watt units.
        sample_rate: envelope sample rate [Hz] (= simulation bandwidth).
        carrier_frequency: the carrier the envelope is referenced to [Hz];
            0 for true baseband.
    """

    samples: np.ndarray
    sample_rate: float
    carrier_frequency: float = 0.0

    def __post_init__(self):
        self.samples = np.asarray(self.samples, dtype=complex)
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")

    def __len__(self) -> int:
        return self.samples.size

    @property
    def duration(self) -> float:
        """Signal duration in seconds."""
        return self.samples.size / self.sample_rate

    @property
    def time(self) -> np.ndarray:
        """Sample time axis in seconds."""
        return np.arange(self.samples.size) / self.sample_rate

    def power_watts(self) -> float:
        """Average envelope power in watts."""
        if self.samples.size == 0:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    def power_dbm(self) -> float:
        """Average envelope power in dBm."""
        return watts_to_dbm(self.power_watts())

    def peak_power_dbm(self) -> float:
        """Peak envelope power in dBm."""
        if self.samples.size == 0:
            return -np.inf
        return watts_to_dbm(float(np.max(np.abs(self.samples) ** 2)))

    def papr_db(self) -> float:
        """Peak-to-average power ratio in dB."""
        return self.peak_power_dbm() - self.power_dbm()

    def with_samples(self, samples: np.ndarray) -> "Signal":
        """Copy of this signal with replaced samples (same rates)."""
        return replace(self, samples=np.asarray(samples, dtype=complex))

    def scaled_to_dbm(self, target_dbm: float) -> "Signal":
        """Copy rescaled so the average power equals ``target_dbm``.

        This is the paper's "constant multiplier" level adaptation between
        the DSP test bench and the RF subsystem (section 4.1).
        """
        current = self.power_watts()
        if current <= 0.0:
            raise ValueError("cannot scale an all-zero signal")
        gain = np.sqrt(dbm_to_watts(target_dbm) / current)
        return self.with_samples(self.samples * gain)

    def shifted(self, offset_hz: float) -> "Signal":
        """Frequency-shift the envelope contents by ``offset_hz``.

        The carrier reference is unchanged; the envelope spectrum moves.
        Used to place an adjacent channel 20 MHz from the wanted one.
        """
        rotator = np.exp(2j * np.pi * offset_hz * self.time)
        return self.with_samples(self.samples * rotator)

    def delayed(self, n_samples: int) -> "Signal":
        """Copy with ``n_samples`` zeros prepended."""
        if n_samples < 0:
            raise ValueError("delay must be non-negative")
        pad = np.zeros(n_samples, dtype=complex)
        return self.with_samples(np.concatenate([pad, self.samples]))

    def __add__(self, other: "Signal") -> "Signal":
        """Sum of two signals sharing rates; shorter one is zero-padded."""
        if not isinstance(other, Signal):
            return NotImplemented
        if other.sample_rate != self.sample_rate:
            raise ValueError("sample rates differ")
        if other.carrier_frequency != self.carrier_frequency:
            raise ValueError("carrier references differ")
        n = max(self.samples.size, other.samples.size)
        a = np.zeros(n, dtype=complex)
        a[: self.samples.size] = self.samples
        a[: other.samples.size] += other.samples
        return self.with_samples(a)
