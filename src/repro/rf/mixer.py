"""Mixer models for the double-conversion receiver (figure 2).

Down-conversion in the complex-envelope domain is bookkeeping on the
carrier reference plus the mixer's impairments:

* conversion gain and noise figure,
* self-mixing DC offset (dominant at the second stage, where the LO and
  the input share the same frequency — the paper's "dc-problems caused by
  the self mixing products"),
* LO phase noise and frequency error (taken from the attached
  :class:`repro.rf.oscillator.LocalOscillator`),
* finite image rejection, modeled as a conjugate-leakage term, and
* I/Q amplitude/phase imbalance for the quadrature (second) mixer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rf.noise import (
    NoiseSource,
    noise_figure_to_added_power,
    white_noise,
)
from repro.rf.oscillator import LocalOscillator
from repro.rf.signal import Signal, db_to_amplitude, dbm_to_watts


@dataclass
class Mixer:
    """Single down-conversion mixer.

    Attributes:
        lo: the local oscillator driving the mixer.
        conversion_gain_db: power conversion gain (often negative).
        noise_figure_db: single-sideband noise figure.
        dc_offset_dbm: power of the self-mixing DC product referred to the
            mixer output; -inf (or None) disables it.
        image_rejection_db: image-rejection ratio; conjugate leakage at
            ``-IRR`` dB is added. ``inf`` means a perfect mixer.
        flicker_corner_hz: 1/f corner of the output flicker noise; only
            active when ``flicker_power_dbm`` is set.
        flicker_power_dbm: total output-referred flicker noise power.
        noise_enabled: noise switch (white and flicker).
    """

    lo: LocalOscillator
    conversion_gain_db: float = 0.0
    noise_figure_db: float = 0.0
    dc_offset_dbm: Optional[float] = None
    image_rejection_db: float = np.inf
    flicker_corner_hz: float = 1e6
    flicker_power_dbm: Optional[float] = None
    noise_enabled: bool = True

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Down-convert ``signal`` by the LO frequency.

        Returns a signal whose carrier reference is lowered by the LO's
        nominal frequency; the LO's frequency error and phase noise appear
        as a residual rotation of the envelope.
        """
        x = signal.samples
        needs_rng = self.noise_enabled and (
            self.noise_figure_db > 0.0
            or self.flicker_power_dbm is not None
            or self.lo.phase_noise_dbc_hz is not None
        )
        if needs_rng and rng is None:
            raise ValueError("rng required for noisy mixer")

        if self.noise_enabled and self.noise_figure_db > 0.0:
            added = noise_figure_to_added_power(
                self.noise_figure_db, signal.sample_rate
            )
            x = x + white_noise(x.size, added, rng)

        # LO waveform: frequency error + phase noise as a unit rotator.
        rotator = self.lo.envelope_rotation(
            x.size,
            signal.sample_rate,
            rng if self.noise_enabled else None,
        )
        y = x * rotator * db_to_amplitude(self.conversion_gain_db)

        if np.isfinite(self.image_rejection_db):
            leak = db_to_amplitude(-self.image_rejection_db)
            y = y + leak * np.conj(y)

        if self.dc_offset_dbm is not None and np.isfinite(self.dc_offset_dbm):
            y = y + np.sqrt(dbm_to_watts(self.dc_offset_dbm))

        if self.noise_enabled and self.flicker_power_dbm is not None:
            source = NoiseSource(
                white_power_watts=0.0,
                flicker_power_watts=dbm_to_watts(self.flicker_power_dbm),
                flicker_corner_hz=self.flicker_corner_hz,
            )
            y = y + source.generate(y.size, signal.sample_rate, rng)

        return Signal(
            samples=y,
            sample_rate=signal.sample_rate,
            carrier_frequency=signal.carrier_frequency
            - self.lo.frequency_hz,
        )


@dataclass
class QuadratureMixer(Mixer):
    """Quadrature down-conversion mixer (the "0/90" block of figure 2).

    Adds I/Q amplitude and phase imbalance on top of :class:`Mixer`.  The
    imbalance acts as ``y = mu*x + nu*conj(x)`` with the standard relations
    for amplitude mismatch ``g`` (linear) and phase mismatch ``phi``.

    Attributes:
        amplitude_imbalance_db: Q-branch amplitude error relative to I.
        phase_imbalance_deg: quadrature phase error.
    """

    amplitude_imbalance_db: float = 0.0
    phase_imbalance_deg: float = 0.0

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        out = super().process(signal, rng)
        if (
            self.amplitude_imbalance_db == 0.0
            and self.phase_imbalance_deg == 0.0
        ):
            return out
        g = db_to_amplitude(self.amplitude_imbalance_db)
        phi = np.deg2rad(self.phase_imbalance_deg)
        mu = 0.5 * (1.0 + g * np.exp(1j * phi))
        nu = 0.5 * (1.0 - g * np.exp(1j * phi))
        y = mu * out.samples + nu * np.conj(out.samples)
        return out.with_samples(y)


def image_rejection_ratio_db(wanted_gain: complex, image_gain: complex) -> float:
    """IRR in dB from complex wanted/image path gains (diagnostic helper)."""
    if image_gain == 0:
        return np.inf
    return 20.0 * np.log10(abs(wanted_gain) / abs(image_gain))
