"""Complex-baseband behavioral models of the analog RF subsystem.

The paper models the double-conversion receiver (figure 2) with behavioral
RF models from the SPW and Spectre ``rflib`` libraries; "to keep the
simulation handily, it is mandatory to use complex baseband modeling
technique in the RF system part".  This subpackage provides those models:
amplifiers with noise and compression, mixers with DC offset and I/Q
imbalance, IIR channel filters, oscillators with phase noise, AGC and ADC,
plus the assembled :class:`repro.rf.frontend.DoubleConversionReceiver`.
"""

from repro.rf.signal import Signal, dbm_to_watts, watts_to_dbm
from repro.rf.noise import (
    BOLTZMANN,
    NoiseSource,
    thermal_noise_power,
    thermal_noise_psd_dbm_hz,
    white_noise,
    flicker_noise,
)
from repro.rf.nonlinearity import (
    CubicNonlinearity,
    RappNonlinearity,
    iip3_from_p1db,
    p1db_from_iip3,
)
from repro.rf.amplifier import Amplifier, AgcAmplifier
from repro.rf.mixer import Mixer, QuadratureMixer
from repro.rf.filters import (
    AnalogFilter,
    chebyshev_lowpass,
    butterworth_highpass,
    chebyshev_bandpass,
)
from repro.rf.oscillator import LocalOscillator
from repro.rf.adc import Adc
from repro.rf.pa import PowerAmplifier
from repro.rf.zeroif import ZeroIfConfig, ZeroIfReceiver
from repro.rf.cascade import (
    BlockCascade,
    StageSpec,
    active_stage_cascade,
    cascade_gain_db,
    cascade_iip3_dbm,
    cascade_input_p1db_dbm,
    friis_noise_figure_db,
)
from repro.rf.frontend import (
    DoubleConversionReceiver,
    FrontendConfig,
    ideal_frontend_config,
    spw_library_config,
    spectre_library_config,
)

__all__ = [
    "Signal",
    "dbm_to_watts",
    "watts_to_dbm",
    "BOLTZMANN",
    "NoiseSource",
    "thermal_noise_power",
    "thermal_noise_psd_dbm_hz",
    "white_noise",
    "flicker_noise",
    "CubicNonlinearity",
    "RappNonlinearity",
    "iip3_from_p1db",
    "p1db_from_iip3",
    "Amplifier",
    "AgcAmplifier",
    "Mixer",
    "QuadratureMixer",
    "AnalogFilter",
    "chebyshev_lowpass",
    "butterworth_highpass",
    "chebyshev_bandpass",
    "LocalOscillator",
    "Adc",
    "PowerAmplifier",
    "ZeroIfConfig",
    "ZeroIfReceiver",
    "BlockCascade",
    "StageSpec",
    "active_stage_cascade",
    "cascade_gain_db",
    "cascade_iip3_dbm",
    "cascade_input_p1db_dbm",
    "friis_noise_figure_db",
    "DoubleConversionReceiver",
    "FrontendConfig",
    "ideal_frontend_config",
    "spw_library_config",
    "spectre_library_config",
]
