"""The double-conversion receiver front-end of figure 2.

Signal path (both mixers share the 2.6 GHz LO):

    RF (5.2 GHz) -> LNA -> mixer 1 (to 2.6 GHz IF) -> inter-stage high-pass
    -> quadrature mixer 2 (to baseband) -> Chebyshev channel-select low-pass
    -> AGC amplifier -> ADC (20 MHz)

Complex-baseband modeling note: the envelope is referenced to the wanted
channel's carrier, so the first mixer's self-mixing product (at absolute
0 Hz, far outside the simulated band) vanishes from the representation —
the very property of the architecture the paper highlights ("as there is no
signal at 0 Hz, this architecture overcomes problems concerning image
rejection").  The second mixer's self-mixing lands at envelope DC and is
modeled, together with its flicker noise; the inter-stage high-pass (a
coupling element in figure 2) consequently acts on the down-converted
envelope, where it performs its functional job of blocking DC and 1/f
noise.

Three ready-made configurations mirror the paper's model libraries:

* :func:`spw_library_config` — P1dB-parameterized cubic nonlinearities, no
  AM/PM (the SPW rflib parameterization),
* :func:`spectre_library_config` — IIP3-parameterized Rapp models with
  AM/PM conversion (the Spectre rflib parameterization; the paper notes
  "the model parameters from Spectre and SPW models are different in some
  cases"),
* :func:`ideal_frontend_config` — an impairment-free reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.dsp.params import CARRIER_FREQUENCY, SAMPLE_RATE
from repro.rf.adc import Adc
from repro.rf.amplifier import AgcAmplifier, Amplifier
from repro.rf.filters import (
    AnalogFilter,
    butterworth_highpass,
    chebyshev_lowpass,
)
from repro.rf.mixer import Mixer, QuadratureMixer
from repro.rf.nonlinearity import CubicNonlinearity
from repro.rf.oscillator import LocalOscillator
from repro.rf.signal import Signal

#: The paper's LO frequency: half the 5.2 GHz RF carrier.
LO_FREQUENCY = 2.6e9


@dataclass
class FrontendConfig:
    """All parameters of the double-conversion receiver.

    The defaults describe a plausible 802.11a front end meeting the paper's
    requirements (input range -88..-23 dBm, adjacent channel +16 dB).

    Attributes:
        sample_rate_in: input (oversampled) envelope rate; must be an
            integer multiple of 20 MHz.
        carrier_frequency: RF carrier of the wanted channel.
        lna_gain_db / lna_nf_db / lna_p1db_dbm: first LNA parameters;
            ``lna_p1db_dbm`` is the figure-6 sweep parameter.
        lna_model: ``"cubic"`` (SPW-style) or ``"rapp"`` (Spectre-style).
        lna_am_pm_deg: AM/PM conversion (Rapp model only).
        mixer1_gain_db / mixer1_nf_db / mixer1_iip3_dbm: first mixer.
        image_rejection_db: image-rejection ratio of the first conversion.
        mixer2_gain_db / mixer2_nf_db: quadrature mixer.
        dc_offset_dbm: self-mixing DC product at the mixer-2 output.
        flicker_power_dbm / flicker_corner_hz: mixer-2 1/f noise.
        iq_amplitude_db / iq_phase_deg: quadrature imbalance.
        lo_error_ppm / lo_phase_noise_dbc_hz: shared-LO impairments.
        hpf_enabled / hpf_cutoff_hz / hpf_order: inter-stage DC-blocking
            high-pass (disabling it mimics a direct-conversion design with
            no DC-offset removal).
        lpf_edge_hz / lpf_order / lpf_ripple_db: Chebyshev channel filter;
            ``lpf_edge_hz`` is the figure-5 sweep parameter.
        agc_target_dbm: AGC output level (ADC headroom for OFDM PAPR).
        adc_bits: ADC resolution; None for an ideal ADC.
        adc_full_scale_dbm: ADC full-scale envelope power.
        noise_enabled: master noise switch (the co-simulation
            "no noise functions" mode clears it).
    """

    sample_rate_in: float = 4 * SAMPLE_RATE
    carrier_frequency: float = CARRIER_FREQUENCY

    lna_gain_db: float = 16.0
    lna_nf_db: float = 3.0
    lna_p1db_dbm: float = -12.0
    lna_model: str = "cubic"
    lna_am_pm_deg: float = 0.0

    mixer1_gain_db: float = 8.0
    mixer1_nf_db: float = 9.0
    mixer1_iip3_dbm: float = 14.0
    image_rejection_db: float = np.inf

    mixer2_gain_db: float = 6.0
    mixer2_nf_db: float = 11.0
    mixer2_iip3_dbm: float = 18.0
    dc_offset_dbm: Optional[float] = -45.0
    flicker_power_dbm: Optional[float] = -75.0
    flicker_corner_hz: float = 1e6
    iq_amplitude_db: float = 0.0
    iq_phase_deg: float = 0.0

    lo_error_ppm: float = 0.0
    lo_phase_noise_dbc_hz: Optional[float] = None
    lo_phase_noise_ref_hz: float = 1e6

    hpf_enabled: bool = True
    hpf_cutoff_hz: float = 120e3
    hpf_order: int = 2

    lpf_edge_hz: float = 8.6e6
    lpf_order: int = 7
    lpf_ripple_db: float = 0.5

    agc_target_dbm: float = -12.0
    agc_min_gain_db: float = -20.0
    agc_max_gain_db: float = 70.0

    adc_bits: Optional[int] = 10
    adc_full_scale_dbm: float = 0.0

    noise_enabled: bool = True

    def __post_init__(self):
        ratio = self.sample_rate_in / SAMPLE_RATE
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ValueError(
                "sample_rate_in must be an integer multiple of 20 MHz"
            )

    @property
    def decimation(self) -> int:
        """ADC decimation factor down to the 20 MHz DSP rate."""
        return int(round(self.sample_rate_in / SAMPLE_RATE))


def ideal_frontend_config(**overrides) -> FrontendConfig:
    """A front end free of noise, compression and offset impairments."""
    cfg = FrontendConfig(
        lna_nf_db=0.0,
        lna_p1db_dbm=60.0,
        mixer1_nf_db=0.0,
        mixer1_iip3_dbm=80.0,
        mixer2_nf_db=0.0,
        mixer2_iip3_dbm=80.0,
        dc_offset_dbm=None,
        flicker_power_dbm=None,
        adc_bits=None,
        noise_enabled=False,
    )
    return replace(cfg, **overrides)


def spw_library_config(**overrides) -> FrontendConfig:
    """SPW rflib parameterization: cubic models referenced to P1dB."""
    return replace(FrontendConfig(lna_model="cubic"), **overrides)


def spectre_library_config(**overrides) -> FrontendConfig:
    """Spectre rflib parameterization: Rapp models with AM/PM, IIP3 refs."""
    cfg = FrontendConfig(lna_model="rapp", lna_am_pm_deg=4.0)
    return replace(cfg, **overrides)


class DoubleConversionReceiver:
    """Executable model of the figure-2 receiver front end."""

    def __init__(self, config: FrontendConfig = FrontendConfig()):
        self.config = config
        self._build()

    def _build(self):
        cfg = self.config
        if cfg.lna_model == "cubic":
            self.lna = Amplifier.spw_style(
                cfg.lna_gain_db, cfg.lna_nf_db, cfg.lna_p1db_dbm
            )
        elif cfg.lna_model == "rapp":
            from repro.rf.nonlinearity import iip3_from_p1db

            self.lna = Amplifier.spectre_style(
                cfg.lna_gain_db,
                cfg.lna_nf_db,
                iip3_from_p1db(cfg.lna_p1db_dbm),
                am_pm_deg=cfg.lna_am_pm_deg,
            )
        else:
            raise ValueError(f"unknown LNA model {cfg.lna_model!r}")
        self.lna.noise_enabled = cfg.noise_enabled

        self.lo = LocalOscillator(
            frequency_hz=LO_FREQUENCY,
            frequency_error_ppm=cfg.lo_error_ppm,
            phase_noise_dbc_hz=cfg.lo_phase_noise_dbc_hz,
            phase_noise_ref_hz=cfg.lo_phase_noise_ref_hz,
        )
        self.mixer1 = Mixer(
            lo=self.lo,
            conversion_gain_db=cfg.mixer1_gain_db,
            noise_figure_db=cfg.mixer1_nf_db,
            image_rejection_db=cfg.image_rejection_db,
            noise_enabled=cfg.noise_enabled,
        )
        mixer1_nl = CubicNonlinearity(
            gain_db=0.0, iip3_dbm=cfg.mixer1_iip3_dbm
        )
        self._mixer1_nl = mixer1_nl
        self.mixer2 = QuadratureMixer(
            lo=self.lo,
            conversion_gain_db=cfg.mixer2_gain_db,
            noise_figure_db=cfg.mixer2_nf_db,
            dc_offset_dbm=cfg.dc_offset_dbm,
            flicker_power_dbm=cfg.flicker_power_dbm,
            flicker_corner_hz=cfg.flicker_corner_hz,
            amplitude_imbalance_db=cfg.iq_amplitude_db,
            phase_imbalance_deg=cfg.iq_phase_deg,
            noise_enabled=cfg.noise_enabled,
        )
        self._mixer2_nl = CubicNonlinearity(
            gain_db=0.0, iip3_dbm=cfg.mixer2_iip3_dbm
        )
        self.hpf = butterworth_highpass(
            cfg.hpf_cutoff_hz, cfg.sample_rate_in, order=cfg.hpf_order
        )
        self.lpf = chebyshev_lowpass(
            cfg.lpf_edge_hz,
            cfg.sample_rate_in,
            order=cfg.lpf_order,
            ripple_db=cfg.lpf_ripple_db,
        )
        self.agc = AgcAmplifier(
            target_dbm=cfg.agc_target_dbm,
            min_gain_db=cfg.agc_min_gain_db,
            max_gain_db=cfg.agc_max_gain_db,
        )
        self.adc = Adc(
            n_bits=cfg.adc_bits,
            full_scale_dbm=cfg.adc_full_scale_dbm,
            decimation=cfg.decimation,
        )

    def set_noise_enabled(self, enabled: bool):
        """Toggle all noise sources (the co-simulation noise-gap switch)."""
        self.config = replace(self.config, noise_enabled=enabled)
        self._build()

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Run a received RF signal through the complete front end.

        Args:
            signal: oversampled complex envelope at the RF carrier
                reference (``config.sample_rate_in``).
            rng: random generator for the noise sources.

        Returns:
            Digitized complex baseband at 20 MHz.
        """
        return self.stage_outputs(signal, rng)[-1][1]

    def stage_outputs(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> List[Tuple[str, Signal]]:
        """Like :meth:`process`, but returns every intermediate signal.

        Used by the figure-2 bench to trace signal levels through the
        chain.
        """
        cfg = self.config
        if signal.sample_rate != cfg.sample_rate_in:
            raise ValueError(
                f"expected input at {cfg.sample_rate_in:g} Hz, got "
                f"{signal.sample_rate:g} Hz"
            )
        stages: List[Tuple[str, Signal]] = [("input", signal)]
        s = self.lna.process(signal, rng)
        stages.append(("lna", s))
        s = self.mixer1.process(s, rng)
        s = s.with_samples(self._mixer1_nl.apply(s.samples))
        stages.append(("mixer1", s))
        s = self.mixer2.process(s, rng)
        s = s.with_samples(self._mixer2_nl.apply(s.samples))
        stages.append(("mixer2", s))
        if cfg.hpf_enabled:
            s = self.hpf.process(s)
        stages.append(("hpf", s))
        s = self.lpf.process(s)
        stages.append(("lpf", s))
        s = self.agc.process(s, rng)
        stages.append(("agc", s))
        s = self.adc.process(s)
        stages.append(("adc", s))
        return stages
