"""Noise generation: thermal floor, white and flicker (1/f) sources.

The AMS-Designer limitation the paper reports — the ``white_noise`` and
``flicker_noise`` Verilog-A functions are unavailable in transient
(large-signal) co-simulation — is modeled by making every RF block's noise
injection conditional; see :mod:`repro.flow.cosim`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Standard noise reference temperature [K].
T0 = 290.0


def thermal_noise_power(bandwidth_hz: float, temperature_k: float = T0) -> float:
    """Thermal noise power kTB in watts over ``bandwidth_hz``."""
    if bandwidth_hz < 0:
        raise ValueError("bandwidth must be non-negative")
    return BOLTZMANN * temperature_k * bandwidth_hz


def thermal_noise_psd_dbm_hz(temperature_k: float = T0) -> float:
    """Thermal noise density in dBm/Hz (-174 dBm/Hz at 290 K)."""
    return 10.0 * np.log10(BOLTZMANN * temperature_k / 1e-3)


def white_noise(
    n: int, power_watts: float, rng: np.random.Generator
) -> np.ndarray:
    """Complex white Gaussian noise with total average power ``power_watts``."""
    if power_watts < 0:
        raise ValueError("noise power must be non-negative")
    sigma = np.sqrt(power_watts / 2.0)
    return sigma * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


def flicker_noise(
    n: int,
    power_watts: float,
    corner_hz: float,
    sample_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Complex 1/f ("flicker") noise.

    The PSD follows ``corner_hz / |f|`` below the corner and is flat above
    DC-adjacent bins (the DC bin itself is zeroed); the total power over the
    full band is normalized to ``power_watts``.

    Args:
        n: number of samples.
        power_watts: total average noise power.
        corner_hz: 1/f corner frequency.
        sample_rate: sample rate of the generated sequence.
        rng: random generator.
    """
    if n == 0:
        return np.zeros(0, dtype=complex)
    if power_watts < 0:
        raise ValueError("noise power must be non-negative")
    freqs = np.fft.fftfreq(n, d=1.0 / sample_rate)
    shape = np.zeros(n)
    nonzero = freqs != 0
    # PSD ~ corner/|f|, capped at the level of the first non-DC bin so the
    # synthesis does not diverge near DC.
    cap = corner_hz / max(sample_rate / n, 1e-9)
    shape[nonzero] = np.minimum(corner_hz / np.abs(freqs[nonzero]), cap)
    spectrum = np.sqrt(shape) * (
        rng.standard_normal(n) + 1j * rng.standard_normal(n)
    )
    noise = np.fft.ifft(spectrum)
    current = np.mean(np.abs(noise) ** 2)
    if current > 0:
        noise *= np.sqrt(power_watts / current)
    return noise


@dataclass
class NoiseSource:
    """A block-level additive noise source.

    Combines a white component (e.g. the input-referred thermal noise of an
    amplifier stage) and an optional flicker component (e.g. mixer 1/f
    noise).

    Attributes:
        white_power_watts: average white noise power over the simulation
            bandwidth.
        flicker_power_watts: average 1/f noise power.
        flicker_corner_hz: corner frequency of the 1/f component.
    """

    white_power_watts: float = 0.0
    flicker_power_watts: float = 0.0
    flicker_corner_hz: float = 1e6

    def generate(
        self, n: int, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate ``n`` samples of the combined noise waveform."""
        total = np.zeros(n, dtype=complex)
        if self.white_power_watts > 0:
            total += white_noise(n, self.white_power_watts, rng)
        if self.flicker_power_watts > 0:
            total += flicker_noise(
                n, self.flicker_power_watts, self.flicker_corner_hz,
                sample_rate, rng,
            )
        return total


def noise_figure_to_added_power(
    noise_figure_db: float, bandwidth_hz: float, temperature_k: float = T0
) -> float:
    """Input-referred added noise power of a stage with the given NF.

    A noise figure F adds ``(F - 1) * kTB`` of input-referred noise power on
    top of the source thermal noise.
    """
    if noise_figure_db < 0:
        raise ValueError("noise figure must be >= 0 dB")
    factor = 10.0 ** (noise_figure_db / 10.0)
    return (factor - 1.0) * thermal_noise_power(bandwidth_hz, temperature_k)
