"""Local oscillator with frequency error and phase noise.

The paper's receiver derives both mixer stages from a single 2.6 GHz
VCO/PLL.  The model provides a deterministic frequency error (ppm of the
nominal frequency, i.e. a carrier frequency offset after down-conversion)
and a synthesized phase-noise process with a -20 dB/decade (free-running
VCO / Wiener) profile specified as L(f) dBc/Hz at a reference offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class LocalOscillator:
    """Behavioral LO / VCO+PLL model.

    Attributes:
        frequency_hz: nominal LO frequency.
        frequency_error_ppm: static frequency error in parts per million.
        phase_noise_dbc_hz: single-sideband phase noise level L(f_ref) in
            dBc/Hz; None disables phase noise.
        phase_noise_ref_hz: offset frequency f_ref the level refers to.
    """

    frequency_hz: float
    frequency_error_ppm: float = 0.0
    phase_noise_dbc_hz: Optional[float] = None
    phase_noise_ref_hz: float = 1e6

    @property
    def frequency_error_hz(self) -> float:
        """Absolute LO frequency error in Hz."""
        return self.frequency_hz * self.frequency_error_ppm * 1e-6

    def phase_noise_process(
        self, n: int, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Synthesize a phase-noise trajectory phi[n] in radians.

        A -20 dB/decade SSB profile corresponds to a Wiener (random-walk)
        phase: ``S_phi(f) = 2 * L(f)`` with ``L(f) = L_ref * (f_ref/f)^2``.
        The random walk increment variance sigma^2 per sample follows from
        ``S_phi(f) = sigma^2 / (sample_rate * (pi f / f_s)^2)`` in the small
        frequency limit, giving
        ``sigma^2 = 2 * L_ref * (2*pi*f_ref)^2 / (2 * sample_rate)``.
        """
        if self.phase_noise_dbc_hz is None:
            return np.zeros(n)
        l_ref = 10.0 ** (self.phase_noise_dbc_hz / 10.0)
        # PSD of the phase: S_phi(f) = 2*L(f) (small-angle approximation),
        # with L(f) = l_ref * (f_ref / f)^2.  For a random walk
        # phi[k] = phi[k-1] + w[k], S_phi(f) ~ sigma_w^2 / fs / (2 pi f/fs)^2
        # = sigma_w^2 fs / (2 pi f)^2, so
        # sigma_w^2 = 2 * l_ref * (2 pi f_ref)^2 / fs.
        sigma2 = 2.0 * l_ref * (2.0 * np.pi * self.phase_noise_ref_hz) ** 2 / sample_rate
        steps = rng.standard_normal(n) * np.sqrt(sigma2)
        return np.cumsum(steps)

    def envelope_rotation(
        self,
        n: int,
        sample_rate: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Unit-magnitude rotator combining frequency error and phase noise.

        Args:
            n: number of samples.
            sample_rate: envelope sample rate.
            rng: random generator; when None, phase noise is skipped (the
                co-simulation "no noise functions" mode).
        """
        t = np.arange(n) / sample_rate
        # Down-conversion by an LO that runs high by df leaves the envelope
        # rotating at -df.
        phase = -2.0 * np.pi * self.frequency_error_hz * t
        if self.phase_noise_dbc_hz is not None and rng is not None:
            phase = phase - self.phase_noise_process(n, sample_rate, rng)
        return np.exp(1j * phase)
