"""Memoryless nonlinearity models for RF amplifiers and mixers.

Two model families are provided, mirroring the two behavioral libraries the
paper contrasts:

* :class:`CubicNonlinearity` — the classic third-order polynomial envelope
  model used by the SPW ``rflib`` blocks, parameterized by gain and either
  the input 1-dB compression point or the input third-order intercept.
* :class:`RappNonlinearity` — a smooth saturation (Rapp) AM/AM model with a
  parametric AM/PM characteristic, matching the "extended functionality
  including AM/PM conversion" of the SpectreRF baseband models.

Power convention: envelope power is ``|x|**2`` watts (see
:mod:`repro.rf.signal`); intercept/compression points refer to that
envelope power (two-tone quantities are per tone).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.signal import db_to_linear, dbm_to_watts, watts_to_dbm

#: Gain-compression ratio at the 1 dB compression point: 1 - 10**(-1/20).
_ONE_DB_FRACTION = 1.0 - 10.0 ** (-1.0 / 20.0)

#: Classical P1dB/IIP3 offset of a cubic nonlinearity in dB (~9.64 dB).
P1DB_IIP3_OFFSET_DB = -10.0 * np.log10(_ONE_DB_FRACTION)


def iip3_from_p1db(p1db_dbm: float) -> float:
    """IIP3 [dBm] of a cubic nonlinearity with the given input P1dB."""
    return p1db_dbm + P1DB_IIP3_OFFSET_DB


def p1db_from_iip3(iip3_dbm: float) -> float:
    """Input P1dB [dBm] of a cubic nonlinearity with the given IIP3."""
    return iip3_dbm - P1DB_IIP3_OFFSET_DB


@dataclass
class CubicNonlinearity:
    """Third-order compressive envelope nonlinearity.

    The envelope transfer is ``y = g*x - c*|x|^2*x`` for small/medium
    envelopes; beyond the amplitude where the cubic characteristic peaks the
    output is held at its maximum (hard saturation), which keeps the model
    monotone.

    The derivations (envelope power convention, per-tone two-tone IM3):

    * input IIP3 power:  ``P_IIP3 = g_lin / c`` with ``g_lin`` the *linear
      power gain* and per-tone fundamental/IM3 equality at the intercept;
    * input P1dB power:  ``P_1dB = (1 - 10^(-1/20)) * g/c`` so that
      ``P1dB = IIP3 - 9.64 dB``.

    Attributes:
        gain_db: small-signal power gain in dB.
        iip3_dbm: input-referred third-order intercept point in dBm.
    """

    gain_db: float
    iip3_dbm: float

    @classmethod
    def from_p1db(cls, gain_db: float, p1db_dbm: float) -> "CubicNonlinearity":
        """Construct from gain and input 1-dB compression point."""
        return cls(gain_db=gain_db, iip3_dbm=iip3_from_p1db(p1db_dbm))

    @property
    def p1db_dbm(self) -> float:
        """Input 1-dB compression point implied by the IIP3."""
        return p1db_from_iip3(self.iip3_dbm)

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Apply the nonlinearity to complex envelope samples."""
        samples = np.asarray(samples, dtype=complex)
        g = 10.0 ** (self.gain_db / 20.0)  # amplitude gain
        p_iip3 = dbm_to_watts(self.iip3_dbm)
        # y = g*x*(1 - |x|^2 / P_IIP3); cubic term coefficient c = g/P_IIP3.
        p_env = np.abs(samples) ** 2
        # The characteristic g*A*(1 - A^2/P) peaks at A^2 = P/3; clamp there.
        p_clamped = np.minimum(p_env, p_iip3 / 3.0)
        scale = g * (1.0 - p_clamped / p_iip3)
        # For envelopes beyond the peak, hold the peak output amplitude.
        out = samples * scale
        over = p_env > p_iip3 / 3.0
        if np.any(over):
            peak_amp = g * np.sqrt(p_iip3 / 3.0) * (2.0 / 3.0)
            phase = np.where(
                np.abs(samples[over]) > 0,
                samples[over] / np.abs(samples[over]),
                0,
            )
            out[over] = peak_amp * phase
        return out


@dataclass
class RappNonlinearity:
    """Rapp AM/AM model with parametric AM/PM conversion.

    AM/AM: ``A_out = g*A / (1 + (g*A/A_sat)^(2p))^(1/(2p))`` where ``A_sat``
    is the output saturation amplitude and ``p`` the smoothness.

    AM/PM: phase shift ``phi(A) = phi_max * (A^2/P_sat_in) /
    (1 + A^2/P_sat_in)`` — zero for small signals and approaching
    ``phi_max`` in saturation (a Saleh-style characteristic).

    Attributes:
        gain_db: small-signal power gain in dB.
        osat_dbm: output saturation power in dBm.
        smoothness: Rapp smoothness parameter p (>= 0.5).
        am_pm_deg: maximum AM/PM phase deviation in degrees.
    """

    gain_db: float
    osat_dbm: float
    smoothness: float = 2.0
    am_pm_deg: float = 0.0

    def __post_init__(self):
        if self.smoothness < 0.5:
            raise ValueError("Rapp smoothness must be >= 0.5")

    @property
    def input_p1db_dbm(self) -> float:
        """Numerically determined input 1-dB compression point."""
        g = 10.0 ** (self.gain_db / 20.0)
        a_sat = np.sqrt(dbm_to_watts(self.osat_dbm))
        # Solve (1 + r^(2p))^(1/(2p)) = 10^(1/20) with r = g*A/a_sat.
        target = 10.0 ** (1.0 / 20.0)
        r = (target ** (2 * self.smoothness) - 1.0) ** (
            1.0 / (2 * self.smoothness)
        )
        a_in = r * a_sat / g
        return watts_to_dbm(a_in**2)

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Apply AM/AM and AM/PM to complex envelope samples."""
        samples = np.asarray(samples, dtype=complex)
        g = 10.0 ** (self.gain_db / 20.0)
        a_sat = np.sqrt(dbm_to_watts(self.osat_dbm))
        amp_in = np.abs(samples)
        driven = g * amp_in
        denom = (1.0 + (driven / a_sat) ** (2 * self.smoothness)) ** (
            1.0 / (2 * self.smoothness)
        )
        am_am = np.where(amp_in > 0, driven / np.maximum(denom, 1e-300), 0.0)
        out = np.where(amp_in > 0, samples / np.where(amp_in > 0, amp_in, 1.0), 0) * am_am
        if self.am_pm_deg != 0.0:
            p_sat_in = (a_sat / g) ** 2
            x = amp_in**2 / p_sat_in
            phi = np.deg2rad(self.am_pm_deg) * x / (1.0 + x)
            out = out * np.exp(1j * phi)
        return out


def effective_iip3_cascade_dbm(stages) -> float:
    """Cascaded input IP3 of a chain (Friis-style IP3 combination).

    Args:
        stages: iterable of ``(gain_db, iip3_dbm)`` tuples in chain order.

    Returns:
        The input-referred IP3 of the cascade in dBm, using
        ``1/IIP3_tot = sum(G_before_stage / IIP3_stage)`` in linear power.
    """
    inv_total = 0.0
    gain_before = 1.0
    for gain_db, iip3_dbm in stages:
        inv_total += gain_before / dbm_to_watts(iip3_dbm)
        gain_before *= db_to_linear(gain_db)
    if inv_total <= 0:
        return np.inf
    return watts_to_dbm(1.0 / inv_total)
