"""Analog-to-digital converter model (the "ADC" block of figure 1).

Quantizes I and Q with full-scale clipping and optionally decimates the
oversampled front-end output down to the 20 MHz rate the DSP receiver
expects (the anti-alias decimation filter plays the DAC/ADC reconstruction
role in the level adaptation between the RF and DSP parts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.signal import resample_poly

from repro.rf.signal import Signal, dbm_to_watts


@dataclass
class Adc:
    """Quantizing, clipping, decimating ADC.

    The decimation is, by default, plain subsampling: a real ADC clocked at
    20 MHz has no brick-wall anti-alias of its own, so any adjacent-channel
    energy the *analog* channel filter failed to remove folds into the
    wanted band.  This is precisely why the paper oversamples the baseband
    "to fulfill the sampling theorem" and why the figure-5 BER rises again
    for too-wide channel filters.  Set ``anti_alias=True`` for an idealized
    filtered decimation instead.

    Attributes:
        n_bits: resolution per I/Q rail; None disables quantization
            (ideal ADC).
        full_scale_dbm: envelope power of a full-scale sine; the clip level
            per rail is the corresponding amplitude.
        decimation: integer decimation factor to reach the output rate.
        anti_alias: apply an ideal decimation filter before subsampling.
    """

    n_bits: Optional[int] = 10
    full_scale_dbm: float = 0.0
    decimation: int = 1
    anti_alias: bool = False

    def __post_init__(self):
        if self.n_bits is not None and self.n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        if self.decimation < 1:
            raise ValueError("decimation must be >= 1")

    @property
    def clip_amplitude(self) -> float:
        """Per-rail clip amplitude corresponding to full scale."""
        return float(np.sqrt(dbm_to_watts(self.full_scale_dbm)))

    def process(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Signal:
        """Digitize the signal.  ``rng`` is unused (quantization is
        deterministic)."""
        x = signal.samples
        rate = signal.sample_rate
        if self.decimation > 1:
            if self.anti_alias:
                x = resample_poly(x, 1, self.decimation)
            else:
                x = x[:: self.decimation]
            rate = rate / self.decimation
        if self.n_bits is not None:
            a = self.clip_amplitude
            levels = 2 ** (self.n_bits - 1)
            step = a / levels
            i = np.clip(np.round(x.real / step), -levels, levels - 1) * step
            q = np.clip(np.round(x.imag / step), -levels, levels - 1) * step
            x = i + 1j * q
        return Signal(
            samples=x,
            sample_rate=rate,
            carrier_frequency=signal.carrier_frequency,
        )
