"""Declarative multi-emitter scenario library (see :mod:`.scenario`)."""

from repro.scenario.emitters import (
    BluetoothFhEmitter,
    MicrowaveOvenEmitter,
    WlanEmitter,
)
from repro.scenario.scenario import (
    EMITTER_TYPES,
    PRESETS,
    Scenario,
    preset_names,
)

__all__ = [
    "BluetoothFhEmitter",
    "EMITTER_TYPES",
    "MicrowaveOvenEmitter",
    "PRESETS",
    "Scenario",
    "WlanEmitter",
    "preset_names",
]
