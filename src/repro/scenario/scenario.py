"""Declarative multi-emitter scenarios ("as many as you can imagine").

A :class:`Scenario` composes an arbitrary set of asynchronous emitters
(:mod:`repro.scenario.emitters`) and an optional multipath channel
(:class:`repro.channel.fading.FadingChannel`, block-static or
Jakes-Doppler time-varying) into one named RF environment the test
bench applies between the transmitter and the AWGN channel.

Scenarios are plain data: :meth:`Scenario.from_config` builds one from
a nested dict (or a JSON file via :meth:`Scenario.from_json`), and
:meth:`Scenario.to_config` round-trips it back, so an environment is a
versionable artifact the run store snapshots into every manifest::

    scenario = Scenario.from_config({
        "name": "cafe",
        "emitters": [
            {"type": "wlan", "offset_channels": 1, "excess_db": 16.0},
            {"type": "bluetooth", "excess_db": -3.0, "slot_s": 40e-6},
            {"type": "microwave", "excess_db": 3.0, "period_s": 200e-6},
        ],
        "fading": {"rms_delay_spread_s": 50e-9, "max_doppler_hz": 30.0},
    })
    config = TestbenchConfig(snr_db=20.0, scenario=scenario)

Determinism: emitter ``i`` draws from its own stream forked off a
snapshot of the packet generator's state
(:func:`repro.channel.streams.fork_stream`, scheme ``emitter-fork-v1``)
— the wanted path's draws are bit-identical with zero or ten emitters
configured, and serial / ``--jobs N`` / ``--batch-size N`` runs of a
scenario sweep stay bit-identical like every other measurement.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.channel.fading import FadingChannel
from repro.channel.interference import reference_power_watts
from repro.channel.streams import fork_stream
from repro.rf.signal import Signal
from repro.scenario.emitters import (
    BluetoothFhEmitter,
    MicrowaveOvenEmitter,
    WlanEmitter,
)

__all__ = ["EMITTER_TYPES", "PRESETS", "Scenario", "preset_names"]

#: Config ``type`` tag -> emitter class.
EMITTER_TYPES = {
    cls.kind: cls
    for cls in (WlanEmitter, BluetoothFhEmitter, MicrowaveOvenEmitter)
}

#: Named scenario configs (plain dicts, buildable via ``from_config``).
#: The first two are the paper's figure-6 operating points; the rest go
#: beyond the paper along the ROADMAP's scenario-diversity axis.  The
#: Bluetooth/microwave presets shrink the slot/mains time scales so a
#: single WLAN packet window (~100-300 us) sees several hops and on/off
#: transitions.
PRESETS: Dict[str, Dict[str, Any]] = {
    "adjacent-16db": {
        "name": "adjacent-16db",
        "emitters": [
            {"type": "wlan", "offset_channels": 1, "excess_db": 16.0},
        ],
    },
    "non-adjacent-32db": {
        "name": "non-adjacent-32db",
        "emitters": [
            {"type": "wlan", "offset_channels": 2, "excess_db": 32.0},
        ],
    },
    "co-channel": {
        "name": "co-channel",
        "emitters": [
            {"type": "wlan", "offset_channels": 0, "excess_db": -6.0},
        ],
    },
    "bluetooth-hop": {
        "name": "bluetooth-hop",
        "emitters": [
            {
                "type": "bluetooth",
                "excess_db": -3.0,
                "slot_s": 40e-6,
                "burst_s": 25e-6,
                "duty": 0.8,
            },
        ],
    },
    "microwave-oven": {
        "name": "microwave-oven",
        "emitters": [
            {
                "type": "microwave",
                "excess_db": 3.0,
                "period_s": 200e-6,
                "duty": 0.5,
            },
        ],
    },
    "indoor-fading": {
        "name": "indoor-fading",
        "fading": {"rms_delay_spread_s": 50e-9},
    },
    "hostile-coexistence": {
        "name": "hostile-coexistence",
        "emitters": [
            {"type": "wlan", "offset_channels": 1, "excess_db": 16.0},
            {
                "type": "bluetooth",
                "excess_db": -3.0,
                "slot_s": 40e-6,
                "burst_s": 25e-6,
                "duty": 0.8,
            },
            {
                "type": "microwave",
                "excess_db": 3.0,
                "period_s": 200e-6,
                "duty": 0.5,
            },
        ],
        "fading": {"rms_delay_spread_s": 50e-9, "max_doppler_hz": 30.0},
    },
}


def preset_names() -> List[str]:
    """Names of the built-in scenario presets."""
    return sorted(PRESETS)


def _build_emitter(config: Dict[str, Any]):
    """Instantiate one emitter from its config dict (``type`` + fields)."""
    config = dict(config)
    kind = config.pop("type", None)
    if kind not in EMITTER_TYPES:
        raise ValueError(
            f"unknown emitter type {kind!r}; "
            f"choose from {', '.join(sorted(EMITTER_TYPES))}"
        )
    cls = EMITTER_TYPES[kind]
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(config) - valid)
    if unknown:
        raise ValueError(
            f"unknown {kind!r} emitter keys {unknown}; "
            f"valid keys: {', '.join(sorted(valid))}"
        )
    return cls(**config)


@dataclass
class Scenario:
    """A named RF environment: emitters to IQ-mix plus optional multipath.

    Attributes:
        name: scenario identifier (shows up in run names/manifests).
        emitters: emitter instances applied in order (each with its own
            forked stream — order only affects the floating-point sum).
        fading: optional multipath channel applied after the emitters;
            the test bench treats it exactly like
            ``TestbenchConfig.fading`` (an explicit bench-level fading
            wins when both are set).
    """

    name: str = "custom"
    emitters: List[Any] = field(default_factory=list)
    fading: Optional[FadingChannel] = None

    # -- declarative construction --------------------------------------
    @classmethod
    def from_config(cls, config: Dict[str, Any]) -> "Scenario":
        """Build a scenario from a plain-dict config (see module doc)."""
        config = dict(config)
        name = str(config.pop("name", "custom"))
        emitters = [
            _build_emitter(e) for e in config.pop("emitters", [])
        ]
        fading_config = config.pop("fading", None)
        fading = None
        if fading_config is not None:
            valid = {f.name for f in dataclasses.fields(FadingChannel)}
            unknown = sorted(set(fading_config) - valid)
            if unknown:
                raise ValueError(
                    f"unknown fading keys {unknown}; "
                    f"valid keys: {', '.join(sorted(valid))}"
                )
            fading = FadingChannel(**fading_config)
        if config:
            raise ValueError(
                f"unknown scenario keys {sorted(config)}; "
                "valid keys: name, emitters, fading"
            )
        return cls(name=name, emitters=emitters, fading=fading)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Build a scenario from a JSON document (the config as text)."""
        return cls.from_config(json.loads(text))

    @classmethod
    def preset(cls, name: str) -> "Scenario":
        """Build one of the built-in presets by name."""
        if name not in PRESETS:
            raise ValueError(
                f"unknown scenario preset {name!r}; "
                f"choose from {', '.join(preset_names())}"
            )
        return cls.from_config(PRESETS[name])

    def to_config(self) -> Dict[str, Any]:
        """The scenario as a plain-dict config (``from_config`` inverse)."""
        config: Dict[str, Any] = {"name": self.name}
        if self.emitters:
            config["emitters"] = [
                {"type": e.kind, **dataclasses.asdict(e)}
                for e in self.emitters
            ]
        if self.fading is not None:
            config["fading"] = dataclasses.asdict(self.fading)
        return config

    # -- bench integration ---------------------------------------------
    def required_oversample(self, base_rate_hz: float = 20e6) -> int:
        """Smallest even oversampling factor representing every emitter.

        ``2 * ceil(halfband / base_rate)`` per emitter — for an 802.11a
        emitter ``k`` channels out this is exactly the legacy
        ``2 * (|k| + 1)`` rule ("the baseband signal was over-sampled
        to fulfill the sampling theorem"), so scenario configs keep the
        legacy interference path's sample rates bit for bit.
        """
        if not self.emitters:
            return 1
        return max(
            2 * int(np.ceil(e.required_halfband_hz / base_rate_hz))
            for e in self.emitters
        )

    def max_halfband_hz(self) -> float:
        """Widest one-sided emitter bandwidth (0.0 with no emitters)."""
        if not self.emitters:
            return 0.0
        return max(float(e.required_halfband_hz) for e in self.emitters)

    @property
    def is_trivial(self) -> bool:
        """True when the scenario perturbs nothing (no emitters/fading)."""
        return not self.emitters and self.fading is None

    def apply(self, wanted: Signal, rng: np.random.Generator) -> Signal:
        """IQ-mix every emitter onto the wanted waveform.

        Emitter ``i`` draws from its own stream forked off a snapshot
        of ``rng``'s state (``emitter-fork-v1``); ``rng`` itself is
        never advanced.  When the ambient probe registry is enabled,
        each emitter's waveform is tapped as stage ``emitter:<label>``
        so per-emitter power lands in the budget waterfall and PSD
        views — taps never touch the samples or any stream, so the
        mixed waveform is bit-identical with probes on or off.

        (Fading is *not* applied here: the bench runs it in the channel
        block alongside ``TestbenchConfig.fading``, after the emitters.)
        """
        if not self.emitters:
            return wanted
        from repro import obs

        probes = obs.get_probes()
        out = wanted.samples.copy()
        references = {
            convention: reference_power_watts(wanted.samples, convention)
            for convention in {e.power_convention for e in self.emitters}
        }
        for index, emitter in enumerate(self.emitters):
            interferer = emitter.generate(
                out.size,
                wanted.sample_rate,
                references[emitter.power_convention],
                fork_stream(rng, index),
            )
            mixed = interferer.samples[: out.size]
            if probes.enabled:
                probes.tap(
                    f"emitter:{emitter.label}", mixed, wanted.sample_rate
                )
            out += mixed
        return wanted.with_samples(out)

    def describe(self) -> str:
        """One line per emitter/channel for CLI output."""
        lines = [f"scenario '{self.name}':"]
        for e in self.emitters:
            lines.append(
                f"  emitter {e.label}: {e.kind}, "
                f"{e.excess_db:+.1f} dB ({e.power_convention} power)"
            )
        if self.fading is not None:
            doppler = (
                f", Doppler {self.fading.max_doppler_hz:g} Hz"
                if self.fading.max_doppler_hz > 0 else ", block-static"
            )
            lines.append(
                f"  fading: {self.fading.rms_delay_spread_s * 1e9:.0f} ns "
                f"RMS delay spread{doppler}"
            )
        if self.is_trivial:
            lines.append("  (no emitters, no fading)")
        return "\n".join(lines)
