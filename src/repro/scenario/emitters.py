"""Waveform-level emitter models for the scenario library.

Each emitter synthesizes one asynchronous interference source as a
complex-baseband waveform in the wanted receiver's band (IQ mixing: the
emitter waveform is generated at its own center frequency offset and
summed onto the wanted samples).  Emitters share a single contract:

``generate(n_samples, sample_rate, wanted_power_watts, rng) -> Signal``

where ``rng`` is the emitter's *own* forked stream (see
:func:`repro.channel.streams.fork_stream`) and ``wanted_power_watts``
the reference power measured under the emitter's ``power_convention``
(:func:`repro.channel.interference.reference_power_watts`).  The
returned waveform is scaled so its power under that same convention
sits ``excess_db`` above the reference.

Emitter types:

* :class:`WlanEmitter` — an 802.11a transmitter on a configurable
  channel offset (0 = co-channel, ±1 = adjacent, ±2 = alternate).
  Subsumes the legacy
  :class:`repro.channel.interference.AdjacentChannelSource`
  draw-for-draw: a scenario holding one ``WlanEmitter(offset_channels=1,
  excess_db=16)`` reproduces the paper's section-4.1 interferer bit for
  bit.
* :class:`BluetoothFhEmitter` — slotted frequency-hopping blips:
  constant-envelope binary-FSK bursts (GFSK-like, 1 Msym/s, ±157 kHz
  deviation) hopping over a 1 MHz-spaced channel grid.
* :class:`MicrowaveOvenEmitter` — magnetron burst noise: a swept
  carrier gated by the mains half-period duty cycle, with a random
  mains phase per packet window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.interference import AdjacentChannelSource, scale_to_excess
from repro.rf.signal import Signal

__all__ = [
    "BluetoothFhEmitter",
    "MicrowaveOvenEmitter",
    "WlanEmitter",
]


@dataclass
class WlanEmitter(AdjacentChannelSource):
    """An interfering 802.11a transmitter at a configurable channel offset.

    Identical to :class:`~repro.channel.interference
    .AdjacentChannelSource` in fields, draw order and scaling — the
    scenario layer's 802.11a emitter *is* the legacy interference
    source, so declarative configs reproduce the paper's adjacent /
    non-adjacent results exactly.  ``offset_channels=0`` models
    co-channel traffic (a hidden-node style collision).
    """

    #: Config ``type`` tag of this emitter class.
    kind = "wlan"

    @property
    def label(self) -> str:
        """Short probe-stage label, e.g. ``wlan+1`` / ``wlan0``."""
        return f"wlan{self.offset_channels:+d}" if self.offset_channels \
            else "wlan0"


@dataclass
class BluetoothFhEmitter:
    """Frequency-hopping constant-envelope blips (Bluetooth-style).

    Time is divided into ``slot_s`` slots; each slot independently
    transmits (probability ``duty``) a ``burst_s`` constant-envelope
    binary-FSK burst on a hop channel drawn uniformly from a
    ``hop_spacing_hz``-spaced grid spanning ``span_hz`` around
    ``offset_hz``.  Real Bluetooth uses 625 us slots over 79 channels;
    scenario presets shrink the slot scale so a single WLAN packet
    window sees several hops.

    Attributes:
        excess_db: emitter power over the wanted reference, under
            ``power_convention``.
        offset_hz: center of the hop span relative to the wanted
            carrier.
        span_hz: total hop span.
        hop_spacing_hz: hop channel grid spacing.
        slot_s: hop slot duration.
        burst_s: on-air burst duration within a slot (clipped to the
            slot).
        duty: probability a slot transmits.
        symbol_rate_hz: FSK symbol rate.
        deviation_hz: FSK frequency deviation (Bluetooth GFSK ~157 kHz).
        power_convention: see :mod:`repro.channel.interference`.
    """

    excess_db: float = 0.0
    offset_hz: float = 0.0
    span_hz: float = 20e6
    hop_spacing_hz: float = 1e6
    slot_s: float = 625e-6
    burst_s: float = 366e-6
    duty: float = 1.0
    symbol_rate_hz: float = 1e6
    deviation_hz: float = 157e3
    power_convention: str = "active"

    kind = "bluetooth"

    @property
    def label(self) -> str:
        return "bluetooth"

    @property
    def required_halfband_hz(self) -> float:
        """One-sided bandwidth the envelope must represent (Nyquist)."""
        return (
            abs(self.offset_hz)
            + self.span_hz / 2.0
            + self.deviation_hz
            + self.symbol_rate_hz
        )

    def generate(
        self,
        n_samples: int,
        sample_rate: float,
        wanted_power_watts: float,
        rng: np.random.Generator,
    ) -> Signal:
        """Synthesize the hopping burst train over ``n_samples``."""
        if self.slot_s <= 0 or self.burst_s <= 0:
            raise ValueError("slot_s and burst_s must be positive")
        out = np.zeros(int(n_samples), dtype=complex)
        slot_len = max(int(round(self.slot_s * sample_rate)), 1)
        burst_len = max(
            min(int(round(self.burst_s * sample_rate)), slot_len), 1
        )
        n_channels = max(int(round(self.span_hz / self.hop_spacing_hz)), 1)
        for start in range(0, out.size, slot_len):
            # One occupancy draw and (when occupied) one hop draw per
            # slot, in slot order — a deterministic schedule per stream.
            if float(rng.random()) >= self.duty:
                continue
            channel = int(rng.integers(n_channels))
            hop_hz = (
                self.offset_hz
                + (channel - (n_channels - 1) / 2.0) * self.hop_spacing_hz
            )
            length = min(burst_len, out.size - start)
            n_symbols = (
                int(np.ceil(length * self.symbol_rate_hz / sample_rate)) + 1
            )
            symbols = 2.0 * rng.integers(0, 2, n_symbols) - 1.0
            index = (
                np.arange(length) * self.symbol_rate_hz / sample_rate
            ).astype(int)
            inst_hz = hop_hz + symbols[index] * self.deviation_hz
            phase = 2.0 * np.pi * np.cumsum(inst_hz) / sample_rate
            out[start : start + length] = np.exp(1j * phase)
        scaled = scale_to_excess(
            out, wanted_power_watts, self.excess_db, self.power_convention
        )
        return Signal(scaled, sample_rate)


@dataclass
class MicrowaveOvenEmitter:
    """Duty-cycled swept-carrier burst noise (microwave-oven style).

    A magnetron radiates only during one half of the mains cycle and
    its frequency sweeps with the anode voltage; the model is a linear
    chirp of width ``sweep_hz`` across each ``duty``-fraction on-window
    of the ``period_s`` cycle, with a uniformly random mains phase per
    packet window.

    Attributes:
        excess_db: emitter power over the wanted reference, under
            ``power_convention``.
        offset_hz: center frequency relative to the wanted carrier.
        sweep_hz: chirp width during the on-window.
        period_s: burst repetition period (mains half-cycle, ~8.3 ms at
            60 Hz; scenario presets shrink it so a WLAN packet window
            sees on/off transitions).
        duty: fraction of each period the magnetron radiates.
        power_convention: see :mod:`repro.channel.interference`.
    """

    excess_db: float = 0.0
    offset_hz: float = 0.0
    sweep_hz: float = 8e6
    period_s: float = 8.33e-3
    duty: float = 0.5
    power_convention: str = "active"

    kind = "microwave"

    @property
    def label(self) -> str:
        return "microwave"

    @property
    def required_halfband_hz(self) -> float:
        """One-sided bandwidth the envelope must represent (Nyquist)."""
        # 1 MHz margin covers the gating splatter of the on/off edges.
        return abs(self.offset_hz) + self.sweep_hz / 2.0 + 1e6

    def generate(
        self,
        n_samples: int,
        sample_rate: float,
        wanted_power_watts: float,
        rng: np.random.Generator,
    ) -> Signal:
        """Synthesize the gated chirp over ``n_samples``."""
        if self.period_s <= 0 or not 0.0 < self.duty <= 1.0:
            raise ValueError("period_s must be positive and duty in (0, 1]")
        t = np.arange(int(n_samples)) / float(sample_rate)
        mains_phase = float(rng.uniform(0.0, self.period_s))
        position = (t + mains_phase) % self.period_s
        on_s = self.duty * self.period_s
        on = position < on_s
        fraction = np.where(on, position / on_s, 0.0)
        inst_hz = self.offset_hz + self.sweep_hz * (fraction - 0.5)
        phase = 2.0 * np.pi * np.cumsum(inst_hz) / sample_rate
        out = np.where(on, np.exp(1j * phase), 0.0 + 0.0j)
        scaled = scale_to_excess(
            out, wanted_power_watts, self.excess_db, self.power_convention
        )
        return Signal(scaled, sample_rate)
