"""Independent reference implementations of the 802.11a TX stages.

Every function here re-implements one clause-17 processing step directly
from the standard's prose and tables — scalar loops, explicit shift
registers, literal lookup tables — sharing *no* code with the vectorized
production pipeline in :mod:`repro.dsp`.  The conformance harness
(:mod:`repro.qa.vectors`) compares the two implementations stage by
stage; because the code paths are disjoint, a bug would have to be made
twice, independently, to go unnoticed (classic differential testing, in
the spirit of Annex G of IEEE Std 802.11a-1999).

Conventions match the standard exactly:

* bits are transmitted LSB-first within each PSDU byte (17.3.5.3);
* the scrambler/descrambler is the x^7 + x^4 + 1 LFSR (17.3.5.4);
* the convolutional code is K=7 with g0=133, g1=171 octal (17.3.5.5);
* puncturing steals the clause-17 figure-140/141 bit positions;
* the interleaver applies the two block permutations of 17.3.5.6;
* constellation mappings follow the Gray-coded tables of 17.3.5.7;
* OFDM symbols are built by a direct DFT sum over subcarriers -26..26
  with the pilot polarity sequence of 17.3.5.9.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

# --------------------------------------------------------------------------
# Rate-dependent parameters (table 78), written out literally.
# --------------------------------------------------------------------------

#: rate [Mbit/s] -> (modulation, (k, n) coding rate, N_BPSC, N_CBPS, N_DBPS)
RATE_TABLE: Dict[int, Tuple[str, Tuple[int, int], int, int, int]] = {
    6: ("BPSK", (1, 2), 1, 48, 24),
    9: ("BPSK", (3, 4), 1, 48, 36),
    12: ("QPSK", (1, 2), 2, 96, 48),
    18: ("QPSK", (3, 4), 2, 96, 72),
    24: ("QAM16", (1, 2), 4, 192, 96),
    36: ("QAM16", (3, 4), 4, 192, 144),
    48: ("QAM64", (2, 3), 6, 288, 192),
    54: ("QAM64", (3, 4), 6, 288, 216),
}

#: RATE field bit patterns of table 80 (transmitted first bit first).
RATE_FIELD_BITS: Dict[int, Tuple[int, int, int, int]] = {
    6: (1, 1, 0, 1), 9: (1, 1, 1, 1), 12: (0, 1, 0, 1), 18: (0, 1, 1, 1),
    24: (1, 0, 0, 1), 36: (1, 0, 1, 1), 48: (0, 0, 0, 1), 54: (0, 0, 1, 1),
}

#: Pilot subcarriers (17.3.5.9) and their un-rotated values.
PILOT_CARRIERS: Tuple[int, ...] = (-21, -7, 7, 21)
PILOT_VALUES: Dict[int, float] = {-21: 1.0, -7: 1.0, 7: 1.0, 21: -1.0}

#: Data subcarriers: -26..26 skipping DC and the pilots, ascending.
DATA_CARRIERS: Tuple[int, ...] = tuple(
    k for k in range(-26, 27) if k != 0 and k not in PILOT_CARRIERS
)


# --------------------------------------------------------------------------
# Scrambler (17.3.5.4)
# --------------------------------------------------------------------------
def scrambler_sequence(seed: int, n: int) -> List[int]:
    """First ``n`` output bits of the x^7 + x^4 + 1 LFSR.

    The register is kept as an explicit list ``b[0..6]`` with ``b[0]``
    the newest bit (x^1) and ``b[6]`` the oldest (x^7); the feedback —
    which is also the output — is ``x^7 XOR x^4``.  ``seed`` packs the
    register LSB-to-``b[0]``, matching :class:`repro.dsp.scrambler.Scrambler`.
    """
    if not 1 <= seed <= 127:
        raise ValueError("seed must be a non-zero 7-bit value")
    reg = [(seed >> i) & 1 for i in range(7)]
    out = []
    for _ in range(n):
        feedback = reg[6] ^ reg[3]
        out.append(feedback)
        reg = [feedback] + reg[:6]
    return out


def scramble(bits: Sequence[int], seed: int) -> List[int]:
    """XOR ``bits`` with the scrambling sequence from ``seed``."""
    seq = scrambler_sequence(seed, len(bits))
    return [int(b) ^ s for b, s in zip(bits, seq)]


def pilot_polarity_sequence() -> List[int]:
    """The 127-element polarity sequence p_n as +1/-1 (17.3.5.9)."""
    return [1 - 2 * b for b in scrambler_sequence(0b1111111, 127)]


# --------------------------------------------------------------------------
# Convolutional encoder + puncturing (17.3.5.5)
# --------------------------------------------------------------------------
# Generator taps as delay indices, read off the octal polynomials:
#   g0 = 133 octal = 1 011 011 binary -> d[n], d[n-2], d[n-3], d[n-5], d[n-6]
#   g1 = 171 octal = 1 111 001 binary -> d[n], d[n-1], d[n-2], d[n-3], d[n-6]
_G0_DELAYS = (0, 2, 3, 5, 6)
_G1_DELAYS = (0, 1, 2, 3, 6)


def convolutional_encode(bits: Sequence[int]) -> List[int]:
    """Rate-1/2 encoding into the interleaved stream A0 B0 A1 B1 ...

    A six-element shift register (zero-initialized, as guaranteed by the
    six tail bits of the previous frame) is advanced one input bit at a
    time; output A comes from g0, output B from g1.
    """
    register = [0, 0, 0, 0, 0, 0]
    out = []
    for bit in bits:
        history = [int(bit)] + register  # history[d] = d[n-d]
        a = 0
        for d in _G0_DELAYS:
            a ^= history[d]
        b = 0
        for d in _G1_DELAYS:
            b ^= history[d]
        out.append(a)
        out.append(b)
        register = history[:6]
    return out


#: Per-period keep flags for the (A_j, B_j) pairs of figures 140/141:
#: rate 2/3 steals B1 of every two pairs; rate 3/4 steals B1 and A2 of
#: every three pairs.
_KEEP_PATTERNS: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {
    (1, 2): ((1, 1),),
    (2, 3): ((1, 1), (1, 0)),
    (3, 4): ((1, 1), (1, 0), (0, 1)),
}


def puncture(coded: Sequence[int], rate: Tuple[int, int]) -> List[int]:
    """Puncture an A/B-interleaved rate-1/2 stream to ``rate``."""
    pattern = _KEEP_PATTERNS[tuple(rate)]
    if len(coded) % 2:
        raise ValueError("coded stream must hold whole (A, B) pairs")
    out = []
    for pair_index in range(len(coded) // 2):
        keep_a, keep_b = pattern[pair_index % len(pattern)]
        if keep_a:
            out.append(int(coded[2 * pair_index]))
        if keep_b:
            out.append(int(coded[2 * pair_index + 1]))
    return out


# --------------------------------------------------------------------------
# Interleaver (17.3.5.6)
# --------------------------------------------------------------------------
def interleave(bits: Sequence[int], n_cbps: int, n_bpsc: int) -> List[int]:
    """Two-permutation block interleaver, one N_CBPS block at a time.

    First permutation (equation 16):
        ``i = (N_CBPS/16) (k mod 16) + floor(k/16)``
    Second permutation (equation 17), with ``s = max(N_BPSC/2, 1)``:
        ``j = s floor(i/s) + (i + N_CBPS - floor(16 i / N_CBPS)) mod s``
    """
    if len(bits) % n_cbps:
        raise ValueError("bit count must be a multiple of N_CBPS")
    s = max(n_bpsc // 2, 1)
    out: List[int] = [0] * len(bits)
    for block in range(len(bits) // n_cbps):
        base = block * n_cbps
        first: List[int] = [0] * n_cbps
        for k in range(n_cbps):
            i = (n_cbps // 16) * (k % 16) + k // 16
            first[i] = int(bits[base + k])
        for i in range(n_cbps):
            j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
            out[base + j] = first[i]
    return out


# --------------------------------------------------------------------------
# Constellation mapping (17.3.5.7)
# --------------------------------------------------------------------------
#: Gray-coded PAM tables written out from tables 81-83: input bits
#: (first-transmitted first) -> I or Q level before K_MOD scaling.
_BPSK_TABLE: Dict[Tuple[int, ...], float] = {(0,): -1.0, (1,): 1.0}
_QPSK_TABLE: Dict[Tuple[int, ...], float] = {(0,): -1.0, (1,): 1.0}
_QAM16_TABLE: Dict[Tuple[int, ...], float] = {
    (0, 0): -3.0, (0, 1): -1.0, (1, 1): 1.0, (1, 0): 3.0,
}
_QAM64_TABLE: Dict[Tuple[int, ...], float] = {
    (0, 0, 0): -7.0, (0, 0, 1): -5.0, (0, 1, 1): -3.0, (0, 1, 0): -1.0,
    (1, 1, 0): 1.0, (1, 1, 1): 3.0, (1, 0, 1): 5.0, (1, 0, 0): 7.0,
}

#: Normalization K_MOD of table 84.
_K_MOD: Dict[str, float] = {
    "BPSK": 1.0,
    "QPSK": 1.0 / math.sqrt(2.0),
    "QAM16": 1.0 / math.sqrt(10.0),
    "QAM64": 1.0 / math.sqrt(42.0),
}

_DIM_TABLES: Dict[str, Dict[Tuple[int, ...], float]] = {
    "QPSK": _QPSK_TABLE, "QAM16": _QAM16_TABLE, "QAM64": _QAM64_TABLE,
}


def map_symbol_levels(
    bits: Sequence[int], modulation: str
) -> List[Tuple[int, int]]:
    """Map bits to un-normalized integer (I, Q) constellation levels.

    BPSK places its single level on I with Q = 0.  Returning integer
    levels keeps the reference corpus exactly representable.
    """
    if modulation == "BPSK":
        return [(int(_BPSK_TABLE[(int(b),)]), 0) for b in bits]
    table = _DIM_TABLES[modulation]
    half = {"QPSK": 1, "QAM16": 2, "QAM64": 3}[modulation]
    if len(bits) % (2 * half):
        raise ValueError("bit count not a multiple of N_BPSC")
    out = []
    for g in range(len(bits) // (2 * half)):
        group = [int(b) for b in bits[g * 2 * half:(g + 1) * 2 * half]]
        i_level = table[tuple(group[:half])]
        q_level = table[tuple(group[half:])]
        out.append((int(i_level), int(q_level)))
    return out


def map_symbols(bits: Sequence[int], modulation: str) -> np.ndarray:
    """Map bits to K_MOD-normalized complex constellation points."""
    k_mod = _K_MOD[modulation]
    levels = map_symbol_levels(bits, modulation)
    return np.array([k_mod * (i + 1j * q) for i, q in levels])


# --------------------------------------------------------------------------
# OFDM symbol assembly (17.3.5.9) — direct DFT sum
# --------------------------------------------------------------------------
#: Occupied subcarriers and the matching time-domain normalization.
_N_USED = len(DATA_CARRIERS) + len(PILOT_CARRIERS)

_PILOT_POLARITY = None  # built lazily; reference code avoids import-time work


def _polarity(index: int) -> int:
    global _PILOT_POLARITY
    if _PILOT_POLARITY is None:
        _PILOT_POLARITY = pilot_polarity_sequence()
    return _PILOT_POLARITY[index % 127]


def ofdm_symbol(
    data_points: Sequence[complex], polarity: int
) -> np.ndarray:
    """One 80-sample OFDM symbol (16-sample CP + 64) by direct DFT.

    ``x[n] = (1/sqrt(52)) * sum_k c_k exp(j 2 pi k n / 64)`` over the 52
    occupied subcarriers, with pilots scaled by ``polarity``.
    """
    if len(data_points) != len(DATA_CARRIERS):
        raise ValueError("expected 48 data points")
    carriers: Dict[int, complex] = dict(zip(DATA_CARRIERS, data_points))
    for k in PILOT_CARRIERS:
        carriers[k] = PILOT_VALUES[k] * polarity
    body = np.zeros(64, dtype=complex)
    scale = 1.0 / math.sqrt(_N_USED)
    for n in range(64):
        acc = 0.0 + 0.0j
        for k, value in carriers.items():
            acc += value * np.exp(2j * np.pi * k * n / 64.0)
        body[n] = scale * acc
    return np.concatenate([body[-16:], body])


def data_field_ofdm(symbol_points: np.ndarray) -> np.ndarray:
    """Modulate DATA-field constellation rows; symbol ``n`` uses p_{n+1}."""
    rows = np.asarray(symbol_points, dtype=complex).reshape(-1, 48)
    return np.concatenate(
        [ofdm_symbol(row, _polarity(n + 1)) for n, row in enumerate(rows)]
    )


# --------------------------------------------------------------------------
# Preamble (17.3.3) — direct DFT from the literal S_k / L_k sequences
# --------------------------------------------------------------------------
#: Non-zero short-training subcarriers (equation 7), before the
#: sqrt(13/6) power normalization.
_STF_CARRIERS: Dict[int, complex] = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j,
    -8: -1 - 1j, -4: 1 + 1j, 4: -1 - 1j, 8: -1 - 1j,
    12: 1 + 1j, 16: 1 + 1j, 20: 1 + 1j, 24: 1 + 1j,
}

#: Long-training sequence L_-26..26 (equation 8).
_LTF_SEQUENCE = (
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
    1, -1, 1, 1, 1, 1,
    0,
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
    -1, 1, -1, 1, 1, 1, 1,
)


def _dft64(carriers: Dict[int, complex]) -> np.ndarray:
    scale = 1.0 / math.sqrt(_N_USED)
    out = np.zeros(64, dtype=complex)
    for n in range(64):
        acc = 0.0 + 0.0j
        for k, value in carriers.items():
            acc += value * np.exp(2j * np.pi * k * n / 64.0)
        out[n] = scale * acc
    return out


def short_training_field() -> np.ndarray:
    """Ten periods of the 16-sample short training symbol."""
    amplitude = math.sqrt(13.0 / 6.0)
    carriers = {k: amplitude * v for k, v in _STF_CARRIERS.items()}
    period = _dft64(carriers)[:16]
    return np.concatenate([period] * 10)


def long_training_field() -> np.ndarray:
    """32-sample guard followed by two 64-sample long training symbols."""
    carriers = {
        k: complex(v)
        for k, v in zip(range(-26, 27), _LTF_SEQUENCE)
        if v
    }
    symbol = _dft64(carriers)
    return np.concatenate([symbol[-32:], symbol, symbol])


# --------------------------------------------------------------------------
# SIGNAL field (17.3.4) and DATA field (17.3.5.3)
# --------------------------------------------------------------------------
def signal_field_bits(rate_mbps: int, length_bytes: int) -> List[int]:
    """RATE(4) + reserved + LENGTH(12, LSB first) + parity + 6 tail bits."""
    bits = [0] * 24
    bits[0:4] = list(RATE_FIELD_BITS[rate_mbps])
    for i in range(12):
        bits[5 + i] = (length_bytes >> i) & 1
    bits[17] = sum(bits[0:17]) % 2
    return bits


def signal_symbol(rate_mbps: int, length_bytes: int) -> np.ndarray:
    """The SIGNAL OFDM symbol: BPSK, rate 1/2, unscrambled, polarity +1."""
    coded = convolutional_encode(signal_field_bits(rate_mbps, length_bytes))
    interleaved = interleave(coded, n_cbps=48, n_bpsc=1)
    return ofdm_symbol(map_symbols(interleaved, "BPSK"), polarity=1)


def data_field_bits(
    psdu: Sequence[int], rate_mbps: int, seed: int
) -> List[int]:
    """Scrambled SERVICE + PSDU + tail + pad bits, tail re-zeroed."""
    _, _, _, _, n_dbps = RATE_TABLE[rate_mbps]
    psdu_bits: List[int] = []
    for byte in psdu:
        for i in range(8):  # LSB of each octet is transmitted first
            psdu_bits.append((int(byte) >> i) & 1)
    n_payload = 16 + len(psdu_bits) + 6
    n_symbols = (n_payload + n_dbps - 1) // n_dbps
    bits = [0] * 16 + psdu_bits
    bits += [0] * (n_symbols * n_dbps - len(bits))
    scrambled = scramble(bits, seed)
    tail_start = 16 + len(psdu_bits)
    for i in range(tail_start, tail_start + 6):
        scrambled[i] = 0
    return scrambled


def transmit(
    psdu: Sequence[int], rate_mbps: int, seed: int
) -> np.ndarray:
    """Full PPDU: preamble + SIGNAL + encoded DATA field."""
    modulation, coding_rate, n_bpsc, n_cbps, _ = RATE_TABLE[rate_mbps]
    bits = data_field_bits(psdu, rate_mbps, seed)
    coded = puncture(convolutional_encode(bits), coding_rate)
    interleaved = interleave(coded, n_cbps, n_bpsc)
    points = map_symbols(interleaved, modulation)
    return np.concatenate(
        [
            short_training_field(),
            long_training_field(),
            signal_symbol(rate_mbps, len(psdu)),
            data_field_ofdm(points),
        ]
    )
