"""Deterministic fuzz / differential harnesses.

Two targets, both seeded so every failure is reproducible:

* the netlist hand-off (:mod:`repro.flow.netlist`): randomized valid
  configurations must survive export -> import -> export with exact
  text and configuration equality, and randomly mutated netlist text
  must either parse or raise :class:`~repro.flow.netlist.NetlistError`
  — never any other exception (no crashes, hangs or index faults);
* the PHY itself: random payloads at every 802.11a rate must survive
  a clean TX -> RX loopback bit-exactly.

The regression corpus under ``tests/data/netlist/`` freezes both the
valid round-trip cases and previously-interesting malformed inputs;
:func:`replay_corpus` re-runs all of them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.flow.netlist import (
    NetlistCompiler,
    NetlistError,
    frontend_to_netlist,
    netlist_to_config,
)
from repro.rf.frontend import FrontendConfig


@dataclass
class FuzzFailure:
    """One fuzz finding."""

    kind: str
    case: str
    message: str
    snippet: str = ""


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    cases: int = 0
    parsed: int = 0
    rejected: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "FuzzReport") -> "FuzzReport":
        self.cases += other.cases
        self.parsed += other.parsed
        self.rejected += other.rejected
        self.failures.extend(other.failures)
        return self


def random_frontend_config(rng: np.random.Generator) -> FrontendConfig:
    """A random but valid :class:`FrontendConfig` for round-trip fuzzing.

    Values are drawn from rounded grids so the netlist's ``%.10g``
    formatting represents every one of them exactly — the round trip is
    then required to be lossless, not merely close.
    """

    def level(lo: float, hi: float) -> float:
        return float(np.round(rng.uniform(lo, hi), 3))

    maybe_none = lambda value: None if rng.random() < 0.3 else value
    return FrontendConfig(
        sample_rate_in=20e6 * int(rng.integers(1, 9)),
        lna_gain_db=level(0, 30),
        lna_nf_db=level(0, 10),
        lna_p1db_dbm=level(-30, 0),
        lna_model="cubic" if rng.random() < 0.5 else "rapp",
        lna_am_pm_deg=level(0, 10),
        mixer1_gain_db=level(-5, 15),
        mixer1_nf_db=level(0, 15),
        mixer1_iip3_dbm=level(-10, 25),
        image_rejection_db=(
            np.inf if rng.random() < 0.5 else level(20, 60)
        ),
        mixer2_gain_db=level(-5, 15),
        mixer2_nf_db=level(0, 15),
        mixer2_iip3_dbm=level(-10, 25),
        dc_offset_dbm=maybe_none(level(-80, -30)),
        flicker_power_dbm=maybe_none(level(-100, -50)),
        flicker_corner_hz=float(rng.choice([1e5, 5e5, 1e6, 2e6])),
        iq_amplitude_db=level(0, 1),
        iq_phase_deg=level(0, 5),
        lo_error_ppm=level(-40, 40),
        lo_phase_noise_dbc_hz=maybe_none(level(-120, -80)),
        hpf_enabled=bool(rng.random() < 0.8),
        hpf_cutoff_hz=float(rng.choice([60e3, 120e3, 240e3])),
        hpf_order=int(rng.integers(1, 4)),
        lpf_edge_hz=float(rng.choice([7e6, 8.6e6, 10e6])),
        lpf_order=int(rng.integers(3, 9)),
        lpf_ripple_db=float(rng.choice([0.1, 0.5, 1.0])),
        agc_target_dbm=level(-20, -6),
        adc_bits=None if rng.random() < 0.2 else int(rng.integers(6, 13)),
        adc_full_scale_dbm=level(-3, 3),
    )


def check_round_trip(config: FrontendConfig) -> Optional[str]:
    """Export -> import -> export must be lossless.

    Returns an error description, or None when the round trip holds.
    """
    text1 = frontend_to_netlist(config)
    recovered = netlist_to_config(text1)
    text2 = frontend_to_netlist(recovered)
    if text1 != text2:
        return "netlist text not idempotent across import/export"
    if netlist_to_config(text2) != recovered:
        return "re-imported configuration differs"
    return None


def fuzz_round_trip(n_cases: int = 50, seed: int = 0) -> FuzzReport:
    """Round-trip fuzz over random valid configurations."""
    rng = np.random.default_rng(seed)
    report = FuzzReport()
    for i in range(n_cases):
        report.cases += 1
        config = random_frontend_config(rng)
        try:
            error = check_round_trip(config)
        except Exception as exc:  # any exception on valid input is a bug
            report.failures.append(
                FuzzFailure(
                    kind="round_trip_crash",
                    case=f"seed={seed} case={i}",
                    message=f"{type(exc).__name__}: {exc}",
                    snippet=frontend_to_netlist(config)[:300],
                )
            )
            continue
        if error is None:
            report.parsed += 1
        else:
            report.failures.append(
                FuzzFailure(
                    kind="round_trip_mismatch",
                    case=f"seed={seed} case={i}",
                    message=error,
                    snippet=frontend_to_netlist(config)[:300],
                )
            )
    return report


#: Mutation operators applied to well-formed netlist text.
_MUTATIONS = (
    "drop_line",
    "duplicate_line",
    "truncate",
    "flip_char",
    "insert_token",
    "corrupt_value",
    "shuffle_lines",
    "strip_endmodule",
)


def mutate_netlist(text: str, rng: np.random.Generator) -> str:
    """Apply one random structural or textual mutation."""
    op = str(rng.choice(_MUTATIONS))
    lines = text.splitlines()
    if op == "drop_line" and len(lines) > 1:
        del lines[int(rng.integers(len(lines)))]
        return "\n".join(lines) + "\n"
    if op == "duplicate_line" and lines:
        i = int(rng.integers(len(lines)))
        lines.insert(i, lines[i])
        return "\n".join(lines) + "\n"
    if op == "truncate" and len(text) > 2:
        return text[: int(rng.integers(1, len(text)))]
    if op == "flip_char" and text:
        i = int(rng.integers(len(text)))
        repl = chr(int(rng.integers(32, 127)))
        return text[:i] + repl + text[i + 1 :]
    if op == "insert_token":
        i = int(rng.integers(len(lines) + 1))
        token = str(
            rng.choice(
                [
                    "garbage line without structure",
                    "  unknown_prim #(.x(1)) U1 (a, b);",
                    "  lna #() LNA_DUP (rf_in, nx);",
                    "  parameter real sample_rate_in = nonsense;",
                    "\x00\x01binary\x02",
                ]
            )
        )
        lines.insert(i, token)
        return "\n".join(lines) + "\n"
    if op == "corrupt_value":
        return text.replace("(", "((", 1)
    if op == "shuffle_lines" and len(lines) > 2:
        perm = rng.permutation(len(lines))
        return "\n".join(lines[i] for i in perm) + "\n"
    if op == "strip_endmodule":
        return text.replace("endmodule", "")
    return text + "//"


def fuzz_parser(n_cases: int = 200, seed: int = 0) -> FuzzReport:
    """Mutation fuzz: the parser must reject cleanly, never crash.

    Each case mutates the default netlist one to three times and feeds
    it to :func:`netlist_to_config` and the :class:`NetlistCompiler`.
    Accepting the input is fine (some mutations are harmless); any
    exception other than :class:`NetlistError` is recorded as a crash.
    """
    rng = np.random.default_rng(seed)
    base = frontend_to_netlist(FrontendConfig())
    report = FuzzReport()
    for i in range(n_cases):
        report.cases += 1
        text = base
        for _ in range(int(rng.integers(1, 4))):
            text = mutate_netlist(text, rng)
        try:
            NetlistCompiler(target="ams").compile(text)
            report.parsed += 1
        except NetlistError:
            report.rejected += 1
        except Exception as exc:
            report.failures.append(
                FuzzFailure(
                    kind="parser_crash",
                    case=f"seed={seed} case={i}",
                    message=f"{type(exc).__name__}: {exc}",
                    snippet=text[:300],
                )
            )
    return report


def replay_corpus(directory: str) -> FuzzReport:
    """Replay the committed regression corpus.

    ``valid_*.net`` files must round-trip losslessly; ``malformed_*.net``
    files must parse or fail with :class:`NetlistError` only.
    """
    report = FuzzReport()
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".net"):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8", errors="surrogateescape") as fh:
            text = fh.read()
        report.cases += 1
        if name.startswith("valid_"):
            try:
                config = netlist_to_config(text)
                error = check_round_trip(config)
            except Exception as exc:
                report.failures.append(
                    FuzzFailure(
                        kind="corpus_valid_crash",
                        case=name,
                        message=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            if error is None:
                report.parsed += 1
            else:
                report.failures.append(
                    FuzzFailure(
                        kind="corpus_round_trip", case=name, message=error
                    )
                )
        else:
            try:
                NetlistCompiler(target="ams").compile(text)
                report.parsed += 1
            except NetlistError:
                report.rejected += 1
            except Exception as exc:
                report.failures.append(
                    FuzzFailure(
                        kind="corpus_crash",
                        case=name,
                        message=f"{type(exc).__name__}: {exc}",
                    )
                )
    return report


@dataclass
class LoopbackResult:
    """One TX -> RX loopback trial."""

    rate_mbps: int
    psdu_bytes: int
    ok: bool
    failure: str = ""


def loopback_trial(
    rate_mbps: int, psdu_bytes: int, seed: int = 0
) -> LoopbackResult:
    """Random payload through a clean TX -> RX chain, must decode exactly.

    Uses the real (non-genie) receiver over a noiseless channel with
    guard padding, so synchronization, SIGNAL decoding and the full
    decode path are all on the hook.
    """
    from repro.dsp.receiver import Receiver, RxConfig
    from repro.dsp.transmitter import Transmitter, TxConfig, random_psdu

    rng = np.random.default_rng(seed)
    psdu = random_psdu(psdu_bytes, rng)
    tx = Transmitter(TxConfig(rate_mbps=rate_mbps))
    samples = tx.transmit(psdu)
    padded = np.concatenate(
        [np.zeros(120, complex), samples, np.zeros(120, complex)]
    )
    result = Receiver(RxConfig()).receive(padded)
    if not result.success:
        return LoopbackResult(
            rate_mbps, psdu_bytes, False, f"decode failed: {result.failure}"
        )
    if result.psdu.size != psdu.size or not np.array_equal(result.psdu, psdu):
        return LoopbackResult(rate_mbps, psdu_bytes, False, "payload mismatch")
    return LoopbackResult(rate_mbps, psdu_bytes, True)


def fuzz_loopback(
    trials_per_rate: int = 2, seed: int = 0, max_psdu_bytes: int = 120
) -> List[LoopbackResult]:
    """Random-payload loopback across all eight 802.11a rates."""
    from repro.dsp.params import RATES

    rng = np.random.default_rng(seed)
    results = []
    for rate in sorted(RATES):
        for t in range(trials_per_rate):
            n = int(rng.integers(1, max_psdu_bytes + 1))
            results.append(
                loopback_trial(rate, n, seed=int(rng.integers(2**31)))
            )
    return results
