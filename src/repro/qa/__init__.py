"""Independent-reference QA: conformance vectors, oracles, fuzz.

The paper's subject is *verification* — this package verifies the
verifier.  Instead of checking the implementation against frozen
snapshots of itself, everything here derives from references that
exist outside :mod:`repro.dsp` / :mod:`repro.rf`:

* :mod:`repro.qa.reference` — a scalar, table-driven 802.11a encoder
  written independently of the production chain;
* :mod:`repro.qa.vectors` — the frozen Annex-G-style corpus generated
  from that reference (worked 36 Mbit/s example + all-rate digests);
* :mod:`repro.qa.oracles` — closed-form AWGN BER and Friis cascade
  budgets with statistical acceptance bounds;
* :mod:`repro.qa.fuzz` — deterministic netlist and PHY-loopback fuzz
  harnesses plus the committed regression corpus;
* :mod:`repro.qa.harness` — the ``repro qa`` orchestrator persisting
  everything to the run store as kind ``qa``.
"""

from repro.qa.harness import (
    QaCheck,
    QaReport,
    run_fuzz_checks,
    run_oracle_checks,
    run_qa,
    run_rare_checks,
    run_vector_checks,
)
from repro.qa.oracles import (
    OracleCheck,
    check_all_uncoded_ber,
    check_cascade_characterization,
    check_coded_ber_bound,
    check_uncoded_ber,
    simulate_uncoded_ber,
    theoretical_ber,
)
from repro.qa.fuzz import (
    FuzzReport,
    fuzz_loopback,
    fuzz_parser,
    fuzz_round_trip,
    replay_corpus,
)

__all__ = [
    "QaCheck",
    "QaReport",
    "run_qa",
    "run_vector_checks",
    "run_oracle_checks",
    "run_fuzz_checks",
    "run_rare_checks",
    "OracleCheck",
    "theoretical_ber",
    "simulate_uncoded_ber",
    "check_uncoded_ber",
    "check_all_uncoded_ber",
    "check_coded_ber_bound",
    "check_cascade_characterization",
    "FuzzReport",
    "fuzz_round_trip",
    "fuzz_parser",
    "fuzz_loopback",
    "replay_corpus",
]
