"""Analytic oracles: closed-form theory the simulator must reproduce.

The conformance vectors of :mod:`repro.qa.vectors` pin the deterministic
TX chain; this module pins the *stochastic* and *analog* behavior
against results that exist independently of any implementation:

* exact AWGN bit-error probabilities for Gray-coded BPSK / QPSK /
  16-QAM / 64-QAM (the per-PAM-bit closed form of Cho & Yoon), checked
  against Monte-Carlo runs of the production mapper/demapper with a
  Wilson binomial acceptance interval;
* the coded 802.11a chain, whose measured BER must not exceed the
  uncoded theory at the same Eb/N0 (convolutional coding gain);
* Friis cascade noise figure, cascade IIP3 and cascade P1dB of the
  double-conversion front end's active line-up, checked against
  :func:`repro.flow.rfsim.characterize` over the executable models.

Every check returns an :class:`OracleCheck` so the QA harness, the CLI
and the test suite share one pass/fail record format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.special import erfc

from repro.core.metrics import BerCounter, binomial_confidence
from repro.dsp.modulation import BITS_PER_SYMBOL, Demapper, Mapper

#: Modulation of each 802.11a data rate (Mbit/s -> constellation).
RATE_MODULATIONS: Dict[int, str] = {
    6: "BPSK",
    9: "BPSK",
    12: "QPSK",
    18: "QPSK",
    24: "QAM16",
    36: "QAM16",
    48: "QAM64",
    54: "QAM64",
}


@dataclass
class OracleCheck:
    """One oracle comparison.

    Attributes:
        name: check identifier (stable across runs; used as a KPI key).
        measured: simulated value.
        expected: analytic value.
        low / high: acceptance interval the expected value (or the
            measurement, for deterministic tolerances) must fall in.
        passed: verdict.
        detail: human-readable context (sample sizes, tolerances).
    """

    name: str
    measured: float
    expected: float
    low: float
    high: float
    passed: bool
    detail: str = ""


def _qfunc(x: np.ndarray) -> np.ndarray:
    """Gaussian tail probability Q(x)."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def theoretical_ber(modulation: str, ebn0_db: float) -> float:
    """Exact AWGN bit-error probability of a Gray-coded constellation.

    BPSK/QPSK: ``Pb = Q(sqrt(2 Eb/N0))``.  Square M-QAM with Gray
    mapping on each PAM axis: the closed form of Cho & Yoon ("On the
    general BER expression of one- and two-dimensional amplitude
    modulations", IEEE Trans. Commun. 2002), which sums the exact error
    probability of every bit position of the underlying sqrt(M)-PAM.

    Args:
        modulation: "BPSK" | "QPSK" | "QAM16" | "QAM64".
        ebn0_db: Eb/N0 in dB.

    Returns:
        The bit error probability.
    """
    if modulation not in BITS_PER_SYMBOL:
        raise ValueError(f"unknown modulation {modulation!r}")
    gamma_b = 10.0 ** (ebn0_db / 10.0)
    if modulation in ("BPSK", "QPSK"):
        # QPSK is two independent BPSK channels at the same Eb/N0.
        return float(_qfunc(np.sqrt(2.0 * gamma_b)))
    m = 1 << BITS_PER_SYMBOL[modulation]  # constellation size M
    log2m = BITS_PER_SYMBOL[modulation]
    sqrt_m = int(round(np.sqrt(m)))
    bits_per_axis = log2m // 2
    # Q-function argument step: (2i+1) * sqrt(3 log2(M) Eb/N0 / (M-1)).
    base = np.sqrt(3.0 * log2m * gamma_b / (m - 1.0))
    total = 0.0
    for k in range(1, bits_per_axis + 1):
        upper = int((1 - 2.0 ** (-k)) * sqrt_m)
        pk = 0.0
        for i in range(upper):
            w = (i * (1 << (k - 1))) // sqrt_m
            sign = -1.0 if w % 2 else 1.0
            rounded = np.floor((i * (1 << (k - 1))) / sqrt_m + 0.5)
            coeff = sign * ((1 << (k - 1)) - rounded)
            pk += coeff * _qfunc((2 * i + 1) * base)
        total += (2.0 / sqrt_m) * pk
    return float(total / bits_per_axis)


@dataclass
class UncodedBerResult:
    """A Monte-Carlo uncoded BER point."""

    modulation: str
    ebn0_db: float
    bits: int
    errors: int
    ber: float


def simulate_uncoded_ber(
    modulation: str,
    ebn0_db: float,
    n_bits: int = 200_000,
    seed: int = 0,
) -> UncodedBerResult:
    """Monte-Carlo uncoded AWGN BER of the production mapper/demapper.

    Random bits run through :class:`repro.dsp.modulation.Mapper`, complex
    AWGN of the exact ``N0`` implied by ``ebn0_db`` (the constellations
    are K_MOD-normalized to unit average symbol energy), and the
    hard-decision :class:`~repro.dsp.modulation.Demapper` — the very
    objects the OFDM chain uses, with theory as the only reference.
    """
    mapper = Mapper(modulation)
    demapper = Demapper(modulation)
    n_bpsc = mapper.n_bpsc
    n_bits = (max(n_bits, n_bpsc) // n_bpsc) * n_bpsc
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=n_bits, dtype=np.uint8)
    symbols = mapper.map(bits)
    # Es = 1 by construction, so N0 = 1 / (log2(M) * Eb/N0).
    n0 = 1.0 / (n_bpsc * 10.0 ** (ebn0_db / 10.0))
    noise = np.sqrt(n0 / 2.0) * (
        rng.standard_normal(symbols.size)
        + 1j * rng.standard_normal(symbols.size)
    )
    rx_bits = demapper.demap_hard(symbols + noise)
    errors = int(np.count_nonzero(rx_bits != bits))
    return UncodedBerResult(
        modulation=modulation,
        ebn0_db=ebn0_db,
        bits=n_bits,
        errors=errors,
        ber=errors / n_bits,
    )


def check_uncoded_ber(
    modulation: str,
    ebn0_db: float,
    n_bits: int = 200_000,
    seed: int = 0,
    z: float = 4.5,
) -> OracleCheck:
    """Compare a Monte-Carlo BER point with exact theory.

    The check passes when the theoretical probability lies inside the
    Wilson score interval of the observed error count at ``z`` sigma —
    a two-sided statistical acceptance test, not a fixed tolerance.
    """
    sim = simulate_uncoded_ber(modulation, ebn0_db, n_bits=n_bits, seed=seed)
    expected = theoretical_ber(modulation, ebn0_db)
    low, high = binomial_confidence(sim.errors, sim.bits, z=z)
    passed = low <= expected <= high
    return OracleCheck(
        name=f"ber_uncoded_{modulation.lower()}",
        measured=sim.ber,
        expected=expected,
        low=low,
        high=high,
        passed=passed,
        detail=(
            f"Eb/N0={ebn0_db:g} dB, {sim.errors} errors in {sim.bits} "
            f"bits, Wilson z={z:g}"
        ),
    )


#: Default uncoded oracle operating points: Eb/N0 chosen so each
#: modulation sits near BER 1e-2..3e-2 — enough errors for a tight
#: interval at modest sample sizes.
UNCODED_ORACLE_POINTS: Dict[str, float] = {
    "BPSK": 4.0,
    "QPSK": 4.0,
    "QAM16": 8.0,
    "QAM64": 12.0,
}


def check_all_uncoded_ber(
    n_bits: int = 200_000, seed: int = 0, z: float = 4.5
) -> List[OracleCheck]:
    """The uncoded BER oracle over all four 802.11a constellations."""
    return [
        check_uncoded_ber(mod, ebn0, n_bits=n_bits, seed=seed + i, z=z)
        for i, (mod, ebn0) in enumerate(sorted(UNCODED_ORACLE_POINTS.items()))
    ]


def check_coded_ber_bound(
    rate_mbps: int = 12,
    ebn0_db: float = 8.0,
    n_packets: int = 30,
    psdu_bytes: int = 100,
    seed: int = 0,
    jobs: Optional[int] = None,
    z: float = 4.5,
) -> OracleCheck:
    """Coded-chain sanity: measured BER must not exceed uncoded theory.

    Runs the full genie-synchronized TX->AWGN->RX chain through
    :meth:`repro.core.testbench.WlanTestbench.measure_ber` at an Eb/N0
    where the convolutional code has positive coding gain (8 dB sits
    well past the soft-decision crossover even with the receiver's
    channel-estimation loss), and requires the coded BER to stay below
    the uncoded theoretical curve — a bound that holds for any working
    decoder and fails for a broken one.  The comparison uses the Wilson
    lower bound of the observed error count, so finite-sample scatter
    around a truly-compliant BER cannot raise a false alarm.
    """
    from repro.channel.awgn import ebn0_to_snr_db
    from repro.core.testbench import TestbenchConfig, WlanTestbench
    from repro.dsp.params import RATES

    modulation = RATE_MODULATIONS[rate_mbps]
    rate = RATES[rate_mbps]
    snr_db = ebn0_to_snr_db(ebn0_db, rate)
    bench = WlanTestbench(
        TestbenchConfig(
            rate_mbps=rate_mbps,
            psdu_bytes=psdu_bytes,
            snr_db=snr_db,
            genie_rx=True,
        )
    )
    measurement = bench.measure_ber(n_packets=n_packets, seed=seed, jobs=jobs)
    bound = theoretical_ber(modulation, ebn0_db)
    ber_low, _ = binomial_confidence(
        measurement.bit_errors, measurement.bits_total, z=z
    )
    passed = ber_low <= bound
    return OracleCheck(
        name=f"ber_coded_{rate_mbps}mbps",
        measured=measurement.ber,
        expected=bound,
        low=0.0,
        high=bound,
        passed=passed,
        detail=(
            f"Eb/N0={ebn0_db:g} dB (SNR {snr_db:.2f} dB), "
            f"{n_packets} packets, Wilson-low coded BER must be <= "
            f"uncoded theory"
        ),
    )


#: Stated tolerances of the cascade oracle (dB).  The measurements are
#: Monte-Carlo RF analyses over finite records, so they carry sub-dB
#: statistical scatter on top of any model error.
CASCADE_TOLERANCES_DB: Dict[str, float] = {
    "gain": 0.5,
    "nf": 0.75,
    "iip3": 1.0,
    "p1db": 1.5,
}


def check_cascade_characterization(
    seed: int = 0, jobs: Optional[int] = None
) -> List[OracleCheck]:
    """Compare ``characterize()`` with the paper cascade formulas.

    Builds the default double-conversion receiver with its signal-path
    impairments that have no place in a line-up budget disabled (DC
    offset, flicker), reassembles its active stages (LNA, mixers and
    their post-gain nonlinearities) into a measurable cascade, runs the
    full SpectreRF-style characterization suite, and checks gain / NF /
    IIP3 / P1dB against the closed-form cascade budget computed from the
    same configuration.
    """
    from repro.flow.rfsim import characterize
    from repro.rf.cascade import (
        active_stage_cascade,
        cascade_gain_db,
        cascade_iip3_dbm,
        cascade_input_p1db_dbm,
        friis_noise_figure_db,
    )
    from repro.rf.frontend import DoubleConversionReceiver, FrontendConfig

    config = FrontendConfig(dc_offset_dbm=None, flicker_power_dbm=None)
    receiver = DoubleConversionReceiver(config)
    cascade, specs = active_stage_cascade(receiver)
    result = characterize(
        cascade, sample_rate=config.sample_rate_in, seed=seed, jobs=jobs
    )
    comparisons = [
        (
            "cascade_gain_db",
            result.compression.small_signal_gain_db,
            cascade_gain_db(specs),
            CASCADE_TOLERANCES_DB["gain"],
        ),
        (
            "cascade_nf_db",
            result.noise.noise_figure_db,
            friis_noise_figure_db(specs),
            CASCADE_TOLERANCES_DB["nf"],
        ),
        (
            "cascade_iip3_dbm",
            result.intermod.iip3_dbm,
            cascade_iip3_dbm(specs),
            CASCADE_TOLERANCES_DB["iip3"],
        ),
        (
            "cascade_p1db_dbm",
            result.compression.input_p1db_dbm,
            cascade_input_p1db_dbm(specs),
            CASCADE_TOLERANCES_DB["p1db"],
        ),
    ]
    checks = []
    for name, measured, expected, tol in comparisons:
        passed = bool(
            np.isfinite(measured) and abs(measured - expected) <= tol
        )
        checks.append(
            OracleCheck(
                name=name,
                measured=float(measured),
                expected=float(expected),
                low=expected - tol,
                high=expected + tol,
                passed=passed,
                detail=f"tolerance +/-{tol:g} dB (Friis/cascade budget)",
            )
        )
    return checks


def check_probe_evm(
    modulation: str,
    esn0_db: float = 20.0,
    n_symbols: int = 4096,
    seed: int = 0,
    z: float = 4.5,
) -> OracleCheck:
    """Data-aided EVM probe against the AWGN oracle.

    A constellation at unit symbol energy plus complex AWGN of known
    ``N0`` has ``EVM_rms = sqrt(N0/Es) = (Es/N0)^(-1/2)`` in
    expectation.  ``EVM_rms**2`` is a scaled chi-square with ``2n``
    degrees of freedom, so the RMS concentrates with relative standard
    deviation ``1/(2*sqrt(n))``; the check accepts within ``z`` of
    those sigmas (the Wilson-style ``z`` the BER oracles use).
    """
    from repro.obs.probes import ProbeRegistry, probe_preset

    mapper = Mapper(modulation)
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=n_symbols * mapper.n_bpsc, dtype=np.uint8)
    ref = mapper.map(bits)
    n0 = 10.0 ** (-esn0_db / 10.0)  # Es = 1 by K_MOD normalization
    noise = np.sqrt(n0 / 2.0) * (
        rng.standard_normal(ref.size) + 1j * rng.standard_normal(ref.size)
    )
    registry = ProbeRegistry(probe_preset("basic"))
    registry.tap_evm("eq", ref + noise, ref, modulation)
    measured = registry.kpis()[f"probe.evm_rms[{modulation}]"]
    expected = float(np.sqrt(n0))
    rel = z / (2.0 * np.sqrt(n_symbols))
    low, high = expected * (1.0 - rel), expected * (1.0 + rel)
    return OracleCheck(
        name=f"probe_evm_{modulation.lower()}",
        measured=measured,
        expected=expected,
        low=low,
        high=high,
        passed=bool(low <= measured <= high),
        detail=(
            f"Es/N0={esn0_db:g} dB, {n_symbols} symbols, "
            f"+/-{100 * rel:.2f}% at z={z:g}"
        ),
    )


def check_probe_mask(seed: int = 0) -> List[OracleCheck]:
    """Transmit-mask probe discrimination.

    A clean 802.11a burst must meet the section 17.3.9 mask (the probe
    normalizes to dBr, so the worst margin of an undistorted burst is
    exactly 0 at the peak bin), while the same burst through a Rapp PA
    at 0 dB output backoff regrows spectrally and must violate it.
    """
    from repro.dsp.transmitter import Transmitter, TxConfig
    from repro.obs.probes import ProbeRegistry, probe_preset
    from repro.rf.nonlinearity import RappNonlinearity
    from repro.rf.signal import dbm_to_watts

    rng = np.random.default_rng(seed)
    psdu = rng.integers(0, 256, size=100, dtype=np.uint8)
    tx = Transmitter(TxConfig(rate_mbps=24, oversample=4))
    wave = tx.transmit(psdu)
    fs = tx.config.sample_rate

    clean = ProbeRegistry(probe_preset("basic"))
    clean.tap_mask("tx", wave, fs)
    clean_margin = clean.kpis()["probe.mask_margin_db[tx]"]

    p_avg = float(np.mean(np.abs(wave) ** 2))
    scale = np.sqrt(dbm_to_watts(0.0) / p_avg)
    pa = RappNonlinearity(gain_db=0.0, osat_dbm=0.0, smoothness=2.0)
    driven = ProbeRegistry(probe_preset("basic"))
    driven.tap_mask("pa", pa.apply(wave * scale), fs)
    driven_margin = driven.kpis()["probe.mask_margin_db[pa]"]

    return [
        OracleCheck(
            name="probe_mask_clean_tx",
            measured=clean_margin,
            expected=0.0,
            low=0.0,
            high=float("inf"),
            passed=bool(clean_margin >= 0.0),
            detail="clean 24 Mbit/s burst must meet the 17.3.9 mask",
        ),
        OracleCheck(
            name="probe_mask_pa_compression",
            measured=driven_margin,
            expected=0.0,
            low=float("-inf"),
            high=0.0,
            passed=bool(driven_margin < 0.0),
            detail=(
                "Rapp PA at 0 dB output backoff must regrow past the "
                "mask (negative margin)"
            ),
        ),
    ]
