"""The `repro qa` harness: conformance vectors + oracles + fuzz.

Orchestrates the three QA pillars into one pass/fail report:

1. **Conformance** (:mod:`repro.qa.vectors`): every TX stage of the
   production :mod:`repro.dsp` chain is checked bit-/sample-exactly
   against the frozen Annex-G-style corpus, the full-frame digests are
   checked for all eight rates, and the reference frame must decode
   back to the reference PSDU through the production receiver.
2. **Oracles** (:mod:`repro.qa.oracles`): Monte-Carlo AWGN BER of the
   four constellations against exact theory, the coded chain against
   the uncoded bound, and ``characterize()`` against the Friis cascade
   budget.
3. **Fuzz** (:mod:`repro.qa.fuzz`): netlist round-trip and mutation
   fuzzing, the committed regression corpus, and random-payload
   TX -> RX loopback over all eight rates.
4. **Probes** (:mod:`repro.obs.probes`): the data-aided EVM probe
   against the ``(Es/N0)^(-1/2)`` AWGN oracle for all four
   constellations, and transmit-mask discrimination (clean burst
   passes, PA at 0 dB backoff fails).

Results persist to the PR-2 run store as kind ``qa`` (each check
becomes a pass/fail KPI plus its measured value), so ``repro runs
diff`` gates conformance exactly like any other experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class QaCheck:
    """One QA harness check outcome."""

    section: str
    name: str
    passed: bool
    detail: str = ""
    measured: Optional[float] = None
    expected: Optional[float] = None


@dataclass
class QaReport:
    """Aggregated harness outcome."""

    checks: List[QaCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def n_failed(self) -> int:
        return sum(not c.passed for c in self.checks)

    def section(self, name: str) -> List[QaCheck]:
        return [c for c in self.checks if c.section == name]

    def as_table(self) -> str:
        from repro.core.reporting import render_table

        rows = [
            [
                c.section,
                c.name,
                "PASS" if c.passed else "FAIL",
                "" if c.measured is None else f"{c.measured:.6g}",
                "" if c.expected is None else f"{c.expected:.6g}",
                c.detail,
            ]
            for c in self.checks
        ]
        return render_table(
            ["section", "check", "verdict", "measured", "expected",
             "detail"],
            rows,
        )

    def kpis(self) -> Dict[str, float]:
        """Flattened KPI mapping for the run store."""
        out: Dict[str, float] = {
            "qa.checks_total": float(len(self.checks)),
            "qa.checks_failed": float(self.n_failed),
            "qa.passed": 1.0 if self.passed else 0.0,
        }
        for c in self.checks:
            key = f"qa.{c.section}.{c.name}"
            out[f"{key}.pass"] = 1.0 if c.passed else 0.0
            if c.measured is not None and np.isfinite(c.measured):
                out[f"{key}.measured"] = float(c.measured)
        return out


def _corpus_dir() -> Optional[str]:
    """Locate the committed netlist corpus in a dev checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    candidate = os.path.normpath(
        os.path.join(here, "..", "..", "..", "tests", "data", "netlist")
    )
    return candidate if os.path.isdir(candidate) else None


def run_vector_checks() -> List[QaCheck]:
    """Stage-by-stage conformance of the production TX chain.

    Every comparison is against the frozen corpus of
    :mod:`repro.qa.vectors` — the production code contributes only the
    *measured* side.
    """
    from repro.dsp.convcode import ConvolutionalEncoder, puncture
    from repro.dsp.interleaver import interleave
    from repro.dsp.params import RATES
    from repro.dsp.receiver import Receiver, RxConfig
    from repro.dsp.scrambler import Scrambler
    from repro.dsp.transmitter import Transmitter, TxConfig
    from repro.qa import vectors as vec

    checks: List[QaCheck] = []

    def add(name: str, ok: bool, detail: str = ""):
        checks.append(QaCheck("conformance", name, bool(ok), detail))

    psdu = vec.reference_psdu()
    rate_mbps = vec.REFERENCE_RATE_MBPS
    rate = RATES[rate_mbps]
    tx = Transmitter(
        TxConfig(rate_mbps=rate_mbps, scrambler_seed=vec.SCRAMBLER_SEED)
    )

    # Stage 1: scrambler sequence (one full 127-bit period).
    seq = Scrambler(vec.SCRAMBLER_SEED).sequence(127)
    add(
        "scrambler_sequence",
        np.array_equal(seq, vec.scrambler_sequence_bits()),
        f"seed {vec.SCRAMBLER_SEED:#09b}",
    )

    # Stage 2: scrambled DATA-field bits.
    data_bits = tx.data_field_bits(psdu)
    add(
        "data_field_bits",
        np.array_equal(data_bits, vec.data_bits()),
        f"{data_bits.size} bits at {rate_mbps} Mbit/s",
    )

    # Stage 3: convolutional mother code (rate 1/2).
    coded = ConvolutionalEncoder().encode(vec.data_bits())
    add(
        "convolutional_code",
        np.array_equal(coded, vec.coded_bits()),
        "K=7, g0=133, g1=171 (octal)",
    )

    # Stage 4: puncturing to the rate's coding rate.
    punctured = puncture(vec.coded_bits(), rate.coding_rate)
    add(
        "puncturing",
        np.array_equal(punctured, vec.punctured_bits()),
        f"rate {rate.coding_rate[0]}/{rate.coding_rate[1]}",
    )

    # Stage 5: interleaving.
    interleaved = interleave(
        vec.punctured_bits(), rate.n_cbps, rate.n_bpsc
    )
    add(
        "interleaving",
        np.array_equal(interleaved, vec.interleaved_bits()),
        f"N_CBPS={rate.n_cbps}, N_BPSC={rate.n_bpsc}",
    )

    # Stage 6: constellation mapping of the first OFDM symbol.
    points = tx.data_symbols(psdu)[0]
    add(
        "constellation_mapping",
        np.allclose(points, vec.first_symbol_points(), atol=1e-12),
        "48 16-QAM points, K_MOD normalized",
    )

    # Stage 7: OFDM modulation + full frame.
    frame = tx.transmit(psdu)
    first_symbol = frame[400:480]  # after 320 preamble + 80 SIGNAL
    add(
        "ofdm_first_symbol",
        np.allclose(
            first_symbol, vec.first_data_symbol_samples(), atol=1e-9
        ),
        "80 time samples incl. cyclic prefix",
    )
    add(
        "frame_length",
        frame.size == vec.FRAME_LENGTH,
        f"{frame.size} samples",
    )
    add(
        "frame_digest",
        vec.digest_samples(frame) == vec.FRAME_DIGEST,
        vec.FRAME_DIGEST,
    )

    # Per-rate golden digests over the shared fixed payload.
    fixed = vec.fixed_psdu()
    for mbps in sorted(vec.GOLDEN_RATE_DIGESTS):
        golden = vec.GOLDEN_RATE_DIGESTS[mbps]
        rate_tx = Transmitter(TxConfig(rate_mbps=mbps))
        bits = rate_tx.data_field_bits(fixed)
        wave = rate_tx.transmit(fixed)
        ok = (
            vec.digest_bits(bits) == golden["data_bits"]
            and wave.size == golden["n_samples"]
            and vec.digest_samples(wave) == golden["ppdu"]
        )
        add(f"golden_rate_{mbps}mbps", ok, golden["ppdu"])

    # RX loopback: the reference frame must decode to the reference PSDU.
    padded = np.concatenate(
        [np.zeros(120, complex), frame, np.zeros(120, complex)]
    )
    result = Receiver(RxConfig()).receive(padded)
    add(
        "rx_loopback_reference_frame",
        result.success and np.array_equal(result.psdu, psdu),
        result.failure if not result.success else
        f"{result.length_bytes} bytes decoded",
    )
    return checks


def run_oracle_checks(
    seed: int = 0,
    jobs: Optional[int] = None,
    quick: bool = False,
) -> List[QaCheck]:
    """Analytic-oracle comparisons (BER theory + cascade budget)."""
    from repro.qa import oracles

    n_bits = 60_000 if quick else 200_000
    checks: List[QaCheck] = []
    results = oracles.check_all_uncoded_ber(n_bits=n_bits, seed=seed)
    results.append(
        oracles.check_coded_ber_bound(
            n_packets=10 if quick else 30, seed=seed, jobs=jobs
        )
    )
    results.extend(oracles.check_cascade_characterization(seed=seed, jobs=jobs))
    for r in results:
        checks.append(
            QaCheck(
                "oracle",
                r.name,
                r.passed,
                r.detail,
                measured=r.measured,
                expected=r.expected,
            )
        )
    return checks


def run_fuzz_checks(seed: int = 0, quick: bool = False) -> List[QaCheck]:
    """Deterministic fuzz passes + regression-corpus replay."""
    from repro.qa import fuzz

    checks: List[QaCheck] = []
    rt = fuzz.fuzz_round_trip(10 if quick else 50, seed=seed)
    checks.append(
        QaCheck(
            "fuzz",
            "netlist_round_trip",
            rt.ok,
            f"{rt.cases} random configs"
            + ("" if rt.ok else f"; first: {rt.failures[0].message}"),
        )
    )
    mu = fuzz.fuzz_parser(50 if quick else 200, seed=seed)
    checks.append(
        QaCheck(
            "fuzz",
            "netlist_mutations",
            mu.ok,
            f"{mu.cases} mutated netlists ({mu.parsed} accepted, "
            f"{mu.rejected} rejected cleanly)"
            + ("" if mu.ok else f"; first: {mu.failures[0].message}"),
        )
    )
    corpus = _corpus_dir()
    if corpus is not None:
        cr = fuzz.replay_corpus(corpus)
        checks.append(
            QaCheck(
                "fuzz",
                "corpus_replay",
                cr.ok and cr.cases > 0,
                f"{cr.cases} corpus files"
                + ("" if cr.ok else f"; first: {cr.failures[0].message}"),
            )
        )
    loop = fuzz.fuzz_loopback(
        trials_per_rate=1 if quick else 2, seed=seed
    )
    bad = [r for r in loop if not r.ok]
    checks.append(
        QaCheck(
            "fuzz",
            "phy_loopback_all_rates",
            not bad,
            f"{len(loop)} random payloads over 8 rates"
            + (
                ""
                if not bad
                else f"; first: {bad[0].rate_mbps} Mbit/s {bad[0].failure}"
            ),
        )
    )
    return checks


def run_probe_checks(seed: int = 0, quick: bool = False) -> List[QaCheck]:
    """Signal-probe sanity: EVM vs the AWGN oracle + mask discrimination.

    The data-aided EVM probe must reproduce ``(Es/N0)^(-1/2)`` for all
    four 802.11a constellations within the chi-square concentration
    bound, and the transmit-mask probe must pass a clean burst while
    flagging a PA driven into compression.
    """
    from repro.qa import oracles

    n_symbols = 1024 if quick else 4096
    results = [
        oracles.check_probe_evm(m, n_symbols=n_symbols, seed=seed)
        for m in ("BPSK", "QPSK", "QAM16", "QAM64")
    ]
    results.extend(oracles.check_probe_mask(seed=seed))
    return [
        QaCheck(
            "probe",
            r.name,
            r.passed,
            r.detail,
            measured=r.measured,
            expected=r.expected,
        )
        for r in results
    ]


def _qa_identity_task(x):
    """Picklable no-op task for the timeout check."""
    return x


def _qa_sweep(seed: int):
    """The small reference sweep the resilience checks replay."""
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig

    return ParameterSweep(
        base_config=TestbenchConfig(rate_mbps=6, psdu_bytes=20),
        parameter="snr_db",
        values=[0.0, 2.0, 4.0, 6.0],
        n_packets=1,
        seed=seed,
    )


def run_resilience_checks(
    seed: int = 0, jobs: Optional[int] = None
) -> List[QaCheck]:
    """Exercise the error paths of the parallel execution layer.

    Each check injects a deterministic fault (:mod:`repro.perf.faults`)
    and asserts the recovery contract: retried and resumed runs must
    reproduce the fault-free measurement *exactly*, a killed worker must
    degrade to in-process execution, and a timeout must surface as a
    structured :class:`~repro.perf.resilience.TaskError`.
    """
    import tempfile

    from repro import obs, perf

    checks: List[QaCheck] = []

    def add(name: str, ok: bool, detail: str = ""):
        checks.append(QaCheck("resilience", name, bool(ok), detail))

    pool_jobs = jobs if jobs is not None and jobs > 1 else 2
    sweep = _qa_sweep(seed)
    clean = sweep.run(jobs=1)
    clean_bers = list(clean.bers)

    # 1. Injected failures on 2 of 4 points, one retry: bit-identical.
    with perf.fault_plan(
        perf.parse_fault_spec("sweep/fail:1@0,sweep/fail:3@0")
    ):
        retried = sweep.run(jobs=pool_jobs, retries=1)
    add(
        "retry_determinism",
        list(retried.bers) == clean_bers,
        "2/4 points failed once, 1 retry; BERs match clean run exactly",
    )

    # 2. A SIGKILLed worker breaks the pool; the region must finish
    # in-process with identical results.
    with perf.fault_plan(perf.parse_fault_spec("sweep/kill:2@0")):
        survived = sweep.run(jobs=pool_jobs, retries=1)
    add(
        "broken_pool_fallback",
        list(survived.bers) == clean_bers,
        "worker SIGKILLed mid-sweep; serial fallback matches clean run",
    )

    # 3. A delayed task must trip the per-task timeout as a TaskError.
    with perf.fault_plan(perf.parse_fault_spec("qa-timeout/delay:1=5")):
        result = perf.parallel_map(
            _qa_identity_task, [0, 1, 2], jobs=pool_jobs,
            stage="qa-timeout", task_timeout=0.25, on_error="capture",
        )
    timed_out = [r for r in result if isinstance(r, perf.TaskError)]
    add(
        "task_timeout",
        len(timed_out) == 1
        and timed_out[0].exc_type == "TaskTimeoutError"
        and timed_out[0].index == 1,
        "delayed task captured as a structured TaskTimeoutError",
    )

    # 4. Interrupt a checkpointing sweep, resume it, diff against clean.
    with tempfile.TemporaryDirectory() as tmp:
        store = obs.RunStore(tmp)
        interrupted = False
        try:
            with perf.fault_plan(perf.parse_fault_spec("sweep/abort:2")):
                sweep.run(jobs=1, store=store, resume=True)
        except perf.InjectedFault:
            interrupted = True
        resumed = sweep.run(jobs=1, store=store, resume=True)
        add(
            "resume_determinism",
            interrupted and list(resumed.bers) == clean_bers,
            "sweep aborted before point 2; resumed run matches clean "
            "run exactly",
        )
    return checks


def run_rare_checks(
    seed: int = 0,
    jobs: Optional[int] = None,
    quick: bool = False,
) -> List[QaCheck]:
    """Statistical acceptance of the rare-event (importance sampling) path.

    Unbiasedness is the whole game for a variance-reduction estimator,
    so every check is an agreement test in the *overlap regime* where
    plain Monte-Carlo, importance sampling and the Cho-Yoon closed
    forms all exist:

    * the IS weighted CI (z=4.5) must contain exact theory at a deep
      (BER ~ 1e-4) BPSK point, and so must the plain-MC Wilson CI at
      the same bit budget;
    * IS and MC must agree with each other within combined error bars;
    * the measured variance-reduction factor — the squared ratio of the
      equal-budget MC and IS confidence widths — must be at least 10
      (it is ~100 at this operating point), i.e. the IS run buys the
      same CI width with >= 10x fewer packets;
    * the weights must satisfy their own law: ``mean(w)`` within
      sampling error of 1, ESS fraction in (0, 1];
    * the full coded chain under a dimension-capped boost must keep a
      healthy ESS and agree with its own MC measurement;
    * the adaptive allocator must spend exactly its budget,
      deterministically.
    """
    from repro.channel.awgn import ebn0_to_snr_db
    from repro.core.metrics import binomial_confidence
    from repro.core.testbench import TestbenchConfig, WlanTestbench
    from repro.dsp.params import RATES
    from repro.perf import rare
    from repro.qa.oracles import theoretical_ber

    z = 4.5
    checks: List[QaCheck] = []

    def add(name, ok, detail="", measured=None, expected=None):
        checks.append(
            QaCheck("rare", name, bool(ok), detail,
                    measured=measured, expected=expected)
        )

    # -- uncoded overlap point: BPSK at analytic BER ~= 1e-4 -----------
    ebn0 = rare.ebn0_for_ber("BPSK", 1e-4)
    theory = theoretical_ber("BPSK", ebn0)
    n_packets = 120 if quick else 400
    symbols = 256
    is_meas = rare.measure_uncoded_ber(
        "BPSK", ebn0, n_packets=n_packets, symbols_per_packet=symbols,
        estimator="is", seed=seed, jobs=jobs,
    )
    mc_meas = rare.measure_uncoded_ber(
        "BPSK", ebn0, n_packets=n_packets, symbols_per_packet=symbols,
        estimator="mc", seed=seed, jobs=jobs,
    )
    budget = f"{is_meas.bits_total} bits at Eb/N0={ebn0:.2f} dB"

    low, high = is_meas.confidence(z=z)
    add(
        "rare_is_vs_oracle",
        low <= theory <= high,
        f"weighted CI [{low:.3g}, {high:.3g}] at z={z:g}, {budget}, "
        f"boost {is_meas.boost_db:.2f} dB",
        measured=is_meas.ber,
        expected=theory,
    )
    mlow, mhigh = binomial_confidence(
        mc_meas.bit_errors, mc_meas.bits_total, z=z
    )
    add(
        "rare_mc_vs_oracle",
        mlow <= theory <= mhigh,
        f"Wilson CI [{mlow:.3g}, {mhigh:.3g}] at z={z:g}, {budget}",
        measured=mc_meas.ber,
        expected=theory,
    )
    # IS vs MC agreement within combined error bars.  The pooled rate
    # guards the MC variance term against a lucky 0-error draw.
    pooled = max(mc_meas.ber, is_meas.ber, 1.0 / mc_meas.bits_total)
    sigma = float(
        np.sqrt(is_meas.stderr**2 + pooled / mc_meas.bits_total)
    )
    add(
        "rare_is_vs_mc",
        abs(is_meas.ber - mc_meas.ber) <= z * sigma,
        f"|{is_meas.ber:.3g} - {mc_meas.ber:.3g}| <= {z:g} * {sigma:.3g}",
        measured=is_meas.ber,
        expected=mc_meas.ber,
    )
    # Measured variance reduction: squared ratio of equal-budget CI
    # widths == the factor fewer packets IS needs for the same width.
    ilow, ihigh = is_meas.confidence(z=1.96)
    clow, chigh = mc_meas.confidence(z=1.96)
    width_is = max(ihigh - ilow, 1e-300)
    vr_measured = ((chigh - clow) / width_is) ** 2
    add(
        "rare_variance_reduction",
        vr_measured >= 10.0,
        f"(MC width / IS width)^2 at equal {budget}; gate >= 10",
        measured=float(vr_measured),
        expected=10.0,
    )
    add(
        "rare_vr_estimate",
        is_meas.vr_estimate >= 10.0,
        "estimator-internal variance-reduction KPI; gate >= 10",
        measured=is_meas.vr_estimate,
        expected=10.0,
    )
    # Weight law: unnormalized weights must average to 1 within their
    # own sampling error (variance recovered from the Kish ESS).
    trials = is_meas.trials
    var_w = max(
        trials * is_meas.mean_weight**2 / max(is_meas.ess, 1e-300)
        - is_meas.mean_weight**2,
        0.0,
    )
    w_sigma = float(np.sqrt(var_w / trials))
    add(
        "rare_weight_normalization",
        abs(is_meas.mean_weight - 1.0) <= z * w_sigma,
        f"|mean(w) - 1| <= {z:g} * {w_sigma:.3g} over {trials} weights",
        measured=is_meas.mean_weight,
        expected=1.0,
    )
    add(
        "rare_ess_fraction",
        0.0 < is_meas.ess_fraction <= 1.0 + 1e-12,
        f"ESS {is_meas.ess:.1f} of {trials} trials",
        measured=is_meas.ess_fraction,
    )

    # -- full coded chain under a dimension-capped boost ---------------
    chain_ebn0 = 2.0
    config = TestbenchConfig(
        rate_mbps=6,
        psdu_bytes=20,
        snr_db=ebn0_to_snr_db(chain_ebn0, RATES[6]),
        genie_rx=True,
    )
    boost = rare.dimension_capped_boost_db(
        rare.packet_noise_dimension(config)
    )
    bench = WlanTestbench(config)
    chain_packets = 16 if quick else 24
    chain_is = bench.measure_ber(
        n_packets=chain_packets, seed=seed, jobs=jobs,
        estimator="is", boost_db=boost,
    )
    chain_mc = bench.measure_ber(
        n_packets=chain_packets, seed=seed, jobs=jobs,
    )
    add(
        "rare_chain_ess",
        chain_is.ess_fraction >= 0.1,
        f"{chain_packets} coded packets at {boost:.3f} dB boost "
        f"(dimension-capped); ESS fraction must stay healthy",
        measured=chain_is.ess_fraction,
        expected=float(np.exp(-1.0)),
    )
    ilow, ihigh = chain_is.confidence(z=z)
    try:
        mlow, mhigh = binomial_confidence(
            chain_mc.bit_errors, chain_mc.bits_total, z=z
        )
    except ValueError:
        mlow, mhigh = 0.0, 1.0
    add(
        "rare_full_chain_unbiased",
        ilow <= mhigh and mlow <= ihigh,
        f"weighted CI [{ilow:.3g}, {ihigh:.3g}] overlaps MC Wilson CI "
        f"[{mlow:.3g}, {mhigh:.3g}] at z={z:g}, Eb/N0={chain_ebn0:g} dB",
        measured=chain_is.ber,
        expected=chain_mc.ber,
    )

    # -- adaptive allocation: exact budget, deterministic --------------
    budget_packets = 12 if quick else 18
    sweep = _qa_sweep(seed)
    first = rare.run_adaptive_sweep(
        sweep, budget_packets, jobs=jobs
    )
    second = rare.run_adaptive_sweep(
        sweep, budget_packets, jobs=jobs
    )
    spent = sum(p.measurement.packets for p in first.points)
    add(
        "rare_adaptive_budget",
        spent == budget_packets
        and all(p.measurement.packets >= 1 for p in first.points),
        f"{spent}/{budget_packets} packets allocated over "
        f"{len(first.points)} points, every point warmed up",
        measured=float(spent),
        expected=float(budget_packets),
    )
    add(
        "rare_adaptive_determinism",
        list(first.bers) == list(second.bers)
        and [p.measurement.packets for p in first.points]
        == [p.measurement.packets for p in second.points],
        "two adaptive runs with the same seed allocate and measure "
        "identically",
    )
    return checks


def run_scenario_checks(
    seed: int = 0, jobs: Optional[int] = None
) -> List[QaCheck]:
    """Correctness of the multi-emitter scenario library.

    The scenario path earns its keep only if it is *provably* the same
    physics as the legacy interference path and just as deterministic:

    * mixing emitters must not perturb the wanted path's random streams
      (the per-emitter streams are forked, never drawn from the caller);
    * the ``adjacent-16db`` preset must reproduce the legacy
      ``InterferenceScenario.adjacent()`` measurement bit-for-bit;
    * every emitter's burst-active power must honour its configured
      excess over the wanted reference;
    * a scenario sweep must be schedule-invariant (serial == jobs=2).
    """
    import numpy as np

    from repro.channel.interference import (
        InterferenceScenario,
        active_power_watts,
    )
    from repro.core.sweep import ParameterSweep
    from repro.core.testbench import TestbenchConfig, WlanTestbench
    from repro.scenario import Scenario

    checks: List[QaCheck] = []

    def add(name, ok, detail="", measured=None, expected=None):
        checks.append(
            QaCheck("scenario", name, bool(ok), detail,
                    measured=measured, expected=expected)
        )

    # 1. Emitter streams are forked: applying a scenario leaves the
    # caller's generator state untouched.
    rng = np.random.default_rng(seed)
    wanted = np.exp(2j * np.pi * rng.random(4096))
    from repro.rf.signal import Signal

    state_before = rng.bit_generator.state
    Scenario.preset("hostile-coexistence").apply(
        Signal(wanted.copy(), 80e6), rng
    )
    add(
        "emitter_stream_isolation",
        rng.bit_generator.state == state_before,
        "three-emitter scenario applied; caller RNG state unchanged",
    )

    # 2. Legacy equivalence at baseband: same bits, same errors.
    def measure(**channel):
        cfg = TestbenchConfig(rate_mbps=36, psdu_bytes=60, snr_db=14.0,
                              **channel)
        return WlanTestbench(cfg).measure_ber(
            n_packets=4, seed=seed, jobs=jobs
        )

    legacy = measure(interference=InterferenceScenario.adjacent())
    mixed = measure(scenario=Scenario.preset("adjacent-16db"))
    add(
        "legacy_equivalence",
        legacy.bit_errors == mixed.bit_errors
        and legacy.bits_total == mixed.bits_total,
        "adjacent +16 dB via scenario library matches the legacy "
        "interference path bit-for-bit",
        measured=mixed.ber,
        expected=legacy.ber,
    )

    # 3. Power convention: each preset emitter's burst-active power must
    # sit at its configured excess over the wanted reference.
    rng = np.random.default_rng(seed + 1)
    wanted = np.exp(2j * np.pi * rng.random(1 << 15))
    reference = active_power_watts(wanted)
    worst = 0.0
    for name in ("adjacent-16db", "bluetooth-hop", "microwave-oven"):
        scenario = Scenario.preset(name)
        for index, emitter in enumerate(scenario.emitters):
            burst = emitter.generate(
                wanted.size, 80e6, reference, np.random.default_rng(seed)
            )
            measured_db = 10.0 * np.log10(
                active_power_watts(burst.samples) / reference
            )
            worst = max(worst, abs(measured_db - emitter.excess_db))
    add(
        "power_convention",
        worst < 0.2,
        "burst-active power of every preset emitter within 0.2 dB of "
        "its configured excess",
        measured=worst,
        expected=0.0,
    )

    # 4. Schedule invariance: serial and 2-worker scenario sweeps agree
    # exactly (per-point streams come from coordinates, not schedule).
    sweep = ParameterSweep(
        base_config=TestbenchConfig(
            rate_mbps=6, psdu_bytes=20,
            scenario=Scenario.preset("co-channel"),
        ),
        parameter="snr_db",
        values=[4.0, 8.0, 12.0],
        n_packets=1,
        seed=seed,
    )
    serial = sweep.run(jobs=1)
    parallel = sweep.run(jobs=2)
    add(
        "parallel_determinism",
        list(serial.bers) == list(parallel.bers),
        "co-channel scenario sweep: serial and jobs=2 BERs identical",
    )
    return checks


def run_qa(
    seed: int = 0,
    jobs: Optional[int] = None,
    quick: bool = False,
    store=None,
    faults: bool = False,
    rare: bool = False,
    scenarios: bool = False,
) -> QaReport:
    """Run the complete QA harness.

    Args:
        seed: base random seed for every stochastic check.
        jobs: worker processes for the parallelizable analyses.
        quick: reduce sample sizes (CI smoke / tier-1 friendly).
        store: optional :class:`repro.obs.RunStore`; results also attach
            to the ambient run writer when the CLI installed one.
        faults: additionally run the fault-injection resilience section
            (retry/fallback/timeout/resume determinism).
        rare: additionally run the rare-event estimator section
            (importance-sampling unbiasedness vs MC and closed-form
            oracles, variance-reduction gate, adaptive allocation).
        scenarios: additionally run the multi-emitter scenario section
            (stream isolation, legacy-path equivalence, power
            convention, schedule invariance).

    Returns:
        The aggregated :class:`QaReport`.
    """
    from repro import obs

    report = QaReport()
    with obs.span("qa:conformance"):
        report.checks.extend(run_vector_checks())
    with obs.span("qa:oracles"):
        report.checks.extend(
            run_oracle_checks(seed=seed, jobs=jobs, quick=quick)
        )
    with obs.span("qa:fuzz"):
        report.checks.extend(run_fuzz_checks(seed=seed, quick=quick))
    with obs.span("qa:probes"):
        report.checks.extend(run_probe_checks(seed=seed, quick=quick))
    if faults:
        with obs.span("qa:resilience"):
            report.checks.extend(
                run_resilience_checks(seed=seed, jobs=jobs)
            )
    if rare:
        with obs.span("qa:rare"):
            report.checks.extend(
                run_rare_checks(seed=seed, jobs=jobs, quick=quick)
            )
    if scenarios:
        with obs.span("qa:scenario"):
            report.checks.extend(
                run_scenario_checks(seed=seed, jobs=jobs)
            )
    obs.contribute(
        store,
        kind="qa",
        name="qa",
        seed=seed,
        config={"quick": quick, "faults": faults, "rare": rare,
                "scenarios": scenarios},
        tables={"qa_checks": report.as_table()},
        kpis=report.kpis(),
    )
    return report
