"""Deterministic fault injection for the parallel execution layer.

The error paths of :func:`repro.perf.parallel_map` — task exceptions,
killed workers, timeouts, parent crashes mid-campaign — are themselves
verified code: tests and the ``repro qa --faults`` harness inject
faults here and assert that retries, the broken-pool fallback, and
checkpoint/resume reproduce a fault-free run bit for bit.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
matching a (stage, task index, attempt) coordinate:

* ``fail`` — raise :class:`InjectedFault` *before* the task body runs
  (so a retried attempt reproduces the clean measurement exactly);
* ``kill`` — SIGKILL the pool worker (parent sees
  ``BrokenProcessPool``); outside a worker it degrades to ``fail`` so
  an in-process fallback attempt errors instead of killing the parent;
* ``delay`` — sleep ``delay_s`` before the task body (timeout tests);
* ``abort`` — raise in the *parent* when it is about to consume task
  ``index``'s result, simulating a crash mid-campaign with the
  consumed prefix already checkpointed.

Plans install ambiently (:func:`set_fault_plan` / the CLI's
``--inject-faults``) and ride into pool workers both by fork
inheritance and through the task payload, so faults fire identically
in serial, pooled, and fallback execution.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "fault_plan",
    "get_fault_plan",
    "parse_fault_spec",
    "set_fault_plan",
]

#: Actions a fault spec may request.
_ACTIONS = ("fail", "kill", "delay", "abort")


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection layer."""


@dataclass
class FaultSpec:
    """One injected fault, addressed by execution coordinates.

    Attributes:
        action: ``"fail"``, ``"kill"``, ``"delay"`` or ``"abort"``.
        task: task index to hit (None = every task).
        attempt: attempt number to hit (None = every attempt).
        stage: parallel-region stage label to hit (``"sweep"``,
            ``"ber"``, ``"campaign"``...; None = every stage).
        delay_s: sleep duration for ``delay`` actions.
    """

    action: str
    task: Optional[int] = None
    attempt: Optional[int] = None
    stage: Optional[str] = None
    delay_s: float = 0.0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {', '.join(_ACTIONS)})"
            )

    def matches(self, stage: str, index: int, attempt: int) -> bool:
        return (
            (self.stage is None or self.stage == stage)
            and (self.task is None or self.task == index)
            and (self.attempt is None or self.attempt == attempt)
        )


@dataclass
class FaultPlan:
    """A picklable bundle of fault specs consulted by the executor."""

    specs: List[FaultSpec] = field(default_factory=list)

    def task_faults(
        self, stage: str, index: int, attempt: int
    ) -> List[FaultSpec]:
        """Specs (excluding aborts) firing at a task-attempt coordinate."""
        return [
            s for s in self.specs
            if s.action != "abort" and s.matches(stage, index, attempt)
        ]

    def should_abort(self, stage: str, index: int) -> Optional[FaultSpec]:
        """The abort spec firing when the parent consumes ``index``."""
        for s in self.specs:
            if s.action == "abort" and s.matches(stage, index, 0):
                return s
        return None


#: Ambient plan (None = no faults; the overwhelmingly common case).
_plan: Optional[FaultPlan] = None


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the ambient fault plan; returns the previous."""
    global _plan
    previous = _plan
    _plan = plan
    return previous


def get_fault_plan() -> Optional[FaultPlan]:
    """The ambient fault plan (None unless a test/CLI installed one)."""
    return _plan


class fault_plan:
    """Context manager installing a plan for a ``with`` block (tests)."""

    def __init__(self, plan: Optional[FaultPlan]):
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = set_fault_plan(self._plan)
        return self._plan

    def __exit__(self, exc_type, exc, tb) -> None:
        set_fault_plan(self._previous)


def apply_task_faults(
    plan: Optional[FaultPlan],
    stage: str,
    index: int,
    attempt: int,
    in_worker: bool,
) -> None:
    """Fire the plan's task-level faults for one attempt.

    Called at the very start of a task attempt — before the task body
    consumes any randomness — so a failed attempt leaves no trace in
    the measurement and the retry is bit-identical to a clean run.
    """
    if plan is None:
        return
    for spec in plan.task_faults(stage, index, attempt):
        if spec.action == "delay":
            time.sleep(spec.delay_s)
        elif spec.action == "kill":
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                f"injected worker-kill outside a pool worker "
                f"(stage={stage}, task={index}, attempt={attempt})"
            )
        else:  # fail
            raise InjectedFault(
                f"injected failure (stage={stage}, task={index}, "
                f"attempt={attempt})"
            )


def check_abort(plan: Optional[FaultPlan], stage: str, index: int) -> None:
    """Fire the plan's parent-side abort when consuming ``index``."""
    if plan is None:
        return
    spec = plan.should_abort(stage, index)
    if spec is not None:
        raise InjectedFault(
            f"injected abort (stage={stage}, before consuming task {index})"
        )


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse the CLI's ``--inject-faults`` specification.

    Comma-separated entries of the form
    ``[stage/]action:task[@attempt][=delay_s]``::

        sweep/fail:1@0          fail sweep task 1 on its first attempt
        kill:2@0                SIGKILL the worker running task 2
        ber/delay:0@0=0.25      sleep 250 ms before ber chunk 0
        sweep/abort:3           crash the parent before consuming task 3

    Task may be ``*`` (every task); omitting ``@attempt`` hits every
    attempt; omitting ``stage/`` hits every stage.
    """
    specs: List[FaultSpec] = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        stage = None
        if "/" in entry:
            stage, entry = entry.split("/", 1)
        if ":" not in entry:
            raise ValueError(
                f"bad fault entry {raw!r}: expected "
                "[stage/]action:task[@attempt][=delay_s]"
            )
        action, coords = entry.split(":", 1)
        delay_s = 0.0
        if "=" in coords:
            coords, delay = coords.split("=", 1)
            delay_s = float(delay)
        attempt: Optional[int] = None
        if "@" in coords:
            coords, attempt_text = coords.split("@", 1)
            attempt = int(attempt_text)
        task = None if coords.strip() == "*" else int(coords)
        specs.append(FaultSpec(
            action=action.strip(),
            task=task,
            attempt=attempt,
            stage=stage,
            delay_s=delay_s,
        ))
    return FaultPlan(specs)
