"""Structured task-failure capture for the parallel execution layer.

A long BER campaign must not lose hours of completed work because one
sweep point raised: this module gives :func:`repro.perf.parallel_map`
a *structured* failure model instead of a raw exception propagating out
of ``future.result()``:

* a worker exception is captured as a :class:`TaskError` — exception
  type, message, full traceback string, task index, attempt number and
  worker pid — and travels back to the parent as an ordinary result;
* the parent retries the task deterministically (attempt ``k`` of task
  ``i`` re-runs the same payload, and callers that *want* fresh
  entropy per attempt derive it from the reproducible
  :func:`repro.perf.seeding.attempt_seed` stream);
* a per-task wall-clock budget is enforced with
  :func:`task_timeout_guard` (SIGALRM on POSIX main threads; elsewhere
  the guard is a documented no-op);
* once retries are exhausted the region either raises
  :class:`TaskFailedError` (``on_error="raise"``, the default — with
  in-flight futures drained and region telemetry still emitted) or
  hands the :class:`TaskError` to the caller as the task's result
  (``on_error="capture"``).

The CLI's ``--retries`` / ``--task-timeout`` / ``--resume`` flags
install ambient defaults here, mirroring ``--jobs`` / ``--memoize``.
"""

from __future__ import annotations

import os
import signal
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "TaskError",
    "TaskFailedError",
    "TaskTimeoutError",
    "get_default_resume",
    "get_default_retries",
    "get_default_task_timeout",
    "resolve_retries",
    "resolve_task_timeout",
    "set_default_resume",
    "set_default_retries",
    "set_default_task_timeout",
    "task_error_from",
    "task_timeout_guard",
]

#: Ambient retry count installed by the CLI's ``--retries`` flag.
_default_retries = 0

#: Ambient per-task timeout installed by ``--task-timeout`` (seconds).
_default_task_timeout: Optional[float] = None

#: Ambient resume default installed by the CLI's ``--resume`` flag.
_default_resume = False


class TaskTimeoutError(Exception):
    """A task exceeded its per-task wall-clock budget."""


@dataclass
class TaskError:
    """Structured capture of one failed task attempt.

    Travels from a pool worker back to the parent as an ordinary
    (picklable) result, so a raised exception never tears down the
    region; the parent decides whether to retry, raise, or hand the
    error to the caller.

    Attributes:
        index: task index within the parallel region.
        attempt: zero-based attempt number that failed.
        exc_type: exception class name (e.g. ``"ValueError"``).
        message: ``str(exception)``.
        traceback: formatted traceback string of the failure site.
        worker_pid: pid of the process that ran the attempt.
    """

    index: int
    attempt: int
    exc_type: str
    message: str
    traceback: str
    worker_pid: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "attempt": self.attempt,
            "exc_type": self.exc_type,
            "message": self.message,
            "traceback": self.traceback,
            "worker_pid": self.worker_pid,
        }

    def summary(self) -> str:
        """One line fit for a progress event or span attribute."""
        return (
            f"task {self.index} attempt {self.attempt}: "
            f"{self.exc_type}: {self.message}"
        )


class TaskFailedError(RuntimeError):
    """A task exhausted its retries (``on_error="raise"`` regions).

    Attributes:
        error: the :class:`TaskError` of the final failed attempt.
    """

    def __init__(self, error: TaskError):
        super().__init__(error.summary())
        self.error = error


def task_error_from(
    exc: BaseException, index: int, attempt: int
) -> TaskError:
    """Capture a live exception as a :class:`TaskError`."""
    return TaskError(
        index=index,
        attempt=attempt,
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        worker_pid=os.getpid(),
    )


@contextmanager
def task_timeout_guard(timeout_s: Optional[float]):
    """Raise :class:`TaskTimeoutError` if the body outlives its budget.

    Enforced with ``SIGALRM``, which requires a POSIX main thread (pool
    workers run tasks on their main thread, so the pooled path always
    enforces); anywhere else the guard is a no-op, documented rather
    than half-enforced.
    """
    if (
        timeout_s is None
        or timeout_s <= 0
        or os.name != "posix"
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise TaskTimeoutError(
            f"task exceeded its {timeout_s:g}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- ambient defaults (installed by the CLI) ----------------------------
def set_default_retries(retries: int) -> int:
    """Install the ambient retry count; returns the previous value."""
    global _default_retries
    previous = _default_retries
    _default_retries = _validate_retries(retries)
    return previous


def get_default_retries() -> int:
    """The ambient retry count (0 unless ``--retries``)."""
    return _default_retries


def set_default_task_timeout(timeout_s: Optional[float]) -> Optional[float]:
    """Install the ambient per-task timeout; returns the previous value."""
    global _default_task_timeout
    previous = _default_task_timeout
    _default_task_timeout = _validate_timeout(timeout_s)
    return previous


def get_default_task_timeout() -> Optional[float]:
    """The ambient per-task timeout (None unless ``--task-timeout``)."""
    return _default_task_timeout


def set_default_resume(resume: bool) -> bool:
    """Install the ambient resume default; returns the previous value."""
    global _default_resume
    previous = _default_resume
    _default_resume = bool(resume)
    return previous


def get_default_resume() -> bool:
    """The ambient resume default (False unless ``--resume``)."""
    return _default_resume


def _validate_retries(retries: int) -> int:
    retries = int(retries)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    return retries


def _validate_timeout(timeout_s: Optional[float]) -> Optional[float]:
    if timeout_s is None:
        return None
    timeout_s = float(timeout_s)
    if timeout_s <= 0:
        raise ValueError(f"task timeout must be > 0, got {timeout_s}")
    return timeout_s


def resolve_retries(retries: Optional[int]) -> int:
    """Turn a ``retries=`` argument into a concrete count (None=ambient)."""
    if retries is None:
        return _default_retries
    return _validate_retries(retries)


def resolve_task_timeout(timeout_s: Optional[float]) -> Optional[float]:
    """Turn a ``task_timeout=`` argument into seconds (None=ambient)."""
    if timeout_s is None:
        return _default_task_timeout
    return _validate_timeout(timeout_s)
