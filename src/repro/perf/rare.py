"""Rare-event BER acceleration: importance sampling on the AWGN noise.

Below ~1e-6 BER the plain Monte-Carlo harness needs billions of bits per
sweep point — the hard end of the paper's figure-5 curve is exactly the
regime brute force cannot reach.  This module makes deep operating
points measurable with bounded budgets:

* **Scaled-variance importance sampling.**  Noise is drawn from a
  boosted proposal ``CN(0, nu * sigma^2)`` so errors happen often, and
  every trial carries the log likelihood ratio of its draw under the
  nominal density over the proposal.  The weighted estimator
  ``mean(w_j * p_j)`` is unbiased for the true BER (``E_q[w] = 1``
  exactly, per sample), which :mod:`repro.qa`'s ``--rare`` section
  proves against the Cho-Yoon closed forms.

* **Weighted-estimator bookkeeping** (:class:`WeightedBerState`): an
  associative, mergeable accumulator carrying the weight moments needed
  for the estimate, its variance, Kish effective sample size and
  weight-degeneracy diagnostics — mergeable so the parallel chunked
  execution of :func:`repro.perf.parallel_map` stays bit-identical to
  serial.

* **Weighted confidence intervals.**  The Wilson machinery of
  :func:`repro.core.metrics.binomial_confidence` is reused on
  *variance-matched effective counts* (``n_eff = p(1-p)/Var[ber_hat]``),
  so an importance-sampled point reports a CI directly comparable to a
  Monte-Carlo Wilson interval — and the ratio of squared widths is the
  measured variance-reduction factor gated in ``repro qa --rare``.

* **Adaptive sweep-point allocation**
  (:func:`run_adaptive_sweep`): rounds of packets go to the sweep point
  whose relative CI width is currently largest, so a fixed simulation
  budget buys the most curve certainty.

Weight degeneracy is the classic failure mode: boosting every noise
sample of an ``N``-dimensional waveform multiplies ``N`` per-sample
likelihood ratios, whose product collapses to near-zero ESS unless
``nu - 1`` shrinks like ``1/sqrt(N)`` (:func:`dimension_capped_boost_db`).
Large speedups therefore come from the low-dimensional uncoded
mapper/demapper harness (:func:`measure_uncoded_ber`, one complex noise
sample per trial), while the full coded chain composes with a mild,
dimension-capped boost whose ESS stays healthy by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.metrics import (
    BerMeasurement,
    binomial_confidence,
    weighted_binomial_confidence,
)

#: Cap on the reported variance-reduction factor: beyond this the
#: variance estimate itself is noise-dominated.
_VR_CAP = 1e12

#: Minimum number of errored trials before the variance-matched
#: effective count is trusted over the conservative ESS fallback.
_MIN_ERROR_TRIALS = 5


def noise_log_weight(
    sum_sq_over_power: float, n_samples: int, variance_boost: float
) -> float:
    """Log likelihood ratio of a boosted complex-Gaussian noise draw.

    For ``n_samples`` complex samples whose *proposal* draw was a
    nominal ``CN(0, P)`` vector scaled by ``sqrt(nu)``,

    ``log w = n * ln(nu) - (nu - 1) * sum(|z|^2) / P``

    with ``z`` the nominal (unscaled) draw and ``P`` the per-sample
    nominal variance.  ``E_q[w] = 1`` exactly.

    Args:
        sum_sq_over_power: ``sum(|z|^2) / P`` of the nominal draw.
        n_samples: number of complex noise samples.
        variance_boost: proposal variance scale ``nu``.

    Returns:
        The log weight (0.0 at ``nu == 1``).
    """
    nu = float(variance_boost)
    if nu == 1.0:
        return 0.0
    return n_samples * float(np.log(nu)) - (nu - 1.0) * float(
        sum_sq_over_power
    )


# ----------------------------------------------------------------------
# Weighted estimator state
# ----------------------------------------------------------------------


@dataclass
class WeightedBerState:
    """Mergeable sufficient statistics of a weighted BER estimator.

    One *trial* is the unit carrying a weight: a packet in the full
    coded chain, a symbol in the uncoded harness.  Trial ``j``
    contributes its error fraction ``p_j = errors_j / n_bits_j`` and
    importance weight ``w_j``; the unbiased estimate is
    ``mean(w_j * p_j)`` (weights are *unnormalized* — ``E_q[w] = 1``
    makes the plain mean unbiased, and makes ``mean(w_j)`` itself a
    diagnostic that must concentrate on 1).

    All fields are plain sums, so :meth:`merge` is exact and the state
    can be accumulated per chunk in workers and folded in chunk order
    by the parent — the same structure that keeps the Monte-Carlo
    counter bit-identical under parallelism.
    """

    trials: int = 0
    bits_total: float = 0.0
    raw_errors: float = 0.0
    error_trials: int = 0
    sum_w: float = 0.0
    sum_w2: float = 0.0
    sum_wp: float = 0.0
    sum_wp2: float = 0.0
    sum_w_err: float = 0.0
    max_w: float = 0.0

    # -- accumulation --------------------------------------------------
    def add(self, errors: float, n_bits: float, log_weight: float = 0.0):
        """Record one trial (``log_weight=0`` is an unweighted trial)."""
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        w = float(np.exp(log_weight))
        p = errors / n_bits
        wp = w * p
        self.trials += 1
        self.bits_total += n_bits
        self.raw_errors += errors
        self.sum_w += w
        self.sum_w2 += w * w
        self.sum_wp += wp
        self.sum_wp2 += wp * wp
        if errors > 0:
            self.error_trials += 1
            self.sum_w_err += w
        if w > self.max_w:
            self.max_w = w

    def add_many(self, errors, n_bits_each: float, log_weights):
        """Record a vector of equal-size trials in one pass."""
        errors = np.asarray(errors, dtype=float)
        if n_bits_each <= 0:
            raise ValueError("n_bits_each must be positive")
        w = np.exp(np.asarray(log_weights, dtype=float))
        if w.shape != errors.shape:
            raise ValueError("errors and log_weights shapes differ")
        p = errors / n_bits_each
        wp = w * p
        errored = errors > 0
        self.trials += int(errors.size)
        self.bits_total += float(errors.size * n_bits_each)
        self.raw_errors += float(errors.sum())
        self.sum_w += float(w.sum())
        self.sum_w2 += float((w * w).sum())
        self.sum_wp += float(wp.sum())
        self.sum_wp2 += float((wp * wp).sum())
        self.error_trials += int(np.count_nonzero(errored))
        self.sum_w_err += float(w[errored].sum())
        if w.size:
            self.max_w = max(self.max_w, float(w.max()))

    def merge(self, other: "WeightedBerState") -> "WeightedBerState":
        """Combine two disjoint states (exact: all fields are sums)."""
        return WeightedBerState(
            trials=self.trials + other.trials,
            bits_total=self.bits_total + other.bits_total,
            raw_errors=self.raw_errors + other.raw_errors,
            error_trials=self.error_trials + other.error_trials,
            sum_w=self.sum_w + other.sum_w,
            sum_w2=self.sum_w2 + other.sum_w2,
            sum_wp=self.sum_wp + other.sum_wp,
            sum_wp2=self.sum_wp2 + other.sum_wp2,
            sum_w_err=self.sum_w_err + other.sum_w_err,
            max_w=max(self.max_w, other.max_w),
        )

    # -- estimates -----------------------------------------------------
    @property
    def ber_unclipped(self) -> float:
        """The raw unbiased estimate ``mean(w_j * p_j)`` (can exceed 1)."""
        return self.sum_wp / self.trials if self.trials else 0.0

    @property
    def ber(self) -> float:
        """Weighted BER estimate, clipped to the physical range [0, 1]."""
        return min(max(self.ber_unclipped, 0.0), 1.0)

    @property
    def per_weighted(self) -> float:
        """Weighted trial-error (packet/symbol error) rate."""
        if not self.trials:
            return 0.0
        return min(max(self.sum_w_err / self.trials, 0.0), 1.0)

    @property
    def raw_ber(self) -> float:
        """Unweighted error rate *under the proposal* (diagnostic only)."""
        return self.raw_errors / self.bits_total if self.bits_total else 0.0

    @property
    def bits_per_trial(self) -> float:
        return self.bits_total / self.trials if self.trials else 0.0

    # -- weight diagnostics --------------------------------------------
    @property
    def mean_weight(self) -> float:
        """Sample mean of the weights; must concentrate on 1."""
        return self.sum_w / self.trials if self.trials else 0.0

    @property
    def ess(self) -> float:
        """Kish effective sample size ``(sum w)^2 / sum w^2``."""
        return self.sum_w**2 / self.sum_w2 if self.sum_w2 > 0 else 0.0

    @property
    def ess_fraction(self) -> float:
        """ESS as a fraction of trials (1.0 = no weight degeneracy)."""
        return self.ess / self.trials if self.trials else 0.0

    @property
    def max_weight_share(self) -> float:
        """Largest single weight's share of the total weight mass."""
        return self.max_w / self.sum_w if self.sum_w > 0 else 0.0

    # -- uncertainty ---------------------------------------------------
    @property
    def estimator_variance(self) -> float:
        """Variance of the weighted BER estimate (sample variance / M)."""
        if self.trials < 2:
            return 0.0
        mean = self.sum_wp / self.trials
        sample_var = (self.sum_wp2 - self.trials * mean * mean) / (
            self.trials - 1
        )
        return max(sample_var, 0.0) / self.trials

    @property
    def effective_trials(self) -> float:
        """Variance-matched Bernoulli trial count of the estimate.

        A binomial estimate of probability ``p`` from ``n`` trials has
        variance ``p(1-p)/n``; inverting with the *measured* estimator
        variance gives the ``n`` whose Wilson interval matches this
        estimator's actual uncertainty.  With too few errored trials to
        trust the variance estimate (or a degenerate one) the
        conservative fallback is the Kish ESS scaled to bits, which can
        only widen the interval.
        """
        p = self.ber
        var = self.estimator_variance
        if var > 0.0 and 0.0 < p < 1.0 and self.error_trials >= (
            _MIN_ERROR_TRIALS
        ):
            return p * (1.0 - p) / var
        return self.ess * self.bits_per_trial

    @property
    def k_eff(self) -> float:
        """Effective error count matching :attr:`effective_trials`."""
        return self.ber * self.effective_trials

    def confidence(self, z: float = 4.5) -> Tuple[float, float]:
        """Wilson interval on the effective counts (see metrics module)."""
        return weighted_binomial_confidence(
            self.k_eff, self.effective_trials, z=z
        )

    @property
    def vr_estimate(self) -> float:
        """Measured variance reduction vs plain MC at the same bit budget.

        ``(p(1-p)/bits) / Var[ber_hat]`` — about 1 for an unweighted
        run by construction, and the factor by which importance
        sampling shrank the estimator variance otherwise.
        """
        var = self.estimator_variance
        p = self.ber
        if var <= 0.0 or not (0.0 < p < 1.0) or self.bits_total <= 0:
            return 1.0
        return float(min(p * (1.0 - p) / self.bits_total / var, _VR_CAP))

    # -- finalization --------------------------------------------------
    def result(
        self,
        packets: int,
        packets_lost: int = 0,
        estimator: str = "is",
        boost_db: float = 0.0,
    ) -> "WeightedBerMeasurement":
        """Finalize into a :class:`WeightedBerMeasurement`."""
        return WeightedBerMeasurement(
            ber=self.ber,
            per=self.per_weighted,
            bit_errors=self.raw_errors,
            bits_total=int(round(self.bits_total)),
            packets=packets,
            packets_lost=packets_lost,
            ci95=self.confidence(z=1.96),
            estimator=estimator,
            boost_db=float(boost_db),
            trials=self.trials,
            n_eff=self.effective_trials,
            ess=self.ess,
            ess_fraction=self.ess_fraction,
            mean_weight=self.mean_weight,
            max_weight_share=self.max_weight_share,
            stderr=float(np.sqrt(self.estimator_variance)),
            vr_estimate=self.vr_estimate,
        )


@dataclass
class WeightedBerMeasurement(BerMeasurement):
    """A completed importance-sampled BER measurement.

    The inherited ``ber``/``per`` are the *weighted* (unbiased)
    estimates; ``bit_errors``/``bits_total`` stay the raw counts under
    the proposal, so downstream raw-count consumers (early-stop audits,
    throughput accounting) keep their meaning.

    Attributes:
        estimator: ``"is"`` or ``"mc"`` (an unweighted run through the
            weighted bookkeeping).
        boost_db: proposal noise-variance boost in dB.
        trials: weighted trials (packets or symbols).
        n_eff: variance-matched effective Bernoulli trial count.
        ess: Kish effective sample size of the weights.
        ess_fraction: ESS / trials.
        mean_weight: sample mean of the weights (must be near 1).
        max_weight_share: largest weight's share of total weight mass.
        stderr: standard error of the weighted BER estimate.
        vr_estimate: measured variance reduction vs plain MC at the
            same bit budget.
    """

    estimator: str = "is"
    boost_db: float = 0.0
    trials: int = 0
    n_eff: float = 0.0
    ess: float = 0.0
    ess_fraction: float = 0.0
    mean_weight: float = 0.0
    max_weight_share: float = 0.0
    stderr: float = 0.0
    vr_estimate: float = 1.0

    @property
    def k_eff(self) -> float:
        """Effective error count matching :attr:`n_eff`."""
        return self.ber * self.n_eff

    def confidence(self, z: float = 4.5) -> Tuple[float, float]:
        """Weighted Wilson interval at any ``z`` from the stored fields."""
        return weighted_binomial_confidence(self.k_eff, self.n_eff, z=z)


# ----------------------------------------------------------------------
# Proposal (boost) selection
# ----------------------------------------------------------------------


def ebn0_for_ber(
    modulation: str, target_ber: float, lo_db: float = -20.0,
    hi_db: float = 40.0,
) -> float:
    """Invert the Cho-Yoon curve: the Eb/N0 giving ``target_ber``."""
    from repro.qa.oracles import theoretical_ber

    if not (0.0 < target_ber < 0.5):
        raise ValueError("target_ber must be in (0, 0.5)")
    lo, hi = float(lo_db), float(hi_db)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if theoretical_ber(modulation, mid) > target_ber:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9:
            break
    return 0.5 * (lo + hi)


def boost_for(
    modulation: str, ebn0_db: float, target_ber: float = 2e-2
) -> float:
    """Noise-variance boost (dB) moving an operating point to ``target_ber``.

    Boosting the noise variance by ``B`` dB lowers the effective Eb/N0
    by exactly ``B`` dB, so the natural proposal for a deep point is
    the boost that lands the *proposal* channel near a comfortable
    error rate where trials are informative.
    """
    return max(0.0, ebn0_db - ebn0_for_ber(modulation, target_ber))


def dimension_capped_boost_db(n_dims: int, spread: float = 1.0) -> float:
    """Largest boost whose weights stay non-degenerate in ``n_dims``.

    The log weight over ``n`` boosted complex samples has standard
    deviation about ``(nu - 1) * sqrt(n)``; keeping it near ``spread``
    (so the Kish ESS fraction stays near ``exp(-spread^2)``) requires
    ``nu <= 1 + spread / sqrt(n)``.
    """
    nu = 1.0 + spread / float(np.sqrt(max(int(n_dims), 1)))
    return float(10.0 * np.log10(nu))


def packet_noise_dimension(config) -> int:
    """Approximate complex noise samples per packet of a bench config.

    Preamble (320) + SIGNAL and data OFDM symbols (80 each) plus the
    guard padding, times the oversampling factor the bench will pick —
    the dimensionality that bounds a per-packet importance weight.
    """
    from repro.dsp.params import RATES

    rate = RATES[config.rate_mbps]
    n_sym = int(np.ceil((16 + 6 + 8 * config.psdu_bytes) / rate.n_dbps))
    oversample = 1
    scenario = getattr(config, "scenario", None)
    if config.frontend is not None:
        oversample = config.frontend.decimation
    else:
        if config.interference.sources:
            max_offset = max(
                abs(s.offset_channels) for s in config.interference.sources
            )
            oversample = 2 * (max_offset + 1)
        if scenario is not None:
            oversample = max(oversample, scenario.required_oversample())
    samples = 2 * config.guard_samples + 320 + 80 * (1 + n_sym)
    return int(samples * oversample)


def is_incompatibility(config) -> Optional[str]:
    """Why importance sampling is invalid for a bench config, or None.

    The scaled-variance proposal reweights only the AWGN draw, so the
    weighted estimator is unbiased only when AWGN dominates the error
    mechanism.  A fading channel or any structured emitter (legacy
    interference sources or scenario emitters) injects randomness the
    weights do not model — the estimate would be silently biased.
    """
    if getattr(config, "fading", None) is not None:
        return "a fading channel is configured"
    interference = getattr(config, "interference", None)
    if interference is not None and interference.sources:
        return "interference sources are configured"
    scenario = getattr(config, "scenario", None)
    if scenario is not None:
        if scenario.emitters:
            return "the scenario configures non-AWGN emitters"
        if scenario.fading is not None:
            return "the scenario configures a fading channel"
    return None


def auto_boost_db(config, target_ber: float = 2e-2) -> float:
    """Default proposal boost for a full-chain bench configuration.

    The boost that would move the uncoded operating point to
    ``target_ber``, capped by the packet's noise dimensionality so the
    per-packet weights cannot degenerate.  Returns 0 (plain MC
    behavior, weights exactly 1) when the bench has no normalized SNR.
    """
    if config.snr_db is None:
        return 0.0
    from repro.channel.awgn import snr_to_ebn0_db
    from repro.dsp.params import RATES
    from repro.qa.oracles import RATE_MODULATIONS

    modulation = RATE_MODULATIONS.get(config.rate_mbps)
    if modulation is None:
        return 0.0
    ebn0 = snr_to_ebn0_db(config.snr_db, RATES[config.rate_mbps])
    wanted = boost_for(modulation, ebn0, target_ber=target_ber)
    cap = dimension_capped_boost_db(packet_noise_dimension(config))
    return float(min(wanted, cap))


# ----------------------------------------------------------------------
# Uncoded rare-event harness (low-dimensional, large speedups)
# ----------------------------------------------------------------------


def _uncoded_rare_chunk(payload) -> WeightedBerState:
    """Run one chunk of uncoded packets (a ``parallel_map`` task).

    Mirrors the random-draw order of
    :func:`repro.qa.oracles.simulate_uncoded_ber` exactly (bits, then
    one complex nominal noise draw), so at 0 dB boost the per-trial
    samples — and therefore the error pattern — are bit-identical to
    the plain oracle harness with the same stream.
    """
    modulation, ebn0_db, seed_children, symbols_per_packet, boost_db = payload
    from repro.dsp.modulation import Demapper, Mapper

    mapper = Mapper(modulation)
    demapper = Demapper(modulation)
    n_bpsc = mapper.n_bpsc
    n0 = 1.0 / (n_bpsc * 10.0 ** (ebn0_db / 10.0))
    nu = 10.0 ** (boost_db / 10.0)
    state = WeightedBerState()
    for child in seed_children:
        rng = np.random.default_rng(child)
        bits = rng.integers(
            0, 2, size=symbols_per_packet * n_bpsc, dtype=np.uint8
        )
        symbols = mapper.map(bits)
        noise = np.sqrt(n0 / 2.0) * (
            rng.standard_normal(symbols.size)
            + 1j * rng.standard_normal(symbols.size)
        )
        if nu != 1.0:
            rx_bits = demapper.demap_hard(symbols + np.sqrt(nu) * noise)
            log_w = np.log(nu) - (nu - 1.0) * (np.abs(noise) ** 2) / n0
        else:
            rx_bits = demapper.demap_hard(symbols + noise)
            log_w = np.zeros(symbols.size)
        symbol_errors = (
            (rx_bits != bits).astype(np.int64).reshape(-1, n_bpsc).sum(axis=1)
        )
        state.add_many(symbol_errors, n_bpsc, log_w)
    return state


def measure_uncoded_ber(
    modulation: str,
    ebn0_db: float,
    n_packets: int = 64,
    symbols_per_packet: int = 512,
    estimator: str = "is",
    boost_db: Optional[float] = None,
    target_ber: float = 2e-2,
    seed=0,
    jobs: Optional[int] = None,
    chunk_size: int = 8,
) -> WeightedBerMeasurement:
    """Importance-sampled uncoded BER of the production mapper/demapper.

    Each symbol sees one complex noise sample, so the weight dimension
    is 1 and aggressive boosts (tens of dB of effective Eb/N0) stay
    non-degenerate — this is the harness that reaches 1e-8 and below
    with laptop budgets, validated against the Cho-Yoon closed forms.

    Packet ``j`` draws from child ``j`` of the seed's spawn tree and
    chunk states merge parent-side in chunk order, so the measurement
    is bit-identical at every ``jobs`` setting (the same guarantee the
    coded harness makes).  ``estimator="mc"`` forces 0 dB boost: all
    weights are exactly 1 and the samples match the plain oracle
    harness draw for draw.

    Args:
        modulation: "BPSK" | "QPSK" | "QAM16" | "QAM64".
        ebn0_db: nominal Eb/N0 of the measured channel.
        n_packets: independent trial blocks.
        symbols_per_packet: weighted trials per block.
        estimator: ``"is"`` (boosted proposal) or ``"mc"`` (boost 0).
        boost_db: explicit proposal boost; None picks
            :func:`boost_for` at ``target_ber``.
        target_ber: proposal operating point for the automatic boost.
        seed: base random seed (int or ``SeedSequence``).
        jobs: worker processes; None defers to the ambient default.
        chunk_size: packets per dispatched chunk.

    Returns:
        The finalized :class:`WeightedBerMeasurement`.
    """
    from repro import perf

    if estimator not in ("mc", "is"):
        raise ValueError(f"unknown estimator {estimator!r}")
    if estimator == "mc":
        boost = 0.0
    elif boost_db is None:
        boost = boost_for(modulation, ebn0_db, target_ber=target_ber)
    else:
        boost = float(boost_db)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    children = perf.spawn(seed, n_packets)
    tasks = [
        (
            modulation,
            ebn0_db,
            children[i : i + chunk_size],
            symbols_per_packet,
            boost,
        )
        for i in range(0, n_packets, chunk_size)
    ]
    state = WeightedBerState()

    def fold(index, chunk_state):
        nonlocal state
        state = state.merge(chunk_state)

    perf.parallel_map(
        _uncoded_rare_chunk, tasks, jobs=jobs, stage="rare", on_result=fold
    )
    return state.result(
        packets=n_packets,
        packets_lost=0,
        estimator=estimator,
        boost_db=boost,
    )


# ----------------------------------------------------------------------
# Adaptive sweep-point packet allocation
# ----------------------------------------------------------------------

#: Relative-width floor: a point whose BER estimate is still 0 gets an
#: infinite relative width, which is exactly the "most uncertain" rank
#: the allocator wants for it.
_REL_FLOOR = 1e-12


def run_adaptive_sweep(
    sweep,
    total_packets: int,
    initial_packets: Optional[int] = None,
    block: Optional[int] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable] = None,
    store=None,
    run_name: Optional[str] = None,
    z: float = 1.96,
    batch_size: Optional[int] = None,
):
    """Spend a packet budget where the sweep's CI is currently widest.

    Instead of ``n_packets`` per point, a fixed ``total_packets``
    budget is allocated in rounds: after a uniform warm-up, each block
    of packets goes to the point with the largest relative confidence
    width ``(hi - lo) / ber`` — Wilson bounds on raw counts for MC
    points, the weighted interval for importance-sampled points.

    Packet ``j`` of point ``i`` always draws from child ``j`` of point
    ``i``'s spawn subtree, so the measurement each point ends up with
    depends only on *how many* packets it received — and the allocation
    itself is a deterministic function of the measurements — making the
    whole adaptive run reproducible and jobs-independent.

    Args:
        sweep: a :class:`repro.core.sweep.ParameterSweep` (its
            ``n_packets`` is ignored in favor of the budget).
        total_packets: total packet budget across all points.
        initial_packets: warm-up packets per point (default: an equal
            share of half the budget, at least 1).
        block: packets granted per adaptive round (default: the warm-up
            size).
        jobs: worker processes for packet chunks.
        progress: progress listener/callback for per-round events.
        store: optional run store (defaults to the ambient writer).
        run_name: store name (default ``adaptive-<parameter>``).
        z: confidence level driving the allocation.
        batch_size: packets per stacked PHY evaluation; None defers to
            the ambient ``--batch-size`` default.

    Returns:
        A :class:`repro.core.sweep.SweepResult` whose points hold
        :class:`repro.core.metrics.BerMeasurement` (MC) or
        :class:`WeightedBerMeasurement` (IS) measurements.
    """
    from repro import obs, perf
    from repro.core.metrics import BerCounter
    from repro.core.sweep import SweepPoint, SweepResult
    from repro.core.testbench import _packet_chunk_task
    from repro.obs.progress import ProgressEvent

    n_points = len(sweep.values)
    if n_points == 0:
        return SweepResult(sweep.parameter, [])
    if total_packets < n_points:
        raise ValueError("total_packets must cover at least 1 per point")
    batch = perf.resolve_batch_size(batch_size)
    point_seeds = perf.spawn(sweep.seed, n_points)
    configs = [sweep._configured(v) for v in sweep.values]
    plans = [sweep._point_estimator(config) for config in configs]
    counters = [BerCounter() for _ in range(n_points)]
    states = [
        WeightedBerState() if plan[0] == "is" else None for plan in plans
    ]
    cursors = [0] * n_points
    emit = obs.as_listener(progress)

    def extend(i: int, n: int):
        """Grant ``n`` more packets to point ``i`` (exact continuation:
        spawn-tree children are a pure function of their index)."""
        start = cursors[i]
        stop = start + n
        children = perf.spawn(point_seeds[i], stop)[start:stop]
        estimator, boost = plans[i]
        chunks = [
            (
                configs[i],
                children[k : k + batch],
                batch,
                boost if estimator == "is" else None,
            )
            for k in range(0, n, batch)
        ]

        def consume(index, chunk_outcomes):
            counter = counters[i]
            for bit_errors, n_bits, lost, log_w in chunk_outcomes:
                if lost:
                    counter.add_packet(
                        np.zeros(int(n_bits), dtype=np.uint8), None
                    )
                else:
                    counter.packets += 1
                    counter.bits_total += n_bits
                    counter.bit_errors += bit_errors
                    if bit_errors:
                        counter.packets_errored += 1
                if states[i] is not None:
                    states[i].add(bit_errors, n_bits, log_w)

        perf.parallel_map(
            _packet_chunk_task,
            chunks,
            jobs=jobs,
            stage="adaptive",
            on_result=consume,
        )
        cursors[i] = stop

    def rel_width(i: int) -> float:
        counter = counters[i]
        state = states[i]
        if counter.packets == 0:
            return float("inf")
        if state is not None and state.trials:
            low, high = state.confidence(z=z)
            ber = state.ber
        else:
            low, high = binomial_confidence(
                counter.bit_errors, counter.bits_total, z=z
            )
            ber = counter.ber
        return (high - low) / max(ber, _REL_FLOOR)

    with obs.span(
        "sweep:adaptive",
        parameter=sweep.parameter,
        n_points=n_points,
        budget=total_packets,
    ):
        if initial_packets is None:
            initial_packets = max(1, total_packets // (2 * n_points))
        initial_packets = min(initial_packets, total_packets // n_points)
        if block is None:
            block = initial_packets
        block = max(1, int(block))
        for i in range(n_points):
            extend(i, initial_packets)
        spent = initial_packets * n_points
        round_no = 0
        while spent < total_packets:
            grant = min(block, total_packets - spent)
            widths = [rel_width(i) for i in range(n_points)]
            target = int(np.argmax(widths))
            extend(target, grant)
            spent += grant
            round_no += 1
            emit(ProgressEvent(
                stage="adaptive",
                current=spent,
                total=total_packets,
                message=(
                    f"round {round_no}: +{grant} packets to "
                    f"{sweep.parameter}={sweep.values[target]:.6g} "
                    f"(rel CI width {widths[target]:.3g})"
                ),
                data={
                    "parameter": sweep.parameter,
                    "value": float(sweep.values[target]),
                    "packets": counters[target].packets,
                    "rel_width": float(widths[target]),
                },
            ))

    points = []
    for i, value in enumerate(sweep.values):
        counter = counters[i]
        state = states[i]
        if state is not None:
            measurement = state.result(
                packets=counter.packets,
                packets_lost=counter.packets_lost,
                estimator="is",
                boost_db=plans[i][1],
            )
        else:
            measurement = counter.result()
        points.append(SweepPoint(float(value), measurement))
    result = SweepResult(sweep.parameter, points)

    name = run_name or f"adaptive-{sweep.parameter}"
    kpis = dict(result.as_kpis())
    for i, value in enumerate(sweep.values):
        kpis[f"alloc_packets[{sweep.parameter}={value:.6g}]"] = float(
            counters[i].packets
        )
    obs.contribute(
        store,
        kind="sweep",
        name=name,
        seed=perf.seed_entropy(sweep.seed),
        config={
            "parameter": sweep.parameter,
            "values": [float(v) for v in sweep.values],
            "total_packets": total_packets,
            "initial_packets": initial_packets,
            "block": block,
            "estimator": sweep.estimator,
            "base_config": sweep.base_config,
            "seeding": obs.SEEDING_SCHEME,
        },
        tables={name: result.as_table()},
        curves={name: result.as_curve()},
        kpis=kpis,
    )
    return result


__all__ = [
    "WeightedBerMeasurement",
    "WeightedBerState",
    "auto_boost_db",
    "boost_for",
    "dimension_capped_boost_db",
    "ebn0_for_ber",
    "measure_uncoded_ber",
    "noise_log_weight",
    "packet_noise_dimension",
    "run_adaptive_sweep",
]
