"""``repro.perf`` — deterministic parallel execution.

The paper's headline cost is simulation wall-clock (Table 2 exists
because one filter-bandwidth BER sweep took hours); this package makes
the embarrassingly parallel axes of the verification flow actually
parallel without giving up reproducibility:

* **sweep points** — ``ParameterSweep.run(jobs=...)``;
* **packet batches** — ``WlanTestbench.measure_ber(jobs=...)``;
* **sweeps in a batch** — ``SimulationManager.run_all(jobs=...)``;
* **campaign checks** — ``VerificationCampaign.run(jobs=...)``;
* **characterization analyses** — ``repro.flow.rfsim.characterize``.

Two primitives carry all of it:

:mod:`repro.perf.seeding`
    ``SeedSequence.spawn``-tree derivation: each unit of work draws its
    stream from its *coordinates* (sweep point, packet index), so the
    result is bit-identical however the work is scheduled.

:mod:`repro.perf.pool`
    :func:`parallel_map` — an order-preserving process-pool map with
    serial-equivalent early stop, worker telemetry re-absorption, and a
    ``parallel_efficiency`` gauge.

The CLI's global ``--jobs N`` flag installs an ambient default
(:func:`set_default_jobs`); library calls with ``jobs=None`` pick it
up, and nested parallel regions automatically degrade to serial inside
workers, so the outermost fan-out wins.
"""

from repro.perf.pool import (
    ParallelResult,
    cpu_count,
    get_default_jobs,
    get_default_memoize,
    in_worker,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
    set_default_memoize,
)
from repro.perf.seeding import (
    SEEDING_SCHEME,
    SeedLike,
    as_seed_sequence,
    seed_entropy,
    seed_fingerprint,
    spawn,
    stream,
)

__all__ = [
    "SEEDING_SCHEME",
    "SeedLike",
    "ParallelResult",
    "as_seed_sequence",
    "cpu_count",
    "get_default_jobs",
    "get_default_memoize",
    "in_worker",
    "parallel_map",
    "resolve_jobs",
    "seed_entropy",
    "seed_fingerprint",
    "set_default_jobs",
    "set_default_memoize",
    "spawn",
    "stream",
]
