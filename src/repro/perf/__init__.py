"""``repro.perf`` — deterministic parallel execution.

The paper's headline cost is simulation wall-clock (Table 2 exists
because one filter-bandwidth BER sweep took hours); this package makes
the embarrassingly parallel axes of the verification flow actually
parallel without giving up reproducibility:

* **sweep points** — ``ParameterSweep.run(jobs=...)``;
* **packet batches** — ``WlanTestbench.measure_ber(jobs=...)``;
* **sweeps in a batch** — ``SimulationManager.run_all(jobs=...)``;
* **campaign checks** — ``VerificationCampaign.run(jobs=...)``;
* **characterization analyses** — ``repro.flow.rfsim.characterize``.

Two primitives carry all of it:

:mod:`repro.perf.seeding`
    ``SeedSequence.spawn``-tree derivation: each unit of work draws its
    stream from its *coordinates* (sweep point, packet index), so the
    result is bit-identical however the work is scheduled.

:mod:`repro.perf.pool`
    :func:`parallel_map` — an order-preserving process-pool map with
    serial-equivalent early stop, worker telemetry re-absorption, and a
    ``parallel_efficiency`` gauge.

Two more make the flow survive its own failures:

:mod:`repro.perf.resilience`
    Structured :class:`TaskError` capture, deterministic retries with
    per-attempt seeds (:func:`attempt_seed`), per-task timeouts, and
    graceful degradation to in-process execution on a broken pool.

:mod:`repro.perf.faults`
    Deterministic fault injection (fail/kill/delay/abort at a
    stage/task/attempt coordinate) so the error paths above are
    themselves tested and CI-gated (``repro qa --faults``).

The CLI's global ``--jobs N`` flag installs an ambient default
(:func:`set_default_jobs`); library calls with ``jobs=None`` pick it
up, and nested parallel regions automatically degrade to serial inside
workers, so the outermost fan-out wins.  ``--retries``,
``--task-timeout`` and ``--resume`` install ambient resilience defaults
the same way.
"""

from repro.perf.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_plan,
    get_fault_plan,
    parse_fault_spec,
    set_fault_plan,
)
from repro.perf.pool import (
    ParallelResult,
    cpu_count,
    get_default_batch_size,
    get_default_jobs,
    get_default_memoize,
    in_worker,
    parallel_map,
    resolve_batch_size,
    resolve_jobs,
    set_default_batch_size,
    set_default_jobs,
    set_default_memoize,
)
from repro.perf.rare import (
    WeightedBerMeasurement,
    WeightedBerState,
    auto_boost_db,
    boost_for,
    dimension_capped_boost_db,
    ebn0_for_ber,
    is_incompatibility,
    measure_uncoded_ber,
    noise_log_weight,
    packet_noise_dimension,
    run_adaptive_sweep,
)
from repro.perf.resilience import (
    TaskError,
    TaskFailedError,
    TaskTimeoutError,
    get_default_resume,
    get_default_retries,
    get_default_task_timeout,
    resolve_retries,
    resolve_task_timeout,
    set_default_resume,
    set_default_retries,
    set_default_task_timeout,
    task_timeout_guard,
)
from repro.perf.seeding import (
    RETRY_SCHEME,
    SEEDING_SCHEME,
    SeedLike,
    as_seed_sequence,
    attempt_seed,
    seed_entropy,
    seed_fingerprint,
    spawn,
    stream,
)

__all__ = [
    "RETRY_SCHEME",
    "SEEDING_SCHEME",
    "SeedLike",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ParallelResult",
    "TaskError",
    "TaskFailedError",
    "TaskTimeoutError",
    "WeightedBerMeasurement",
    "WeightedBerState",
    "as_seed_sequence",
    "attempt_seed",
    "auto_boost_db",
    "boost_for",
    "cpu_count",
    "dimension_capped_boost_db",
    "ebn0_for_ber",
    "fault_plan",
    "get_default_batch_size",
    "get_default_jobs",
    "get_default_memoize",
    "get_default_resume",
    "get_default_retries",
    "get_default_task_timeout",
    "get_fault_plan",
    "in_worker",
    "is_incompatibility",
    "measure_uncoded_ber",
    "noise_log_weight",
    "packet_noise_dimension",
    "parallel_map",
    "parse_fault_spec",
    "resolve_batch_size",
    "resolve_jobs",
    "resolve_retries",
    "resolve_task_timeout",
    "run_adaptive_sweep",
    "seed_entropy",
    "seed_fingerprint",
    "set_default_batch_size",
    "set_default_jobs",
    "set_default_memoize",
    "set_default_resume",
    "set_default_retries",
    "set_default_task_timeout",
    "set_fault_plan",
    "spawn",
    "stream",
    "task_timeout_guard",
]
