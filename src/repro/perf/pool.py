"""Deterministic process-pool execution for the verification flow.

:func:`parallel_map` is the one fan-out primitive every parallel layer
uses — sweep points, packet chunks, campaign checks, characterization
analyses.  Its contract:

* **Order-preserving.**  Results are consumed strictly in task order,
  whatever order workers finish in, so accumulation is reproducible.
* **Bit-identical to serial.**  With per-task seed derivation
  (:mod:`repro.perf.seeding`) a task's output does not depend on which
  worker ran it; ``jobs=1`` runs the very same task function in-process.
* **Early-stop aware.**  An optional ``stop`` predicate is evaluated in
  task order; once it fires, no new tasks are dispatched, in-flight
  tasks drain, and their results are discarded — the consumed prefix is
  exactly what a serial run would have consumed.
* **Observable.**  Each task becomes a span on the active tracer, the
  workers' own spans and metrics are re-absorbed into the parent
  tracer/registry (in task order, so merged metrics are deterministic),
  and every region — pooled or the ``jobs=1`` in-process fast path —
  reports a ``parallel_efficiency`` gauge (``busy_time / (jobs *
  wall_time)``, 1.0 in-process) and a ``parallel_tasks`` counter, so a
  ``repro profile`` comparison across job counts lines up metric for
  metric.  Only true pool regions wrap themselves in a
  ``parallel:{stage}`` span with per-task child spans; the in-process
  path records the task function's own spans inline instead.

Nested parallelism is suppressed: a worker process resolves any
``jobs`` request to 1, so the outermost parallel layer wins and inner
layers run serially inside the workers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from repro import obs

__all__ = [
    "ParallelResult",
    "cpu_count",
    "get_default_jobs",
    "get_default_memoize",
    "in_worker",
    "parallel_map",
    "resolve_jobs",
    "set_default_jobs",
    "set_default_memoize",
]

#: Ambient job count installed by the CLI's ``--jobs`` flag (1 = serial).
_default_jobs = 1

#: Ambient memoization default installed by the CLI's ``--memoize`` flag.
_default_memoize = False

#: Set in pool workers so nested fan-out degrades to serial.
_in_worker = False


def cpu_count() -> int:
    """Usable CPU count (affinity-aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def set_default_jobs(jobs: Optional[int]) -> int:
    """Install the ambient job count (the CLI's ``--jobs``).

    Args:
        jobs: worker count; 0 or None means "auto" (one per CPU).

    Returns:
        The previous default.
    """
    global _default_jobs
    previous = _default_jobs
    _default_jobs = resolve_jobs(jobs if jobs is not None else 0)
    return previous


def get_default_jobs() -> int:
    """The ambient job count (1 unless ``--jobs``/``set_default_jobs``)."""
    return _default_jobs


def set_default_memoize(memoize: bool) -> bool:
    """Install the ambient memoization default (the CLI's ``--memoize``).

    Returns:
        The previous default.
    """
    global _default_memoize
    previous = _default_memoize
    _default_memoize = bool(memoize)
    return previous


def get_default_memoize() -> bool:
    """The ambient memoization default (False unless ``--memoize``)."""
    return _default_memoize


def in_worker() -> bool:
    """Whether this process is a pool worker (nested fan-out disabled)."""
    return _in_worker


def resolve_jobs(jobs: Optional[int]) -> int:
    """Turn a ``jobs=`` argument into a concrete worker count.

    ``None`` defers to the ambient default, ``0`` means one worker per
    CPU, and anything is clamped to 1 inside a pool worker so parallel
    layers never nest.
    """
    if _in_worker:
        return 1
    if jobs is None:
        return _default_jobs
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = cpu_count()
    return max(1, jobs)


class ParallelResult(List[Any]):
    """The consumed results (a list), plus execution telemetry.

    Attributes:
        jobs: worker count the region ran with (1 = in-process).
        wall_s: wall-clock of the whole region.
        busy_s: summed task execution time across workers.
        efficiency: ``busy_s / (jobs * wall_s)`` — 1.0 is perfect
            scaling, ``1/jobs`` means the pool bought nothing.
        stopped: whether the ``stop`` predicate ended the region early.
    """

    jobs: int = 1
    wall_s: float = 0.0
    busy_s: float = 0.0
    efficiency: float = 1.0
    stopped: bool = False


def _init_worker() -> None:
    """Pool initializer: mark the process so nested fan-out is serial."""
    global _in_worker
    _in_worker = True


def _worker_call(payload):
    """Run one task in a worker under fresh, capturable instrumentation.

    Returns ``(result, duration_s, pid, metrics_snapshot, span_dicts)``;
    the parent merges the snapshots back in task order so the combined
    telemetry is deterministic and complete.
    """
    fn, task, want_spans = payload
    registry = obs.MetricsRegistry()
    tracer = obs.Tracer() if want_spans else None
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer) if want_spans else None
    start = time.perf_counter()
    try:
        result = fn(task)
    finally:
        obs.set_registry(previous_registry)
        if want_spans:
            obs.set_tracer(previous_tracer)
    duration = time.perf_counter() - start
    spans = (
        [r.as_dict() for r in tracer.records] if tracer is not None else None
    )
    return result, duration, os.getpid(), registry.snapshot(), spans


def _emit_region_metrics(out: "ParallelResult", stage: str) -> None:
    """Report a region's scaling telemetry (pooled and serial alike)."""
    obs.get_registry().gauge(
        "parallel_efficiency",
        "busy / (jobs * wall) of a parallel region",
    ).set(out.efficiency, stage=stage, jobs=out.jobs)
    obs.get_registry().counter(
        "parallel_tasks", "tasks executed by parallel regions"
    ).inc(len(out), stage=stage)


def _pool_context():
    """Prefer fork (cheap, inherits the loaded stack) where available."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    stage: str = "parallel",
    stop: Optional[Callable[[int, Any], bool]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    window: Optional[int] = None,
) -> ParallelResult:
    """Apply ``fn`` to every task, in order, optionally across processes.

    Args:
        fn: a picklable callable (module-level function) of one task.
        tasks: the work items, each picklable.
        jobs: worker processes; None defers to the ambient ``--jobs``
            default, 0 means one per CPU, 1 runs in-process.
        stage: label for spans/metrics (``"sweep"``, ``"ber"``, ...).
        stop: ``stop(index, result)`` evaluated strictly in task order
            after each result is consumed; True ends the region — no
            further task is dispatched and later in-flight results are
            discarded, mirroring a serial early-stop.
        on_result: ``on_result(index, result)`` called in task order for
            each consumed result (progress reporting).
        window: max in-flight tasks beyond the consumed front (default
            ``2 * jobs``); bounds wasted work after an early stop.

    Returns:
        A :class:`ParallelResult` with the consumed results (a prefix
        of ``tasks``'s results) and scaling telemetry.
    """
    jobs = resolve_jobs(jobs)
    out = ParallelResult()
    out.jobs = jobs
    tasks = list(tasks)
    tracer = obs.get_tracer()
    start = time.perf_counter()

    if jobs == 1 or len(tasks) <= 1:
        out.jobs = 1
        for i, task in enumerate(tasks):
            t0 = time.perf_counter()
            result = fn(task)
            out.busy_s += time.perf_counter() - t0
            out.append(result)
            if on_result is not None:
                on_result(i, result)
            if stop is not None and stop(i, result):
                out.stopped = True
                break
        out.wall_s = time.perf_counter() - start
        out.efficiency = 1.0
        _emit_region_metrics(out, stage)
        return out

    want_spans = bool(tracer.enabled)
    window = max(jobs, window if window is not None else 2 * jobs)
    with obs.span(f"parallel:{stage}", jobs=jobs, tasks=len(tasks)):
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_pool_context(),
            initializer=_init_worker,
        ) as executor:
            futures = {}
            next_submit = 0

            def submit_up_to(limit):
                nonlocal next_submit
                while next_submit < min(limit, len(tasks)):
                    futures[next_submit] = executor.submit(
                        _worker_call, (fn, tasks[next_submit], want_spans)
                    )
                    next_submit += 1

            submit_up_to(window)
            for i in range(len(tasks)):
                if i not in futures:
                    break
                result, duration, pid, metrics, spans = futures.pop(
                    i
                ).result()
                out.busy_s += duration
                obs.get_registry().merge(metrics)
                record = tracer.record_span(
                    f"{stage}:task", duration,
                    index=i, worker_pid=pid, jobs=jobs,
                )
                if spans:
                    tracer.absorb(
                        spans,
                        parent_id=record.span_id if record else None,
                    )
                out.append(result)
                if on_result is not None:
                    on_result(i, result)
                if stop is not None and stop(i, result):
                    out.stopped = True
                    for future in futures.values():
                        future.cancel()
                    break
                submit_up_to(i + 1 + window)

    out.wall_s = time.perf_counter() - start
    out.efficiency = (
        out.busy_s / (jobs * out.wall_s) if out.wall_s > 0 else 1.0
    )
    _emit_region_metrics(out, stage)
    return out
