"""Deterministic process-pool execution for the verification flow.

:func:`parallel_map` is the one fan-out primitive every parallel layer
uses — sweep points, packet chunks, campaign checks, characterization
analyses.  Its contract:

* **Order-preserving.**  Results are consumed strictly in task order,
  whatever order workers finish in, so accumulation is reproducible.
* **Bit-identical to serial.**  With per-task seed derivation
  (:mod:`repro.perf.seeding`) a task's output does not depend on which
  worker ran it; ``jobs=1`` runs the very same task function in-process.
* **Early-stop aware.**  An optional ``stop`` predicate is evaluated in
  task order; once it fires, no new tasks are dispatched, in-flight
  tasks drain, and their results are discarded — the consumed prefix is
  exactly what a serial run would have consumed.
* **Fault-tolerant.**  A task exception does not propagate raw out of
  ``future.result()``: the attempt is captured as a
  :class:`repro.perf.resilience.TaskError` (exception type, message,
  traceback, task index, worker pid), retried up to ``retries`` times
  with the *same* payload (so a retry that succeeds is bit-identical to
  a clean run), and only then surfaced — as a raised
  :class:`~repro.perf.resilience.TaskFailedError` (``on_error="raise"``)
  or as the task's result (``on_error="capture"``).  A per-task
  ``task_timeout`` turns runaway tasks into ordinary task errors, a
  dying worker (``BrokenProcessPool``) degrades the region to
  in-process serial execution of the remaining tasks, and on *every*
  exit path — clean, stopped, failed, aborted — in-flight futures are
  cancelled or drained and the region's metrics and ``parallel:{stage}``
  span are still emitted.
* **Observable.**  Each task becomes a span on the active tracer, the
  workers' own spans and metrics are re-absorbed into the parent
  tracer/registry (in task order, so merged metrics are deterministic),
  and every region — pooled or the in-process fast path — reports a
  ``parallel_efficiency`` gauge (``busy_time / (jobs * wall_time)``,
  1.0 in-process) labelled with both the *requested* and the
  *effective* job count, a ``parallel_tasks`` counter, and the
  resilience counters ``parallel_task_retries`` /
  ``parallel_task_failures`` / ``parallel_tasks_discarded`` /
  ``parallel_pool_broken``, so a ``repro profile`` comparison across
  job counts lines up metric for metric.  Only true pool regions wrap
  themselves in a ``parallel:{stage}`` span with per-task child spans;
  the in-process path records the task function's own spans inline
  instead.  A failed attempt's partial worker telemetry is *discarded*
  (only its wall-clock is accounted), so the merged metrics of a
  retried-then-clean run match a fault-free run exactly.

Nested parallelism is suppressed: a worker process resolves any
``jobs`` request to 1, so the outermost parallel layer wins and inner
layers run serially inside the workers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.perf import faults as _faults
from repro.perf import resilience as _resilience
from repro.perf.resilience import TaskError, TaskFailedError

__all__ = [
    "ParallelResult",
    "cpu_count",
    "get_default_batch_size",
    "get_default_jobs",
    "get_default_memoize",
    "in_worker",
    "parallel_map",
    "resolve_batch_size",
    "resolve_jobs",
    "set_default_batch_size",
    "set_default_jobs",
    "set_default_memoize",
]

#: Ambient job count installed by the CLI's ``--jobs`` flag (1 = serial).
_default_jobs = 1

#: Ambient PHY batch size installed by the CLI's ``--batch-size`` flag
#: (1 = the classic per-packet chain).
_default_batch_size = 1

#: Ambient memoization default installed by the CLI's ``--memoize`` flag.
_default_memoize = False

#: Set in pool workers so nested fan-out degrades to serial.
_in_worker = False


def cpu_count() -> int:
    """Usable CPU count (affinity-aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def set_default_jobs(jobs: Optional[int]) -> int:
    """Install the ambient job count (the CLI's ``--jobs``).

    Args:
        jobs: worker count; 0 or None means "auto" (one per CPU).

    Returns:
        The previous default.
    """
    global _default_jobs
    previous = _default_jobs
    _default_jobs = resolve_jobs(jobs if jobs is not None else 0)
    return previous


def get_default_jobs() -> int:
    """The ambient job count (1 unless ``--jobs``/``set_default_jobs``)."""
    return _default_jobs


def set_default_batch_size(batch_size: Optional[int]) -> int:
    """Install the ambient PHY batch size (the CLI's ``--batch-size``).

    Args:
        batch_size: packets per stacked PHY-chain evaluation; None or 1
            selects the per-packet path.

    Returns:
        The previous default.
    """
    global _default_batch_size
    previous = _default_batch_size
    _default_batch_size = resolve_batch_size(
        batch_size if batch_size is not None else 1
    )
    return previous


def get_default_batch_size() -> int:
    """The ambient PHY batch size (1 unless ``--batch-size`` was given)."""
    return _default_batch_size


def resolve_batch_size(batch_size: Optional[int]) -> int:
    """Turn a ``batch_size=`` argument into a concrete batch size.

    ``None`` defers to the ambient default; explicit values must be
    positive.  Batching is a pure throughput knob — results are
    bit-identical at every batch size.
    """
    if batch_size is None:
        return _default_batch_size
    batch_size = int(batch_size)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return batch_size


def set_default_memoize(memoize: bool) -> bool:
    """Install the ambient memoization default (the CLI's ``--memoize``).

    Returns:
        The previous default.
    """
    global _default_memoize
    previous = _default_memoize
    _default_memoize = bool(memoize)
    return previous


def get_default_memoize() -> bool:
    """The ambient memoization default (False unless ``--memoize``)."""
    return _default_memoize


def in_worker() -> bool:
    """Whether this process is a pool worker (nested fan-out disabled)."""
    return _in_worker


def resolve_jobs(jobs: Optional[int]) -> int:
    """Turn a ``jobs=`` argument into a concrete worker count.

    ``None`` defers to the ambient default, ``0`` means one worker per
    CPU, and anything is clamped to 1 inside a pool worker so parallel
    layers never nest.
    """
    if _in_worker:
        return 1
    if jobs is None:
        return _default_jobs
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = cpu_count()
    return max(1, jobs)


class ParallelResult(List[Any]):
    """The consumed results (a list), plus execution telemetry.

    Attributes:
        jobs: worker count the region actually ran with (1 =
            in-process; a single-task region always runs in-process).
        jobs_requested: worker count the caller's configuration asked
            for, before the single-task rewrite — ``repro profile``
            comparisons report both so the region's label always
            matches the requested configuration.
        wall_s: wall-clock of the whole region.
        busy_s: summed task execution time across workers, including
            failed attempts and drained-but-discarded tasks.
        efficiency: ``busy_s / (jobs * wall_s)`` — 1.0 is perfect
            scaling, ``1/jobs`` means the pool bought nothing.
        stopped: whether the ``stop`` predicate ended the region early.
        retries: task attempts re-run after a captured failure.
        failures: :class:`TaskError` of every task that exhausted its
            retries (at most one when ``on_error="raise"``).
        discarded: in-flight tasks that ran to completion after an
            early stop / failure but whose results were discarded.
        pool_broken: whether a dying worker broke the process pool and
            the region fell back to in-process serial execution.
    """

    def __init__(self, *args):
        super().__init__(*args)
        self.jobs: int = 1
        self.jobs_requested: int = 1
        self.wall_s: float = 0.0
        self.busy_s: float = 0.0
        self.efficiency: float = 1.0
        self.stopped: bool = False
        self.retries: int = 0
        self.failures: List[TaskError] = []
        self.discarded: int = 0
        self.pool_broken: bool = False


def _init_worker(batch_size: int = 1) -> None:
    """Pool initializer: mark the process so nested fan-out is serial.

    A forked worker also inherits the parent's ambient live monitor;
    it is disabled here so events emitted inside tasks stay invisible
    to the parent-side flight recorder — the in-process fast path
    suppresses them symmetrically via ``obs.live_suspended``, which is
    what keeps serial and pooled flight records identical.  The ambient
    PHY batch size is forwarded explicitly so spawn-based platforms
    match fork-based ones.
    """
    global _in_worker, _default_batch_size
    _in_worker = True
    _default_batch_size = batch_size
    obs.set_live_monitor(None)


def _worker_call(payload):
    """Run one task attempt in a worker under capturable instrumentation.

    Returns ``(result, duration_s, pid, metrics_snapshot, span_dicts,
    probe_snapshot)``; ``result`` is a :class:`TaskError` when the
    attempt raised (fault injection, task exception, or timeout), in
    which case the metrics snapshot, spans and probe state are from the
    *failed* attempt and the parent discards them to keep merged
    telemetry identical to a clean run.
    """
    (fn, task, index, attempt, stage, want_spans, timeout_s, plan,
     probe_cfg) = payload
    registry = obs.MetricsRegistry()
    tracer = obs.Tracer() if want_spans else None
    probes = obs.ProbeRegistry(probe_cfg) if probe_cfg is not None else None
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer) if want_spans else None
    previous_probes = obs.set_probes(probes) if probes is not None else None
    start = time.perf_counter()
    try:
        try:
            # Faults run inside the guard so an injected delay is
            # subject to the same timeout as real task work.
            with _resilience.task_timeout_guard(timeout_s):
                _faults.apply_task_faults(
                    plan, stage, index, attempt, _in_worker
                )
                result = fn(task)
        except Exception as exc:  # structured capture, never raw
            result = _resilience.task_error_from(exc, index, attempt)
    finally:
        obs.set_registry(previous_registry)
        if want_spans:
            obs.set_tracer(previous_tracer)
        if probes is not None:
            obs.set_probes(previous_probes)
    duration = time.perf_counter() - start
    spans = (
        [r.as_dict() for r in tracer.records] if tracer is not None else None
    )
    probe_snap = probes.snapshot() if probes is not None else None
    return (result, duration, os.getpid(), registry.snapshot(), spans,
            probe_snap)


def _run_attempts_inprocess(
    fn: Callable[[Any], Any],
    task: Any,
    index: int,
    stage: str,
    retries: int,
    timeout_s: Optional[float],
    reseed: Optional[Callable[[Any, int], Any]],
    plan,
    out: "ParallelResult",
    first_attempt: int = 0,
) -> Any:
    """Run one task in-process with the full retry/timeout/fault stack.

    Returns the task's result, or the final attempt's
    :class:`TaskError` once retries are exhausted.  Used by the serial
    fast path and by the broken-pool fallback.
    """
    error: Optional[TaskError] = None
    ambient_probes = obs.get_probes()
    for attempt in range(first_attempt, retries + 1):
        attempt_task = (
            task if (reseed is None or attempt == 0) else reseed(task, attempt)
        )
        # Each attempt accumulates probe taps into its own scratch
        # registry, merged into the ambient one only on success — the
        # same snapshot/merge tree the pooled path builds, so serial,
        # pooled and faulted-then-retried probe state is bit-identical,
        # and a failed attempt's taps are discarded like its metrics.
        scratch = ambient_probes.spawn() if ambient_probes.enabled else None
        if scratch is not None:
            obs.set_probes(scratch)
        t0 = time.perf_counter()
        try:
            with _resilience.task_timeout_guard(timeout_s):
                _faults.apply_task_faults(
                    plan, stage, index, attempt, _in_worker
                )
                # Suspended so events the task emits internally stay
                # out of the live monitor, matching pooled workers
                # (whose monitor _init_worker disables).
                with obs.live_suspended():
                    result = fn(attempt_task)
            duration = time.perf_counter() - t0
            out.busy_s += duration
            if scratch is not None:
                ambient_probes.merge(scratch.snapshot())
            obs.live_note_task(
                stage, index, duration, os.getpid(), ok=True,
                attempt=attempt,
            )
            return result
        except Exception as exc:  # structured capture, never raw
            duration = time.perf_counter() - t0
            out.busy_s += duration
            error = _resilience.task_error_from(exc, index, attempt)
            _record_task_failure(error, stage)
            obs.live_note_task(
                stage, index, duration, os.getpid(), ok=False,
                attempt=attempt,
            )
            if attempt < retries:
                out.retries += 1
        finally:
            if scratch is not None:
                obs.set_probes(ambient_probes)
    return error


def _record_task_failure(error: TaskError, stage: str) -> None:
    """Emit the failure's telemetry: a counter tick and a trace event."""
    obs.get_registry().counter(
        "parallel_task_errors", "task attempts that raised"
    ).inc(stage=stage, exc_type=error.exc_type)
    obs.get_tracer().event(
        "task_error",
        stage=stage,
        index=error.index,
        attempt=error.attempt,
        exc_type=error.exc_type,
        message=error.message,
        worker_pid=error.worker_pid,
    )


def _emit_region_metrics(out: "ParallelResult", stage: str) -> None:
    """Report a region's scaling + resilience telemetry (every path)."""
    registry = obs.get_registry()
    registry.gauge(
        "parallel_efficiency",
        "busy / (jobs * wall) of a parallel region",
    ).set(out.efficiency, stage=stage, jobs=out.jobs,
          requested=out.jobs_requested)
    registry.counter(
        "parallel_tasks", "tasks executed by parallel regions"
    ).inc(len(out), stage=stage)
    registry.counter(
        "parallel_task_retries", "task attempts re-run after a failure"
    ).inc(out.retries, stage=stage)
    registry.counter(
        "parallel_task_failures", "tasks that exhausted their retries"
    ).inc(len(out.failures), stage=stage)
    registry.counter(
        "parallel_tasks_discarded",
        "in-flight tasks drained after an early stop, their work unused",
    ).inc(out.discarded, stage=stage)
    if out.pool_broken:
        registry.counter(
            "parallel_pool_broken",
            "regions that lost their pool and fell back to serial",
        ).inc(stage=stage)


def _drain_futures(
    futures: Dict[int, Any], out: "ParallelResult"
) -> None:
    """Cancel pending futures and drain running ones on region exit.

    ``Future.cancel`` only stops not-yet-started tasks; anything
    already executing runs to completion inside the executor, so its
    wall-clock is accounted into ``busy_s`` and counted as discarded
    work — ``efficiency`` stays honest about what the pool really did.
    """
    for index in sorted(futures):
        future = futures.pop(index)
        if future.cancel():
            continue
        try:
            result, duration = future.result()[:2]
        except Exception:  # broken pool / interpreter teardown
            continue
        out.busy_s += duration
        out.discarded += 1


def _finish_task(
    out: "ParallelResult",
    index: int,
    result: Any,
    on_result: Optional[Callable[[int, Any], None]],
    stop: Optional[Callable[[int, Any], bool]],
    on_error: str,
) -> bool:
    """Consume one final (post-retry) task result, in task order.

    Returns True when the region should stop dispatching.
    """
    if isinstance(result, TaskError):
        out.failures.append(result)
        if on_error == "raise":
            raise TaskFailedError(result)
    out.append(result)
    if on_result is not None:
        on_result(index, result)
    if stop is not None and stop(index, result):
        out.stopped = True
        return True
    return False


def _pool_context():
    """Prefer fork (cheap, inherits the loaded stack) where available."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    stage: str = "parallel",
    stop: Optional[Callable[[int, Any], bool]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    window: Optional[int] = None,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    reseed: Optional[Callable[[Any, int], Any]] = None,
    on_error: str = "raise",
) -> ParallelResult:
    """Apply ``fn`` to every task, in order, optionally across processes.

    Args:
        fn: a picklable callable (module-level function) of one task.
        tasks: the work items, each picklable.
        jobs: worker processes; None defers to the ambient ``--jobs``
            default, 0 means one per CPU, 1 runs in-process.
        stage: label for spans/metrics (``"sweep"``, ``"ber"``, ...).
        stop: ``stop(index, result)`` evaluated strictly in task order
            after each result is consumed; True ends the region — no
            further task is dispatched and later in-flight results are
            discarded, mirroring a serial early-stop.
        on_result: ``on_result(index, result)`` called in task order for
            each consumed result (progress reporting).
        window: max in-flight tasks beyond the consumed front (default
            ``2 * jobs``); bounds wasted work after an early stop.
        retries: times a failed task is re-run before its error is
            surfaced; None defers to the ambient ``--retries`` default
            (0).  Retries re-run the *same* payload, so a retry that
            succeeds is bit-identical to a clean run; callers that want
            per-attempt entropy pass ``reseed``.
        task_timeout: per-task wall-clock budget in seconds (a timeout
            becomes an ordinary task error, retried like any other);
            None defers to the ambient ``--task-timeout`` default.
        reseed: ``reseed(task, attempt) -> task`` mapping a task to its
            attempt-``k`` payload (attempt 0 always uses the original);
            pair with :func:`repro.perf.seeding.attempt_seed` for
            reproducible per-attempt streams.
        on_error: ``"raise"`` (default) raises
            :class:`~repro.perf.resilience.TaskFailedError` once a task
            exhausts its retries — with in-flight work drained and
            region telemetry still emitted; ``"capture"`` appends the
            :class:`~repro.perf.resilience.TaskError` as the task's
            result and keeps going.

    Returns:
        A :class:`ParallelResult` with the consumed results (a prefix
        of ``tasks``'s results) and scaling + resilience telemetry.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(f"unknown on_error mode {on_error!r}")
    jobs = resolve_jobs(jobs)
    retries = _resilience.resolve_retries(retries)
    task_timeout = _resilience.resolve_task_timeout(task_timeout)
    plan = _faults.get_fault_plan()
    out = ParallelResult()
    out.jobs_requested = jobs
    out.jobs = jobs
    tasks = list(tasks)
    tracer = obs.get_tracer()
    start = time.perf_counter()

    if jobs == 1 or len(tasks) <= 1:
        out.jobs = 1
        obs.live_note_region(stage, len(tasks), 1)
        try:
            for i, task in enumerate(tasks):
                _faults.check_abort(plan, stage, i)
                result = _run_attempts_inprocess(
                    fn, task, i, stage, retries, task_timeout, reseed,
                    plan, out,
                )
                if _finish_task(out, i, result, on_result, stop, on_error):
                    break
        finally:
            out.wall_s = time.perf_counter() - start
            out.efficiency = 1.0
            _emit_region_metrics(out, stage)
        return out

    ambient_probes = obs.get_probes()
    probe_cfg = ambient_probes.config if ambient_probes.enabled else None
    want_spans = bool(tracer.enabled)
    window = max(jobs, window if window is not None else 2 * jobs)
    obs.live_note_region(stage, len(tasks), jobs)
    try:
        with obs.span(f"parallel:{stage}", jobs=jobs, tasks=len(tasks)):
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(_default_batch_size,),
            ) as executor:
                futures: Dict[int, Any] = {}
                next_submit = 0

                def submit(index, attempt):
                    attempt_task = (
                        tasks[index]
                        if (reseed is None or attempt == 0)
                        else reseed(tasks[index], attempt)
                    )
                    futures[index] = executor.submit(
                        _worker_call,
                        (fn, attempt_task, index, attempt, stage,
                         want_spans, task_timeout, plan, probe_cfg),
                    )

                def submit_up_to(limit):
                    nonlocal next_submit
                    while next_submit < min(limit, len(tasks)):
                        submit(next_submit, 0)
                        next_submit += 1

                i = 0
                broken_at: Optional[int] = None
                try:
                    submit_up_to(window)
                    while i < len(tasks):
                        if i not in futures:
                            break
                        _faults.check_abort(plan, stage, i)
                        (result, duration, pid, metrics, spans,
                         probe_snap) = futures.pop(i).result()
                        out.busy_s += duration
                        failed = isinstance(result, TaskError)
                        if not failed:
                            # Failed attempts contribute wall-clock
                            # only: their partial telemetry is dropped
                            # so merged metrics match a clean run.
                            obs.get_registry().merge(metrics)
                            if probe_snap is not None:
                                ambient_probes.merge(probe_snap)
                        record = tracer.record_span(
                            f"{stage}:task", duration,
                            index=i, worker_pid=pid, jobs=jobs,
                            **(
                                {"error": result.exc_type,
                                 "attempt": result.attempt}
                                if failed else {}
                            ),
                        )
                        if spans and not failed:
                            tracer.absorb(
                                spans,
                                parent_id=(
                                    record.span_id if record else None
                                ),
                            )
                        obs.live_note_task(
                            stage, i, duration, pid, ok=not failed,
                            attempt=result.attempt if failed else 0,
                        )
                        if failed:
                            _record_task_failure(result, stage)
                            if result.attempt < retries:
                                out.retries += 1
                                submit(i, result.attempt + 1)
                                continue
                        if _finish_task(
                            out, i, result, on_result, stop, on_error
                        ):
                            break
                        i += 1
                        submit_up_to(i + window)
                except BrokenProcessPool:
                    # Raised from .result() of the crashed task's
                    # future *or* from a later submit; either way the
                    # tasks from ``i`` on have not been consumed.
                    broken_at = i
                finally:
                    _drain_futures(futures, out)
                if broken_at is not None:
                    # A worker died (SIGKILL, OOM...): the pool is
                    # unusable, so degrade gracefully — finish the
                    # remaining tasks in-process.  Seed derivation makes
                    # the results identical to an unbroken run; attempt
                    # numbering restarts for tasks the pool lost.
                    out.pool_broken = True
                    for i in range(broken_at, len(tasks)):
                        _faults.check_abort(plan, stage, i)
                        result = _run_attempts_inprocess(
                            fn, tasks[i], i, stage, retries, task_timeout,
                            reseed, plan, out,
                        )
                        if _finish_task(
                            out, i, result, on_result, stop, on_error
                        ):
                            break
    finally:
        out.wall_s = time.perf_counter() - start
        out.efficiency = (
            out.busy_s / (out.jobs * out.wall_s) if out.wall_s > 0 else 1.0
        )
        _emit_region_metrics(out, stage)
    return out
