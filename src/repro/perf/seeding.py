"""Deterministic seed derivation for serial and parallel execution.

The seed scheme is the contract that makes parallelism *provably*
deterministic: every independent unit of work (a sweep point, a packet,
a characterization analysis) draws its random stream from a
:class:`numpy.random.SeedSequence` child whose spawn key encodes the
unit's coordinates — never from "how far along" a shared generator
happens to be, and never from ad-hoc arithmetic like ``seed + 1000 * i``
(which collides between sweeps whose base seeds differ by a multiple of
1000).

With this scheme, packet ``j`` of sweep point ``i`` sees exactly the
same random stream whether the sweep runs serially, across 2 workers,
or across 32 — so parallel output is bit-identical to serial, and the
``repro runs diff`` CI gate can enforce it.

The scheme identifier (:data:`SEEDING_SCHEME`) is recorded in every run
manifest so a stored run documents which derivation produced it; retried
task attempts derive their streams via :func:`attempt_seed` under the
separate :data:`RETRY_SCHEME` identifier.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.obs.manifest import RETRY_SCHEME, SEEDING_SCHEME

__all__ = [
    "RETRY_SCHEME",
    "SEEDING_SCHEME",
    "SeedLike",
    "as_seed_sequence",
    "attempt_seed",
    "seed_entropy",
    "seed_fingerprint",
    "spawn",
    "stream",
]

#: Spawn-key branch reserved for retry attempts.  Large enough that no
#: in-band coordinate (packet index, sweep point...) ever collides with
#: it, so attempt streams are disjoint from every first-attempt stream.
RETRY_SPAWN_KEY = 0x52455452  # ASCII "RETR"

#: Anything accepted where a seed is expected.
SeedLike = Union[int, np.random.SeedSequence]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize an int (or an existing sequence) to a SeedSequence."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(int(seed))


def spawn(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child sequences of ``seed``.

    Children are identified by their spawn key, so the stream of child
    ``i`` depends only on the root entropy and the path of spawn indices
    leading to it — not on execution order or worker placement.

    Unlike :meth:`numpy.random.SeedSequence.spawn` this derivation is
    *stateless*: spawning the same root twice yields the same children
    (numpy's method advances a counter on the parent), which is what
    lets a re-run — or a memoized retry — reproduce the exact streams.
    """
    root = as_seed_sequence(seed)
    return [
        np.random.SeedSequence(
            entropy=root.entropy, spawn_key=root.spawn_key + (i,)
        )
        for i in range(n)
    ]


def stream(seed: SeedLike) -> np.random.Generator:
    """A fresh generator for one unit of work."""
    return np.random.default_rng(as_seed_sequence(seed))


def attempt_seed(seed: SeedLike, attempt: int) -> np.random.SeedSequence:
    """The seed of retry attempt ``attempt`` of a unit of work.

    Attempt 0 *is* the unit's own seed — so by default a retried task
    replays the identical stream and a retry-then-succeed run is
    bit-identical to a clean one.  Attempts ``k > 0`` branch under the
    reserved :data:`RETRY_SPAWN_KEY`, giving callers that *want* fresh
    entropy per attempt (e.g. probing a flaky numerical corner) a
    reproducible stream: attempt ``k`` of task ``i`` is the same stream
    on every machine, every run (:data:`RETRY_SCHEME`, recorded in the
    manifest).
    """
    attempt = int(attempt)
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    root = as_seed_sequence(seed)
    if attempt == 0:
        return root
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (RETRY_SPAWN_KEY, attempt),
    )


def seed_fingerprint(seed: SeedLike) -> Dict[str, Any]:
    """Lossless, JSON-friendly identity of the stream ``seed`` yields.

    Root entropy plus the spawn path pin down a SeedSequence's output
    exactly, so two seeds fingerprint alike iff they generate the same
    stream.  Use this wherever a seed enters a content hash (e.g. the
    sweep-point memoization key); :func:`seed_entropy` is the lossy
    display variant and returns None for spawned children.
    """
    root = as_seed_sequence(seed)
    entropy = root.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {
        "entropy": entropy,
        "spawn_key": [int(k) for k in root.spawn_key],
    }


def seed_entropy(seed: SeedLike) -> Optional[int]:
    """Best-effort plain-int rendering of a seed for manifests.

    Returns the root entropy when it is a plain int (the common CLI
    case) and None for pooled/derived entropy, where a single int would
    misrepresent the stream.
    """
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, int) and not seed.spawn_key:
            return entropy
        return None
    return int(seed)
