"""Spectral measurements: PSD, channel powers and the 802.11a mask."""

from repro.spectrum.psd import (
    PowerSpectralDensity,
    welch_psd,
    band_power_dbm,
    adjacent_channel_power_ratio_db,
    occupied_bandwidth_hz,
    transmit_mask_802_11a_dbr,
    check_transmit_mask,
)

__all__ = [
    "PowerSpectralDensity",
    "welch_psd",
    "band_power_dbm",
    "adjacent_channel_power_ratio_db",
    "occupied_bandwidth_hz",
    "transmit_mask_802_11a_dbr",
    "check_transmit_mask",
]
