"""Power spectral density estimation and channel-power measurements.

Supports the paper's figure 4 (an OFDM signal with its adjacent channel at
5.2 GHz) and general spectral verification: Welch PSD in dBm/Hz, band
powers, ACPR and the 802.11a transmit spectral mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import signal as sps

from repro.rf.signal import Signal, watts_to_dbm


@dataclass
class PowerSpectralDensity:
    """A two-sided PSD estimate of a complex envelope.

    Attributes:
        freqs_hz: frequency axis relative to the carrier reference
            (two-sided, ascending).
        psd_w_hz: PSD in watts/Hz.
        carrier_frequency: absolute carrier the offsets refer to.
    """

    freqs_hz: np.ndarray
    psd_w_hz: np.ndarray
    carrier_frequency: float = 0.0

    @property
    def psd_dbm_hz(self) -> np.ndarray:
        """PSD in dBm/Hz (floored at -250 dBm/Hz)."""
        floor = 1e-28
        return 10.0 * np.log10(np.maximum(self.psd_w_hz, floor) / 1e-3)

    @property
    def absolute_freqs_hz(self) -> np.ndarray:
        """Absolute frequency axis (figure 4 shows 5.2 GHz +/- offsets)."""
        return self.freqs_hz + self.carrier_frequency

    def band_power_watts(self, f_low: float, f_high: float) -> float:
        """Integrated power between two offset frequencies."""
        if f_high <= f_low:
            raise ValueError("f_high must exceed f_low")
        mask = (self.freqs_hz >= f_low) & (self.freqs_hz < f_high)
        if not np.any(mask):
            return 0.0
        integrate = np.trapezoid if hasattr(np, "trapezoid") else np.trapz
        return float(integrate(self.psd_w_hz[mask], self.freqs_hz[mask]))


def welch_psd(
    signal: Signal, nperseg: int = 1024, window: str = "hann"
) -> PowerSpectralDensity:
    """Welch PSD of a complex-envelope signal.

    Args:
        signal: the signal to analyze.
        nperseg: Welch segment length (reduced automatically for short
            signals).
        window: window name passed to scipy.

    Returns:
        A :class:`PowerSpectralDensity` with an ascending two-sided axis.
    """
    n = min(nperseg, signal.samples.size)
    if n < 8:
        raise ValueError("signal too short for PSD estimation")
    freqs, psd = sps.welch(
        signal.samples,
        fs=signal.sample_rate,
        window=window,
        nperseg=n,
        return_onesided=False,
        detrend=False,
    )
    order = np.argsort(freqs)
    return PowerSpectralDensity(
        freqs_hz=freqs[order],
        psd_w_hz=psd[order],
        carrier_frequency=signal.carrier_frequency,
    )


def band_power_dbm(
    signal: Signal, f_low: float, f_high: float, nperseg: int = 1024
) -> float:
    """Power in dBm within an offset-frequency band."""
    psd = welch_psd(signal, nperseg=nperseg)
    return watts_to_dbm(psd.band_power_watts(f_low, f_high))


def adjacent_channel_power_ratio_db(
    signal: Signal,
    channel_bandwidth_hz: float = 16.6e6,
    channel_spacing_hz: float = 20e6,
    nperseg: int = 2048,
) -> Tuple[float, float]:
    """ACPR of the envelope: (lower, upper) adjacent over in-band power.

    Returns:
        Tuple of lower/upper adjacent-channel power ratios in dB (negative
        values mean the adjacent channel is below the in-band power).
    """
    psd = welch_psd(signal, nperseg=nperseg)
    half = channel_bandwidth_hz / 2.0
    main = psd.band_power_watts(-half, half)
    if main <= 0:
        raise ValueError("no in-band power")
    lower = psd.band_power_watts(-channel_spacing_hz - half, -channel_spacing_hz + half)
    upper = psd.band_power_watts(channel_spacing_hz - half, channel_spacing_hz + half)
    tiny = 1e-30
    return (
        10.0 * np.log10(max(lower, tiny) / main),
        10.0 * np.log10(max(upper, tiny) / main),
    )


def occupied_bandwidth_hz(signal: Signal, fraction: float = 0.99) -> float:
    """Bandwidth containing ``fraction`` of the total power (centered)."""
    if not 0 < fraction < 1:
        raise ValueError("fraction must be in (0, 1)")
    psd = welch_psd(signal)
    df = np.diff(psd.freqs_hz, prepend=psd.freqs_hz[0] - (psd.freqs_hz[1] - psd.freqs_hz[0]))
    powers = psd.psd_w_hz * df
    total = powers.sum()
    if total <= 0:
        return 0.0
    # Grow a symmetric window around 0 offset until the fraction is reached.
    order = np.argsort(np.abs(psd.freqs_hz))
    cumulative = np.cumsum(powers[order])
    idx = np.searchsorted(cumulative, fraction * total)
    idx = min(idx, order.size - 1)
    return 2.0 * float(np.abs(psd.freqs_hz[order[idx]]))


def transmit_mask_802_11a_dbr(offset_hz: np.ndarray) -> np.ndarray:
    """The 802.11a transmit spectral mask in dBr vs. frequency offset.

    Breakpoints (17.3.9.2): 0 dBr inside +/-9 MHz, -20 dBr at 11 MHz,
    -28 dBr at 20 MHz, -40 dBr at 30 MHz and beyond (linear interpolation
    between breakpoints).
    """
    offset = np.abs(np.asarray(offset_hz, dtype=float))
    points_mhz = np.array([0.0, 9.0, 11.0, 20.0, 30.0, 1e6])
    values_dbr = np.array([0.0, 0.0, -20.0, -28.0, -40.0, -40.0])
    return np.interp(offset / 1e6, points_mhz, values_dbr)


def check_transmit_mask(
    signal: Signal, resolution_hz: float = 100e3
) -> Tuple[bool, float]:
    """Check a transmit signal against the 802.11a spectral mask.

    The PSD is normalized to its maximum in-band density (dBr) and compared
    with :func:`transmit_mask_802_11a_dbr`.

    Returns:
        ``(passes, worst_margin_db)`` where a positive margin means the
        spectrum is below the mask everywhere.
    """
    nperseg = max(int(signal.sample_rate / resolution_hz), 64)
    nperseg = min(nperseg, signal.samples.size)
    psd = welch_psd(signal, nperseg=nperseg)
    ref = psd.psd_w_hz.max()
    if ref <= 0:
        raise ValueError("signal has no power")
    dbr = 10.0 * np.log10(np.maximum(psd.psd_w_hz, 1e-30) / ref)
    mask = transmit_mask_802_11a_dbr(psd.freqs_hz)
    margin = mask - dbr
    worst = float(margin.min())
    return worst >= 0.0, worst
