"""Regression detection: compare two stored runs, return a CI verdict.

The paper's numbers only mean something *relative to a baseline* — the
figure-5 BER valley, the table-2 slowdown, the sensitivity margins.
:func:`compare_runs` takes two :class:`~repro.obs.store.RunRecord`\\ s
(typically a stored baseline and a fresh candidate) and checks, with
per-class tolerances:

* **KPIs** (``kpis.json``): absolute + relative tolerance, two-sided —
  any drift of a key result is flagged, exact by default since same-seed
  simulations are deterministic;
* **metrics** (``metrics.json``): flattened to ``name{labels}`` scalars
  and compared like KPIs, except *timing-class* series (wall seconds,
  durations) which use a one-sided ratio tolerance — only slower fails;
* **BER curves** (``curves.json``): pointwise drift in decades of BER,
  plus the horizontal shift in dB at a fixed BER level when both curves
  cross it (the "1 dB worse at BER 1e-2" number an RF engineer quotes);
* **wall clock** (``trace.jsonl``): per-span-name totals from
  :func:`~repro.obs.profile.aggregate_spans` under the timing tolerance;
* **integrity**: a run whose content no longer matches its stored
  digest fails outright — tampered results are never silently compared.

The result is a structured :class:`RegressionVerdict` whose ``passed``
flag maps straight onto a CI exit code (``repro runs diff``).
"""

from __future__ import annotations

import fnmatch
import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.profile import aggregate_spans
from repro.obs.store import RunRecord

__all__ = [
    "Delta",
    "RegressionConfig",
    "RegressionVerdict",
    "compare_runs",
    "curve_drift_decades",
    "flatten_metrics",
    "shift_at_fixed_ber",
]

#: Series whose values are wall-clock-like and jitter run to run.
_TIMING_RE = re.compile(
    r"(_s$|_s\[|_s\{|seconds|duration|wall|slowdown|_time)", re.IGNORECASE
)


def is_timing_name(name: str) -> bool:
    """Whether a KPI/metric name denotes wall-clock-class data."""
    return bool(_TIMING_RE.search(name))


@dataclass
class Delta:
    """One compared quantity.

    Attributes:
        name: the compared key (KPI name, ``metric{labels}``,
            ``curve:<name>:<check>``, ``span:<name>``...).
        kind: ``kpi`` / ``metric`` / ``timing`` / ``curve`` /
            ``integrity``.
        baseline / candidate: the two values (None when missing).
        delta: candidate - baseline (or the drift measure for curves).
        limit: human-readable tolerance that was applied.
        passed: verdict for this quantity.
        note: extra context (units, "missing", crossing level...).
    """

    name: str
    kind: str
    baseline: Optional[float]
    candidate: Optional[float]
    delta: float
    limit: str
    passed: bool
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "limit": self.limit,
            "passed": self.passed,
            "note": self.note,
        }


@dataclass
class RegressionConfig:
    """Tolerances for :func:`compare_runs`.

    Attributes:
        kpi_abs_tol / kpi_rel_tol: two-sided default KPI tolerance
            (exact by default: same-seed runs are deterministic).
        kpi_overrides: ``fnmatch`` pattern -> ``(abs_tol, rel_tol)``
            overrides for individual KPI/metric names.
        timing_rel_tol: allowed one-sided growth of timing-class values
            (0.5 = the candidate may be up to 50 % slower).
        timing_abs_tol: absolute slack added on top (seconds).
        timing_min_s: timing values where both sides are below this are
            ignored entirely (sub-jitter noise).
        compare_metrics / compare_timing / compare_curves: master
            switches per comparison class.
        ber_floor: BER values are clamped up to this before log-domain
            math (a zero-error run is "at or below the floor").
        ber_drift_tol_decades: allowed pointwise |log10 BER| drift.
        ber_shift_tol_db: allowed horizontal shift at the fixed BER.
        ber_target: BER level for the shift measurement; None picks the
            geometric midpoint of the baseline curve's dynamic range.
        require_integrity: fail runs whose stored digest mismatches.
        metric_ignore: ``fnmatch`` patterns of metric names excluded
            from comparison entirely.  Defaults to execution/telemetry
            series that describe *how* a run was scheduled or observed,
            not *what* it computed: the parallel executor's
            ``parallel_*`` counters and any ``jobs_requested*`` label
            variants (a serial baseline and a ``--jobs 4`` candidate
            must still diff clean), plus the signal-probe ``probe_*``
            gauges (a probes-on candidate must diff clean against a
            probes-off baseline; the *probe KPIs* remain compared,
            under :attr:`probe_kpi_abs_tol`, whenever both runs carry
            them), plus the live-telemetry ``live_*`` gauges, which
            carry wall-clock rates, ETA, and worker health — volatile
            by construction, so a ``--live`` run must diff clean
            against a baseline without it.
        probe_kpi_abs_tol: absolute tolerance for ``probe.*`` KPIs
            (EVM dB, mask margin dB, PAPR dB...), unless a
            ``kpi_overrides`` pattern matches first.  Exact by default:
            probe artefacts are bit-deterministic at any job count.
    """

    kpi_abs_tol: float = 0.0
    kpi_rel_tol: float = 0.0
    kpi_overrides: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    probe_kpi_abs_tol: float = 0.0
    timing_rel_tol: float = 0.5
    timing_abs_tol: float = 0.25
    timing_min_s: float = 0.05
    compare_metrics: bool = True
    compare_timing: bool = True
    compare_curves: bool = True
    ber_floor: float = 1e-7
    ber_drift_tol_decades: float = 0.5
    ber_shift_tol_db: float = 1.0
    ber_target: Optional[float] = None
    require_integrity: bool = True
    metric_ignore: Tuple[str, ...] = (
        "parallel_*",
        "probe_*",
        "jobs_requested*",
        "live_*",
    )

    def is_ignored_metric(self, name: str) -> bool:
        """Whether a metric name is excluded from comparison."""
        return any(
            fnmatch.fnmatch(name, pattern) for pattern in self.metric_ignore
        )

    def tolerance_for(self, name: str) -> Tuple[float, float]:
        """(abs_tol, rel_tol) for a KPI/metric name, honouring overrides."""
        for pattern, tol in self.kpi_overrides.items():
            if fnmatch.fnmatch(name, pattern):
                return tol
        if name.startswith("probe."):
            return (self.probe_kpi_abs_tol, 0.0)
        return (self.kpi_abs_tol, self.kpi_rel_tol)


@dataclass
class RegressionVerdict:
    """Structured outcome of a run comparison."""

    baseline_id: str
    candidate_id: str
    deltas: List[Delta] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(d.passed for d in self.deltas)

    @property
    def failures(self) -> List[Delta]:
        return [d for d in self.deltas if not d.passed]

    @property
    def nonzero(self) -> List[Delta]:
        return [d for d in self.deltas if d.delta != 0.0]

    def summary(self) -> str:
        """One line fit for a CI log."""
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"{verdict}: {len(self.deltas)} comparisons, "
            f"{len(self.nonzero)} nonzero deltas, "
            f"{len(self.failures)} over tolerance "
            f"({self.candidate_id} vs baseline {self.baseline_id})"
        )

    def rows(
        self, only_interesting: bool = True
    ) -> Tuple[List[str], List[List[str]]]:
        """(headers, rows) for table rendering.

        Args:
            only_interesting: keep failures and nonzero deltas only.
        """
        def fmt(v):
            return "-" if v is None else f"{v:.6g}"

        deltas = self.deltas
        if only_interesting:
            deltas = [d for d in deltas if not d.passed or d.delta != 0.0]
        headers = ["quantity", "baseline", "candidate", "delta",
                   "limit", "verdict"]
        rows = [
            [
                d.name if not d.note else f"{d.name} ({d.note})",
                fmt(d.baseline),
                fmt(d.candidate),
                f"{d.delta:+.6g}",
                d.limit,
                "ok" if d.passed else "FAIL",
            ]
            for d in deltas
        ]
        return headers, rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_id,
            "candidate": self.candidate_id,
            "passed": self.passed,
            "deltas": [d.as_dict() for d in self.deltas],
        }


# -- metrics flattening -------------------------------------------------
def flatten_metrics(metrics: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a ``MetricsRegistry.as_dict()`` snapshot to scalars.

    Counters/gauges become ``name{k=v,...}``; histogram summaries expand
    to ``name.count{...}``, ``name.sum{...}``, ``name.p50{...}`` etc.
    """
    flat: Dict[str, float] = {}
    for name, entry in metrics.items():
        for series in entry.get("series", []):
            labels = series.get("labels", {})
            label_str = (
                "{" + ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
                if labels else ""
            )
            if entry.get("kind") == "histogram":
                for stat, value in series.items():
                    if stat == "labels":
                        continue
                    flat[f"{name}.{stat}{label_str}"] = float(value)
            elif "value" in series:
                flat[f"{name}{label_str}"] = float(series["value"])
    return flat


# -- curve comparison ---------------------------------------------------
def curve_drift_decades(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    floor: float = 1e-7,
) -> Optional[float]:
    """Max pointwise |log10(BER)| drift over the common grid points.

    Returns None when the two curves share no x values.
    """
    base = dict(zip(baseline["x"], baseline["ber"]))
    worst = None
    for x, ber_b in zip(candidate["x"], candidate["ber"]):
        if x not in base:
            continue
        drift = abs(
            math.log10(max(ber_b, floor)) - math.log10(max(base[x], floor))
        )
        worst = drift if worst is None else max(worst, drift)
    return worst


def _crossing(
    x: List[float], ber: List[float], target: float, floor: float
) -> Optional[float]:
    """First x where the curve crosses ``target`` (log-BER interpolation)."""
    lt = math.log10(target)
    lb = [math.log10(max(b, floor)) for b in ber]
    for i in range(len(x) - 1):
        b0, b1 = lb[i], lb[i + 1]
        if b0 == lt:
            return float(x[i])
        if (b0 - lt) * (b1 - lt) < 0 or b1 == lt:
            frac = (lt - b0) / (b1 - b0)
            return float(x[i] + frac * (x[i + 1] - x[i]))
    return None


def shift_at_fixed_ber(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    target: Optional[float] = None,
    floor: float = 1e-7,
) -> Optional[Tuple[float, float]]:
    """Horizontal curve shift, in dB, at a fixed BER level.

    For a dB-valued x axis (``x_label`` containing "db") the shift is
    the plain x difference; otherwise it is ``10*log10(x_c/x_b)`` (e.g.
    a filter-bandwidth axis in Hz).  Returns ``(shift_db, target_ber)``
    or None when either curve never crosses the target.
    """
    bers = [b for b in baseline["ber"] if b > 0]
    if target is None:
        if not bers:
            return None
        lo, hi = max(min(bers), floor), min(max(bers), 0.5)
        if hi <= lo:
            return None
        target = math.sqrt(lo * hi)
    xb = _crossing(list(baseline["x"]), list(baseline["ber"]), target, floor)
    xc = _crossing(list(candidate["x"]), list(candidate["ber"]), target, floor)
    if xb is None or xc is None:
        return None
    if "db" in str(baseline.get("x_label", "")).lower():
        return (float(xc - xb), target)
    if xb <= 0 or xc <= 0:
        return None
    return (float(10.0 * math.log10(xc / xb)), target)


# -- comparison core ----------------------------------------------------
def _compare_scalar(
    name: str,
    kind: str,
    a: Optional[float],
    b: Optional[float],
    config: RegressionConfig,
) -> Optional[Delta]:
    """Compare one scalar under the right tolerance class."""
    if a is None or b is None:
        present, missing = ("baseline", "candidate") if b is None else (
            "candidate", "baseline"
        )
        return Delta(
            name=name, kind=kind, baseline=a, candidate=b,
            delta=0.0, limit="present in both",
            passed=False, note=f"missing from {missing}, {present} has it",
        )
    if is_timing_name(name):
        if not config.compare_timing:
            return None
        if abs(a) < config.timing_min_s and abs(b) < config.timing_min_s:
            return None
        allowed = abs(a) * config.timing_rel_tol + config.timing_abs_tol
        return Delta(
            name=name, kind="timing", baseline=a, candidate=b,
            delta=b - a,
            limit=f"<= +{config.timing_rel_tol:.0%} +{config.timing_abs_tol}s",
            passed=(b - a) <= allowed,
            note="one-sided",
        )
    abs_tol, rel_tol = config.tolerance_for(name)
    allowed = abs_tol + rel_tol * abs(a)
    return Delta(
        name=name, kind=kind, baseline=a, candidate=b,
        delta=b - a,
        limit=f"|delta| <= {allowed:.6g}",
        passed=abs(b - a) <= allowed,
    )


def compare_runs(
    baseline: RunRecord,
    candidate: RunRecord,
    config: Optional[RegressionConfig] = None,
) -> RegressionVerdict:
    """Compare a candidate run against a baseline run.

    Args:
        baseline: the reference (stored golden) run.
        candidate: the run under test.
        config: tolerances; defaults are exact for KPIs/metrics, +50 %
            for wall clock, 0.5 decades / 1 dB for BER curves.

    Returns:
        A :class:`RegressionVerdict`; ``verdict.passed`` is the CI gate.
    """
    config = config or RegressionConfig()
    verdict = RegressionVerdict(baseline.run_id, candidate.run_id)
    deltas = verdict.deltas

    # Integrity first: never compare tampered content silently.
    if config.require_integrity:
        for role, run in (("baseline", baseline), ("candidate", candidate)):
            if not run.integrity_ok:
                deltas.append(Delta(
                    name=f"integrity:{role}", kind="integrity",
                    baseline=None, candidate=None, delta=0.0,
                    limit="content matches stored digest", passed=False,
                    note=f"{run.run_id} was modified after storage",
                ))

    # KPIs.
    for name in sorted(set(baseline.kpis) | set(candidate.kpis)):
        delta = _compare_scalar(
            name, "kpi", baseline.kpis.get(name), candidate.kpis.get(name),
            config,
        )
        if delta is not None:
            deltas.append(delta)

    # Metrics snapshots.
    if config.compare_metrics:
        flat_a = flatten_metrics(baseline.metrics)
        flat_b = flatten_metrics(candidate.metrics)
        for name in sorted(set(flat_a) | set(flat_b)):
            if config.is_ignored_metric(name):
                continue
            delta = _compare_scalar(
                name, "metric", flat_a.get(name), flat_b.get(name), config
            )
            if delta is not None:
                deltas.append(delta)

    # BER curves.
    if config.compare_curves:
        for name in sorted(set(baseline.curves) | set(candidate.curves)):
            curve_a = baseline.curves.get(name)
            curve_b = candidate.curves.get(name)
            if curve_a is None or curve_b is None:
                missing = "candidate" if curve_b is None else "baseline"
                deltas.append(Delta(
                    name=f"curve:{name}", kind="curve",
                    baseline=None, candidate=None, delta=0.0,
                    limit="present in both", passed=False,
                    note=f"missing from {missing}",
                ))
                continue
            drift = curve_drift_decades(curve_a, curve_b, config.ber_floor)
            if drift is None:
                deltas.append(Delta(
                    name=f"curve:{name}", kind="curve",
                    baseline=None, candidate=None, delta=0.0,
                    limit="curves share grid points", passed=False,
                    note="no common x values",
                ))
                continue
            deltas.append(Delta(
                name=f"curve:{name}:drift", kind="curve",
                baseline=0.0, candidate=drift, delta=drift,
                limit=f"<= {config.ber_drift_tol_decades} decades",
                passed=drift <= config.ber_drift_tol_decades,
                note="max pointwise log10 BER drift",
            ))
            shift = shift_at_fixed_ber(
                curve_a, curve_b, config.ber_target, config.ber_floor
            )
            if shift is not None:
                shift_db, target = shift
                deltas.append(Delta(
                    name=f"curve:{name}:shift", kind="curve",
                    baseline=0.0, candidate=shift_db, delta=shift_db,
                    limit=f"|shift| <= {config.ber_shift_tol_db} dB",
                    passed=abs(shift_db) <= config.ber_shift_tol_db,
                    note=f"at BER {target:.3g}",
                ))

    # Wall clock from span aggregates.
    if config.compare_timing:
        spans_a = aggregate_spans(baseline.trace_records())
        spans_b = aggregate_spans(candidate.trace_records())
        if spans_a and spans_b:
            for name in sorted(set(spans_a) & set(spans_b)):
                a_s = spans_a[name].total_s
                b_s = spans_b[name].total_s
                if a_s < config.timing_min_s and b_s < config.timing_min_s:
                    continue
                allowed = a_s * config.timing_rel_tol + config.timing_abs_tol
                deltas.append(Delta(
                    name=f"span:{name}", kind="timing",
                    baseline=a_s, candidate=b_s, delta=b_s - a_s,
                    limit=(
                        f"<= +{config.timing_rel_tol:.0%} "
                        f"+{config.timing_abs_tol}s"
                    ),
                    passed=(b_s - a_s) <= allowed,
                    note="total seconds",
                ))
    return verdict
