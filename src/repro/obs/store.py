"""Persistent run store: content-addressed run directories + an index.

PR 1 made every run's telemetry observable; this module makes it
*durable*.  A :class:`RunStore` is a directory of finished runs::

    <root>/index.json                  one line of metadata per run
    <root>/<run_id>/manifest.json      provenance (RunManifest)
                    metrics.json       MetricsRegistry snapshot
                    kpis.json          flat name -> float key results
                    curves.json        named BER curves (x grid + BER/PER)
                    tables/<name>.txt  rendered result tables
                    trace.jsonl        span/event trace (when recorded)
                    flight.jsonl       live-telemetry timeline (when live)

Run directories are **content addressed**: the run id is
``<kind>-<sha256[:12]>`` over the canonical JSON of everything persisted
except the trace, so identical results re-store idempotently and any
later edit of a run's files is detectable (``RunRecord.integrity_ok``).

Producers either pass a store explicitly (``sweep.run(store=...)``) or
run inside an *ambient* writer installed by the CLI's ``--store`` flag;
:func:`contribute` routes to whichever is active, so library code stays
one call long.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.manifest import RunManifest, _config_snapshot, build_manifest
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer, read_jsonl

__all__ = [
    "RunEntry",
    "RunRecord",
    "RunStore",
    "RunWriter",
    "config_key",
    "contribute",
    "current_writer",
    "set_current_writer",
]

#: Sentinel meaning "use the process-wide active tracer/registry".
_ACTIVE = object()

_INDEX = "index.json"
_TRACE = "trace.jsonl"
_FLIGHT = "flight.jsonl"


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: Any) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


#: Manifest keys that vary between otherwise identical runs (timestamps
#: and the timestamp-suffixed tracer run id).  Excluded from the content
#: digest so that rerunning the same experiment yields the same address.
_VOLATILE_MANIFEST_KEYS = frozenset(
    {"run_id", "created_unix_s", "created_iso", "type"}
)


def _content_digest(
    manifest: Dict[str, Any],
    metrics: Dict[str, Any],
    kpis: Dict[str, float],
    curves: Dict[str, Dict[str, Any]],
    tables: Dict[str, str],
    probes: Optional[Dict[str, Any]] = None,
    flight: Optional[List[Dict[str, Any]]] = None,
) -> str:
    stable = {
        k: v for k, v in manifest.items()
        if k not in _VOLATILE_MANIFEST_KEYS
    }
    payload = {
        "manifest": stable,
        "metrics": metrics,
        "kpis": kpis,
        "curves": curves,
        "tables": tables,
    }
    # Probe and flight artefacts join the address only when present, so
    # runs persisted before those layers existed (and runs with them
    # switched off) keep their original digests.
    if probes:
        payload["probes"] = probes
    if flight:
        payload["flight"] = flight
    return _digest(payload)


def config_key(config: Any) -> str:
    """Content hash of a configuration object (memoization key).

    The config goes through the same JSON-friendly snapshot as the run
    manifest, so dataclasses, dicts, and nested structures all hash
    stably; two configs with equal snapshots share a key.
    """
    return _digest(_config_snapshot(config))


def _write_json(path: Path, payload: Any) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _unique_name(existing: Iterable[str], name: str) -> str:
    """Deduplicate ``name`` against ``existing`` (``name``, ``name-2``...)."""
    taken = set(existing)
    if name not in taken:
        return name
    i = 2
    while f"{name}-{i}" in taken:
        i += 1
    return f"{name}-{i}"


@dataclass
class RunEntry:
    """One index line: just enough to list runs without opening them."""

    run_id: str
    kind: str
    name: Optional[str]
    seed: Optional[int]
    created_unix_s: float
    created_iso: str
    digest: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "seed": self.seed,
            "created_unix_s": self.created_unix_s,
            "created_iso": self.created_iso,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunEntry":
        return cls(
            run_id=d["run_id"],
            kind=d.get("kind", "run"),
            name=d.get("name"),
            seed=d.get("seed"),
            created_unix_s=float(d.get("created_unix_s", 0.0)),
            created_iso=d.get("created_iso", ""),
            digest=d.get("digest", ""),
        )


@dataclass
class RunRecord:
    """A fully loaded run (what :meth:`RunStore.load_run` returns).

    Attributes:
        run_id / path: identity and on-disk location.
        manifest: the stored :class:`RunManifest` dict.
        metrics: the stored ``MetricsRegistry.as_dict()`` snapshot.
        kpis: flat ``name -> float`` key results.
        curves: named BER curves (``x_label``, ``x``, ``ber``, optional
            ``per`` / ``packets`` arrays).
        tables: rendered result tables by name.
        probes: signal-probe artefacts (``ProbeRegistry.export``; empty
            for probe-less runs).
        flight: live-telemetry flight-recorder records (``flight.jsonl``;
            empty for runs executed without ``--live``).
        stored_digest: content address recorded at store time.
        digest: content address recomputed at load time.
    """

    run_id: str
    path: Path
    manifest: Dict[str, Any]
    metrics: Dict[str, Any]
    kpis: Dict[str, float]
    curves: Dict[str, Dict[str, Any]]
    tables: Dict[str, str]
    probes: Dict[str, Any] = field(default_factory=dict)
    flight: List[Dict[str, Any]] = field(default_factory=list)
    stored_digest: str = ""
    digest: str = ""

    @property
    def integrity_ok(self) -> bool:
        """Whether the content still matches its recorded digest."""
        return bool(self.stored_digest) and self.stored_digest == self.digest

    @property
    def kind(self) -> str:
        return self.run_id.rsplit("-", 1)[0]

    @property
    def seed(self) -> Optional[int]:
        return self.manifest.get("seed")

    @property
    def created_iso(self) -> str:
        return self.manifest.get("created_iso", "")

    @property
    def has_trace(self) -> bool:
        return (self.path / _TRACE).is_file()

    def trace_records(self) -> List[Dict[str, Any]]:
        """The stored trace as record dicts ([] when none was written)."""
        if not self.has_trace:
            return []
        return read_jsonl(self.path / _TRACE)


class RunWriter:
    """Accumulates one run's artefacts, then persists them atomically.

    Obtained from :meth:`RunStore.create`; producers call the ``add_*``
    methods while the run executes and :meth:`finalize` once at the end.
    """

    def __init__(
        self,
        store: "RunStore",
        kind: str,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        config: Any = None,
        command: Optional[str] = None,
    ):
        self._store = store
        self.kind = kind
        self.name = name
        self.seed = seed
        self.config = config
        self.command = command
        self.tables: Dict[str, str] = {}
        self.curves: Dict[str, Dict[str, Any]] = {}
        self.kpis: Dict[str, float] = {}
        self.probes: Dict[str, Any] = {}
        self.flight: List[Dict[str, Any]] = []
        self.finalized: Optional[RunRecord] = None

    @property
    def store(self) -> "RunStore":
        """The store this writer will persist into."""
        return self._store

    # -- accumulation --------------------------------------------------
    def add_table(self, name: str, text: str) -> str:
        """Attach a rendered result table; returns the (deduped) name."""
        name = _unique_name(self.tables, name)
        self.tables[name] = str(text)
        return name

    def add_curve(
        self,
        name: str,
        x_label: str,
        x: Sequence[float],
        ber: Sequence[float],
        per: Optional[Sequence[float]] = None,
        packets: Optional[Sequence[int]] = None,
    ) -> str:
        """Attach a named BER curve; returns the (deduped) name."""
        if len(x) != len(ber):
            raise ValueError("curve x and ber lengths differ")
        name = _unique_name(self.curves, name)
        curve: Dict[str, Any] = {
            "x_label": x_label,
            "x": [float(v) for v in x],
            "ber": [float(v) for v in ber],
        }
        if per is not None:
            curve["per"] = [float(v) for v in per]
        if packets is not None:
            curve["packets"] = [int(v) for v in packets]
        self.curves[name] = curve
        return name

    def add_kpis(self, kpis: Mapping[str, float], prefix: str = "") -> None:
        """Merge flat scalar key results (optionally name-prefixed)."""
        for key, value in kpis.items():
            self.kpis[f"{prefix}{key}"] = float(value)

    def add_probes(self, export: Mapping[str, Any]) -> None:
        """Attach a :meth:`repro.obs.ProbeRegistry.export` payload.

        Persisted as ``probes.json`` and folded into the run's content
        address (probe-less runs keep their pre-probe digests).
        """
        self.probes = dict(export)

    def add_flight(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Attach live-telemetry flight-recorder records.

        Persisted as ``flight.jsonl`` (one compact JSON object per
        line) and folded into the run's content address only when
        non-empty — runs without ``--live`` keep their digests, the
        same convention ``probes.json`` follows.
        """
        self.flight = [dict(r) for r in records]

    # -- persistence ---------------------------------------------------
    def finalize(
        self,
        tracer=_ACTIVE,
        registry=_ACTIVE,
        manifest: Optional[RunManifest] = None,
    ) -> RunRecord:
        """Write the run directory and update the index.

        Args:
            tracer: tracer whose records become ``trace.jsonl``; defaults
                to the active tracer (pass ``None`` to skip the trace).
            registry: metrics registry to snapshot; defaults to the
                active registry (pass ``None`` for an empty snapshot).
            manifest: pre-built manifest; one is built from the writer's
                seed/command/config when omitted.

        Returns:
            The persisted :class:`RunRecord` (also kept on
            :attr:`finalized`).
        """
        if self.finalized is not None:
            return self.finalized
        if tracer is _ACTIVE:
            tracer = get_tracer()
        if registry is _ACTIVE:
            registry = get_registry()
        if manifest is None:
            manifest = build_manifest(
                seed=self.seed, command=self.command, config=self.config
            )
        manifest_dict = manifest.as_dict()
        metrics = registry.as_dict() if registry is not None else {}
        trace = (
            [r.as_dict() for r in tracer.records]
            if tracer is not None and tracer.enabled
            else None
        )
        self.finalized = self._store._persist(
            kind=self.kind,
            name=self.name,
            seed=self.seed if self.seed is not None else manifest_dict.get("seed"),
            manifest=manifest_dict,
            metrics=metrics,
            kpis=dict(self.kpis),
            curves=dict(self.curves),
            tables=dict(self.tables),
            trace=trace,
            probes=dict(self.probes),
            flight=list(self.flight),
        )
        return self.finalized


class RunStore:
    """A directory of persisted runs with an index.

    Args:
        root: store directory (created lazily on first write).
    """

    def __init__(self, root):
        self.root = Path(root)

    # -- index ---------------------------------------------------------
    def _read_index(self) -> List[RunEntry]:
        path = self.root / _INDEX
        if not path.is_file():
            return []
        payload = json.loads(path.read_text(encoding="utf-8"))
        return [RunEntry.from_dict(d) for d in payload.get("runs", [])]

    def _write_index(self, entries: List[RunEntry]) -> None:
        tmp = self.root / (_INDEX + ".tmp")
        _write_json(tmp, {"runs": [e.as_dict() for e in entries]})
        os.replace(tmp, self.root / _INDEX)

    # -- writing -------------------------------------------------------
    def create(
        self,
        kind: str,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        config: Any = None,
        command: Optional[str] = None,
    ) -> RunWriter:
        """Open a :class:`RunWriter` for a new run of ``kind``."""
        return RunWriter(
            self, kind, name=name, seed=seed, config=config, command=command
        )

    def _persist(
        self,
        kind: str,
        name: Optional[str],
        seed: Optional[int],
        manifest: Dict[str, Any],
        metrics: Dict[str, Any],
        kpis: Dict[str, float],
        curves: Dict[str, Dict[str, Any]],
        tables: Dict[str, str],
        trace: Optional[List[Dict[str, Any]]],
        probes: Optional[Dict[str, Any]] = None,
        flight: Optional[List[Dict[str, Any]]] = None,
    ) -> RunRecord:
        digest = _content_digest(
            manifest, metrics, kpis, curves, tables, probes, flight
        )
        run_id = f"{kind}-{digest[:12]}"
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".tmp-{run_id}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        try:
            _write_json(tmp / "manifest.json", manifest)
            _write_json(tmp / "metrics.json", metrics)
            _write_json(tmp / "kpis.json", kpis)
            _write_json(tmp / "curves.json", curves)
            if probes:
                _write_json(tmp / "probes.json", probes)
            if flight:
                with open(tmp / _FLIGHT, "w", encoding="utf-8") as fh:
                    for record in flight:
                        json.dump(record, fh, sort_keys=True,
                                  separators=(",", ":"))
                        fh.write("\n")
            _write_json(tmp / "digest.json", {"sha256": digest})
            if tables:
                (tmp / "tables").mkdir()
                for table_name, text in tables.items():
                    safe = table_name.replace("/", "_")
                    (tmp / "tables" / f"{safe}.txt").write_text(
                        text + "\n", encoding="utf-8"
                    )
            if trace is not None:
                with open(tmp / _TRACE, "w", encoding="utf-8") as fh:
                    json.dump(manifest, fh)
                    fh.write("\n")
                    for record in trace:
                        json.dump(record, fh)
                        fh.write("\n")
            final = self.root / run_id
            if final.exists():
                shutil.rmtree(final)
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                shutil.rmtree(tmp)
        entries = [e for e in self._read_index() if e.run_id != run_id]
        entries.append(RunEntry(
            run_id=run_id,
            kind=kind,
            name=name,
            seed=seed,
            created_unix_s=float(manifest.get("created_unix_s", 0.0)),
            created_iso=manifest.get("created_iso", ""),
            digest=digest,
        ))
        self._write_index(entries)
        return RunRecord(
            run_id=run_id,
            path=final,
            manifest=manifest,
            metrics=metrics,
            kpis=kpis,
            curves=curves,
            tables=tables,
            probes=dict(probes or {}),
            flight=list(flight or []),
            stored_digest=digest,
            digest=digest,
        )

    # -- reading -------------------------------------------------------
    def list_runs(self, kind: Optional[str] = None) -> List[RunEntry]:
        """Index entries, newest first (optionally one ``kind`` only)."""
        entries = [
            e for e in self._read_index() if kind is None or e.kind == kind
        ]
        entries.sort(key=lambda e: (e.created_unix_s, e.run_id), reverse=True)
        return entries

    def resolve(self, token: str, kind: Optional[str] = None) -> str:
        """Turn ``latest``, a full id, or a unique id prefix into a run id."""
        entries = self.list_runs(kind=kind)
        if token == "latest":
            if not entries:
                raise KeyError(f"no runs stored under {self.root}")
            return entries[0].run_id
        matches = [e.run_id for e in entries if e.run_id == token]
        if not matches:
            matches = [e.run_id for e in entries if e.run_id.startswith(token)]
        if not matches:
            raise KeyError(f"no run matching {token!r} under {self.root}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous run {token!r}: matches {', '.join(sorted(matches))}"
            )
        return matches[0]

    def load_run(self, token: str) -> RunRecord:
        """Load a run by id, unique prefix, or the ``latest`` keyword."""
        run_id = self.resolve(token)
        path = self.root / run_id

        def read(name, default):
            p = path / name
            if not p.is_file():
                return default
            return json.loads(p.read_text(encoding="utf-8"))

        manifest = read("manifest.json", {})
        metrics = read("metrics.json", {})
        kpis = {k: float(v) for k, v in read("kpis.json", {}).items()}
        curves = read("curves.json", {})
        probes = read("probes.json", {})
        flight: List[Dict[str, Any]] = []
        flight_path = path / _FLIGHT
        if flight_path.is_file():
            for line in flight_path.read_text(encoding="utf-8").splitlines():
                if line.strip():
                    flight.append(json.loads(line))
        stored = read("digest.json", {}).get("sha256", "")
        tables: Dict[str, str] = {}
        tables_dir = path / "tables"
        if tables_dir.is_dir():
            for table_path in sorted(tables_dir.glob("*.txt")):
                tables[table_path.stem] = table_path.read_text(
                    encoding="utf-8"
                ).rstrip("\n")
        digest = _content_digest(
            manifest, metrics, kpis, curves, tables, probes, flight
        )
        return RunRecord(
            run_id=run_id,
            path=path,
            manifest=manifest,
            metrics=metrics,
            kpis=kpis,
            curves=curves,
            tables=tables,
            probes=probes,
            flight=flight,
            stored_digest=stored,
            digest=digest,
        )

    def find_by_name(
        self, kind: str, name: str
    ) -> Optional[RunEntry]:
        """Newest index entry of ``kind`` stored under ``name``, or None.

        The memoization layer stores sweep points under their config
        hash as the run name; this is its lookup.
        """
        for entry in self.list_runs(kind=kind):
            if entry.name == name:
                return entry
        return None

    def latest(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        """The most recent run (of ``kind``, when given), or None."""
        entries = self.list_runs(kind=kind)
        if not entries:
            return None
        return self.load_run(entries[0].run_id)

    # -- maintenance ---------------------------------------------------
    def gc(self, keep: int, dry_run: bool = False) -> List[str]:
        """Prune the oldest runs, keeping the ``keep`` newest.

        Only directories listed in the index and living directly under
        the store root are ever removed; anything else in the directory
        is left alone.

        Returns:
            The removed (or, with ``dry_run``, would-be-removed) run ids.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        entries = self.list_runs()
        doomed = entries[keep:]
        removed = []
        for entry in doomed:
            path = (self.root / entry.run_id).resolve()
            if path.parent != self.root.resolve() or not path.is_dir():
                continue
            if not dry_run:
                shutil.rmtree(path)
            removed.append(entry.run_id)
        if removed and not dry_run:
            keep_ids = {e.run_id for e in entries[:keep]}
            self._write_index(
                [e for e in self._read_index() if e.run_id in keep_ids]
            )
        return removed


# -- ambient writer ----------------------------------------------------
_current: Optional[RunWriter] = None


def current_writer() -> Optional[RunWriter]:
    """The ambient run writer installed by the CLI's ``--store`` flag."""
    return _current


def set_current_writer(writer: Optional[RunWriter]) -> Optional[RunWriter]:
    """Install ``writer`` as the ambient writer; returns the previous."""
    global _current
    previous = _current
    _current = writer
    return previous


def contribute(
    store: Optional[RunStore],
    kind: str,
    name: str,
    seed: Optional[int] = None,
    config: Any = None,
    tables: Optional[Mapping[str, str]] = None,
    curves: Optional[Mapping[str, Dict[str, Any]]] = None,
    kpis: Optional[Mapping[str, float]] = None,
    ambient: bool = True,
) -> Optional[RunRecord]:
    """Persist one producer's results to whichever store is in scope.

    With an explicit ``store`` the producer gets its own run directory,
    finalized immediately against the active tracer/registry.  Without
    one, the results are attached to the ambient :class:`RunWriter` when
    the CLI installed one (KPIs are prefixed with ``name.`` so several
    producers coexist in one run), and dropped otherwise.

    Returns:
        The persisted :class:`RunRecord` for the explicit-store path,
        None when attached ambiently or dropped.
    """
    if store is not None:
        writer = store.create(kind, name=name, seed=seed, config=config)
    else:
        writer = _current if ambient else None
        if writer is None:
            return None
    for table_name, text in (tables or {}).items():
        writer.add_table(table_name, text)
    for curve_name, curve in (curves or {}).items():
        writer.add_curve(
            curve_name,
            curve.get("x_label", "x"),
            curve["x"],
            curve["ber"],
            per=curve.get("per"),
            packets=curve.get("packets"),
        )
    if kpis:
        prefix = "" if store is not None else f"{name}."
        writer.add_kpis(kpis, prefix=prefix)
    if store is not None:
        return writer.finalize()
    return None
