"""Live run telemetry: convergence, worker health, flight recording.

The post-hoc observability layers (tracer, metrics, run store, probes)
only speak after a run finishes; a multi-hour Monte-Carlo campaign is a
black box while it executes.  This module closes that gap with a
streaming :class:`LiveMonitor` fed by two existing buses:

* every :class:`repro.obs.ProgressEvent` (sweeps, campaigns, per-chunk
  BER accumulation) flows through :func:`observe_event`, installed by
  :func:`repro.obs.progress.as_listener`;
* every :func:`repro.perf.parallel_map` region reports task round-trips
  through :func:`note_region` / :func:`note_task` (worker heartbeats).

From those feeds the monitor aggregates, per sweep/campaign:

* **per-point BER convergence** — Wilson confidence interval width via
  :func:`repro.core.metrics.binomial_confidence`, bits/second rate, and
  a ``converged`` / ``running`` / ``starved`` classification;
* **per-worker heartbeats** with stall detection (no completion within
  ``stall_factor`` × the trailing median task time → flagged);
* an **ETA model** from trailing completion rates.

It renders three ways: an in-terminal ASCII dashboard
(:class:`LiveDashboard`, the CLI's ``--live``), an OpenMetrics text
exposition (:func:`openmetrics_text`, optionally served over localhost
HTTP by :class:`MetricsServer` for ``--metrics-port``), and a bounded
"flight recorder" — a JSONL event timeline persisted to the run store
as ``flight.jsonl`` and replayable with :meth:`LiveMonitor.replay`
(``repro watch``, the report's "Run timeline" section).

Determinism contract (the same one the probe layer honours):

* The monitor is **read-only and RNG-free** — attaching it never
  changes a measurement, so live-on and live-off runs are bit-identical.
* Flight records carry only deterministic fields (event sequence,
  stage, step counters, messages, event data, derived CI bounds).
  Wall-clock quantities — task durations, heartbeat ages, ETA,
  bits/second — live only in the in-memory snapshot and in ``live_*``
  gauges, which :class:`repro.obs.RegressionConfig` ignores by default.
* Serial and ``--jobs N`` runs produce **equivalent flight records**:
  events emitted *inside* task execution are captured symmetrically —
  suppressed via :func:`suspended` around the in-process fast path, and
  absent from the parent in pooled runs because workers disable their
  (fork-inherited) monitor — while parent-side consumption events are
  identical in both modes because results are consumed in task order.
* A failed attempt's events never double-count: progress events fire
  only when a result is *consumed* (post-retry), and failed
  :func:`note_task` round-trips are excluded from completion counts
  and the ETA's duration window, mirroring the probe-merge discard
  rule.
"""

from __future__ import annotations

import fnmatch
import json
import re
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics

__all__ = [
    "ConvergenceConfig",
    "LiveDashboard",
    "LiveMonitor",
    "MetricsServer",
    "classify_point",
    "get_live_monitor",
    "kpi_trend",
    "note_region",
    "note_task",
    "observe_event",
    "openmetrics_text",
    "parse_openmetrics",
    "render_dashboard",
    "set_live_monitor",
    "sparkline",
    "suspended",
]


# -- convergence classification -----------------------------------------
@dataclass(frozen=True)
class ConvergenceConfig:
    """When is a Monte-Carlo BER point statistically settled?

    Attributes:
        z: normal quantile of the Wilson interval (1.96 ≈ 95 %).
        min_errors: below this many observed bit errors the estimate is
            ``starved`` — the classic rule of thumb that a BER point
            needs ~10–100 errors before its value means anything (the
            ROADMAP's rare-event item).
        rel_width: converged when the CI width is at most this fraction
            of the estimate itself...
        abs_width: ...or below this absolute width (so BER ≈ 0 points
            with plenty of bits can still converge).
    """

    z: float = 1.96
    min_errors: float = 10.0
    rel_width: float = 0.5
    abs_width: float = 1e-4


def classify_point(
    errors: float, bits: int, config: Optional[ConvergenceConfig] = None
) -> Dict[str, float]:
    """Wilson-CI convergence state of one BER estimate.

    Returns:
        ``{"ci_lo", "ci_hi", "ci_width", "state"}`` where ``state`` is
        ``"pending"`` (no bits yet), ``"starved"`` (too few errors),
        ``"running"`` (CI still wide) or ``"converged"``.
    """
    config = config or ConvergenceConfig()
    if bits <= 0:
        return {"ci_lo": 0.0, "ci_hi": 1.0, "ci_width": 1.0,
                "state": "pending"}
    # Imported lazily: repro.core pulls in modules that import repro.obs,
    # and this module loads during the obs package's own initialisation.
    from repro.core.metrics import binomial_confidence

    lo, hi = binomial_confidence(errors, bits, z=config.z)
    lo, hi = float(lo), float(hi)
    width = hi - lo
    ber = errors / bits
    if errors < config.min_errors:
        state = "starved"
    elif width <= max(config.rel_width * ber, config.abs_width):
        state = "converged"
    else:
        state = "running"
    return {"ci_lo": lo, "ci_hi": hi, "ci_width": width, "state": state}


# -- the monitor --------------------------------------------------------
class LiveMonitor:
    """Streaming aggregation of a run's progress events and heartbeats.

    Args:
        convergence: classification thresholds (defaults above).
        max_flight: flight-recorder bound; the oldest records are
            dropped (and counted) beyond it.
        stall_factor: a worker with no completed task within
            ``stall_factor`` × the trailing median task time is flagged
            as stalled.
        clock: monotonic time source (injectable for tests); only
            feeds the *volatile* side — heartbeats, ETA, elapsed — never
            flight records.
        spool_path: optional append-only JSONL file mirroring flight
            records as they happen, so ``repro watch`` can tail a run
            in flight.  Opened lazily, parent-process only.
    """

    #: Trailing task durations kept per stage (the ETA/stall window).
    _DURATION_WINDOW = 32

    #: Event-data keys that carry wall-clock and therefore vary between
    #: otherwise identical runs.  They stay visible in the dashboard's
    #: ``last_message`` but are stripped from persisted flight records,
    #: which must be deterministic per (seed, jobs).
    _VOLATILE_DATA_KEYS = frozenset({"duration_s", "wall_s", "elapsed_s"})

    def __init__(
        self,
        convergence: Optional[ConvergenceConfig] = None,
        max_flight: int = 4096,
        stall_factor: float = 4.0,
        clock: Optional[Callable[[], float]] = None,
        spool_path=None,
    ):
        if max_flight < 1:
            raise ValueError("max_flight must be >= 1")
        self.convergence = convergence or ConvergenceConfig()
        self.max_flight = int(max_flight)
        self.stall_factor = float(stall_factor)
        self.clock = clock if clock is not None else time.monotonic
        self.on_update: Optional[Callable[["LiveMonitor"], None]] = None
        self._lock = threading.Lock()
        self._flight: deque = deque(maxlen=self.max_flight)
        self._dropped = 0
        self._seq = 0
        self._started_at: Optional[float] = None
        self._last_message = ""
        # stage -> {events, current, total, done, failed, retried, jobs,
        #           n_tasks, durations (deque of ok-attempt seconds)}
        self._stages: Dict[str, Dict[str, Any]] = {}
        self._stage_order: List[str] = []
        # point key -> convergence dict
        self._points: Dict[str, Dict[str, Any]] = {}
        self._point_order: List[str] = []
        # pid -> {tasks, failures, busy_s, last_seen, last_stage}
        self._workers: Dict[int, Dict[str, Any]] = {}
        # stage -> duration of the most recent ok round-trip, consumed
        # by the next progress event of that stage (bits/s rate).
        self._pending_duration: Dict[str, float] = {}
        self._spool_path = Path(spool_path) if spool_path else None
        self._spool_fh = None

    # -- feed: progress events -----------------------------------------
    def on_event(self, event) -> None:
        """Ingest one :class:`repro.obs.ProgressEvent` (duck-typed)."""
        with self._lock:
            self._touch()
            stage = self._stage(event.stage)
            stage["events"] += 1
            stage["current"] = int(event.current)
            if event.total is not None:
                stage["total"] = int(event.total)
            self._last_message = event.message
            data = {
                k: v for k, v in (event.data or {}).items()
                if k not in self._VOLATILE_DATA_KEYS
            }
            record: Dict[str, Any] = {
                "seq": self._seq,
                "stage": event.stage,
                "current": int(event.current),
                "total": None if event.total is None else int(event.total),
                "message": event.message,
                "data": data,
            }
            self._seq += 1
            point = self._update_point(event.stage, data)
            if point is not None:
                record["convergence"] = {
                    "point": point["key"],
                    "ci_lo": point["ci_lo"],
                    "ci_hi": point["ci_hi"],
                    "ci_width": point["ci_width"],
                    "state": point["state"],
                }
            if len(self._flight) == self.max_flight:
                self._dropped += 1
            self._flight.append(record)
            self._spool(record)
        self._notify()

    def _update_point(
        self, stage: str, data: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """Fold one event's BER payload into its convergence point."""
        if "bit_errors" not in data or "bits_total" not in data:
            return None
        errors = float(data["bit_errors"])
        bits = int(data["bits_total"])
        if "parameter" in data and "value" in data:
            key = f"{data['parameter']}={float(data['value']):.6g}"
        else:
            key = stage
        point = self._points.get(key)
        if point is None:
            point = {"key": key, "stage": stage, "errors": 0.0, "bits": 0,
                     "events": 0, "bits_per_s": None}
            self._points[key] = point
            self._point_order.append(key)
        prev_bits = point["bits"]
        point["errors"] = errors
        point["bits"] = bits
        point["events"] += 1
        point["ber"] = errors / bits if bits > 0 else 0.0
        # "estimator"/"ess" arrive on importance-sampled events, whose
        # bit_errors/bits_total already carry the *effective* counts —
        # the Wilson classification below therefore is the weighted CI.
        for extra in ("per", "packets", "memoized", "estimator", "ess"):
            if extra in data:
                point[extra] = data[extra]
        duration = self._pending_duration.pop(stage, None)
        if duration is not None and duration > 0 and bits > prev_bits:
            point["bits_per_s"] = (bits - prev_bits) / duration
        point.update(classify_point(errors, bits, self.convergence))
        return point

    # -- feed: worker round-trips --------------------------------------
    def note_region(self, stage: str, n_tasks: int, jobs: int) -> None:
        """A :func:`repro.perf.parallel_map` region is starting."""
        with self._lock:
            self._touch()
            entry = self._stage(stage)
            entry["n_tasks"] = int(n_tasks)
            entry["jobs"] = int(jobs)
        self._notify()

    def note_task(
        self,
        stage: str,
        index: int,
        duration_s: float,
        worker_pid: int,
        ok: bool = True,
        attempt: int = 0,
    ) -> None:
        """One task attempt finished its round-trip (pooled or inline).

        Failed attempts feed the retry counter and the worker's failure
        tally but neither the completion count nor the ETA's trailing
        durations — a retried-then-clean region converges exactly like
        a fault-free one.
        """
        with self._lock:
            now = self._touch()
            entry = self._stage(stage)
            if ok:
                entry["done"] += 1
                entry["durations"].append(float(duration_s))
                self._pending_duration[stage] = float(duration_s)
            else:
                entry["failed"] += 1
                entry["retried"] += int(attempt is not None)
            worker = self._workers.get(worker_pid)
            if worker is None:
                worker = self._workers[worker_pid] = {
                    "pid": int(worker_pid), "tasks": 0, "failures": 0,
                    "busy_s": 0.0, "last_seen": now, "last_stage": stage,
                }
            worker["tasks"] += 1
            if not ok:
                worker["failures"] += 1
            worker["busy_s"] += float(duration_s)
            worker["last_seen"] = now
            worker["last_stage"] = stage
        self._notify()

    # -- internals ------------------------------------------------------
    def _touch(self) -> float:
        now = self.clock()
        if self._started_at is None:
            self._started_at = now
        return now

    def _stage(self, name: str) -> Dict[str, Any]:
        entry = self._stages.get(name)
        if entry is None:
            entry = self._stages[name] = {
                "events": 0, "current": 0, "total": None, "done": 0,
                "failed": 0, "retried": 0, "jobs": None, "n_tasks": None,
                "durations": deque(maxlen=self._DURATION_WINDOW),
            }
            self._stage_order.append(name)
        return entry

    def _spool(self, record: Dict[str, Any]) -> None:
        if self._spool_path is None:
            return
        if self._spool_fh is None:
            self._spool_path.parent.mkdir(parents=True, exist_ok=True)
            self._spool_fh = open(self._spool_path, "w", encoding="utf-8")
        json.dump(record, self._spool_fh, sort_keys=True)
        self._spool_fh.write("\n")
        self._spool_fh.flush()

    def _notify(self) -> None:
        callback = self.on_update
        if callback is not None:
            callback(self)

    @staticmethod
    def _median(values: Sequence[float]) -> Optional[float]:
        if not values:
            return None
        ordered = sorted(values)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    # -- views ----------------------------------------------------------
    def has_data(self) -> bool:
        """Whether anything was observed (events or round-trips)."""
        with self._lock:
            return bool(self._stages)

    def flight_records(self) -> List[Dict[str, Any]]:
        """The retained flight-recorder timeline, oldest first."""
        with self._lock:
            return [dict(r) for r in self._flight]

    def flight_summary(self) -> Dict[str, Any]:
        """Deterministic digest of the flight: the serial-vs-parallel
        equivalence object (no durations, pids, or clocks)."""
        with self._lock:
            stages = {
                name: {
                    "events": e["events"],
                    "current": e["current"],
                    "total": e["total"],
                    "done": e["done"],
                    "failed": e["failed"],
                }
                for name, e in self._stages.items()
            }
            states: Dict[str, int] = {}
            points = {}
            for key in self._point_order:
                point = self._points[key]
                state = point.get("state", "pending")
                states[state] = states.get(state, 0) + 1
                points[key] = state
            return {
                "events": self._seq,
                "recorded": len(self._flight),
                "dropped": self._dropped,
                "stages": stages,
                "points": points,
                "states": states,
            }

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock from trailing completion rates, or None."""
        with self._lock:
            return self._eta_locked()

    def _eta_locked(self) -> Optional[float]:
        for name in reversed(self._stage_order):
            entry = self._stages[name]
            total = entry["total"]
            if total is None or entry["current"] >= total:
                continue
            med = self._median(entry["durations"])
            if med is None:
                continue
            jobs = max(entry["jobs"] or 1, 1)
            remaining = total - entry["current"]
            return remaining * med / jobs
        return None

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-able state for dashboards (volatile fields included)."""
        with self._lock:
            now = self.clock()
            elapsed = (
                now - self._started_at if self._started_at is not None
                else None
            )
            stages = []
            for name in self._stage_order:
                entry = self._stages[name]
                stages.append({
                    "stage": name,
                    "events": entry["events"],
                    "current": entry["current"],
                    "total": entry["total"],
                    "done": entry["done"],
                    "failed": entry["failed"],
                    "retried": entry["retried"],
                    "jobs": entry["jobs"],
                    "median_task_s": self._median(entry["durations"]),
                })
            points = [dict(self._points[key]) for key in self._point_order]
            workers = []
            for pid in sorted(self._workers):
                worker = self._workers[pid]
                age = now - worker["last_seen"]
                stage = self._stages.get(worker["last_stage"])
                med = (
                    self._median(stage["durations"]) if stage else None
                )
                active = bool(
                    stage is not None
                    and stage["total"] is not None
                    and stage["current"] < stage["total"]
                )
                stalled = bool(
                    active
                    and med is not None
                    and age > self.stall_factor * max(med, 1e-3)
                )
                workers.append({
                    "pid": pid,
                    "tasks": worker["tasks"],
                    "failures": worker["failures"],
                    "busy_s": worker["busy_s"],
                    "age_s": age,
                    "stalled": stalled,
                })
            return {
                "elapsed_s": elapsed,
                "eta_s": self._eta_locked(),
                "stages": stages,
                "points": points,
                "workers": workers,
                "flight": {
                    "events": self._seq,
                    "recorded": len(self._flight),
                    "dropped": self._dropped,
                },
                "last_message": self._last_message,
            }

    def emit_metrics(self, registry=None) -> None:
        """Publish ``live_*`` convergence/health gauges into ``registry``.

        These gauges carry volatile quantities (rates, stall flags), so
        :class:`repro.obs.RegressionConfig` ignores ``live_*`` by
        default — they inform, they never gate.
        """
        registry = registry if registry is not None else _metrics.get_registry()
        snap = self.snapshot()
        summary = self.flight_summary()
        registry.gauge(
            "live_flight_events", "progress events seen by the live monitor"
        ).set(summary["events"])
        registry.gauge(
            "live_flight_dropped", "flight records dropped by the bound"
        ).set(summary["dropped"])
        for state, count in sorted(summary["states"].items()):
            registry.gauge(
                "live_points", "BER points by convergence state"
            ).set(count, state=state)
        for point in snap["points"]:
            registry.gauge(
                "live_point_ci_width", "Wilson CI width per BER point"
            ).set(point.get("ci_width", 1.0), point=point["key"])
            if point.get("bits_per_s") is not None:
                registry.gauge(
                    "live_point_bits_per_s", "simulated bits/s per point"
                ).set(point["bits_per_s"], point=point["key"])
        for stage in snap["stages"]:
            registry.gauge(
                "live_stage_done", "tasks completed per stage"
            ).set(stage["done"], stage=stage["stage"])
            registry.gauge(
                "live_stage_failed", "failed task attempts per stage"
            ).set(stage["failed"], stage=stage["stage"])
        registry.gauge(
            "live_workers", "worker processes seen by the live monitor"
        ).set(len(snap["workers"]))
        registry.gauge(
            "live_worker_stalls", "workers currently flagged as stalled"
        ).set(sum(1 for w in snap["workers"] if w["stalled"]))
        if snap["eta_s"] is not None:
            registry.gauge(
                "live_eta_seconds", "estimated remaining wall-clock"
            ).set(snap["eta_s"])
        if snap["elapsed_s"] is not None:
            registry.gauge(
                "live_elapsed_seconds", "wall-clock since the first event"
            ).set(snap["elapsed_s"])

    # -- replay ----------------------------------------------------------
    @classmethod
    def replay(cls, records: Sequence[Dict[str, Any]],
               **kwargs) -> "LiveMonitor":
        """Rebuild a monitor from stored/spooled flight records.

        Durations and heartbeats are not recorded (they are volatile),
        so the replayed monitor reconstructs the deterministic side:
        stages, convergence points, flight summary.
        """
        kwargs.setdefault("clock", lambda: 0.0)
        monitor = cls(**kwargs)

        class _Event:
            __slots__ = ("stage", "current", "total", "message", "data")

        for record in records:
            event = _Event()
            event.stage = record.get("stage", "?")
            event.current = int(record.get("current", 0))
            event.total = record.get("total")
            event.message = record.get("message", "")
            event.data = record.get("data", {})
            monitor.on_event(event)
        return monitor

    # -- spool lifecycle -------------------------------------------------
    def open_spool(self, path) -> None:
        """Mirror subsequent flight records to an append-only JSONL file."""
        with self._lock:
            self.close_spool_locked()
            self._spool_path = Path(path)

    def close_spool(self, remove: bool = False) -> None:
        """Stop spooling; with ``remove`` also delete the spool file."""
        with self._lock:
            path = self._spool_path
            self.close_spool_locked()
            self._spool_path = None
            if remove and path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass

    def close_spool_locked(self) -> None:
        if self._spool_fh is not None:
            try:
                self._spool_fh.close()
            except OSError:
                pass
            self._spool_fh = None


# -- ambient monitor ----------------------------------------------------
_monitor: Optional[LiveMonitor] = None
_suspend_depth = 0


def get_live_monitor() -> Optional[LiveMonitor]:
    """The ambient monitor installed by the CLI's ``--live`` (or None)."""
    return _monitor


def set_live_monitor(
    monitor: Optional[LiveMonitor],
) -> Optional[LiveMonitor]:
    """Install ``monitor`` as the ambient monitor; returns the previous.

    Pool workers call this with ``None`` at initialisation: a forked
    worker inherits the parent's monitor, and capturing events on both
    sides would double-count them (and corrupt the parent's spool).
    """
    global _monitor
    previous = _monitor
    _monitor = monitor
    return previous


@contextmanager
def suspended():
    """Suppress live capture inside the block (re-entrant).

    The in-process execution path of :func:`repro.perf.parallel_map`
    wraps each task's body in this, so events a task emits *internally*
    (e.g. the per-chunk BER events of a sweep point's measurement) are
    invisible to the monitor — exactly as they are in a pooled run,
    where they happen inside a worker whose monitor is disabled.  That
    symmetry is what makes serial and ``--jobs N`` flight records equal.
    """
    global _suspend_depth
    _suspend_depth += 1
    try:
        yield
    finally:
        _suspend_depth -= 1


def observe_event(event) -> None:
    """Forward a progress event to the ambient monitor (no-op without)."""
    if _monitor is not None and _suspend_depth == 0:
        _monitor.on_event(event)


def note_region(stage: str, n_tasks: int, jobs: int) -> None:
    """Forward a parallel-region start to the ambient monitor."""
    if _monitor is not None and _suspend_depth == 0:
        _monitor.note_region(stage, n_tasks, jobs)


def note_task(
    stage: str,
    index: int,
    duration_s: float,
    worker_pid: int,
    ok: bool = True,
    attempt: int = 0,
) -> None:
    """Forward a task round-trip to the ambient monitor."""
    if _monitor is not None and _suspend_depth == 0:
        _monitor.note_task(
            stage, index, duration_s, worker_pid, ok=ok, attempt=attempt
        )


# -- ASCII dashboard ----------------------------------------------------
def _bar(current: int, total: Optional[int], width: int) -> str:
    if not total:
        return "." * width
    filled = max(0, min(width, round(width * current / total)))
    return "#" * filled + "." * (width - filled)


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 120.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.1f}s"


def render_dashboard(snapshot: Dict[str, Any], width: int = 72) -> str:
    """Render a monitor snapshot as a plain-ASCII dashboard block."""
    lines: List[str] = []
    flight = snapshot.get("flight", {})
    head = (
        f"live: {flight.get('events', 0)} events"
        f"  elapsed {_fmt_s(snapshot.get('elapsed_s'))}"
        f"  eta {_fmt_s(snapshot.get('eta_s'))}"
    )
    if flight.get("dropped"):
        head += f"  (flight dropped {flight['dropped']})"
    lines.append(head)
    bar_w = max(10, width - 34)
    for stage in snapshot.get("stages", []):
        total = stage.get("total")
        current = stage.get("current", 0)
        progress = (
            f"{current}/{total}" if total is not None else f"{current}"
        )
        jobs = stage.get("jobs")
        med = stage.get("median_task_s")
        lines.append(
            f"  {stage['stage']:<10.10}"
            f" [{_bar(current, total, bar_w)}] {progress:>7}"
            + (f"  x{jobs}" if jobs and jobs > 1 else "")
            + (f"  ~{_fmt_s(med)}/task" if med is not None else "")
        )
    points = snapshot.get("points", [])
    if points:
        lines.append("  point                      BER        CI95 width"
                     "  bits/s   state")
    for point in points:
        rate = point.get("bits_per_s")
        lines.append(
            f"  {point['key']:<24.24}"
            f" {point.get('ber', 0.0):>9.3g}"
            f" {point.get('ci_width', 1.0):>11.3g}"
            f" {(f'{rate:.3g}' if rate is not None else '-'):>8}"
            f"   {point.get('state', 'pending')}"
            + (" (memo)" if point.get("memoized") else "")
        )
    workers = snapshot.get("workers", [])
    if workers:
        lines.append("  worker        tasks  fail  busy     last    state")
        for worker in workers:
            lines.append(
                f"  pid {worker['pid']:<8} {worker['tasks']:>5}"
                f" {worker['failures']:>5}"
                f"  {_fmt_s(worker['busy_s']):>6}"
                f"  {_fmt_s(worker['age_s']):>6} ago"
                f"  {'STALLED' if worker['stalled'] else 'ok'}"
            )
    message = snapshot.get("last_message")
    if message:
        lines.append(f"  > {message[: width - 4]}")
    return "\n".join(lines)


class LiveDashboard:
    """Throttled terminal renderer for a :class:`LiveMonitor`.

    Attach :meth:`on_update` as the monitor's update callback; on a TTY
    the previous block is overwritten in place, elsewhere refreshed
    blocks print at most every ``interval`` seconds (CI-log friendly).
    """

    def __init__(self, stream=None, interval: float = 1.0,
                 width: int = 72,
                 clock: Optional[Callable[[], float]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = float(interval)
        self.width = int(width)
        self.clock = clock if clock is not None else time.monotonic
        self._last_render = 0.0
        self._last_lines = 0

    def _emit(self, monitor: LiveMonitor) -> None:
        text = render_dashboard(monitor.snapshot(), width=self.width)
        is_tty = getattr(self.stream, "isatty", lambda: False)()
        if is_tty and self._last_lines:
            self.stream.write(f"\x1b[{self._last_lines}F\x1b[J")
        self.stream.write(text + "\n")
        self.stream.flush()
        self._last_lines = text.count("\n") + 1 if is_tty else 0

    def on_update(self, monitor: LiveMonitor) -> None:
        now = self.clock()
        if now - self._last_render < self.interval:
            return
        self._last_render = now
        self._emit(monitor)

    def final(self, monitor: LiveMonitor) -> None:
        """Render the closing state unconditionally."""
        if monitor.has_data():
            self._emit(monitor)


# -- OpenMetrics exposition ---------------------------------------------
_OM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_OM_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_OM_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)

#: OpenMetrics content type for HTTP exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def _om_name(name: str) -> str:
    """Sanitise a registry metric name into an OpenMetrics name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _OM_NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _om_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _om_labels(labels: Dict[str, Any],
               extra: Optional[List[Tuple[str, Any]]] = None) -> str:
    pairs = [
        (_om_name(k).lstrip(":"), v) for k, v in sorted(labels.items())
    ]
    if extra:
        pairs += extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_om_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _om_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return f"{number:.10g}"


def openmetrics_text(registry=None, monitor=None) -> str:
    """Render a registry (plus live gauges) as OpenMetrics text.

    Counters gain the mandated ``_total`` suffix, histograms export as
    OpenMetrics summaries (quantile samples plus ``_count``/``_sum``),
    and the exposition terminates with ``# EOF``.  The output round-
    trips through :func:`parse_openmetrics` (the strict parser the
    tests gate with).

    Args:
        registry: source :class:`repro.obs.MetricsRegistry`; defaults
            to the ambient one.
        monitor: optional :class:`LiveMonitor` whose ``live_*`` gauges
            are merged into the exposition without mutating ``registry``.
    """
    registry = registry if registry is not None else _metrics.get_registry()
    if monitor is not None and monitor.has_data():
        combined = _metrics.MetricsRegistry()
        combined.merge(registry.snapshot())
        monitor.emit_metrics(combined)
        registry = combined
    lines: List[str] = []
    for raw_name, entry in sorted(registry.as_dict().items()):
        kind = entry.get("kind", "gauge")
        name = _om_name(raw_name)
        om_kind = "summary" if kind == "histogram" else kind
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_om_escape(help_text)}")
        lines.append(f"# TYPE {name} {om_kind}")
        for series in entry.get("series", []):
            labels = series.get("labels", {})
            if kind == "counter":
                lines.append(
                    f"{name}_total{_om_labels(labels)}"
                    f" {_om_value(series.get('value', 0))}"
                )
            elif kind == "histogram":
                count = series.get("count", 0)
                for quantile, field in (
                    ("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"),
                ):
                    if count:
                        lines.append(
                            f"{name}{_om_labels(labels, [('quantile', quantile)])}"
                            f" {_om_value(series[field])}"
                        )
                lines.append(
                    f"{name}_count{_om_labels(labels)} {int(count)}"
                )
                lines.append(
                    f"{name}_sum{_om_labels(labels)}"
                    f" {_om_value(series.get('sum', 0.0))}"
                )
            else:
                lines.append(
                    f"{name}{_om_labels(labels)}"
                    f" {_om_value(series.get('value', 0))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_OM_TYPES = frozenset(
    {"counter", "gauge", "summary", "histogram", "info", "stateset",
     "unknown"}
)

#: Sample-name suffixes each family type may emit.
_OM_SUFFIXES = {
    "counter": ("_total", "_created"),
    "summary": ("", "_count", "_sum", "_created"),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
}


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse an OpenMetrics text exposition.

    Enforces the format rules this repo relies on: a final ``# EOF``
    line, ``# TYPE`` declared before a family's samples, known types,
    legal metric/label names, float-parseable values, and counter
    samples carrying the ``_total`` suffix.

    Returns:
        ``{family: {"type", "help", "samples": [{"name", "labels",
        "value"}]}}``.

    Raises:
        ValueError: on any violation, with the offending line number.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition does not end with '# EOF'")
    families: Dict[str, Dict[str, Any]] = {}

    def fail(i: int, why: str):
        raise ValueError(f"line {i + 1}: {why}: {lines[i]!r}")

    for i, line in enumerate(lines[:-1]):
        if not line:
            fail(i, "blank line inside exposition")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                fail(i, "malformed comment line")
            keyword, family = parts[1], parts[2]
            if keyword == "TYPE":
                if len(parts) != 4 or parts[3] not in _OM_TYPES:
                    fail(i, "unknown metric type")
                if not _OM_NAME_RE.match(family):
                    fail(i, "illegal family name")
                if family in families and families[family]["samples"]:
                    fail(i, "TYPE after samples")
                families.setdefault(
                    family, {"type": parts[3], "help": "", "samples": []}
                )["type"] = parts[3]
            elif keyword == "HELP":
                if not _OM_NAME_RE.match(family):
                    fail(i, "illegal family name")
                families.setdefault(
                    family, {"type": "unknown", "help": "", "samples": []}
                )["help"] = parts[3] if len(parts) == 4 else ""
            elif keyword == "UNIT":
                continue
            else:
                fail(i, "unknown comment keyword")
            continue
        match = _OM_SAMPLE_RE.match(line)
        if not match:
            fail(i, "malformed sample line")
        sample_name = match.group("name")
        label_text = match.group("labels")
        labels: Dict[str, str] = {}
        if label_text:
            consumed = 0
            for pair in _OM_LABEL_PAIR_RE.finditer(label_text):
                key, value = pair.group(1), pair.group(2)
                if not _OM_LABEL_RE.match(key):
                    fail(i, f"illegal label name {key!r}")
                labels[key] = (
                    value.replace('\\"', '"').replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed += len(pair.group(0)) + 1  # + separator
            if consumed < len(label_text):
                fail(i, "malformed label set")
        try:
            value = float(match.group("value"))
        except ValueError:
            fail(i, "sample value is not a float")
        family = None
        for candidate, entry in families.items():
            suffixes = _OM_SUFFIXES.get(entry["type"], ("",))
            for suffix in suffixes:
                if sample_name == candidate + suffix:
                    family = candidate
                    break
            if family:
                break
        if family is None:
            fail(i, "sample for undeclared family")
        if (
            families[family]["type"] == "counter"
            and not sample_name.endswith(("_total", "_created"))
        ):
            fail(i, "counter sample without _total suffix")
        families[family]["samples"].append(
            {"name": sample_name, "labels": labels, "value": value}
        )
    return families


class MetricsServer:
    """Localhost HTTP endpoint serving the live OpenMetrics exposition.

    Serves ``GET /metrics`` (and a one-line index at ``/``) on
    ``127.0.0.1`` using only the stdlib.  The exposition is rendered at
    request time from the ambient registry and live monitor — or from
    the explicit callables passed in — so scrapes see the run as it is.

    Args:
        port: TCP port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
        registry_fn / monitor_fn: sources consulted per request;
            default to the ambient registry / monitor.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry_fn=None, monitor_fn=None):
        self._requested_port = int(port)
        self.host = host
        self.registry_fn = registry_fn or _metrics.get_registry
        self.monitor_fn = monitor_fn or get_live_monitor
        self._server = None
        self._thread = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib casing)
                if self.path == "/metrics":
                    body = openmetrics_text(
                        outer.registry_fn(), outer.monitor_fn()
                    ).encode("utf-8")
                    content_type = OPENMETRICS_CONTENT_TYPE
                elif self.path in ("", "/"):
                    body = b"repro live metrics: GET /metrics\n"
                    content_type = "text/plain; charset=utf-8"
                else:
                    self.send_response(404)
                    self.send_header("Content-Length", "0")
                    self.end_headers()
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence request logging
                pass

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# -- cross-run KPI trends -----------------------------------------------
def kpi_trend(
    store,
    pattern: str = "*",
    kinds: Optional[Sequence[str]] = None,
    since: Optional[float] = None,
    last: Optional[int] = None,
) -> Dict[str, List[Dict[str, Any]]]:
    """Per-KPI trajectories across a store's runs, oldest first.

    The missing consumer for accumulated run history (and the
    BENCH_perf.json lineage): walk the index chronologically, load each
    run, and collect every KPI matching ``pattern``.

    Args:
        store: a :class:`repro.obs.RunStore`.
        pattern: ``fnmatch`` glob over KPI names (e.g. ``"ber*"``).
        kinds: restrict to these run kinds (None = all); entries
            starting with ``!`` exclude a kind instead.
        since: only runs created at/after this unix timestamp.
        last: keep only each series' most recent N samples.

    Returns:
        ``{kpi: [{"run_id", "kind", "created_iso", "created_unix_s",
        "value"}, ...]}`` sorted by KPI name.
    """
    entries = sorted(
        store.list_runs(), key=lambda e: (e.created_unix_s, e.run_id)
    )
    series: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        if kinds and not _kind_selected(entry.kind, kinds):
            continue
        if since is not None and entry.created_unix_s < since:
            continue
        try:
            run = store.load_run(entry.run_id)
        except (KeyError, OSError, ValueError):
            continue
        for name in sorted(run.kpis):
            if not fnmatch.fnmatch(name, pattern):
                continue
            series.setdefault(name, []).append({
                "run_id": entry.run_id,
                "kind": entry.kind,
                "created_iso": entry.created_iso,
                "created_unix_s": entry.created_unix_s,
                "value": run.kpis[name],
            })
    if last is not None and last > 0:
        series = {k: v[-last:] for k, v in series.items()}
    return dict(sorted(series.items()))


def _kind_selected(kind: str, spec: Sequence[str]) -> bool:
    """Apply an include/exclude kind filter (``sweep`` / ``!point``)."""
    includes = [s for s in spec if not s.startswith("!")]
    excludes = [s[1:] for s in spec if s.startswith("!")]
    if kind in excludes:
        return False
    if includes:
        return kind in includes
    return True


#: ASCII intensity ramp for sparklines (portable, no unicode blocks).
_SPARK_RAMP = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render a value series as a one-line ASCII sparkline."""
    if not values:
        return ""
    values = list(values)[-width:]
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return _SPARK_RAMP[len(_SPARK_RAMP) // 2] * len(values)
    out = []
    for value in values:
        frac = (value - lo) / (hi - lo)
        out.append(_SPARK_RAMP[
            min(int(frac * (len(_SPARK_RAMP) - 1) + 0.5),
                len(_SPARK_RAMP) - 1)
        ])
    return "".join(out)
