"""Run manifests: who/what/when of a simulation run.

Every traced run writes a manifest — seed, command line, a config
snapshot, tool versions, and a git-describe-style identifier — so a
trace file found on disk six months later is still attributable to an
exact code state and invocation.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "EMITTER_SCHEME",
    "RETRY_SCHEME",
    "RunManifest",
    "SEEDING_SCHEME",
    "build_manifest",
    "source_revision",
]

#: Identifier of the seed-derivation scheme in effect (see
#: :mod:`repro.perf.seeding`).  Recorded in every manifest so a stored
#: run documents which derivation produced its random streams; bump it
#: whenever the derivation changes in a result-affecting way.
SEEDING_SCHEME = "seedseq-spawn-v2"

#: Identifier of the retry-attempt seed derivation (see
#: :func:`repro.perf.seeding.attempt_seed`).  Separate from
#: :data:`SEEDING_SCHEME` because attempt streams only exist on retried
#: tasks and must not perturb the base derivation (or the memoization
#: keys hashed from it).
RETRY_SCHEME = "retry-spawn-v1"

#: Identifier of the interference-emitter stream derivation (see
#: :func:`repro.channel.streams.fork_stream`).  Each scenario emitter
#: draws from its own child stream forked off a *snapshot* of the wanted
#: path's generator state, so enabling an emitter never advances — and
#: therefore never perturbs — the wanted path's noise/payload draws.
EMITTER_SCHEME = "emitter-fork-v1"


def source_revision() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, or None.

    Best-effort: returns None when the package is not running from a git
    checkout (installed wheel, stripped CI checkout, no git binary).
    """
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=here,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def _package_versions() -> Dict[str, str]:
    versions = {"python": platform.python_version()}
    for module_name in ("numpy", "scipy"):
        module = sys.modules.get(module_name)
        if module is None:
            try:
                module = __import__(module_name)
            except ImportError:
                continue
        versions[module_name] = getattr(module, "__version__", "unknown")
    return versions


def _config_snapshot(config: Any) -> Any:
    """Best-effort JSON-friendly rendering of a configuration object."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    if isinstance(config, dict):
        return {str(k): _config_snapshot(v) for k, v in config.items()}
    if isinstance(config, (list, tuple)):
        return [_config_snapshot(v) for v in config]
    if isinstance(config, (str, int, float, bool)):
        return config
    return repr(config)


@dataclass
class RunManifest:
    """Provenance record written alongside a trace.

    Attributes:
        run_id: git-describe-style identifier of this run.
        created_unix_s / created_iso: run start timestamp.
        seed: the run's base random seed (None if not applicable).
        command: the invoking command line.
        config: JSON-friendly snapshot of the run configuration.
        versions: python/numpy/scipy versions.
        platform: interpreter platform string.
        seeding: seed-derivation scheme in effect (see
            :mod:`repro.perf.seeding`).
        retry_seeding: retry-attempt seed derivation in effect (see
            :func:`repro.perf.seeding.attempt_seed`).
        emitter_seeding: interference-emitter stream derivation in
            effect (see :func:`repro.channel.streams.fork_stream`).
    """

    run_id: str
    created_unix_s: float
    created_iso: str
    seed: Optional[int] = None
    command: Optional[str] = None
    config: Any = None
    versions: Dict[str, str] = field(default_factory=dict)
    platform: str = ""
    seeding: str = SEEDING_SCHEME
    retry_seeding: str = RETRY_SCHEME
    emitter_seeding: str = EMITTER_SCHEME

    def as_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["type"] = "manifest"
        return d

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def build_manifest(
    seed: Optional[int] = None,
    command: Optional[str] = None,
    config: Any = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current process.

    The run id composes the package version, the source revision when
    available, and a timestamp fragment for uniqueness:
    ``repro-1.0.0-g3f2a1c9-8a4f2b`` style.
    """
    try:
        from repro import __version__ as version
    except ImportError:
        version = "unknown"
    now = time.time()
    rev = source_revision()
    parts = [f"repro-{version}"]
    if rev:
        parts.append(rev if rev.startswith("g") else f"g{rev}")
    parts.append(f"{int(now * 1e6) & 0xFFFFFF:06x}")
    return RunManifest(
        run_id="-".join(parts),
        created_unix_s=now,
        created_iso=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        seed=seed,
        command=command,
        config=_config_snapshot(config),
        versions=_package_versions(),
        platform=platform.platform(),
        seeding=SEEDING_SCHEME,
        retry_seeding=RETRY_SCHEME,
        emitter_seeding=EMITTER_SCHEME,
    )
