"""``repro.obs`` — observability for the verification flow.

One package instruments the whole stack: structured tracing (nested
spans and events with a JSONL sink), a metrics registry (counters,
gauges, histograms with labels), run manifests (seed, config, versions,
source revision), unified progress events, and trace-profile analysis.

The instrumentation is **zero-cost when disabled**: the default tracer
is a no-op, so library code can be sprinkled with ``obs.span(...)``
without slowing down untraced runs.

Typical producer code::

    from repro import obs

    with obs.span("block:receiver", samples=baseband.size):
        result = receiver.receive(baseband)
    obs.get_registry().counter("packets_simulated").inc()

Typical consumer code::

    tracer = obs.Tracer()
    previous = obs.set_tracer(tracer)
    try:
        run_experiment()
    finally:
        obs.set_tracer(previous)
    tracer.write_jsonl("run.jsonl", header=obs.build_manifest().as_dict())
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.manifest import (
    SEEDING_SCHEME,
    RunManifest,
    build_manifest,
    source_revision,
)
from repro.obs.store import (
    RunEntry,
    RunRecord,
    RunStore,
    RunWriter,
    config_key,
    contribute,
    current_writer,
    set_current_writer,
)
from repro.obs.regress import (
    Delta,
    RegressionConfig,
    RegressionVerdict,
    compare_runs,
    flatten_metrics,
)
from repro.obs.report import (
    chrome_trace,
    render_html,
    render_markdown,
    render_run_markdown,
    render_timeline,
    run_sections,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.probes import (
    PROBE_PRESETS,
    ProbeConfig,
    ProbeRegistry,
    get_probes,
    probe_preset,
    set_probes,
)
from repro.obs.profile import SpanSummary, aggregate_spans, profile_rows
from repro.obs.live import (
    ConvergenceConfig,
    LiveDashboard,
    LiveMonitor,
    MetricsServer,
    classify_point,
    get_live_monitor,
    kpi_trend,
    openmetrics_text,
    parse_openmetrics,
    render_dashboard,
    set_live_monitor,
    sparkline,
)
from repro.obs.live import note_region as live_note_region
from repro.obs.live import note_task as live_note_task
from repro.obs.live import suspended as live_suspended
from repro.obs.progress import ProgressEvent, ProgressListener, as_listener, printer
from repro.obs.tracer import (
    EventRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    event,
    get_tracer,
    read_jsonl,
    set_tracer,
    span,
)

__all__ = [
    "ConvergenceConfig",
    "Counter",
    "Delta",
    "EventRecord",
    "Gauge",
    "Histogram",
    "LiveDashboard",
    "LiveMonitor",
    "MetricsRegistry",
    "MetricsServer",
    "NullTracer",
    "PROBE_PRESETS",
    "ProbeConfig",
    "ProbeRegistry",
    "ProgressEvent",
    "ProgressListener",
    "RegressionConfig",
    "RegressionVerdict",
    "RunEntry",
    "RunManifest",
    "RunRecord",
    "RunStore",
    "RunWriter",
    "SEEDING_SCHEME",
    "SpanRecord",
    "SpanSummary",
    "Timed",
    "Tracer",
    "aggregate_spans",
    "as_listener",
    "build_manifest",
    "chrome_trace",
    "classify_point",
    "compare_runs",
    "config_key",
    "contribute",
    "current_writer",
    "event",
    "flatten_metrics",
    "get_live_monitor",
    "get_probes",
    "get_registry",
    "get_tracer",
    "kpi_trend",
    "live_note_region",
    "live_note_task",
    "live_suspended",
    "openmetrics_text",
    "parse_openmetrics",
    "printer",
    "render_dashboard",
    "probe_preset",
    "profile_rows",
    "read_jsonl",
    "render_html",
    "render_markdown",
    "render_run_markdown",
    "render_timeline",
    "run_sections",
    "set_current_writer",
    "set_live_monitor",
    "set_probes",
    "set_registry",
    "set_tracer",
    "source_revision",
    "span",
    "sparkline",
    "timed",
    "write_chrome_trace",
]


class Timed:
    """A context manager that always measures, and traces when enabled.

    Unlike :func:`span` — which is free when tracing is off and
    therefore measures nothing — ``Timed`` always reads the monotonic
    clock, so callers that *need* the duration (the campaign's
    ``CheckResult.duration_s``, the co-simulation's wall times) get it
    identically whether or not a tracer is active.

    Attributes:
        elapsed: monotonic seconds; live while open, frozen after exit.
    """

    def __init__(self, name: str, **attributes):
        self._name = name
        self._attributes = attributes
        self._span = None
        self._start = 0.0
        self._elapsed: Optional[float] = None

    @property
    def elapsed(self) -> float:
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._start

    def set(self, **attributes) -> "Timed":
        """Attach attributes to the underlying span (if tracing)."""
        self._span.set(**attributes)
        return self

    def __enter__(self) -> "Timed":
        self._span = span(self._name, **self._attributes)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._elapsed = time.perf_counter() - self._start
        self._span.__exit__(exc_type, exc, tb)


def timed(name: str, **attributes) -> Timed:
    """Open a :class:`Timed` region (the campaign's timing primitive)."""
    return Timed(name, **attributes)
